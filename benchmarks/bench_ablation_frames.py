"""Ablation: frame length T and the queue-reset policy (section 4.3).

COCA resets its deficit queue every T slots so V can be re-tuned per frame.
Frequent resets throw away deficit memory (each frame starts 'forgiven'),
so with a fixed V, shorter frames drift further from neutrality; the C(T)
constant in Theorem 2 grows with T, but the *empirical* effect of resets is
what this ablation quantifies.
"""

from repro.analysis import render_table, run_coca

FRAME_LENGTHS = {"1 day": 24, "1 week": 24 * 7, "1 month": 730, "full year": None}


def test_ablation_frame_length(benchmark, publish, fiu_scenario, fiu_v_star):
    sc = fiu_scenario
    pf = sc.environment.portfolio

    def run():
        out = {}
        for name, T in FRAME_LENGTHS.items():
            record, controller = run_coca(sc, fiu_v_star, frame_length=T)
            out[name] = (record, max(controller.queue.history, default=0.0))
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        {
            "frame length": name,
            "avg cost": record.average_cost,
            "brown / budget": record.total_brown / sc.budget,
            "neutral": record.ledger(pf, sc.alpha).is_neutral(),
            "peak queue (MWh)": peak_q,
        }
        for name, (record, peak_q) in results.items()
    ]
    table = render_table(
        rows,
        title=f"Ablation: frame length / queue resets at fixed V = {fiu_v_star:.3g}",
    )
    publish("ablation_frames", table)

    # More frequent resets -> (weakly) more brown energy at the same V.
    browns = [results[n][0].total_brown for n in FRAME_LENGTHS]
    assert browns[0] >= browns[-1] - 1e-6
    # The no-reset run is the neutral one at V*.
    assert rows[-1]["neutral"]
