"""Ablation: what the carbon-deficit queue actually buys.

Three controllers on the same year and budget:

* COCA with its queue (V = V*);
* the same per-slot optimization with the queue disabled (q = 0 always --
  exactly the carbon-unaware policy);
* a naive *static-penalty* controller that prices brown energy at a fixed
  surcharge chosen with hindsight knowledge of the year (the best constant
  q) -- i.e., OPT's dual policy, which needs offline information.

The queue matters because it reproduces (online, with no future
information) what the hindsight-constant penalty achieves, while the
queue-less variant blows through the budget.
"""

from repro.analysis import render_table, run_coca
from repro.baselines import CarbonUnaware, OfflineOptimal
from repro.sim import simulate


def test_ablation_deficit_queue(benchmark, publish, fiu_scenario, fiu_v_star):
    sc = fiu_scenario
    pf = sc.environment.portfolio

    def run():
        with_queue, _ = run_coca(sc, fiu_v_star)
        without_queue = simulate(sc.model, CarbonUnaware(sc.model), sc.environment)
        hindsight = OfflineOptimal(sc.model, budget=sc.budget, alpha=sc.alpha)
        hindsight_rec = simulate(sc.model, hindsight, sc.environment)
        return with_queue, without_queue, hindsight_rec, hindsight.mu

    with_queue, without_queue, hindsight_rec, mu = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    rows = []
    for name, rec in [
        ("COCA (online queue)", with_queue),
        ("queue disabled (q=0)", without_queue),
        ("hindsight constant penalty (OPT dual)", hindsight_rec),
    ]:
        rows.append(
            {
                "controller": name,
                "avg cost": rec.average_cost,
                "brown / budget": rec.total_brown / sc.budget,
                "neutral": rec.ledger(pf, sc.alpha).is_neutral(),
            }
        )
    table = render_table(
        rows,
        title=f"Ablation: deficit queue on/off vs hindsight penalty "
        f"(V*={fiu_v_star:.3g}, hindsight mu={mu:.3g} $/MWh)",
    )
    publish("ablation_queue", table)

    assert rows[0]["neutral"] and not rows[1]["neutral"]
    # The online queue lands within a few percent of the hindsight policy.
    assert rows[0]["avg cost"] <= rows[2]["avg cost"] * 1.05
    benchmark.extra_info["coca_vs_hindsight"] = (
        rows[0]["avg cost"] / rows[2]["avg cost"]
    )
