"""Ablation: P3 engines compared (quality and latency).

DESIGN.md calls out the engine choice as a design decision: the exact
vectorized enumeration (our default for homogeneous fleets), the paper's
GSD sampler, and deterministic coordinate descent all solve the same
one-slot problem.  This bench scores all three on a spread of paper-scale
slots and times them, quantifying what the enumeration fast path buys and
how close GSD gets at the paper's 500-iteration setting.
"""

import time

import numpy as np

from repro.analysis import render_table
from repro.solvers import (
    CoordinateDescentSolver,
    GSDSolver,
    HomogeneousEnumerationSolver,
)

SLOTS = [100, 1500, 4000, 5100, 7300]  # spread across the year


def test_ablation_solver_engines(benchmark, publish, fiu_scenario):
    sc = fiu_scenario

    def problem_at(t, q):
        obs = sc.environment.observation(t)
        return sc.model.slot_problem(
            arrival_rate=obs.arrival_rate, onsite=obs.onsite, price=obs.price, q=q
        )

    def run():
        engines = {
            "enumeration (exact)": HomogeneousEnumerationSolver(),
            "coordinate descent": CoordinateDescentSolver(),
            "GSD 500 iters": None,  # built per problem (auto delta)
            "GSD 3000 iters": None,
        }
        stats = {name: {"gap": [], "ms": []} for name in engines}
        for t in SLOTS:
            for q in (0.0, 2000.0):
                problem = problem_at(t, q)
                exact = HomogeneousEnumerationSolver().solve(problem).objective
                delta = GSDSolver.auto_delta(problem, greediness=1000.0)
                engines["GSD 500 iters"] = GSDSolver(
                    iterations=500, delta=delta, rng=np.random.default_rng(t)
                )
                engines["GSD 3000 iters"] = GSDSolver(
                    iterations=3000, delta=delta, rng=np.random.default_rng(t)
                )
                for name, engine in engines.items():
                    t0 = time.perf_counter()
                    sol = engine.solve(problem)
                    stats[name]["ms"].append(1e3 * (time.perf_counter() - t0))
                    stats[name]["gap"].append(
                        sol.objective / exact - 1.0 if exact > 0 else 0.0
                    )
        return stats

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        {
            "engine": name,
            "mean gap vs exact": float(np.mean(s["gap"])),
            "max gap": float(np.max(s["gap"])),
            "median ms/slot": float(np.median(s["ms"])),
        }
        for name, s in stats.items()
    ]
    table = render_table(
        rows, title="Ablation: P3 engine quality/latency on 10 paper-scale slots"
    )
    publish("ablation_solvers", table)

    by_name = {r["engine"]: r for r in rows}
    assert by_name["enumeration (exact)"]["max gap"] <= 1e-9
    # Longer GSD chains close the gap.
    assert (
        by_name["GSD 3000 iters"]["mean gap vs exact"]
        <= by_name["GSD 500 iters"]["mean gap vs exact"] + 1e-12
    )
    # The vectorized engine is the cheapest by a wide margin.
    assert (
        by_name["enumeration (exact)"]["median ms/slot"]
        < by_name["GSD 500 iters"]["median ms/slot"]
    )
