"""Learning-augmented advice benchmark: the certified (1+λ) gate.

Three claims about :mod:`repro.advice` are checked end to end, on the
named scenario pack (``repro scenarios``) plus the forecast
overestimation sweep:

1. **Certified robustness.**  On every scenario -- including the
   adversarially flipped forecasts -- and at every λ in ``LAMBDAS``, the
   advised run's total cost stays within ``(1+λ)×`` the plain-COCA
   shadow run on the same traces.  This is the TrustGuard's inductive
   budget invariant measured on *realized* cost, not the guard's own
   accounting.
2. **Consistency floor.**  Advice that is never trusted leaves the run
   bit-identical to plain COCA (cost, brown energy, queue arrays equal)
   -- the advice layer is free when it is off.
3. **Graceful degradation.**  As forecast overestimation grows, the
   guard advises fewer slots and the bound keeps holding at every sweep
   point.

The JSON report lands in ``benchmarks/results/BENCH_advice.json``; the
deterministic counters (advised slots, budget blocks, transition counts)
are trend-gated by the ``repro bench`` ledger (see
``repro.profile.ledger.GATE_METRICS``).  With ``--check``, any bound
violation or bit-identity failure exits non-zero -- the CI robustness
gate.

Run it directly (CI does)::

    PYTHONPATH=src python benchmarks/bench_advice.py --check
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Robustness knobs the bound is certified at (0.25 is the pack default).
LAMBDAS = (0.1, 0.25, 0.5)

#: Forecast overestimation magnitudes for the sweep (bias factor 1+phi).
PHIS = (0.0, 0.3, 0.8, 2.0)


def measure(*, horizon: int, lam: float) -> dict:
    from repro.advice import SCENARIOS, TrustGuard, run_scenario
    from repro.advice.pack import neutral_v
    from repro.analysis import advice_overestimation_sweep
    from repro.scenarios import small_scenario

    scenario = small_scenario(horizon=horizon)
    v = neutral_v(scenario)

    scenarios: dict[str, dict] = {}
    for name in SCENARIOS:
        started = time.perf_counter()
        result = run_scenario(name, lam=lam, scenario=scenario, v=v)
        row = result.to_dict()
        guard = row.pop("guard")
        row["wall_s"] = time.perf_counter() - started
        row["advised_slots"] = int(guard["advised_slots"])
        row["fallback_slots"] = int(guard["fallback_slots"])
        row["budget_blocks"] = int(guard["budget_blocks"])
        row["transition_count"] = len(guard["transitions"])
        row["guard_ratio"] = float(guard["cost_ratio"])
        scenarios[name] = row

    # The λ knob: the adversarial scenario must respect every bound it is
    # run under, including ones tighter than the pack default.
    lambdas = []
    for knob in LAMBDAS:
        result = run_scenario(
            "advice-adversarial", lam=knob, scenario=scenario, v=v
        )
        lambdas.append(
            {
                "lam": knob,
                "cost_ratio": result.cost_ratio,
                "bound": result.bound,
                "bound_holds": result.bound_holds,
            }
        )

    # Consistency floor: a guard that never trusts must leave the run
    # bit-identical to plain COCA, faults and all.
    never = run_scenario(
        "advice-degrading",
        lam=lam,
        scenario=scenario,
        v=v,
        guard=TrustGuard(lam=lam, initial_trust=False, trust_after=10**9),
    )

    sweep = advice_overestimation_sweep(scenario, PHIS, lam=lam, v=v)

    bound_holds = (
        all(row["bound_holds"] for row in scenarios.values())
        and all(row["bound_holds"] for row in lambdas)
        and all(row["bound_holds"] for row in sweep)
    )
    return {
        "benchmark": "advice",
        "horizon": horizon,
        "lam": lam,
        "v": v,
        "scenarios": scenarios,
        "lambdas": lambdas,
        "never_trusted_bit_identical": never.bit_identical,
        "sweep": sweep,
        "bound_holds_everywhere": bound_holds,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--horizon", type=int, default=168,
        help="slots per run (multiple of the 24-slot advice frame)",
    )
    parser.add_argument(
        "--lam", type=float, default=0.25, help="pack robustness knob λ"
    )
    parser.add_argument(
        "--output",
        "-o",
        default=str(RESULTS_DIR / "BENCH_advice.json"),
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit 1 on any (1+λ) bound violation or bit-identity failure",
    )
    args = parser.parse_args(argv)
    if args.horizon < 24 or args.horizon % 24:
        parser.error("--horizon must be a positive multiple of 24")

    report = measure(horizon=args.horizon, lam=args.lam)
    out = pathlib.Path(args.output)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2) + "\n")

    for name, row in report["scenarios"].items():
        print(
            f"{name:20s} ratio {row['cost_ratio']:.4f} "
            f"(bound {row['bound']:.2f}: "
            f"{'holds' if row['bound_holds'] else 'VIOLATED'}), "
            f"{row['advised_slots']}/{report['horizon']} advised, "
            f"{row['transition_count']} transition(s)"
        )
    print(
        f"λ sweep: "
        + ", ".join(
            f"λ={r['lam']:g} ratio {r['cost_ratio']:.4f}"
            + ("" if r["bound_holds"] else " VIOLATED")
            for r in report["lambdas"]
        )
    )
    print(
        "never-trusted bit identity: "
        + ("ok" if report["never_trusted_bit_identical"] else "FAILED")
    )
    print(
        "overestimation sweep: "
        + ", ".join(
            f"phi={r['phi']:g} ratio {r['cost_ratio']:.4f}"
            + ("" if r["bound_holds"] else " VIOLATED")
            for r in report["sweep"]
        )
    )
    print(f"report -> {out}")

    failed = []
    if not report["bound_holds_everywhere"]:
        failed.append("certified (1+λ) bound violated")
    if not report["never_trusted_bit_identical"]:
        failed.append("never-trusted run diverged from plain COCA")
    if args.check and failed:
        for reason in failed:
            print(f"bench_advice: {reason}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
