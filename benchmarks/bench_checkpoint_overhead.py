"""Checkpoint-write overhead benchmark (standalone, no pytest needed).

Crash-safe checkpoints are meant to be left on for every long-horizon run
(``repro run --checkpoint-every 1``), so their cost must stay within the
documented **5% overhead budget** relative to an un-checkpointed run (see
docs/OPERATIONS.md "Overhead budget") even at the most aggressive cadence
of one checkpoint per slot.

Method: the same closed-loop COCA run (small scenario, GSD solver at its
``repro run`` default of 200 iterations) is repeated ``--repeats`` times
per mode after a warm-up, once without a
:class:`~repro.state.CheckpointWriter` ("off") and once checkpointing
*every slot* into a fresh rotation with ``sync=False`` ("on") -- fsync cost
is the disk's, not the serializer's, and CI filesystems make it pure
noise.  Each repetition yields one *per-slot wall time* sample (run wall
time / horizon); state capture and the atomic write both happen inside the
slot loop, so whole-slot wall time is the honest measure.

The budget is defined against the iterative solve path because that is
the configuration checkpoints exist for: a GSD slot costs tens of
milliseconds, so a ~1-2 ms full-state snapshot stays well under 5%.  The
homogeneous-enumeration fast path finishes a slot in ~0.2 ms -- faster
than *any* durable full-state snapshot can be written -- which is why
``--checkpoint-every`` exists: on sub-millisecond slot loops, checkpoint
at a coarser cadence instead.

The p50/p95 land in ``benchmarks/results/BENCH_checkpoint.json``::

    {
      "horizon": 96, "repeats": 5,
      "off": {"p50_ms": ..., "p95_ms": ...},
      "on":  {"p50_ms": ..., "p95_ms": ...},
      "overhead_pct": ..., "budget_pct": 5.0, "within_budget": true
    }

Run it directly (CI does)::

    PYTHONPATH=src python benchmarks/bench_checkpoint_overhead.py
"""

from __future__ import annotations

import argparse
import json
import pathlib
import shutil
import sys
import tempfile
import time

import numpy as np

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Documented ceiling for checkpoint-every-slot, as a percent of the
#: un-checkpointed per-slot time (docs/OPERATIONS.md "Overhead budget").
BUDGET_PCT = 5.0


def _run_once(scenario, *, checkpoint_dir: str | None) -> float:
    """One full COCA run; returns wall seconds.  Fresh controller (and
    checkpoint rotation) per call so no state leaks between repetitions."""
    from repro.core import COCA
    from repro.sim import simulate
    from repro.solvers import GSDSolver
    from repro.state import CheckpointWriter

    writer = None
    if checkpoint_dir is not None:
        writer = CheckpointWriter(checkpoint_dir, every=1, keep=3, sync=False)
    controller = COCA(
        scenario.model,
        scenario.environment.portfolio,
        v_schedule=120.0,
        alpha=scenario.alpha,
        solver=GSDSolver(iterations=200, rng=np.random.default_rng(0)),
    )
    started = time.perf_counter()
    simulate(
        scenario.model, controller, scenario.environment, checkpoint=writer
    )
    return time.perf_counter() - started


def measure(*, horizon: int, repeats: int, warmup: int) -> dict:
    """Interleaved off/on repetitions -> per-slot p50/p95 per mode."""
    from repro.scenarios import small_scenario

    scenario = small_scenario(horizon=horizon)
    workdir = tempfile.mkdtemp(prefix="bench-ckpt-")
    try:
        for _ in range(warmup):
            _run_once(scenario, checkpoint_dir=None)
            _run_once(scenario, checkpoint_dir=workdir)

        samples: dict[str, list[float]] = {"off": [], "on": []}
        # Interleave modes so clock drift / thermal state hits both equally,
        # and keep the pairs: machine-state drift across repetitions is
        # larger than the writer itself, so the overhead estimate is the
        # median of the *paired* on/off ratios (drift cancels within a
        # pair), not a ratio of cross-repetition medians.
        for _ in range(repeats):
            samples["off"].append(
                1e3 * _run_once(scenario, checkpoint_dir=None) / horizon
            )
            samples["on"].append(
                1e3 * _run_once(scenario, checkpoint_dir=workdir) / horizon
            )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    def _stats(values: list[float]) -> dict:
        arr = np.asarray(values)
        return {
            "p50_ms": float(np.percentile(arr, 50)),
            "p95_ms": float(np.percentile(arr, 95)),
            "mean_ms": float(arr.mean()),
        }

    off, on = _stats(samples["off"]), _stats(samples["on"])
    ratios = np.asarray(samples["on"]) / np.asarray(samples["off"])
    overhead_pct = 100.0 * (float(np.median(ratios)) - 1.0)
    return {
        "benchmark": "checkpoint_overhead",
        "horizon": horizon,
        "repeats": repeats,
        "warmup": warmup,
        "solver": "gsd-200",
        "cadence": "every slot (keep 3, sync off)",
        "unit": "ms per slot (wall time / horizon)",
        "off": off,
        "on": on,
        "overhead_pct": overhead_pct,
        "budget_pct": BUDGET_PCT,
        "within_budget": overhead_pct <= BUDGET_PCT,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--horizon", type=int, default=96, help="slots per run")
    parser.add_argument("--repeats", type=int, default=5, help="timed runs per mode")
    parser.add_argument("--warmup", type=int, default=1, help="untimed runs per mode")
    parser.add_argument(
        "--output",
        "-o",
        default=str(RESULTS_DIR / "BENCH_checkpoint.json"),
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit 1 when the measured overhead exceeds the budget",
    )
    args = parser.parse_args(argv)

    report = measure(horizon=args.horizon, repeats=args.repeats, warmup=args.warmup)
    out = pathlib.Path(args.output)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2) + "\n")

    print(
        f"checkpoint-every-slot overhead: {report['overhead_pct']:+.2f}% "
        f"(median paired ratio; off p50 {report['off']['p50_ms']:.3f} ms/slot, "
        f"on p50 {report['on']['p50_ms']:.3f} ms/slot; "
        f"budget {report['budget_pct']:g}%) -> {out}"
    )
    if args.check and not report["within_budget"]:
        print("checkpoint overhead exceeds budget", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
