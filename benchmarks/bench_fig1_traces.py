"""Fig. 1: the workload traces.

Fig. 1(a) shows the normalized FIU trace for July 2012 (with the
late-July surge); Fig. 1(b) shows the normalized MSR week.  The bench
regenerates both, reports the series as monthly / daily profile rows, and
times trace generation.
"""

import numpy as np

from repro.analysis import render_table
from repro.traces import HOURS_PER_YEAR, fiu_workload, msr_week

def test_fig1a_fiu_trace(benchmark, publish):
    trace = benchmark(lambda: fiu_workload(HOURS_PER_YEAR, peak=1.0, seed=2012))

    daily = trace.values[: 364 * 24].reshape(-1, 24).mean(axis=1)
    monthly_edges = np.cumsum([0, 31, 29, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31])
    months = [
        "Jan", "Feb", "Mar", "Apr", "May", "Jun",
        "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
    ]
    rows = [
        {
            "month": months[m],
            "mean (norm.)": float(daily[monthly_edges[m] : min(monthly_edges[m + 1], 364)].mean()),
            "peak (norm.)": float(
                trace.values[monthly_edges[m] * 24 : min(monthly_edges[m + 1], 365) * 24].max()
            ),
        }
        for m in range(12)
    ]
    table = render_table(
        rows, title="Fig. 1(a): FIU-style workload, monthly summary (normalized)"
    )
    # The paper's distinguishing feature: the late-July surge carries the
    # annual peak.
    july_peak = rows[6]["peak (norm.)"]
    assert july_peak == max(r["peak (norm.)"] for r in rows)
    publish("fig1a_fiu_trace", table)
    benchmark.extra_info["july_peak"] = july_peak


def test_fig1b_msr_week(benchmark, publish):
    trace = benchmark(lambda: msr_week(seed=2007))
    by_day = trace.values.reshape(7, 24)
    rows = [
        {
            "day": d,
            "mean (norm.)": float(by_day[d].mean()),
            "peak (norm.)": float(by_day[d].max()),
            "overnight burst": float(by_day[d][2:5].max()),
        }
        for d in range(7)
    ]
    table = render_table(rows, title="Fig. 1(b): MSR-style week (normalized)")
    publish("fig1b_msr_week", table)
    # Weekend days (generator days 2-3) are the quiet ones.
    means = [r["mean (norm.)"] for r in rows]
    assert min(means[2], means[3]) <= min(means[0], means[1], means[4])
