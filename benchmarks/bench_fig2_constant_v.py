"""Fig. 2(a,b): impact of a constant V on average cost and carbon deficit.

Sweeps V over the paper-scale year.  Expected shape (paper section 5.2.1):
cost decreases in V toward the carbon-unaware asymptote; the carbon deficit
increases in V; a knee value V* satisfies neutrality at 92% of the unaware
electricity usage with close-to-minimum cost.
"""

from repro.analysis import render_table, sweep_constant_v
from repro.baselines import CarbonUnaware
from repro.sim import simulate

V_GRID = [10.0, 30.0, 60.0, 120.0, 240.0, 1000.0, 1e4]


def test_fig2ab_constant_v(benchmark, publish, fiu_scenario):
    sc = fiu_scenario

    def run():
        rows = sweep_constant_v(sc, V_GRID)
        unaware = simulate(sc.model, CarbonUnaware(sc.model), sc.environment)
        return rows, unaware

    rows, unaware = benchmark.pedantic(run, rounds=1, iterations=1)

    for row in rows:
        row["cost_vs_unaware"] = row["avg_cost"] / unaware.average_cost
    rows.append(
        {
            "V": float("inf"),
            "avg_cost": unaware.average_cost,
            "avg_deficit": unaware.average_deficit(sc.environment.portfolio, sc.alpha),
            "brown": unaware.total_brown,
            "brown_fraction": unaware.total_brown / sc.unaware_brown,
            "neutral": False,
            "cost_vs_unaware": 1.0,
        }
    )
    table = render_table(
        rows,
        title="Fig. 2(a,b): average hourly cost and carbon deficit vs constant V "
        "(paper-scale year, budget = 92% of carbon-unaware usage)",
    )
    publish("fig2ab_constant_v", table)

    # Shape assertions: monotone trade-off with the unaware asymptote.
    costs = [r["avg_cost"] for r in rows]
    deficits = [r["avg_deficit"] for r in rows[:-1]]
    assert costs == sorted(costs, reverse=True)
    assert deficits == sorted(deficits)
    assert rows[-2]["avg_cost"] <= 1.01 * unaware.average_cost  # asymptote
    assert any(r["neutral"] for r in rows[:-1])  # a neutral knee exists
    benchmark.extra_info["cost_at_smallest_v"] = costs[0]
    benchmark.extra_info["unaware_cost"] = unaware.average_cost
