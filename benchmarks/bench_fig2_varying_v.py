"""Fig. 2(c,d): quarterly-varying V -- 45-day moving averages.

The paper changes V quarterly (small early, larger later) and plots 45-day
moving averages of hourly cost and carbon deficit; a small initial V drives
cost up / deficit down early, and raising V later recovers cost at the
expense of deficit -- demonstrating the knob the frame-reset mechanism
(section 4.3) exists for.
"""

import numpy as np

from repro.analysis import render_table, run_varying_v
from repro.core import quarterly

QUARTERLY_V = [20.0, 50.0, 120.0, 400.0]
WINDOW = 45 * 24


def test_fig2cd_varying_v(benchmark, publish, fiu_scenario):
    sc = fiu_scenario
    T = sc.horizon // 4

    record, controller = benchmark.pedantic(
        lambda: run_varying_v(sc, quarterly(QUARTERLY_V), frame_length=T),
        rounds=1,
        iterations=1,
    )
    pf = sc.environment.portfolio
    ma_cost = record.moving_average_cost(WINDOW)
    ma_deficit = record.moving_average_deficit(pf, sc.alpha, WINDOW)

    idx = np.linspace(WINDOW, sc.horizon - 1, 12).astype(int)
    rows = [
        {
            "day": int(t // 24),
            "V in effect": float(record.v_applied[t]),
            "45d avg cost": float(ma_cost[t]),
            "45d avg deficit": float(ma_deficit[t]),
        }
        for t in idx
    ]
    table = render_table(
        rows,
        title="Fig. 2(c,d): 45-day moving averages under quarterly V "
        f"({QUARTERLY_V})",
    )
    publish("fig2cd_varying_v", table)

    # Shape: the final quarter (largest V) runs cheaper per hour than the
    # first quarter (smallest V) and with a larger deficit.
    q1 = slice(0, T)
    q4 = slice(3 * T, 4 * T)
    assert record.cost[q4].mean() < record.cost[q1].mean()
    assert (
        record.deficit_series(pf, sc.alpha)[q4].mean()
        > record.deficit_series(pf, sc.alpha)[q1].mean()
    )
    assert len(np.unique(record.v_applied)) == 4
