"""Fig. 3: COCA vs the prediction-based PerfectHP heuristic.

The paper reports COCA saves >25% in average cost over one year while
satisfying the desired neutrality better.  Our reproduction preserves the
*direction* on both axes -- COCA is strictly cheaper at its neutral V and
tracks the carbon budget more accurately -- with a cost gap of roughly
10-20% under our calibration (see EXPERIMENTS.md for the discussion of the
delay-weight normalization this gap is sensitive to).
"""

from repro.analysis import compare_with_perfecthp, render_table, time_bucket_rows


def test_fig3_coca_vs_perfecthp(benchmark, publish, fiu_scenario, fiu_v_star):
    sc = fiu_scenario

    cmp = benchmark.pedantic(
        lambda: compare_with_perfecthp(sc, fiu_v_star), rounds=1, iterations=1
    )
    pf = sc.environment.portfolio
    coca, hp = cmp["coca"], cmp["perfecthp"]

    rows = time_bucket_rows([coca, hp], pf, alpha=sc.alpha, buckets=12)
    table = render_table(
        rows,
        title=(
            "Fig. 3: running-average hourly cost and carbon deficit, "
            f"COCA (V*={fiu_v_star:.3g}) vs PerfectHP\n"
            f"cost saving: {100 * cmp['cost_saving']:.1f}%  |  "
            f"final deficits: COCA {cmp['coca_deficit']:.4g}, "
            f"PerfectHP {cmp['perfecthp_deficit']:.4g} MWh/h"
        ),
    )
    publish("fig3_coca_vs_perfecthp", table)

    # Shape: COCA cheaper over the year and at least as neutral.
    assert cmp["cost_saving"] > 0.05, "expected a clear COCA cost advantage"
    assert coca.ledger(pf, sc.alpha).is_neutral()
    assert abs(coca.average_deficit(pf, sc.alpha)) <= abs(
        cmp["perfecthp_deficit"]
    ) + 1e-9
    benchmark.extra_info["cost_saving"] = cmp["cost_saving"]
    benchmark.extra_info["coca_cost"] = coca.average_cost
    benchmark.extra_info["perfecthp_cost"] = hp.average_cost
