"""Fig. 4: execution of GSD on a paper-scale slot (200 groups).

Fig. 4(a): total cost over iterations for several temperatures delta --
larger delta reaches a lower final cost (but explores less).  Fig. 4(b):
different initial points converge to almost the same cost.  The paper also
reports 500 iterations for 200 groups run in under a second; the benchmark
times exactly that configuration.

As in the paper, the snapshot is taken at slot t = 1500 "without
considering the queue length".
"""

import numpy as np

from repro.analysis import render_table
from repro.solvers import (
    GSDSolver,
    HomogeneousEnumerationSolver,
    geometric_temperature,
)

SLOT = 1500
#: Chain length for the convergence figures (500 iterations is the paper's
#: timing claim; full convergence of the 200-group chain takes a few_000).
ITERATIONS = 3000
TIMING_ITERATIONS = 500


def _slot_problem(sc):
    obs = sc.environment.observation(SLOT)
    return sc.model.slot_problem(
        arrival_rate=obs.arrival_rate,
        onsite=obs.onsite,
        price=obs.price,
        q=0.0,  # paper: "without considering the queue length"
        V=1.0,
    )


def test_fig4a_temperature_sweep(benchmark, publish, fiu_scenario):
    problem = _slot_problem(fiu_scenario)
    exact = HomogeneousEnumerationSolver().solve(problem)
    base = GSDSolver.auto_delta(problem, greediness=1.0)

    def run_chain(mult, seed=0):
        solver = GSDSolver(
            iterations=ITERATIONS,
            delta=base * mult,
            rng=np.random.default_rng(seed),
            record_history=True,
        )
        return solver.solve(problem)

    mults = [1.0, 10.0, 100.0, 1000.0]
    solutions = benchmark.pedantic(
        lambda: {m: run_chain(m) for m in mults}, rounds=1, iterations=1
    )

    checkpoints = [0, 250, 500, 1000, 2000, ITERATIONS - 1]
    rows = [
        {
            "iteration": it,
            **{
                f"delta x{m:g}": solutions[m].info["trace"].best_objective[it]
                for m in mults
            },
        }
        for it in checkpoints
    ]
    rows.append(
        {"iteration": "exact", **{f"delta x{m:g}": exact.objective for m in mults}}
    )
    table = render_table(
        rows,
        title=f"Fig. 4(a): GSD best cost vs iteration, slot {SLOT} "
        f"(200 groups; delta in multiples of the auto scale {base:.3g})",
    )
    publish("fig4a_gsd_temperature", table)

    finals = {m: solutions[m].objective for m in mults}
    # Larger delta ends (weakly) lower -- the Fig. 4(a) message.
    assert finals[1000.0] <= finals[1.0] * (1 + 1e-9)
    assert finals[1000.0] <= exact.objective * 1.02
    benchmark.extra_info["gaps_vs_exact"] = {
        str(m): finals[m] / exact.objective - 1.0 for m in mults
    }


def test_fig4b_initial_points(benchmark, publish, fiu_scenario):
    problem = _slot_problem(fiu_scenario)
    exact = HomogeneousEnumerationSolver().solve(problem)
    fleet = fiu_scenario.model.fleet
    base = GSDSolver.auto_delta(problem, greediness=100.0)
    rng = np.random.default_rng(7)
    inits = {
        "all top speed": (fleet.num_levels - 1).astype(np.int64),
        "all lowest speed": np.zeros(fleet.num_groups, dtype=np.int64),
        "random A": rng.integers(-1, 4, size=fleet.num_groups).astype(np.int64),
        "random B": rng.integers(-1, 4, size=fleet.num_groups).astype(np.int64),
    }

    def run_all():
        out = {}
        for name, init in inits.items():
            sol = GSDSolver(
                iterations=6000,
                delta=geometric_temperature(base, 1.001),
                rng=np.random.default_rng(3),
                initial_levels=init,
            ).solve(problem)
            out[name] = sol.objective
        return out

    finals = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [
        {
            "initial point": name,
            "final cost": val,
            "gap vs exact": val / exact.objective - 1.0,
        }
        for name, val in finals.items()
    ]
    table = render_table(
        rows, title="Fig. 4(b): GSD final cost from different initial points"
    )
    publish("fig4b_gsd_initial_points", table)

    values = list(finals.values())
    spread = (max(values) - min(values)) / exact.objective
    assert spread < 0.02, "GSD should be insensitive to the initial point"
    benchmark.extra_info["spread"] = spread


def test_gsd_timing_500_iterations(benchmark, fiu_scenario):
    """The paper: 'to run GSD for 200 groups of servers, the execution time
    for 500 iterations in our simulator is less than 1 second'."""
    problem = _slot_problem(fiu_scenario)
    delta = GSDSolver.auto_delta(problem, greediness=100.0)

    def run():
        return GSDSolver(
            iterations=TIMING_ITERATIONS, delta=delta, rng=np.random.default_rng(0)
        ).solve(problem)

    sol = benchmark.pedantic(run, rounds=3, iterations=1)
    assert np.isfinite(sol.objective)
    assert benchmark.stats.stats.mean < 5.0, "500 GSD iterations should be seconds"
