"""Fig. 5(a): normalized cost vs carbon budget (FIU workload).

Sweeps the carbon budget (as a fraction of the carbon-unaware electricity
usage, the paper's normalization) and compares COCA (V auto-tuned for
neutrality at each budget), the offline OPT, and the carbon-unaware
baseline.  Expected shape (section 5.2.4): at an 85% budget COCA exceeds
the unaware cost by only a few percent while remaining neutral (which the
unaware policy violates); COCA tracks OPT closely; at budgets >= the
unaware usage, COCA converges to the unaware policy without using up the
budget.
"""

from repro.analysis import budget_sweep, render_table

FRACTIONS = [0.85, 0.90, 0.95, 1.00, 1.05]


def test_fig5a_budget_sweep_fiu(benchmark, publish, fiu_scenario):
    rows = benchmark.pedantic(
        lambda: budget_sweep(fiu_scenario, FRACTIONS, include_opt=True, v_iters=8),
        rounds=1,
        iterations=1,
    )
    table = render_table(
        rows,
        title="Fig. 5(a): normalized average cost vs carbon budget, FIU "
        "(costs / unaware cost; budgets / unaware brown energy)",
    )
    publish("fig5a_budget_fiu", table)

    # Shape assertions from the paper's narrative.
    by_frac = {r["budget_fraction"]: r for r in rows}
    # Tighter budget -> higher COCA cost.
    coca_costs = [r["coca_cost"] for r in rows]
    assert coca_costs == sorted(coca_costs, reverse=True)
    # 85% budget costs only a few percent over the unaware minimum.
    assert by_frac[0.85]["coca_cost"] <= 1.15
    # COCA is neutral everywhere; unaware violates all sub-1.0 budgets.
    assert all(r["coca_neutral"] for r in rows)
    assert not any(r["unaware_neutral"] for r in rows if r["budget_fraction"] < 1.0)
    # COCA tracks OPT closely.
    for r in rows:
        assert r["coca_cost"] <= r["opt_cost"] * 1.10
    # With budget above the unaware draw, COCA == unaware.
    assert abs(by_frac[1.05]["coca_cost"] - 1.0) < 0.01
    benchmark.extra_info["coca_cost_at_085"] = by_frac[0.85]["coca_cost"]
