"""Fig. 5(b): normalized cost vs carbon budget (MSR workload).

Same sweep as Fig. 5(a) on the burstier MSR-style trace; the paper's
message is that the COCA/OPT/unaware ordering and the neutrality picture
are workload-independent.
"""

from repro.analysis import budget_sweep, render_table

FRACTIONS = [0.85, 0.95, 1.00]


def test_fig5b_budget_sweep_msr(benchmark, publish, msr_scenario):
    rows = benchmark.pedantic(
        lambda: budget_sweep(msr_scenario, FRACTIONS, include_opt=True, v_iters=8),
        rounds=1,
        iterations=1,
    )
    table = render_table(
        rows,
        title="Fig. 5(b): normalized average cost vs carbon budget, MSR "
        "(same normalization as Fig. 5(a))",
    )
    publish("fig5b_budget_msr", table)

    coca_costs = [r["coca_cost"] for r in rows]
    assert coca_costs == sorted(coca_costs, reverse=True)
    assert all(r["coca_neutral"] for r in rows)
    for r in rows:
        assert r["coca_cost"] <= r["opt_cost"] * 1.10
    benchmark.extra_info["coca_cost_at_085"] = rows[0]["coca_cost"]
