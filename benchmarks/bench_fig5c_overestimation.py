"""Fig. 5(c): sensitivity to workload overestimation.

The controller provisions for ``phi * lambda(t)`` (phi up to 1.2, the
paper's 20% which prior work deems sufficient for hour-ahead prediction)
while real arrivals stay at ``lambda(t)``; per the paper's protocol V is
re-chosen so neutrality holds at every point.  Expected shape: the total
cost rises only mildly (paper: <2.5% at 20% -- overprovisioning wastes
electricity but buys back delay), and no load is ever dropped.
"""

from repro.analysis import overestimation_sweep, render_table

PHIS = [1.0, 1.05, 1.10, 1.15, 1.20]


def test_fig5c_overestimation(benchmark, publish, fiu_scenario, fiu_v_star):
    rows = benchmark.pedantic(
        lambda: overestimation_sweep(fiu_scenario, PHIS, v=fiu_v_star),
        rounds=1,
        iterations=1,
    )
    table = render_table(
        rows,
        title="Fig. 5(c): total-cost impact of workload overestimation "
        "(V re-tuned for neutrality at each phi)",
    )
    publish("fig5c_overestimation", table)

    assert all(r["neutral"] for r in rows)
    assert all(r["dropped"] == 0.0 for r in rows)
    # Paper: <2.5% increase at phi = 1.2; assert a loose 6% ceiling on the
    # magnitude of the change to preserve the "mild impact" shape.
    assert all(abs(r["cost_increase"]) < 0.06 for r in rows)
    benchmark.extra_info["cost_increase_at_1_2"] = rows[-1]["cost_increase"]
