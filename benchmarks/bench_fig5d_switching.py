"""Fig. 5(d): sensitivity to server switching costs.

Switching cost is charged as energy per power-on transition, normalized to
the server's maximum hourly energy (0.231 kWh); the paper sweeps 0-10% and
reports the total operational cost rises by <5%.  The controller here is
switching-aware (transition energy appears in its P3 objective), so it
naturally damps thrashing as the cost grows.
"""

from repro.analysis import render_table, switching_sweep

FRACTIONS = [0.0, 0.025, 0.05, 0.075, 0.10]


def test_fig5d_switching_cost(benchmark, publish, fiu_scenario, fiu_v_star):
    rows = benchmark.pedantic(
        lambda: switching_sweep(fiu_scenario, FRACTIONS, v=fiu_v_star),
        rounds=1,
        iterations=1,
    )
    table = render_table(
        rows,
        title="Fig. 5(d): total-cost impact of per-server switching cost "
        "(fraction of the 0.231 kWh max hourly energy per power-on)",
    )
    publish("fig5d_switching", table)

    assert all(r["neutral"] for r in rows)
    # Paper: <5% increase at the 10% switching cost.
    assert abs(rows[-1]["cost_increase"]) < 0.05
    # Switching energy grows with the per-toggle charge... but the aware
    # controller also suppresses toggles, so only sanity-check positivity.
    assert rows[-1]["switching_energy"] >= 0.0
    benchmark.extra_info["cost_increase_at_10pct"] = rows[-1]["cost_increase"]
