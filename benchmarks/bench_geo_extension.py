"""Extension bench: geo-distributed COCA vs naive dispatch.

Not a paper figure -- the geo subpackage extends the paper toward its
related work (geographical load balancing [21, 29, 32]).  Three sites with
different markets/renewables/latencies, one month, one global carbon
budget: GeoCOCA (marginal-cost dispatch + global deficit queue) against a
capacity-proportional carbon-unaware split.
"""

import numpy as np

from repro.analysis import render_table
from repro.cluster import Fleet, ServerGroup, opteron_2380
from repro.core import DataCenterModel
from repro.geo import GeoCOCA, GeoEnvironment, ProportionalGeo, Site, simulate_geo
from repro.traces import fiu_workload, price_trace, solar_trace, wind_trace

HORIZON = 24 * 30


def _site(name, price_mean, price_seed, renewable, delay):
    fleet = Fleet([ServerGroup(opteron_2380(), 60) for _ in range(4)])
    return Site(
        name=name,
        model=DataCenterModel(fleet=fleet, beta=10.0),
        onsite=renewable,
        price=price_trace(HORIZON, mean_price=price_mean, seed=price_seed),
        network_delay=delay,
    )


def test_geo_extension(benchmark, publish):
    sites = (
        _site("oregon", 22.0, 11, wind_trace(HORIZON, seed=41).scale(0.01), 0.06),
        _site("virginia", 55.0, 12, solar_trace(HORIZON, seed=42).scale(0.002), 0.0),
        _site("arizona", 38.0, 13, solar_trace(HORIZON, seed=43).scale(0.03), 0.02),
    )
    capacity = sum(s.capacity() for s in sites)
    env = GeoEnvironment(
        workload=fiu_workload(HORIZON, peak=0.5 * capacity, seed=5),
        sites=sites,
        offsite=wind_trace(HORIZON, seed=44).scale_to_total(110.0),
        recs=170.0,
    )

    def run():
        naive = simulate_geo(ProportionalGeo(env), env)
        lo, hi, v_star = 1e-4, 1e4, None
        for _ in range(7):
            mid = float(np.sqrt(lo * hi))
            rec = simulate_geo(GeoCOCA(env, v_schedule=mid, dispatch_rounds=10), env)
            if rec.is_neutral(env):
                lo, v_star = mid, mid
            else:
                hi = mid
        v_star = v_star if v_star is not None else lo
        best = simulate_geo(GeoCOCA(env, v_schedule=v_star, dispatch_rounds=10), env)
        return naive, best, v_star

    naive, geo, v_star = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        {
            "controller": rec.controller,
            "avg cost $/h": rec.average_cost,
            "brown MWh": rec.total_brown,
            "neutral": rec.is_neutral(env),
            **{
                f"{name} share": share
                for name, share in zip(rec.site_names, rec.site_share_of_load())
            },
        }
        for rec in (naive, geo)
    ]
    table = render_table(
        rows,
        title=f"Geo extension: proportional dispatch vs GeoCOCA (V*={v_star:.3g}, "
        "one month, 3 sites, global budget)",
    )
    publish("geo_extension", table)

    assert geo.is_neutral(env)
    assert geo.average_cost < naive.average_cost
    # The cheap site should carry more than its capacity share under GeoCOCA.
    assert geo.site_share_of_load()[0] > 1.05 / 3.0
    benchmark.extra_info["saving"] = 1 - geo.average_cost / naive.average_cost
