"""Monitor-tap overhead benchmark (standalone, no pytest needed).

The health monitors ride the telemetry stream: :class:`MonitoringTracer`
stamps each event, feeds the :class:`MonitorSuite`, and forwards to the
inner sink.  Their cost must stay within the documented **5% overhead
budget** relative to plain telemetry (see docs/MONITORING.md) -- the tap
is meant to be left on in every instrumented run, so it may not change
what runs are affordable.

Method: the same closed-loop COCA run (small scenario, 336 hourly slots)
is repeated ``--repeats`` times per mode after a warm-up, once with plain
in-memory telemetry ("off") and once with the full default monitor suite
tapped in ("on").  Each repetition yields one *per-slot wall time* sample
(run wall time / horizon) -- the monitors do their work inside ``emit``,
outside the solver's own ``sim.solve_time_s`` timer, so whole-slot wall
time is the only honest measure of their cost.  The p50/p95 of those
samples land in ``benchmarks/results/BENCH_monitor.json``::

    {
      "horizon": 336, "repeats": 20,
      "off": {"p50_ms": ..., "p95_ms": ...},
      "on":  {"p50_ms": ..., "p95_ms": ...},
      "overhead_pct": ..., "budget_pct": 5.0, "within_budget": true
    }

Run it directly (CI does)::

    PYTHONPATH=src python benchmarks/bench_monitor_overhead.py
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

import numpy as np

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Documented ceiling for the monitor tap, as a percent of plain-telemetry
#: per-slot time (docs/MONITORING.md "Overhead budget").
BUDGET_PCT = 5.0


def _run_once(scenario, *, monitored: bool) -> float:
    """One full COCA run; returns wall seconds.  Fresh controller and
    telemetry per call so no state leaks between repetitions."""
    from repro.core import COCA
    from repro.monitor import default_suite, monitored_telemetry
    from repro.sim import simulate
    from repro.telemetry import InMemoryTracer, Telemetry

    if monitored:
        tele, _suite = monitored_telemetry(
            default_suite(), tracer=InMemoryTracer()
        )
    else:
        tele = Telemetry(tracer=InMemoryTracer())
    controller = COCA(
        scenario.model,
        scenario.environment.portfolio,
        v_schedule=120.0,
        alpha=scenario.alpha,
    )
    started = time.perf_counter()
    simulate(scenario.model, controller, scenario.environment, telemetry=tele)
    return time.perf_counter() - started


def measure(*, horizon: int, repeats: int, warmup: int) -> dict:
    """Interleaved off/on repetitions -> per-slot p50/p95 per mode."""
    from repro.scenarios import small_scenario

    scenario = small_scenario(horizon=horizon)
    for _ in range(warmup):
        _run_once(scenario, monitored=False)
        _run_once(scenario, monitored=True)

    samples: dict[str, list[float]] = {"off": [], "on": []}
    # Interleave modes so clock drift / thermal state hits both equally,
    # and keep the pairs: machine-state drift across repetitions is larger
    # than the tap itself, so the overhead estimate is the median of the
    # *paired* on/off ratios (drift cancels within a pair), not a ratio of
    # cross-repetition medians.
    for _ in range(repeats):
        samples["off"].append(1e3 * _run_once(scenario, monitored=False) / horizon)
        samples["on"].append(1e3 * _run_once(scenario, monitored=True) / horizon)

    def _stats(values: list[float]) -> dict:
        arr = np.asarray(values)
        return {
            "p50_ms": float(np.percentile(arr, 50)),
            "p95_ms": float(np.percentile(arr, 95)),
            "mean_ms": float(arr.mean()),
        }

    off, on = _stats(samples["off"]), _stats(samples["on"])
    ratios = np.asarray(samples["on"]) / np.asarray(samples["off"])
    overhead_pct = 100.0 * (float(np.median(ratios)) - 1.0)
    return {
        "benchmark": "monitor_overhead",
        "horizon": horizon,
        "repeats": repeats,
        "warmup": warmup,
        "unit": "ms per slot (wall time / horizon)",
        "off": off,
        "on": on,
        "overhead_pct": overhead_pct,
        "budget_pct": BUDGET_PCT,
        "within_budget": overhead_pct <= BUDGET_PCT,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--horizon", type=int, default=336, help="slots per run")
    parser.add_argument("--repeats", type=int, default=20, help="timed runs per mode")
    parser.add_argument("--warmup", type=int, default=2, help="untimed runs per mode")
    parser.add_argument(
        "--output",
        "-o",
        default=str(RESULTS_DIR / "BENCH_monitor.json"),
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit 1 when the measured overhead exceeds the budget",
    )
    args = parser.parse_args(argv)

    report = measure(horizon=args.horizon, repeats=args.repeats, warmup=args.warmup)
    out = pathlib.Path(args.output)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2) + "\n")

    print(
        f"monitor tap overhead: {report['overhead_pct']:+.2f}% "
        f"(median paired ratio; off p50 {report['off']['p50_ms']:.3f} ms/slot, "
        f"on p50 {report['on']['p50_ms']:.3f} ms/slot; "
        f"budget {report['budget_pct']:g}%) -> {out}"
    )
    if args.check and not report["within_budget"]:
        print("monitor overhead exceeds budget", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
