"""Section 5.2.4 remark: renewable-portfolio insensitivity.

"With different combinations of off-site renewables and RECs (but with the
same total amount), COCA achieves almost the same cost (less than 1%
change), indicating that COCA is not sensitive to renewable energy
portfolios, but rather mainly depends on the total budget."
"""

from repro.analysis import portfolio_sweep, render_table

OFFSITE_FRACTIONS = [0.0, 0.2, 0.4, 0.6, 0.8]


def test_portfolio_mix_insensitivity(benchmark, publish, fiu_scenario, fiu_v_star):
    rows = benchmark.pedantic(
        lambda: portfolio_sweep(fiu_scenario, OFFSITE_FRACTIONS, v=fiu_v_star),
        rounds=1,
        iterations=1,
    )
    table = render_table(
        rows,
        title="Section 5.2.4: cost vs off-site/REC split of a fixed budget "
        "(reference = 0% off-site)",
    )
    publish("portfolio_mix", table)

    assert all(r["neutral"] for r in rows)
    # Paper: <1% change; allow 2% to absorb the V re-tuning granularity.
    assert all(abs(r["cost_change"]) < 0.02 for r in rows)
    benchmark.extra_info["max_abs_change"] = max(
        abs(r["cost_change"]) for r in rows
    )
