"""Paper-scale fleet throughput: sharded vs single-process GSD (standalone).

The sharded solver exists for one reason -- to push the per-slot GSD chain
past what one process can do on a paper-scale fleet -- so this suite
measures exactly that: **slots per second** (one slot = one full
``iterations``-step solve) at 200 / 2 000 / 10 000 server groups, for the
single-process batched chain and for the process-sharded chain across a
sweep of shard counts, from a *warm* worker pool (cold spawn is a one-time
cost the warm pool exists to amortize; it is reported separately).

Two internal contracts gate ``--check``:

- **Throughput**: at the largest fleet the best sharded configuration must
  be at least as fast as the single-process solver (the whole point of
  paying the IPC overhead).  Median-of-repeats damps runner noise.  On a
  host with a single usable CPU, parallel speedup is physically
  unavailable and the gate degrades to an IPC-overhead bound: sharded must
  stay within 20% of single-process (the report records which mode ran).
- **Week wall-clock**: a simulated week (168 slots, diurnally varying
  load, operational iteration count) on the largest fleet must finish
  under the documented 5-minute budget (docs/SCALING.md).

Every timed sharded solve is also differentially checked against the
single-process answer (bit-identical objective and levels) -- a scale
benchmark that quietly computed the wrong answer would be worse than a
slow one.  The deterministic ``evaluations`` counter lands in the report
for the trend ledger to gate (see ``repro bench``).

Run it directly (CI does)::

    PYTHONPATH=src python benchmarks/bench_scale.py --check
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import time

import numpy as np

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: docs/SCALING.md acceptance: a 10k-group week simulates in under 5 min.
WEEK_BUDGET_S = 300.0
WEEK_SLOTS = 168

#: Single-CPU fallback: with no second core to run workers on, the gate
#: bounds the IPC + coordination overhead instead of demanding a speedup.
SINGLE_CPU_FLOOR = 0.8


def _available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _mixed_fleet(num_groups: int, seed: int = 42):
    from repro.cluster import Fleet, ServerGroup, cubic_dvfs_profile, opteron_2380

    rng = np.random.default_rng(seed)
    profiles = (opteron_2380, cubic_dvfs_profile)
    return Fleet(
        [
            ServerGroup(profiles[g % 2](), int(rng.integers(2, 15)))
            for g in range(num_groups)
        ]
    )


def _slot_problem(model, lam_frac: float):
    lam = lam_frac * model.fleet.capacity(model.gamma)
    return model.slot_problem(
        arrival_rate=lam, onsite=0.2, price=40.0, q=5.0, V=1.0
    )


def _time_solves(solve, repeats: int) -> float:
    """Median wall seconds over ``repeats`` solves (first call not timed
    here; the caller warms the pool/caches beforehand)."""
    samples = []
    for _ in range(repeats):
        started = time.perf_counter()
        solve()
        samples.append(time.perf_counter() - started)
    return float(np.median(samples))


def measure_fleet(
    num_groups: int, *, shard_counts: list[int], iterations: int, repeats: int
) -> dict:
    """Single vs sharded slots/sec on one fleet size, warm-pool timings."""
    from repro.core import DataCenterModel
    from repro.solvers import GSDSolver, ShardedGSDSolver

    model = DataCenterModel(fleet=_mixed_fleet(num_groups), beta=10.0)
    problem = _slot_problem(model, 0.5)

    def single_solve():
        return GSDSolver(
            iterations=iterations, rng=np.random.default_rng(0), batched=True
        ).solve(problem)

    reference = single_solve()  # warm the process (imports, allocator)
    single_s = _time_solves(single_solve, repeats)

    sharded: dict[str, dict] = {}
    for shards in shard_counts:
        with ShardedGSDSolver(
            shards=shards, iterations=iterations, rng=np.random.default_rng(0)
        ) as solver:
            spawn_started = time.perf_counter()
            sol = solver.solve(problem)  # cold: spawns + ships the problem
            cold_s = time.perf_counter() - spawn_started
            if (
                sol.info["final_objective"] != reference.info["final_objective"]
                or not np.array_equal(sol.action.levels, reference.action.levels)
            ):
                raise AssertionError(
                    f"sharded (S={shards}) diverged from single-process at "
                    f"{num_groups} groups -- determinism contract broken"
                )
            warm_s = _time_solves(lambda: solver.solve(problem), repeats)
        sharded[f"s{shards}"] = {
            "shards": shards,
            "cold_first_solve_s": cold_s,
            "solve_s": warm_s,
            "slots_per_s": 1.0 / warm_s,
        }

    best = max(sharded.values(), key=lambda row: row["slots_per_s"])
    return {
        "groups": num_groups,
        "evaluations": reference.info["evaluations"],
        "single": {"solve_s": single_s, "slots_per_s": 1.0 / single_s},
        "sharded": sharded,
        "best_sharded": {
            "shards": best["shards"],
            "slots_per_s": best["slots_per_s"],
            "speedup_vs_single": best["slots_per_s"] * single_s,
        },
    }


def measure_week(
    num_groups: int, *, shards: int, iterations: int, slots: int
) -> dict:
    """Wall-clock for a simulated week: ``slots`` sequential solves with a
    diurnal load profile, one warm solver instance (the serving shape)."""
    from repro.core import DataCenterModel
    from repro.solvers import ShardedGSDSolver

    model = DataCenterModel(fleet=_mixed_fleet(num_groups), beta=10.0)
    hours = np.arange(slots)
    lam_fracs = 0.5 + 0.2 * np.sin(2.0 * np.pi * hours / 24.0)

    with ShardedGSDSolver(
        shards=shards, iterations=iterations, rng=np.random.default_rng(0)
    ) as solver:
        solver.solve(_slot_problem(model, 0.5))  # warm the pool
        started = time.perf_counter()
        for frac in lam_fracs:
            solver.solve(_slot_problem(model, float(frac)))
        wall = time.perf_counter() - started

    return {
        "groups": num_groups,
        "slots": slots,
        "shards": shards,
        "iterations": iterations,
        "wall_s": wall,
        "slots_per_s": slots / wall,
        "budget_s": WEEK_BUDGET_S,
        "under_budget": wall <= WEEK_BUDGET_S,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--groups", default="200,2000,10000",
        help="comma-separated fleet sizes (largest one carries the gates)",
    )
    parser.add_argument(
        "--shards", default="2,4,8", help="comma-separated shard counts"
    )
    parser.add_argument(
        "--iterations", type=int, default=30, help="GSD iterations per timed slot"
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="timed solves per configuration"
    )
    parser.add_argument(
        "--week-slots", type=int, default=WEEK_SLOTS,
        help="slots in the simulated week",
    )
    parser.add_argument(
        "--week-iterations", type=int, default=8,
        help="GSD iterations per week slot (the operational chaos-run depth)",
    )
    parser.add_argument(
        "--skip-week", action="store_true",
        help="skip the week-wall-clock measurement (and its gate)",
    )
    parser.add_argument(
        "--output", "-o", default=str(RESULTS_DIR / "BENCH_scale.json"),
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit 1 when a throughput or week-budget gate fails",
    )
    args = parser.parse_args(argv)

    group_counts = [int(g) for g in args.groups.split(",") if g]
    shard_counts = [int(s) for s in args.shards.split(",") if s]

    fleets = {}
    for num_groups in group_counts:
        row = measure_fleet(
            num_groups,
            shard_counts=[s for s in shard_counts if s <= num_groups],
            iterations=args.iterations,
            repeats=args.repeats,
        )
        fleets[f"g{num_groups}"] = row
        print(
            f"{num_groups:>6} groups: single {row['single']['slots_per_s']:.2f} "
            f"slots/s; best sharded (S={row['best_sharded']['shards']}) "
            f"{row['best_sharded']['slots_per_s']:.2f} slots/s "
            f"({row['best_sharded']['speedup_vs_single']:.2f}x)"
        )

    largest = fleets[f"g{max(group_counts)}"]
    cpus = _available_cpus()
    required_ratio = 1.0 if cpus >= 2 else SINGLE_CPU_FLOOR
    ratio = (
        largest["best_sharded"]["slots_per_s"]
        / largest["single"]["slots_per_s"]
    )
    gate = {
        "groups": max(group_counts),
        "single_slots_per_s": largest["single"]["slots_per_s"],
        "best_sharded_slots_per_s": largest["best_sharded"]["slots_per_s"],
        "cpus": cpus,
        "mode": "speedup" if cpus >= 2 else "overhead-bound (single CPU)",
        "required_ratio": required_ratio,
        "ratio": ratio,
        "sharded_at_least_single": ratio >= required_ratio,
    }

    report = {
        "benchmark": "scale",
        "iterations": args.iterations,
        "repeats": args.repeats,
        "shard_counts": shard_counts,
        "unit": "slots per second (one slot = one full GSD solve)",
        "fleets": fleets,
        "gate": gate,
    }

    failures = []
    if not gate["sharded_at_least_single"]:
        failures.append(
            f"throughput gate ({gate['mode']}): best sharded "
            f"{gate['best_sharded_slots_per_s']:.2f} slots/s is "
            f"{gate['ratio']:.2f}x single-process "
            f"{gate['single_slots_per_s']:.2f} slots/s at {gate['groups']} "
            f"groups (required >= {gate['required_ratio']:.2f}x)"
        )

    if not args.skip_week:
        week = measure_week(
            max(group_counts),
            shards=largest["best_sharded"]["shards"],
            iterations=args.week_iterations,
            slots=args.week_slots,
        )
        report["week"] = week
        print(
            f"week: {week['slots']} slots x {week['groups']} groups "
            f"(S={week['shards']}, {week['iterations']} iters) in "
            f"{week['wall_s']:.1f}s (budget {week['budget_s']:.0f}s)"
        )
        if not week["under_budget"]:
            failures.append(
                f"week gate: {week['wall_s']:.1f}s exceeds the "
                f"{week['budget_s']:.0f}s budget"
            )

    out = pathlib.Path(args.output)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"-> {out}")

    if args.check and failures:
        for line in failures:
            print(line, file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
