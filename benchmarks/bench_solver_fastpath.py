"""Solver fast-path benchmark (standalone, no pytest needed).

Measures what the per-solve evaluation cache, the warm-started inner
solves, and the batched ``(K, G)`` water-filling engine buy on the two hot
configurations the harness leans on:

- ``gsd_200g_500it``: the paper's Fig. 4 timing claim -- a 500-iteration
  GSD chain over the 200-group paper fleet (slot 1500, no queue);
- ``cd_hetero``: coordinate descent on a 20-group heterogeneous fleet
  (the engine every mixed-profile experiment uses).

Each case runs in five modes -- ``nofast`` (cache off), ``cache``,
``cache_warm``, ``cache_batched`` and ``cache_warm_batched`` -- with fixed
seeds, so the fast-path counters (``cold_solves``, ``warm_solves``,
``cache_hits``, the speculation block statistics, ...) are exactly
reproducible; only the wall times vary run to run.  The script verifies
the fast path's correctness contracts on every invocation:

- ``cache`` and ``cache_batched`` objectives are **bit-identical** to
  ``nofast`` (the batched engine's cold rows match the scalar oracle bit
  for bit);
- ``cache_warm`` and ``cache_warm_batched`` objectives match within the
  documented 1e-9 relative error;
- GSD reaches the bar of >= 3x fewer cold inner solves.

``--check REF`` adds the CI gates: the >20% regression tolerance on the
deterministic ``inner_solves`` counters against the committed reference,
plus the **hard wall-time floor** -- the in-run ratio
``nofast.wall / cache_warm.wall`` on the GSD case must reach
``GSD_WALL_SPEEDUP_FLOOR`` (3x).  The ratio compares two solves of the
same run on the same machine, so it is machine-independent and safe to
gate on even on shared runners (unlike absolute wall times).

The report lands in ``benchmarks/results/BENCH_solver_fastpath.json`` and
one flattened row per run is appended to the trend ledger by
``repro bench`` (see ``repro.profile.ledger``).  ``--quick`` only reduces
the wall-time repetitions (counters are configuration-determined, so
quick and full runs agree on them).

Run it directly (CI does)::

    PYTHONPATH=src python benchmarks/bench_solver_fastpath.py --quick \
        --check benchmarks/results/BENCH_solver_fastpath.json
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

import numpy as np

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: ``--check`` fails when a mode's deterministic ``inner_solves`` count
#: grew by more than this fraction over the committed reference.
REGRESSION_TOLERANCE = 0.20

#: Acceptance bar: cache + warm starts must cut GSD's cold inner solves by
#: at least this factor on the 200-group/500-iter case.
GSD_COLD_SPEEDUP_FLOOR = 3.0

#: Hard wall-time floor under ``--check``: the in-run speedup of the GSD
#: case's ``cache_warm`` mode over ``nofast``.  Both sides of the ratio
#: come from the same process on the same machine, so the gate does not
#: depend on runner hardware.
GSD_WALL_SPEEDUP_FLOOR = 3.0

MODES = ("nofast", "cache", "cache_warm", "cache_batched", "cache_warm_batched")

#: Modes whose objective must be bit-identical to ``nofast`` (cold paths).
COLD_MODES = ("cache", "cache_batched")
#: Modes bound by the 1e-9 relative warm-start contract.
WARM_MODES = ("cache_warm", "cache_warm_batched")


def _mode_kwargs(mode: str) -> dict:
    return {
        "use_cache": mode != "nofast",
        "warm_start": "warm" in mode,
        "batched": mode.endswith("batched"),
    }


def _gsd_case():
    from repro.scenarios import paper_scenario
    from repro.solvers import GSDSolver

    sc = paper_scenario()
    obs = sc.environment.observation(1500)
    problem = sc.model.slot_problem(
        arrival_rate=obs.arrival_rate, onsite=obs.onsite, price=obs.price, q=0.0
    )

    def solve(mode: str):
        return GSDSolver(
            iterations=500,
            rng=np.random.default_rng(0),
            **_mode_kwargs(mode),
        ).solve(problem)

    return "gsd_200g_500it", solve


def _cd_case():
    from repro.cluster import Fleet, ServerGroup, cubic_dvfs_profile, opteron_2380
    from repro.core import DataCenterModel
    from repro.solvers import CoordinateDescentSolver

    groups = [ServerGroup(opteron_2380(), 60) for _ in range(12)] + [
        ServerGroup(cubic_dvfs_profile(), 40) for _ in range(8)
    ]
    model = DataCenterModel(fleet=Fleet(groups), beta=10.0)
    problem = model.slot_problem(
        arrival_rate=0.55 * model.fleet.capacity(model.gamma),
        onsite=0.2,
        price=40.0,
        q=5.0,
    )

    def solve(mode: str):
        return CoordinateDescentSolver(
            restarts=4,
            rng=np.random.default_rng(0),
            **_mode_kwargs(mode),
        ).solve(problem)

    return "cd_hetero", solve


def _run_case(solve, *, repeats: int) -> dict:
    out: dict[str, dict] = {}
    for mode in MODES:
        best = np.inf
        sol = None
        for _ in range(repeats):
            started = time.perf_counter()
            sol = solve(mode)
            best = min(best, time.perf_counter() - started)
        stats = sol.info.get("fastpath")
        if stats is None:  # nofast GSD reports plain counters; CD reports none
            stats = {"cold_solves": sol.info.get("inner_solves")}
        spec = sol.info.get("speculation") or {}
        out[mode] = {
            "objective": sol.objective,
            "wall_s_min": best,
            **{k: v for k, v in stats.items() if v is not None},
            **{k: v for k, v in spec.items() if v is not None},
        }
    return out


def _verify_contracts(name: str, case: dict) -> list[str]:
    """The fast path's correctness guarantees, re-checked on every run."""
    errors = []
    cold_obj = case["nofast"]["objective"]
    for mode in COLD_MODES:
        if case[mode]["objective"] != cold_obj:
            errors.append(f"{name}: {mode} objective not bit-identical to nofast")
    for mode in WARM_MODES:
        warm_obj = case[mode]["objective"]
        if abs(warm_obj - cold_obj) > 1e-9 * max(abs(cold_obj), 1.0):
            errors.append(f"{name}: {mode} objective outside the 1e-9 contract")
    return errors


def measure(*, repeats: int) -> dict:
    cases = {}
    errors: list[str] = []
    for name, solve in (_gsd_case(), _cd_case()):
        case = _run_case(solve, repeats=repeats)
        nofast_cold = case["nofast"].get("cold_solves")
        warm_cold = case["cache_warm"].get("cold_solves")
        if nofast_cold and warm_cold:
            case["cold_solve_speedup"] = nofast_cold / warm_cold
        nofast_wall = case["nofast"]["wall_s_min"]
        case["wall_speedup_warm"] = nofast_wall / case["cache_warm"]["wall_s_min"]
        case["wall_speedup_batched"] = (
            nofast_wall / case["cache_batched"]["wall_s_min"]
        )
        cases[name] = case
        errors += _verify_contracts(name, case)

    speedup = cases["gsd_200g_500it"].get("cold_solve_speedup", 0.0)
    if speedup < GSD_COLD_SPEEDUP_FLOOR:
        errors.append(
            f"gsd_200g_500it: cold-solve speedup {speedup:.2f}x below the "
            f"{GSD_COLD_SPEEDUP_FLOOR:g}x floor"
        )
    return {
        "benchmark": "solver_fastpath",
        "repeats": repeats,
        "modes": list(MODES),
        "gsd_cold_speedup_floor": GSD_COLD_SPEEDUP_FLOOR,
        "gsd_wall_speedup_floor": GSD_WALL_SPEEDUP_FLOOR,
        "regression_tolerance": REGRESSION_TOLERANCE,
        "cases": cases,
        "contract_errors": errors,
    }


def check_against(report: dict, reference_path: pathlib.Path) -> list[str]:
    """The CI gates: counter regressions vs the committed reference, plus
    the hard in-run wall-time floor on the GSD case."""
    reference = json.loads(reference_path.read_text())
    failures = []
    for name, ref_case in reference.get("cases", {}).items():
        case = report["cases"].get(name)
        if case is None:
            failures.append(f"{name}: missing from this run")
            continue
        for mode in MODES:
            ref_n = ref_case.get(mode, {}).get("inner_solves")
            if ref_n is None:
                continue
            cur_n = case.get(mode, {}).get("inner_solves")
            if cur_n is None or cur_n > ref_n * (1.0 + REGRESSION_TOLERANCE):
                failures.append(
                    f"{name}/{mode}: inner_solves {cur_n} vs reference "
                    f"{ref_n} (tolerance {REGRESSION_TOLERANCE:.0%})"
                )
    wall_speedup = report["cases"]["gsd_200g_500it"]["wall_speedup_warm"]
    if wall_speedup < GSD_WALL_SPEEDUP_FLOOR:
        failures.append(
            f"gsd_200g_500it: in-run wall speedup (nofast/cache_warm) "
            f"{wall_speedup:.2f}x below the hard {GSD_WALL_SPEEDUP_FLOOR:g}x floor"
        )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="two wall-time repetitions per mode (counters are unaffected)",
    )
    parser.add_argument("--repeats", type=int, default=None, help="timed runs per mode")
    parser.add_argument(
        "--output",
        "-o",
        default=str(RESULTS_DIR / "BENCH_solver_fastpath.json"),
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--check",
        metavar="REF",
        default=None,
        help="reference JSON; exit 1 on >20%% inner-solve regression or a "
        "GSD wall speedup below the hard floor",
    )
    args = parser.parse_args(argv)
    repeats = args.repeats if args.repeats is not None else (2 if args.quick else 3)

    report = measure(repeats=repeats)
    out = pathlib.Path(args.output)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2) + "\n")

    for name, case in report["cases"].items():
        line = ", ".join(
            f"{mode}: {case[mode].get('inner_solves', case[mode].get('cold_solves'))}"
            f" solves / {1e3 * case[mode]['wall_s_min']:.0f} ms"
            for mode in MODES
        )
        print(
            f"{name}: {line} (warm wall speedup "
            f"{case['wall_speedup_warm']:.1f}x, batched "
            f"{case['wall_speedup_batched']:.1f}x)"
        )
    print(f"report -> {out}")

    failed = list(report["contract_errors"])
    if args.check:
        failed += check_against(report, pathlib.Path(args.check))
    for message in failed:
        print(f"bench_solver_fastpath: FAIL {message}", file=sys.stderr)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
