"""Span-instrumentation overhead benchmark (standalone, no pytest needed).

PR 7 threaded hierarchical spans through the hot control loop: every slot
opens a ``slot`` span, every solve opens a solver span, and the solver's
hot loop accumulates per-bucket child times.  The contract is the same one
the monitor tap lives under: spans ride the always-on observability path,
so their cost must stay within the documented **5% overhead budget**
relative to span-free telemetry (docs/OBSERVABILITY.md "Overhead budget").

Method -- direct, not differential.  The span cost per slot is a small
constant (two span opens/closes + events, a handful of bucket updates, one
span-aware timer), tens of microseconds against slots that take hundreds.
Subtracting two noisy ~100 ms closed-loop wall times to recover a ~10 us
constant is numerically hopeless on shared machines: run-to-run drift of
+-5% dwarfs the signal and the verdict flips with the scheduler.  Instead:

1. **Numerator.**  A tight loop replays the exact per-slot span sequence
   (``slot`` span with a field -> solver span -> three bucket ``add``s with
   their guarded clock reads -> span-aware timer) against a live in-memory
   tracer, and the same loop again under ``Telemetry(..., spans=False)``
   (null span, plain timer -- the code path span-free runs take).  Each is
   timed over thousands of iterations, minimum across repeats; the
   difference is the marginal span cost per slot, resolved to ~0.1 us.
2. **Denominator.**  The real closed-loop COCA run (small scenario,
   ``spans=False``), minimum per-slot wall time across repeats.
3. ``overhead_pct = 100 * span_cost_us / slot_us``, gated at 5%.

GC is collected then disabled around timed sections (the ``timeit``
convention); a paired closed-loop on/off differential is still reported as
an advisory sanity check, but the gate rides the direct measurement.
Report lands in ``benchmarks/results/BENCH_span_overhead.json``.

Run it directly (CI does)::

    PYTHONPATH=src python benchmarks/bench_span_overhead.py
"""

from __future__ import annotations

import argparse
import gc
import json
import pathlib
import sys
import time

import numpy as np

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Documented ceiling for span instrumentation, as a percent of span-free
#: per-slot time (docs/OBSERVABILITY.md "Overhead budget").
BUDGET_PCT = 5.0

#: Iterations per timed kit batch; ~20k keeps one batch around 20 ms so the
#: minimum over repeats lands between scheduler hiccups.
KIT_BATCH = 20_000


def _kit_batch_seconds(tele, iterations: int) -> float:
    """Time ``iterations`` replays of the per-slot span sequence.

    Mirrors one simulated slot's instrumentation exactly: the engine's
    ``slot`` span (with a field), the solver's ``enum.solve`` span with its
    three guarded bucket adds, and the ``sim.solve_time_s`` scoped timer.
    Under ``spans=False`` the same calls resolve to the null span and the
    plain timer -- the code path a span-free run takes -- so the on/off
    difference is the marginal span cost.
    """
    perf = time.perf_counter
    started = perf()
    for i in range(iterations):
        with tele.span("slot", t=float(i)):
            sp = tele.span("enum.solve")
            with sp:
                if sp:
                    t0 = perf()
                    sp.add("enum.candidates", perf() - t0)
                    t0 = perf()
                    sp.add("enum.cost_model", perf() - t0)
                    t0 = perf()
                    sp.add("enum.finalize", perf() - t0)
            with tele.timer("sim.solve_time_s"):
                pass
    return perf() - started


def _measure_kit(*, repeats: int) -> dict:
    """Minimum per-slot cost of the span kit, on vs off, in microseconds."""
    from repro.telemetry import InMemoryTracer, Telemetry

    minima = {}
    for mode, spans in (("off", False), ("on", True)):
        best = np.inf
        for _ in range(repeats):
            tele = Telemetry(tracer=InMemoryTracer(), spans=spans)
            _kit_batch_seconds(tele, 200)  # warm caches, trigger dict sizing
            tele.tracer.events.clear()
            best = min(best, _kit_batch_seconds(tele, KIT_BATCH))
        minima[mode] = 1e6 * best / KIT_BATCH
    return {
        "kit_off_us": minima["off"],
        "kit_on_us": minima["on"],
        "span_cost_us": max(minima["on"] - minima["off"], 0.0),
    }


def _run_once(scenario, *, spans: bool) -> float:
    """One full COCA run; returns wall seconds.  Fresh controller and
    telemetry per call so no state leaks between repetitions."""
    from repro.core import COCA
    from repro.sim import simulate
    from repro.telemetry import InMemoryTracer, Telemetry

    tele = Telemetry(tracer=InMemoryTracer(), spans=spans)
    controller = COCA(
        scenario.model,
        scenario.environment.portfolio,
        v_schedule=120.0,
        alpha=scenario.alpha,
    )
    started = time.perf_counter()
    simulate(scenario.model, controller, scenario.environment, telemetry=tele)
    return time.perf_counter() - started


def measure(*, horizon: int, repeats: int, warmup: int) -> dict:
    """Direct span-cost measurement plus an advisory closed-loop check."""
    from repro.scenarios import small_scenario

    scenario = small_scenario(horizon=horizon)
    for _ in range(warmup):
        _run_once(scenario, spans=False)
        _run_once(scenario, spans=True)

    gc.collect()
    gc.disable()
    try:
        kit = _measure_kit(repeats=max(repeats, 5))

        # Denominator: per-slot wall time of the span-free closed loop.
        # Advisory differential: interleaved pairs in both orders, median
        # ratio -- noisy on shared machines (hence advisory), but a gross
        # regression (say, an event per hot-loop iteration) still shows.
        samples: dict[str, list[float]] = {"off": [], "on": []}
        ratios: list[float] = []
        for i in range(repeats):
            if i % 2 == 0:
                off = _run_once(scenario, spans=False)
                on = _run_once(scenario, spans=True)
            else:
                on = _run_once(scenario, spans=True)
                off = _run_once(scenario, spans=False)
            samples["off"].append(1e3 * off / horizon)
            samples["on"].append(1e3 * on / horizon)
            ratios.append(on / off)
    finally:
        gc.enable()

    def _stats(values: list[float]) -> dict:
        arr = np.asarray(values)
        return {
            "min_ms": float(arr.min()),
            "p50_ms": float(np.percentile(arr, 50)),
            "p95_ms": float(np.percentile(arr, 95)),
            "mean_ms": float(arr.mean()),
        }

    off, on = _stats(samples["off"]), _stats(samples["on"])
    slot_us = 1e3 * off["min_ms"]
    overhead_pct = 100.0 * kit["span_cost_us"] / slot_us if slot_us > 0 else 0.0
    return {
        "benchmark": "span_overhead",
        "horizon": horizon,
        "repeats": repeats,
        "warmup": warmup,
        "method": "direct: tight-loop span-kit cost / span-free per-slot time",
        "kit": kit,
        "slot_us": slot_us,
        "off": off,
        "on": on,
        "overhead_pct": overhead_pct,
        "advisory_paired_pct": 100.0 * (float(np.median(np.asarray(ratios))) - 1.0),
        "budget_pct": BUDGET_PCT,
        "within_budget": overhead_pct <= BUDGET_PCT,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--horizon", type=int, default=336, help="slots per run")
    parser.add_argument("--repeats", type=int, default=10, help="timed runs per mode")
    parser.add_argument("--warmup", type=int, default=2, help="untimed runs per mode")
    parser.add_argument(
        "--output",
        "-o",
        default=str(RESULTS_DIR / "BENCH_span_overhead.json"),
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit 1 when the measured overhead exceeds the budget",
    )
    args = parser.parse_args(argv)

    report = measure(horizon=args.horizon, repeats=args.repeats, warmup=args.warmup)
    out = pathlib.Path(args.output)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2) + "\n")

    print(
        f"span instrumentation overhead: {report['overhead_pct']:+.2f}% "
        f"(span kit {report['kit']['span_cost_us']:.2f} us/slot over "
        f"{report['slot_us']:.1f} us span-free slots; advisory paired "
        f"{report['advisory_paired_pct']:+.2f}%; "
        f"budget {report['budget_pct']:g}%) -> {out}"
    )
    if args.check and not report["within_budget"]:
        print("span overhead exceeds budget", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
