"""Theorem 2: the analytical guarantees, validated numerically.

For monthly frames (R = 12, T = 730) over the paper-scale year:

* part (b): COCA's measured average cost must not exceed
  ``mean(G_r^*) + C(T)/R * sum(1/V_r)``;
* part (a): measured average brown energy must not exceed the budget rate
  plus the fudge factor ``sum_r sqrt(C(T) + V_r (G_r^* - g_min)) / (R sqrt(T))``;
* the O(1/V) behaviour: the *measured* gap between COCA and the lookahead
  benchmark shrinks as V grows.
"""

import numpy as np

from repro.analysis import render_table, run_coca
from repro.baselines import lookahead_optima
from repro.core.bounds import cost_bound, deficit_bound, lyapunov_constants

T = 730  # monthly frames: 12 x 730 = 8760
V_VALUES = [30.0, 120.0, 480.0]


def test_theorem2_bounds(benchmark, publish, fiu_scenario):
    sc = fiu_scenario

    def run():
        frames = lookahead_optima(sc.model, sc.environment, T=T, alpha=sc.alpha)
        g_star = np.array([f.average_cost for f in frames])
        consts = lyapunov_constants(sc.model, sc.environment.portfolio, alpha=sc.alpha)
        out = []
        for v in V_VALUES:
            from repro.core import COCA
            from repro.sim import simulate

            controller = COCA(
                sc.model,
                sc.environment.portfolio,
                v_schedule=float(v),
                frame_length=T,
                alpha=sc.alpha,
            )
            record = simulate(sc.model, controller, sc.environment)
            vs = np.full(len(frames), float(v))
            out.append(
                {
                    "V": float(v),
                    "measured avg cost": record.average_cost,
                    "lookahead mean G*": float(g_star.mean()),
                    "cost bound (Thm 2b)": cost_bound(consts, g_star, vs, T=T),
                    "measured avg brown": float(record.brown_energy.mean()),
                    "deficit bound (Thm 2a)": deficit_bound(
                        consts, sc.environment.portfolio, g_star, vs, T=T, alpha=sc.alpha
                    ),
                }
            )
        return out, g_star

    rows, g_star = benchmark.pedantic(run, rounds=1, iterations=1)
    table = render_table(
        rows,
        title=f"Theorem 2 validation: monthly frames (T={T}, R={8760 // T}), "
        "measured COCA vs analytical bounds",
    )
    publish("theorem2_bounds", table)

    for row in rows:
        assert row["measured avg cost"] <= row["cost bound (Thm 2b)"] + 1e-6
        assert row["measured avg brown"] <= row["deficit bound (Thm 2a)"] + 1e-9
    # O(1/V): the measured cost gap over the lookahead optimum shrinks in V.
    gaps = [r["measured avg cost"] - r["lookahead mean G*"] for r in rows]
    assert gaps[-1] <= gaps[0] + 1e-9
    benchmark.extra_info["gaps"] = gaps
