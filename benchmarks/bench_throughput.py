"""Engine-room benchmarks: simulation and sweep throughput.

Not a paper figure -- these time the building blocks the experiment harness
leans on, so regressions in the hot paths (the vectorized whole-year sweep,
the per-slot enumeration engine, a full COCA policy-year) are visible.
"""

import numpy as np

from repro.core import COCA
from repro.sim import simulate
from repro.solvers import HomogeneousEnumerationSolver
from repro.solvers.batch import batch_enumerate


def test_batch_year_sweep(benchmark, fiu_scenario):
    """One vectorized year (8760 slots x 201 x 4 candidates) at fixed q."""
    sc = fiu_scenario
    env = sc.environment

    result = benchmark(
        lambda: batch_enumerate(
            sc.model,
            env.actual_workload.values,
            env.portfolio.onsite.values,
            env.price.values,
            q=100.0,
        )
    )
    assert np.isfinite(result.total_brown)


def test_single_slot_enumeration(benchmark, fiu_scenario):
    """The per-slot engine COCA calls 8760 times per policy-year."""
    sc = fiu_scenario
    obs = sc.environment.observation(1500)
    problem = sc.model.slot_problem(
        arrival_rate=obs.arrival_rate, onsite=obs.onsite, price=obs.price, q=50.0
    )
    solver = HomogeneousEnumerationSolver()
    sol = benchmark(lambda: solver.solve(problem))
    assert np.isfinite(sol.objective)


def test_coca_policy_year(benchmark, fiu_scenario):
    """A full closed-loop COCA year (decide + realize + queue update)."""
    sc = fiu_scenario

    def run():
        controller = COCA(
            sc.model, sc.environment.portfolio, v_schedule=100.0, alpha=sc.alpha
        )
        return simulate(sc.model, controller, sc.environment)

    record = benchmark.pedantic(run, rounds=2, iterations=1)
    assert record.horizon == 8760


def _gsd_slot_problem(sc):
    """Paper-scale GSD snapshot (slot 1500, no queue), as in Fig. 4."""
    obs = sc.environment.observation(1500)
    return sc.model.slot_problem(
        arrival_rate=obs.arrival_rate, onsite=obs.onsite, price=obs.price, q=0.0
    )


def test_gsd_200groups_500iters(benchmark, fiu_scenario):
    """The paper's timing claim: a 500-iteration GSD chain on 200 groups.

    Runs with the full fast path (evaluation cache + warm-started inner
    solves); the counters land in ``extra_info`` so the speedup over the
    394 cold solves of the slow path stays visible in the benchmark JSON.
    """
    from repro.solvers import GSDSolver

    problem = _gsd_slot_problem(fiu_scenario)

    def run():
        solver = GSDSolver(
            iterations=500, rng=np.random.default_rng(0), warm_start=True
        )
        return solver.solve(problem)

    sol = benchmark(run)
    assert np.isfinite(sol.objective)
    benchmark.extra_info.update(sol.info["fastpath"])


def _cd_hetero_problem():
    from repro.cluster import Fleet, ServerGroup, cubic_dvfs_profile, opteron_2380
    from repro.core import DataCenterModel

    groups = [ServerGroup(opteron_2380(), 60) for _ in range(12)] + [
        ServerGroup(cubic_dvfs_profile(), 40) for _ in range(8)
    ]
    model = DataCenterModel(fleet=Fleet(groups), beta=10.0)
    return model.slot_problem(
        arrival_rate=0.55 * model.fleet.capacity(model.gamma),
        onsite=0.2,
        price=40.0,
        q=5.0,
    )


def test_coordinate_descent_hetero(benchmark):
    """Coordinate descent on a heterogeneous fleet (no enumeration engine
    applies), cache + warm starts on, scalar inner solves -- the baseline
    for the batched variant below."""
    from repro.solvers import CoordinateDescentSolver

    problem = _cd_hetero_problem()

    def run():
        solver = CoordinateDescentSolver(
            restarts=4, rng=np.random.default_rng(0), warm_start=True, batched=False
        )
        return solver.solve(problem)

    sol = benchmark(run)
    assert np.isfinite(sol.objective)
    benchmark.extra_info.update(sol.info["fastpath"])


def test_coordinate_descent_hetero_batched(benchmark):
    """The same sweep through the batched ``(K, G)`` water-filling engine:
    each coordinate's whole candidate ladder solves as one lockstep
    bisection (bit-identical rows), which is where the batched engine's
    wall-time win lands (~5x vs nofast on this case)."""
    from repro.solvers import CoordinateDescentSolver

    problem = _cd_hetero_problem()

    def run():
        solver = CoordinateDescentSolver(
            restarts=4, rng=np.random.default_rng(0), warm_start=True, batched=True
        )
        return solver.solve(problem)

    sol = benchmark(run)
    assert np.isfinite(sol.objective)
    benchmark.extra_info.update(sol.info["fastpath"])
