"""Engine-room benchmarks: simulation and sweep throughput.

Not a paper figure -- these time the building blocks the experiment harness
leans on, so regressions in the hot paths (the vectorized whole-year sweep,
the per-slot enumeration engine, a full COCA policy-year) are visible.
"""

import numpy as np

from repro.core import COCA
from repro.sim import simulate
from repro.solvers import HomogeneousEnumerationSolver
from repro.solvers.batch import batch_enumerate


def test_batch_year_sweep(benchmark, fiu_scenario):
    """One vectorized year (8760 slots x 201 x 4 candidates) at fixed q."""
    sc = fiu_scenario
    env = sc.environment

    result = benchmark(
        lambda: batch_enumerate(
            sc.model,
            env.actual_workload.values,
            env.portfolio.onsite.values,
            env.price.values,
            q=100.0,
        )
    )
    assert np.isfinite(result.total_brown)


def test_single_slot_enumeration(benchmark, fiu_scenario):
    """The per-slot engine COCA calls 8760 times per policy-year."""
    sc = fiu_scenario
    obs = sc.environment.observation(1500)
    problem = sc.model.slot_problem(
        arrival_rate=obs.arrival_rate, onsite=obs.onsite, price=obs.price, q=50.0
    )
    solver = HomogeneousEnumerationSolver()
    sol = benchmark(lambda: solver.solve(problem))
    assert np.isfinite(sol.objective)


def test_coca_policy_year(benchmark, fiu_scenario):
    """A full closed-loop COCA year (decide + realize + queue update)."""
    sc = fiu_scenario

    def run():
        controller = COCA(
            sc.model, sc.environment.portfolio, v_schedule=100.0, alpha=sc.alpha
        )
        return simulate(sc.model, controller, sc.environment)

    record = benchmark.pedantic(run, rounds=2, iterations=1)
    assert record.horizon == 8760
