"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's figures as a text table:
the rows are printed (visible with ``pytest benchmarks/ -s``), written to
``benchmarks/results/<name>.txt``, and the headline numbers are attached to
pytest-benchmark's ``extra_info`` so they land in the benchmark JSON.

The scenarios here are the *paper-scale* configuration -- 216 K servers in
200 groups, one full year (8760 hourly slots) -- which the vectorized
engines run in seconds per policy-year.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.analysis import find_neutral_v
from repro.scenarios import paper_scenario

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def fiu_scenario():
    """The paper's default setup: FIU workload, one year, 92% budget."""
    return paper_scenario()


@pytest.fixture(scope="session")
def msr_scenario():
    """The Fig. 5(b) variant: MSR workload."""
    return paper_scenario(workload="msr")


@pytest.fixture(scope="session")
def fiu_v_star(fiu_scenario) -> float:
    """Cheapest neutral V for the FIU scenario (shared across benches)."""
    return find_neutral_v(fiu_scenario, iters=9)


@pytest.fixture(scope="session")
def publish(results_dir: pathlib.Path):
    """Print a figure's table and persist it under benchmarks/results/."""

    def _publish(name: str, text: str) -> None:
        print(f"\n{text}\n")
        (results_dir / f"{name}.txt").write_text(text + "\n")

    return _publish
