#!/usr/bin/env python
"""Co-scheduling delay-tolerant batch jobs with COCA (section 2.3).

The paper isolates batch workloads behind "a separate batch job queue";
this example runs :class:`BatchAwareCOCA`, which extends Algorithm 1 with a
second Lyapunov queue for batch backlog.  Watch for the headline behaviour
of green batch scheduling, here obtained *without any prediction*:

* batch work drains preferentially when the *carbon-inclusive* marginal
  price (V w(t) + q(t)) is low -- note the per-slot marginal cost of batch
  work only varies ~10% in this scenario, so the advantage is a few
  percent, not a dramatic shift;
* the backlog is bounded (freshness floor) and fully conserved;
* carbon neutrality still holds for the combined workload.

Run:  python examples/batch_scheduling.py
"""

import numpy as np

from repro import BatchAwareCOCA, COCA, simulate, small_scenario
from repro.analysis import render_table
from repro.traces import Trace

scenario = small_scenario(horizon=24 * 14)
env = scenario.environment
rng = np.random.default_rng(42)

# Batch arrivals: ~15% of the interactive volume, arriving in bursts.
interactive_mean = env.actual_workload.mean
batch = Trace(
    rng.uniform(0.0, 0.3, scenario.horizon) * interactive_mean,
    name="batch-arrivals",
    unit="req/s",
)
print(f"interactive mean: {interactive_mean:,.0f} req/s; "
      f"batch mean: {batch.mean:,.0f} req/s "
      f"({100 * batch.mean / interactive_mean:.0f}% extra work)")

# The batch work adds ~10% energy on top of the interactive calibration,
# so widen the budget accordingly before asking for neutrality.
scenario = scenario.with_budget_fraction(1.0)
env = scenario.environment

def run(v):
    ctrl = BatchAwareCOCA(
        scenario.model,
        env.portfolio,
        batch,
        v_schedule=v,
        eta=8.0,
        max_age_slots=96,
    )
    return ctrl, simulate(scenario.model, ctrl, env)

# Cheapest neutral V by geometric bisection.
lo, hi, v_star = 1e-4, 10.0, None
for _ in range(7):
    mid = (lo * hi) ** 0.5
    _, trial = run(mid)
    if trial.ledger(env.portfolio, scenario.alpha).is_neutral():
        lo, v_star = mid, mid
    else:
        hi = mid
controller, record = run(v_star if v_star is not None else lo)

served = np.asarray(controller.batch_served)
price = env.price.values
v_used = controller.inner.v_history[0]
# The scheduler's true signal is the carbon-inclusive marginal price
# V*w(t) + q(t): raw electricity price plus the deficit-queue pressure.
effective = v_used * price + np.asarray(controller.inner.queue_at_decision)
weighted_price = float(np.sum(served * price) / served.sum())
weighted_effective = float(np.sum(served * effective) / served.sum())

print()
print(f"batch work arrived : {controller.backlog.total_arrived:,.0f} rate-hours")
print(f"batch work served  : {controller.backlog.total_served:,.0f} rate-hours")
print(f"final backlog      : {controller.backlog.backlog:,.0f} rate-hours")
print()
print(f"avg electricity price              : {price.mean():.2f} $/MWh")
print(f"batch-weighted electricity price   : {weighted_price:.2f} $/MWh")
print(f"avg carbon-inclusive price V*w+q   : {effective.mean():.4f}")
print(f"batch-weighted carbon-incl. price  : {weighted_effective:.4f} "
      f"({100 * (1 - weighted_effective / effective.mean()):.1f}% below average)")
print(f"carbon neutral (combined load)   : "
      f"{record.ledger(env.portfolio, scenario.alpha).is_neutral()}")

# When does batch run?  Bucket service by price quartile.
quartiles = np.quantile(effective, [0.25, 0.5, 0.75])
bucket = np.digitize(effective, quartiles)
rows = [
    {
        "carbon-incl. price quartile": ["cheapest", "2nd", "3rd", "dearest"][b],
        "share of batch work": float(served[bucket == b].sum() / served.sum()),
        "share of hours": float((bucket == b).mean()),
    }
    for b in range(4)
]
print()
print(render_table(rows, title="when the batch queue drains (by carbon-inclusive price)"))
