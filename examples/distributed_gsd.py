#!/usr/bin/env python
"""GSD in action: the paper's distributed Gibbs-sampling solver (Fig. 4).

Takes one slot's P3 problem, then:

1. runs GSD at several temperatures ``delta`` and prints how the total cost
   descends over iterations (Fig. 4(a): larger delta is greedier);
2. runs GSD from different initial points at a fixed delta and shows the
   final costs coincide (Fig. 4(b): insensitivity to initialization);
3. executes the fully message-passing variant (autonomous server agents +
   dual-decomposition load coordinator) and reports the communication bill.

Run:  python examples/distributed_gsd.py
"""

import numpy as np

from repro import small_scenario
from repro.analysis import render_table
from repro.solvers import (
    DistributedGSD,
    GSDSolver,
    HomogeneousEnumerationSolver,
    geometric_temperature,
)

scenario = small_scenario(horizon=24 * 7)
env = scenario.environment

# A busy afternoon slot, mid-week.
t = 14 + 24 * 3
obs = env.observation(t)
problem = scenario.model.slot_problem(
    arrival_rate=obs.arrival_rate, onsite=obs.onsite, price=obs.price, q=0.5, V=1.0
)
exact = HomogeneousEnumerationSolver().solve(problem)
print(f"slot {t}: lambda={obs.arrival_rate:.0f} req/s, w={obs.price:.1f} $/MWh")
print(f"exact optimum objective: {exact.objective:.6f}\n")

# ---------------------------------------------------------- Fig. 4(a)
print("Fig. 4(a): GSD cost vs iteration for different temperatures")
base = GSDSolver.auto_delta(problem, greediness=1.0)
rows = []
traces = {}
for mult in [3.0, 30.0, 300.0]:
    solver = GSDSolver(
        iterations=600,
        delta=base * mult,
        rng=np.random.default_rng(0),
        record_history=True,
    )
    sol = solver.solve(problem)
    trace = sol.info["trace"]
    traces[mult] = trace
    rows.append(
        {
            "delta": base * mult,
            "final_best": trace.best_objective[-1],
            "gap_vs_exact": trace.best_objective[-1] / exact.objective - 1.0,
            "acceptance_rate": trace.acceptance_rate,
        }
    )
print(render_table(rows))
print()
checkpoints = [0, 50, 100, 200, 400, 599]
iter_rows = [
    {
        "iteration": it,
        **{f"delta x{m:g}": traces[m].best_objective[it] for m in traces},
    }
    for it in checkpoints
]
print(render_table(iter_rows, title="best objective over iterations"))

# ---------------------------------------------------------- Fig. 4(b)
print("\nFig. 4(b): insensitivity to the initial point (fixed delta)")
fleet = scenario.model.fleet
rng = np.random.default_rng(7)
rows = []
for name, init in [
    ("all top speed", (fleet.num_levels - 1).astype(np.int64)),
    ("all lowest speed", np.zeros(fleet.num_groups, dtype=np.int64)),
    ("random", rng.integers(-1, 4, size=fleet.num_groups).astype(np.int64)),
]:
    sol = GSDSolver(
        iterations=1500,
        delta=geometric_temperature(base * 30.0, 1.005),
        rng=np.random.default_rng(1),
        initial_levels=init,
    ).solve(problem)
    rows.append(
        {
            "initial point": name,
            "final objective": sol.objective,
            "gap_vs_exact": sol.objective / exact.objective - 1.0,
        }
    )
print(render_table(rows))

# ---------------------------------------------------------- distributed run
print("\nFully distributed execution (message-passing agents):")
dgsd = DistributedGSD(iterations=120, delta=base * 300.0, rng=np.random.default_rng(2))
sol = dgsd.solve(problem)
print(f"  objective           : {sol.objective:.6f} "
      f"({100 * (sol.objective / exact.objective - 1):.2f}% vs exact)")
print(f"  messages delivered  : {sol.info['messages']:,}")
for kind, count in sorted(sol.info["messages_by_kind"].items()):
    print(f"    {kind:<12}: {count:,}")
