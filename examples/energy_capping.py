#!/usr/bin/env python
"""Energy capping: COCA without renewables (paper section 2.2, last remark).

"Even though directly purchasing renewable energy from utility companies
becomes a reality in the future, our research is still useful in the sense
that COCA can minimize the operational cost while *capping* the long-term
energy usage: all the analysis still applies by removing the off-site
renewable energy from our model and taking the REC parameter Z as the
desired total energy cap."

This example runs that variant: no on-site or off-site renewables, just a
hard annual(ish) energy cap, and sweeps the cap to show the cost/energy
frontier -- effectively using COCA as an online long-term power-capping
governor.

Run:  python examples/energy_capping.py
"""

import numpy as np

from repro import COCA, CarbonUnaware, DataCenterModel, default_fleet, simulate
from repro.analysis import render_table
from repro.energy import RenewablePortfolio
from repro.sim import Environment
from repro.traces import Trace, fiu_workload, price_trace

HORIZON = 24 * 30  # one month
fleet = default_fleet(num_groups=8, servers_per_group=50)
model = DataCenterModel(fleet=fleet, beta=10.0)

workload = fiu_workload(HORIZON, peak=0.5 * fleet.max_capacity, seed=21)
price = price_trace(HORIZON, seed=22)

# Baseline consumption with no cap at all.
uncapped_portfolio = RenewablePortfolio.energy_capping(HORIZON, cap=0.0)
env0 = Environment(workload=workload, portfolio=uncapped_portfolio, price=price)
uncapped = simulate(model, CarbonUnaware(model), env0)
E0 = uncapped.total_brown
print(f"uncapped energy use over {HORIZON} h: {E0:.2f} MWh "
      f"(avg cost ${uncapped.average_cost:.3f}/h)")
print()

rows = []
for cap_fraction in [1.00, 0.95, 0.90, 0.85, 0.80]:
    cap = cap_fraction * E0
    portfolio = RenewablePortfolio.energy_capping(HORIZON, cap=cap)
    env = Environment(workload=workload, portfolio=portfolio, price=price)

    # Cheapest V that still honors the cap (geometric bisection).
    lo, hi, v_star = 1e-4, 1e6, None
    for _ in range(10):
        mid = float(np.sqrt(lo * hi))
        record = simulate(model, COCA(model, portfolio, v_schedule=mid), env)
        if record.total_brown <= cap:
            lo, v_star = mid, mid
        else:
            hi = mid
    v_star = v_star if v_star is not None else lo
    record = simulate(model, COCA(model, portfolio, v_schedule=v_star), env)

    rows.append(
        {
            "cap (x uncapped)": cap_fraction,
            "energy used": record.total_brown / E0,
            "avg cost": record.average_cost,
            "cost premium": record.average_cost / uncapped.average_cost - 1.0,
            "cap honored": record.total_brown <= cap * (1 + 1e-9),
            "V*": v_star,
        }
    )

print(render_table(rows, title="online energy capping with COCA"))
print()
print("Tighter caps cost more (delay rises as servers slow/shed), but the")
print("cap is met online, without any knowledge of future workloads.")
