#!/usr/bin/env python
"""Geo-distributed COCA: carbon-neutral load balancing across three sites.

The paper's related work balances load geographically for cheap/green
energy ([21, 29, 32]); COCA adds long-term carbon neutrality without future
information.  This example fuses them: three sites with different
electricity markets, renewable endowments, and user latencies share one
global carbon budget and one deficit queue.

Watch three effects:

1. load concentrates at the cheap site -- until its latency penalty or the
   deficit queue says otherwise;
2. the sunny site's share rises in daytime hours (its on-site supply makes
   its marginal brown energy cheap);
3. the single global queue keeps the *aggregate* footprint inside the
   budget, which no per-site rule needs to know about.

Run:  python examples/geo_balancing.py
"""

import numpy as np

from repro.analysis import render_table
from repro.cluster import Fleet, ServerGroup, opteron_2380
from repro.core import DataCenterModel
from repro.geo import GeoCOCA, GeoEnvironment, ProportionalGeo, Site, simulate_geo
from repro.traces import fiu_workload, price_trace, solar_trace, wind_trace

HORIZON = 24 * 7


def build_site(name, *, price_mean, price_seed, renewable, net_delay):
    fleet = Fleet([ServerGroup(opteron_2380(), 60) for _ in range(4)])
    model = DataCenterModel(fleet=fleet, beta=10.0)
    return Site(
        name=name,
        model=model,
        onsite=renewable,
        price=price_trace(HORIZON, mean_price=price_mean, seed=price_seed),
        network_delay=net_delay,
    )


sites = (
    build_site(
        "oregon (cheap, far)",
        price_mean=22.0,
        price_seed=11,
        renewable=wind_trace(HORIZON, seed=41).scale(0.01),
        net_delay=0.06,
    ),
    build_site(
        "virginia (dear, near)",
        price_mean=55.0,
        price_seed=12,
        renewable=solar_trace(HORIZON, seed=42).scale(0.002),
        net_delay=0.0,
    ),
    build_site(
        "arizona (sunny)",
        price_mean=38.0,
        price_seed=13,
        renewable=solar_trace(HORIZON, seed=43).scale(0.03),
        net_delay=0.02,
    ),
)

total_capacity = sum(s.capacity() for s in sites)
workload = fiu_workload(HORIZON, peak=0.5 * total_capacity, seed=5)
offsite = wind_trace(HORIZON, seed=44).scale_to_total(25.0)
env = GeoEnvironment(workload=workload, sites=sites, offsite=offsite, recs=40.0)
print(f"{len(sites)} sites, {total_capacity:,.0f} req/s capped capacity, "
      f"global budget {env.carbon_budget:.1f} MWh")

# Naive baseline: split by capacity, ignore everything else.
naive = simulate_geo(ProportionalGeo(env), env)

# GeoCOCA at the cheapest neutral V (geometric bisection).
lo, hi, v_star = 1e-4, 1e4, None
for _ in range(8):
    mid = float(np.sqrt(lo * hi))
    rec = simulate_geo(GeoCOCA(env, v_schedule=mid, dispatch_rounds=12), env)
    if rec.is_neutral(env):
        lo, v_star = mid, mid
    else:
        hi = mid
v_star = v_star if v_star is not None else lo
record = simulate_geo(GeoCOCA(env, v_schedule=v_star, dispatch_rounds=12), env)

rows = [
    {
        "controller": rec.controller,
        "avg cost $/h": rec.average_cost,
        "brown MWh": rec.total_brown,
        "neutral": rec.is_neutral(env),
        **{
            f"{name.split()[0]} share": share
            for name, share in zip(rec.site_names, rec.site_share_of_load())
        },
    }
    for rec in (naive, record)
]
print()
print(render_table(rows, title=f"proportional vs GeoCOCA (V*={v_star:.3g})"))

# Does Arizona's solar supply pull work toward it?  Compare its share in
# its sunniest-decile hours against its dark hours.
sunny_share = record.shares[:, 2] / np.maximum(record.shares.sum(axis=1), 1e-9)
solar = sites[2].onsite.values
bright = solar >= np.quantile(solar, 0.9)
dark = solar == 0.0
print()
print(f"arizona's share of load: {sunny_share[bright].mean():.1%} in its "
      f"sunniest hours vs {sunny_share[dark].mean():.1%} when dark")
print(f"saving vs proportional dispatch: "
      f"{100 * (1 - record.average_cost / naive.average_cost):.1f}%")
