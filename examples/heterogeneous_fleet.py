#!/usr/bin/env python
"""Heterogeneous fleet management: where DVFS speed selection earns its keep.

The paper emphasizes that COCA handles "a practical data center with
heterogeneous servers" via server-level DVFS.  The paper's own measured
Opteron profile has a degenerate optimum (its top speed dominates on every
axis, so the fleet policy collapses to "top speed or off"); this example
mixes three server generations, including cubic-power DVFS parts where
intermediate speeds are genuinely the most energy-efficient, and shows:

1. the chosen speed *levels* vary with load and electricity price;
2. coordinate descent, GSD, and brute force agree on small instances;
3. a short COCA run on the mixed fleet stays carbon-neutral.

Run:  python examples/heterogeneous_fleet.py
"""

import numpy as np

from repro import COCA, DataCenterModel, Fleet, ServerGroup, simulate
from repro.analysis import render_table
from repro.cluster import cubic_dvfs_profile, opteron_2380
from repro.energy import RenewablePortfolio, onsite_mix
from repro.sim import Environment
from repro.solvers import (
    BruteForceSolver,
    CoordinateDescentSolver,
    GSDSolver,
    geometric_temperature,
)
from repro.traces import fiu_workload, price_trace

# Three server generations: the paper's Opteron, an efficient cubic-DVFS
# part, and an older power-hungry box.
fleet = Fleet(
    [
        ServerGroup(opteron_2380(), 40),
        ServerGroup(
            cubic_dvfs_profile(
                name="cubic-2013", max_speed=12.0, static_watts=80.0,
                max_dynamic_watts=180.0, levels=4,
            ),
            40,
        ),
        ServerGroup(
            cubic_dvfs_profile(
                name="legacy-2008", max_speed=6.0, static_watts=180.0,
                max_dynamic_watts=120.0, levels=3,
            ),
            40,
        ),
    ]
)
model = DataCenterModel(fleet=fleet, beta=10.0)
print("Fleet:")
for group in fleet.groups:
    print(f"  {group.count} x {group.profile.describe()}")

# ---------------------------------------------------------------------
# 1. Speed selection responds to load and price.
print("\nChosen speed level per group vs (load, price):")
solver = CoordinateDescentSolver(restarts=4)
rows = []
for lam_frac, price in [(0.15, 30.0), (0.15, 120.0), (0.55, 30.0), (0.85, 30.0)]:
    problem = model.slot_problem(
        arrival_rate=lam_frac * fleet.capacity(model.gamma),
        onsite=0.0,
        price=price,
        q=2.0,
    )
    sol = solver.solve(problem)
    rows.append(
        {
            "load": f"{lam_frac:.0%}",
            "price $/MWh": price,
            "opteron": int(sol.action.levels[0]),
            "cubic-2013": int(sol.action.levels[1]),
            "legacy-2008": int(sol.action.levels[2]),
            "cost": sol.cost,
        }
    )
print(render_table(rows))
print("(-1 = group off; higher level = faster DVFS state)")

# ---------------------------------------------------------------------
# 2. Solver agreement on a snapshot.
problem = model.slot_problem(
    arrival_rate=0.5 * fleet.capacity(model.gamma), onsite=0.0, price=45.0, q=1.0
)
bf = BruteForceSolver().solve(problem)
cd = CoordinateDescentSolver(restarts=6).solve(problem)
delta0 = GSDSolver.auto_delta(problem, greediness=30.0)
gsd = GSDSolver(
    iterations=3000,
    delta=geometric_temperature(delta0, 1.002),
    rng=np.random.default_rng(0),
).solve(problem)
print("\nSolver agreement at 50% load:")
print(
    render_table(
        [
            {"solver": "brute force (oracle)", "objective": bf.objective},
            {"solver": "coordinate descent", "objective": cd.objective},
            {"solver": "GSD (adaptive delta)", "objective": gsd.objective},
        ]
    )
)

# ---------------------------------------------------------------------
# 3. COCA on the mixed fleet for a week.
horizon = 24 * 7
workload = fiu_workload(horizon, peak=0.5 * fleet.max_capacity, seed=9)
price = price_trace(horizon, seed=10)
onsite = onsite_mix(horizon, seed=11).scale_to_total(0.2 * fleet.max_power * horizon * 0.3)
offsite = onsite_mix(horizon, seed=12, solar_fraction=0.4)
portfolio = RenewablePortfolio(onsite=onsite, offsite=offsite, recs=0.0)

# Budget calibration.  Unlike the paper's Opteron-only fleet, the efficient
# cubic parts make the carbon-unaware optimum nearly power-minimal already,
# so "92% of unaware" can be infeasible; set the budget midway between the
# minimum achievable brown energy and the unaware draw instead.
from repro.baselines import CarbonUnaware, calibrate_budget
from repro.baselines.offline_opt import _sweep

env = Environment(workload=workload, portfolio=portfolio, price=price)
unaware_brown = calibrate_budget(model, env)
min_brown = _sweep(model, env, mu=1e9, solver=CoordinateDescentSolver(restarts=2)).total_brown
budget = min_brown + 0.5 * (unaware_brown - min_brown)
print(f"\nbrown energy range: min feasible {min_brown:.2f} MWh, "
      f"unaware {unaware_brown:.2f} MWh -> budget {budget:.2f} MWh")
portfolio = portfolio.with_budget_split(budget, 0.4)
env = env.with_portfolio(portfolio)

# V is unit-scale dependent; pick the cheapest neutral value by bisection.
v_star = None
lo, hi = 1e-4, 1.0
for _ in range(8):
    mid = (lo * hi) ** 0.5
    trial = simulate(model, COCA(model, portfolio, v_schedule=mid), env)
    if trial.ledger(portfolio).is_neutral():
        lo, v_star = mid, mid
    else:
        hi = mid
coca = COCA(model, portfolio, v_schedule=v_star if v_star else lo)
record = simulate(model, coca, env)
ledger = record.ledger(portfolio)
print("\nCOCA on the mixed fleet (one week):")
print(f"  avg cost      : ${record.average_cost:.3f}/h")
print(f"  brown energy  : {record.total_brown:.2f} MWh vs budget {portfolio.carbon_budget:.2f} MWh")
print(f"  carbon neutral: {ledger.is_neutral()}")
