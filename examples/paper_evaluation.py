#!/usr/bin/env python
"""The paper's section 5 story, end to end, at configurable scale.

Reproduces the qualitative content of Figs. 2, 3 and 5(a) in one script:

1. the V trade-off (cost down, carbon deficit up) with the carbon-unaware
   asymptote -- Fig. 2(a,b);
2. COCA vs the prediction-based PerfectHP heuristic -- Fig. 3;
3. normalized cost vs carbon budget for COCA / OPT / carbon-unaware --
   Fig. 5(a).

By default this runs a one-month, 8-group scenario (~10 s).  Pass
``--paper-scale`` for the full 216 K-server, one-year configuration the
paper uses (a few minutes).

Run:  python examples/paper_evaluation.py [--paper-scale]
"""

import argparse

import numpy as np

from repro import CarbonUnaware, paper_scenario, simulate, small_scenario
from repro.analysis import (
    budget_sweep,
    compare_with_perfecthp,
    find_neutral_v,
    render_table,
    sweep_constant_v,
    time_bucket_rows,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--paper-scale", action="store_true")
    args = parser.parse_args()

    if args.paper_scale:
        scenario = paper_scenario()
        v_grid = [10.0, 30.0, 60.0, 120.0, 300.0, 1000.0]
    else:
        scenario = small_scenario(horizon=24 * 30)
        v_grid = list(np.geomspace(1e-3, 1e2, 6))

    portfolio = scenario.environment.portfolio
    print(f"servers={scenario.model.fleet.num_servers}  horizon={scenario.horizon}h")
    print(f"unaware brown={scenario.unaware_brown:.4g} MWh  budget={scenario.budget:.4g} MWh")

    # ------------------------------------------------------- Fig. 2(a,b)
    rows = sweep_constant_v(scenario, v_grid)
    print()
    print(render_table(rows, title="Fig. 2(a,b): impact of constant V"))

    # ------------------------------------------------------- Fig. 3
    v_star = find_neutral_v(scenario, iters=10)
    cmp = compare_with_perfecthp(scenario, v_star)
    print()
    print(f"Fig. 3: COCA (V*={v_star:.4g}) vs PerfectHP")
    print(f"  cost saving            : {100 * cmp['cost_saving']:.1f}%")
    print(f"  COCA avg deficit       : {cmp['coca_deficit']:.4g} MWh/h")
    print(f"  PerfectHP avg deficit  : {cmp['perfecthp_deficit']:.4g} MWh/h")
    buckets = time_bucket_rows(
        [cmp["coca"], cmp["perfecthp"]], portfolio, alpha=scenario.alpha, buckets=8
    )
    print(render_table(buckets, title="running averages over time"))

    # ------------------------------------------------------- Fig. 5(a)
    fractions = [0.85, 0.90, 0.95, 1.00]
    rows5 = budget_sweep(scenario, fractions, include_opt=True, v_iters=8)
    print()
    print(
        render_table(
            rows5,
            title="Fig. 5(a): normalized cost vs carbon budget "
            "(1.0 = carbon-unaware cost)",
        )
    )


if __name__ == "__main__":
    main()
