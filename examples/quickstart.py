#!/usr/bin/env python
"""Quickstart: run COCA on a small data center for two weeks.

Builds a scaled-down version of the paper's evaluation setup (same
structure: Opteron servers, FIU-style workload, CAISO-style prices and
renewables, a carbon budget at 92% of the carbon-unaware draw), runs COCA
next to the carbon-unaware baseline, and prints the trade-off.

Run:  python examples/quickstart.py
"""

from repro import COCA, CarbonUnaware, simulate, small_scenario
from repro.analysis import compare_records, find_neutral_v, render_table

# A two-week, 400-server scenario builds in well under a second.
scenario = small_scenario(horizon=24 * 14)
portfolio = scenario.environment.portfolio

print("Scenario")
print(f"  servers          : {scenario.model.fleet.num_servers}")
print(f"  horizon          : {scenario.horizon} hours")
print(f"  unaware brown    : {scenario.unaware_brown:.2f} MWh")
print(f"  carbon budget    : {scenario.budget:.2f} MWh (92% of unaware)")
print()

# The carbon-unaware baseline: minimize cost, ignore the budget.
unaware = simulate(scenario.model, CarbonUnaware(scenario.model), scenario.environment)

# COCA at the largest V that still satisfies carbon neutrality.  V trades
# cost for deficit; find_neutral_v bisects to the knee.
v_star = find_neutral_v(scenario, iters=10)
print(f"neutral V* = {v_star:.4g}")

coca = COCA(
    scenario.model, portfolio, v_schedule=v_star, alpha=scenario.alpha
)
coca_record = simulate(scenario.model, coca, scenario.environment)

rows = compare_records([unaware, coca_record], portfolio, alpha=scenario.alpha)
print()
print(render_table(rows, title="carbon-unaware vs COCA (two weeks)"))
print()
penalty = coca_record.average_cost / unaware.average_cost - 1.0
print(
    f"COCA meets the 92% budget at {100 * penalty:.1f}% extra cost; "
    f"the unaware baseline overdraws it by "
    f"{unaware.total_brown - scenario.budget:.2f} MWh."
)
print(f"peak carbon-deficit queue length: {max(coca.queue.history):.3f} MWh")
