#!/usr/bin/env python
"""Dynamic REC purchasing (section 2.2 extension).

The paper prepurchases a fixed REC block Z before the budgeting period but
notes the model "accommodates various approaches to purchasing RECs (e.g.,
dynamic purchase in real time)".  This example runs COCA as usual, then
covers the resulting brown energy three ways on a synthetic REC market:

* prepurchase everything at the period-average price (the paper's default),
* buy each slot's deficit at spot,
* the threshold trader: buy (and stockpile) when the price is in the cheap
  tail of a trailing window, with a guaranteed end-of-period true-up.

Run:  python examples/rec_trading.py
"""

from repro import COCA, simulate, small_scenario
from repro.analysis import render_table
from repro.energy import ThresholdRECTrader, evaluate_purchasing, rec_price_trace

scenario = small_scenario(horizon=24 * 30)
env = scenario.environment

controller = COCA(scenario.model, env.portfolio, v_schedule=0.02, alpha=scenario.alpha)
record = simulate(scenario.model, controller, env)
print(f"COCA run: {record.total_brown:.2f} MWh brown energy to cover with RECs")

prices = rec_price_trace(scenario.horizon, mean_price=4.0, seed=31)
print(f"REC market: mean {prices.mean:.2f} $/MWh, "
      f"range [{prices.values.min():.2f}, {prices.peak:.2f}]")

report = evaluate_purchasing(
    record.brown_energy,
    prices,
    trader=ThresholdRECTrader(percentile=30.0, window=24 * 7, buy_multiple=2.0),
)

rows = [
    {"strategy": "prepurchase at average price", "REC bill $": report.prepurchase_cost},
    {"strategy": "buy each slot at spot", "REC bill $": report.spot_cost},
    {"strategy": "threshold trader (online)", "REC bill $": report.dynamic_cost},
]
print()
print(render_table(rows, title="covering the period's brown energy"))
print()
print(f"threshold trader paid {report.dynamic_average_price:.2f} $/MWh on average "
      f"({100 * report.saving_vs_prepurchase:.1f}% below the prepurchase bill)")
