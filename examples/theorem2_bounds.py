#!/usr/bin/env python
"""Checking Theorem 2's guarantees numerically.

Theorem 2 promises, for frames of T slots and cost-carbon parameters V_r:

  (b)  avg cost(COCA)  <=  mean_r G_r*  +  C(T)/R * sum_r 1/V_r
  (a)  avg brown(COCA) <=  budget rate  +  sum_r sqrt(C(T)+V_r(G_r*-g_min)) / (R sqrt(T))

where G_r* comes from the optimal T-step-lookahead policy (problem P2).
This example computes everything on a small scenario: the lookahead optima
by per-frame dual bisection, the conservative drift constants B and D, and
the measured COCA runs at several V -- then prints measured-vs-bound and the
O(1/V) shrinkage of the cost gap.

Run:  python examples/theorem2_bounds.py
"""

import numpy as np

from repro import COCA, simulate, small_scenario
from repro.analysis import render_table
from repro.baselines import lookahead_optima
from repro.core.bounds import cost_bound, deficit_bound, lyapunov_constants

scenario = small_scenario(horizon=24 * 14)
T = scenario.horizon // 2  # two one-week frames
frames = lookahead_optima(scenario.model, scenario.environment, T=T, alpha=scenario.alpha)
g_star = np.array([f.average_cost for f in frames])
print(f"lookahead optima per frame (T={T}): "
      + ", ".join(f"G_{f.frame}* = {f.average_cost:.3f}" for f in frames))

constants = lyapunov_constants(scenario.model, scenario.environment.portfolio,
                               alpha=scenario.alpha)
print(f"drift constants: B = {constants.B:.4g}, D = {constants.D:.4g}, "
      f"C(T) = {constants.C(T):.4g}")

rows = []
for v in [0.002, 0.02, 0.2, 2.0]:
    controller = COCA(
        scenario.model,
        scenario.environment.portfolio,
        v_schedule=v,
        frame_length=T,
        alpha=scenario.alpha,
    )
    record = simulate(scenario.model, controller, scenario.environment)
    vs = np.full(len(frames), v)
    rows.append(
        {
            "V": v,
            "measured cost": record.average_cost,
            "cost bound (2b)": cost_bound(constants, g_star, vs, T=T),
            "cost gap vs G*": record.average_cost - g_star.mean(),
            "measured brown/h": float(record.brown_energy.mean()),
            "deficit bound (2a)": deficit_bound(
                constants, scenario.environment.portfolio, g_star, vs, T=T,
                alpha=scenario.alpha,
            ),
        }
    )

print()
print(render_table(rows, title="Theorem 2: measured vs bounds"))
ok_b = all(r["measured cost"] <= r["cost bound (2b)"] for r in rows)
ok_a = all(r["measured brown/h"] <= r["deficit bound (2a)"] for r in rows)
print()
print(f"cost bound holds at every V    : {ok_b}")
print(f"deficit bound holds at every V : {ok_a}")
print("note the measured cost gap over the lookahead optimum shrinks as V")
print("grows -- the O(1/V) optimality of Theorem 2(b) in action.")
