#!/usr/bin/env python
"""Validate the analytic M/G/1/PS delay model with event-level simulation.

The paper's delay cost (Eq. (4)) is the M/G/1/PS mean number in system,
``lambda/(x - lambda)`` per server.  This example runs the request-level
discrete-event processor-sharing simulator against that formula:

1. a utilization sweep (analytic vs event-driven mean jobs in system);
2. the PS *insensitivity* property -- exponential, deterministic, and
   heavy-tailed service laws all land on the same mean;
3. a full fleet action's delay sum, analytic vs event-driven.

Run:  python examples/validate_delay_model.py
"""

import numpy as np

from repro import small_scenario
from repro.analysis import render_table
from repro.baselines import CarbonUnaware
from repro.sim import empirical_delay_sum, simulate_ps_queue

rng = np.random.default_rng(99)
SPEED = 10.0  # req/s, the Opteron's top service rate

# ---------------------------------------------------------------- sweep
print("1. Utilization sweep (M/M/1-PS, x = 10 req/s, 20k simulated seconds)")
rows = []
for rho in [0.2, 0.4, 0.6, 0.8, 0.9]:
    stats = simulate_ps_queue(rho * SPEED, SPEED, duration=20_000.0, rng=rng)
    analytic = rho / (1.0 - rho)
    rows.append(
        {
            "rho": rho,
            "analytic E[N]": analytic,
            "simulated E[N]": stats.mean_jobs,
            "rel err": stats.mean_jobs / analytic - 1.0,
            "sim E[T] (s)": stats.mean_response_time,
            "analytic E[T]": 1.0 / (SPEED - rho * SPEED),
        }
    )
print(render_table(rows))

# -------------------------------------------------------- insensitivity
print("\n2. Insensitivity to the service-time distribution (rho = 0.7)")
samplers = {
    "exponential": None,
    "deterministic": lambda g, n: np.ones(n),
    "pareto (a=2.5)": lambda g, n: (g.pareto(2.5, size=n) + 1.0) * 1.5 / 2.5,
    "bimodal": lambda g, n: np.where(g.random(n) < 0.9, 0.5, 5.5),
}
rows = []
for name, sampler in samplers.items():
    stats = simulate_ps_queue(
        7.0, SPEED, duration=30_000.0, rng=np.random.default_rng(5),
        service_sampler=sampler,
    )
    rows.append({"service law": name, "simulated E[N]": stats.mean_jobs})
rows.append({"service law": "analytic rho/(1-rho)", "simulated E[N]": 0.7 / 0.3})
print(render_table(rows))

# ------------------------------------------------------------ fleet level
print("\n3. Fleet-action delay sum: Eq. (4) vs event simulation")
scenario = small_scenario(horizon=24 * 2)
controller = CarbonUnaware(scenario.model)
obs = scenario.environment.observation(15)  # mid-afternoon slot
solution = controller.decide(obs)
analytic = solution.action.delay_sum(scenario.model.fleet)
empirical = empirical_delay_sum(
    scenario.model.fleet,
    solution.action.levels,
    solution.action.per_server_load,
    duration=10_000.0,
    rng=np.random.default_rng(17),
)
print(f"  analytic delay sum  : {analytic:,.1f} jobs in system")
print(f"  event-driven        : {empirical:,.1f} jobs in system")
print(f"  relative difference : {100 * (empirical / analytic - 1):.2f}%")
