"""repro -- reproduction of *COCA: Online Distributed Resource Management
for Cost Minimization and Carbon Neutrality in Data Centers* (SC '13).

Quickstart::

    from repro import paper_scenario, COCA, simulate

    scenario = paper_scenario(horizon=24 * 30)        # one month
    controller = COCA(scenario.model, scenario.environment.portfolio,
                      v_schedule=200.0)
    record = simulate(scenario.model, controller, scenario.environment)
    print(record.summary(scenario.environment.portfolio))

Package layout (see DESIGN.md for the full inventory):

- :mod:`repro.core` -- the paper's contribution: COCA (Algorithm 1), the
  carbon-deficit queue, V-schedules, Theorem 2 bounds.
- :mod:`repro.solvers` -- P3 engines: GSD (Algorithm 2), exact enumeration,
  coordinate descent, brute force, the dual-decomposition load distributor,
  and the simulated distributed message-passing substrate.
- :mod:`repro.cluster` -- servers, fleets, queueing, power, switching.
- :mod:`repro.energy` -- renewables, RECs, carbon accounting.
- :mod:`repro.traces` -- synthetic workload/renewable/price generators.
- :mod:`repro.sim` -- slot simulator, metrics, event-level PS queues.
- :mod:`repro.baselines` -- carbon-unaware, PerfectHP, OPT, T-step lookahead.
- :mod:`repro.advice` -- learning-augmented COCA: forecast advice with a
  certified (1+λ) robustness fallback (docs/ADVICE.md).
- :mod:`repro.analysis` -- sweeps, summaries, table rendering.
- :mod:`repro.telemetry` -- structured tracing, metrics, profiling hooks.
"""

from .advice import (
    AdvisedController,
    ForecastAdvisor,
    TrustGuard,
    run_scenario,
)
from .baselines import CarbonUnaware, OfflineOptimal, PerfectHP, TStepLookahead
from .cluster import (
    Fleet,
    FleetAction,
    MG1PSDelay,
    ServerGroup,
    ServerProfile,
    SwitchingCostModel,
    default_fleet,
    opteron_2380,
)
from .core import (
    COCA,
    BatchAwareCOCA,
    AdaptiveV,
    CarbonDeficitQueue,
    ConstantV,
    Controller,
    DataCenterModel,
    FrameV,
    quarterly,
)
from .energy import CarbonLedger, RECAccount, RenewablePortfolio
from .scenarios import Scenario, paper_scenario, small_scenario
from .sim import Environment, SimulationRecord, simulate
from .solvers import (
    BruteForceSolver,
    CoordinateDescentSolver,
    DistributedGSD,
    GSDSolver,
    HomogeneousEnumerationSolver,
    ShardedGSDSolver,
    SlotProblem,
)
from .telemetry import (
    InMemoryTracer,
    JsonlTracer,
    MetricsRegistry,
    Telemetry,
    read_jsonl_events,
)
from .traces import Trace, fiu_workload, msr_workload, price_trace

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "Scenario",
    "paper_scenario",
    "small_scenario",
    "COCA",
    "BatchAwareCOCA",
    "Controller",
    "DataCenterModel",
    "CarbonDeficitQueue",
    "ConstantV",
    "FrameV",
    "AdaptiveV",
    "quarterly",
    "Fleet",
    "FleetAction",
    "ServerGroup",
    "ServerProfile",
    "MG1PSDelay",
    "SwitchingCostModel",
    "default_fleet",
    "opteron_2380",
    "RenewablePortfolio",
    "RECAccount",
    "CarbonLedger",
    "Environment",
    "simulate",
    "SimulationRecord",
    "SlotProblem",
    "GSDSolver",
    "DistributedGSD",
    "ShardedGSDSolver",
    "HomogeneousEnumerationSolver",
    "CoordinateDescentSolver",
    "BruteForceSolver",
    "CarbonUnaware",
    "PerfectHP",
    "OfflineOptimal",
    "TStepLookahead",
    "AdvisedController",
    "ForecastAdvisor",
    "TrustGuard",
    "run_scenario",
    "Trace",
    "fiu_workload",
    "msr_workload",
    "price_trace",
    "Telemetry",
    "MetricsRegistry",
    "InMemoryTracer",
    "JsonlTracer",
    "read_jsonl_events",
]
