"""Learning-augmented COCA: untrusted forecast advice with a certified
robustness fallback.

The layer has four pieces (see ``docs/ADVICE.md`` for the design):

* :mod:`~repro.advice.forecast` — :class:`ForecastWindow` and the
  providers that produce them (trace-backed, causal, feed-backed);
* :mod:`~repro.advice.advisor` — :class:`ForecastAdvisor`, turning a
  window into per-frame :class:`Advice` via the P2 frame solve;
* :mod:`~repro.advice.trust` — :class:`TrustGuard`, the hysteresis trust
  state plus the certified (1+λ) cost budget;
* :mod:`~repro.advice.controller` — :class:`AdvisedController`, the
  shadow-first wrapper around plain COCA;
* :mod:`~repro.advice.pack` — the named scenario pack behind
  ``repro scenarios``.

The contract: with advice absent, disabled, or never trusted, an advised
run is bit-identical to plain COCA; under any advice, committed cost never
exceeds ``(1+λ)`` times the shadow cost.
"""

from .advisor import Advice, ForecastAdvisor
from .controller import AdvisedController
from .forecast import (
    CausalForecastProvider,
    FeedForecastProvider,
    ForecastProvider,
    ForecastWindow,
    TraceForecastProvider,
)
from .pack import SCENARIOS, AdviceRunResult, list_scenarios, run_scenario
from .trust import TrustGuard

__all__ = [
    "Advice",
    "ForecastAdvisor",
    "AdvisedController",
    "TrustGuard",
    "ForecastWindow",
    "ForecastProvider",
    "TraceForecastProvider",
    "CausalForecastProvider",
    "FeedForecastProvider",
    "SCENARIOS",
    "AdviceRunResult",
    "list_scenarios",
    "run_scenario",
]
