"""Turning forecast windows into per-frame advice.

The :class:`ForecastAdvisor` solves the same frame problem as the P2
oracle in :mod:`repro.baselines.lookahead` -- bisection on a frame
multiplier ``mu`` over per-slot P3 solves -- but on a *forecast* window
instead of the true traces.  The resulting ``mu`` is the advice: during
the frame, the advised action for a slot is the P3 solution at
``q = mu, V = 1`` on the slot's realized signals, exactly how
:class:`~repro.baselines.lookahead.TStepLookahead` replays its oracle
multipliers.  Good forecasts make this the near-optimal frame policy;
bad forecasts make ``mu`` wrong, which the :class:`~repro.advice.trust.TrustGuard`
detects through realized error and regret.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..baselines.lookahead import _BISECT_ITERS, _frame_sweep
from ..core.config import DataCenterModel
from ..solvers.base import SlotSolver
from .forecast import ForecastProvider, ForecastWindow

__all__ = ["Advice", "ForecastAdvisor"]


@dataclass(frozen=True)
class Advice:
    """One frame's advice: the multiplier plus its planning context.

    Attributes
    ----------
    start / length:
        Frame coverage ``[start, start + length)``.
    mu:
        Frame multiplier on brown energy; the advised slot action is the
        P3 solution at ``q = mu, V = 1``.
    planned_cost / planned_brown:
        Frame cost and brown energy the plan expects on the forecast.
    budget:
        Frame carbon budget the plan targeted (MWh).
    feasible:
        Whether the plan meets its budget *on the forecast* (an
        infeasible plan is still advice -- trust decides its fate).
    window:
        The (possibly fault-degraded) forecast the plan was built from;
        the controller scores realized error against it.
    """

    start: int
    length: int
    mu: float
    planned_cost: float
    planned_brown: float
    budget: float
    feasible: bool
    window: ForecastWindow

    def covers(self, t: int) -> bool:
        return self.start <= t < self.start + self.length

    def to_dict(self) -> dict:
        return {
            "start": int(self.start),
            "length": int(self.length),
            "mu": float(self.mu),
            "planned_cost": float(self.planned_cost),
            "planned_brown": float(self.planned_brown),
            "budget": float(self.budget),
            "feasible": bool(self.feasible),
            "window": self.window.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Advice":
        return cls(
            start=int(data["start"]),
            length=int(data["length"]),
            mu=float(data["mu"]),
            planned_cost=float(data["planned_cost"]),
            planned_brown=float(data["planned_brown"]),
            budget=float(data["budget"]),
            feasible=bool(data["feasible"]),
            window=ForecastWindow.from_dict(data["window"]),
        )


class ForecastAdvisor:
    """Per-frame advice from forecast windows, via the P2 frame solve.

    Parameters mirror :func:`~repro.baselines.lookahead.lookahead_optima`:
    ``frame_length`` is ``T``, ``alpha`` scales the carbon budget, and the
    frame budget is ``alpha * (frame off-site forecast + Z/R)`` with
    ``Z/R`` prorated from the portfolio RECs over ``horizon / T`` frames.
    """

    def __init__(
        self,
        model: DataCenterModel,
        portfolio,
        *,
        frame_length: int,
        horizon: int,
        provider: ForecastProvider,
        alpha: float = 1.0,
        solver: SlotSolver | None = None,
    ) -> None:
        if frame_length < 1:
            raise ValueError(f"frame_length must be >= 1, got {frame_length}")
        if horizon < 1 or horizon % frame_length != 0:
            raise ValueError(
                f"frame length {frame_length} must divide the horizon {horizon}"
            )
        self.model = model
        self.portfolio = portfolio
        self.frame_length = int(frame_length)
        self.horizon = int(horizon)
        self.provider = provider
        self.alpha = float(alpha)
        self.solver = solver
        self.frames_advised = 0
        self.frames_skipped = 0

    # ------------------------------------------------------------------
    def advise(self, start: int, window: ForecastWindow | None = None) -> Advice | None:
        """Plan the frame starting at ``start`` from a forecast window.

        ``window`` defaults to whatever the provider produces; passing it
        explicitly lets the controller route the window through the fault
        injector first.  Returns ``None`` when no window is available.
        """
        if window is None:
            window = self.provider.window(start, self.frame_length)
        if window is None:
            self.frames_skipped += 1
            return None
        lam = np.maximum(window.arrival, 0.0)
        onsite = np.maximum(window.onsite, 0.0)
        price = window.price
        T = window.length
        R = self.horizon // self.frame_length
        budget = self.alpha * (
            float(np.maximum(window.offsite, 0.0).sum()) + self.portfolio.recs / R
        )

        mu, brown, cost, feasible = self._solve_frame(lam, onsite, price, budget)
        self.frames_advised += 1
        return Advice(
            start=start,
            length=T,
            mu=mu,
            planned_cost=cost,
            planned_brown=brown,
            budget=budget,
            feasible=feasible,
            window=window,
        )

    def _solve_frame(
        self, lam, onsite, price, budget: float
    ) -> tuple[float, float, float, bool]:
        """Bisection on ``mu`` (the ``lookahead_optima`` inner loop)."""
        brown0, cost0 = _frame_sweep(self.model, lam, onsite, price, 0.0, self.solver)
        if brown0 <= budget:
            return 0.0, brown0, cost0, True

        hi = max(float(price.max()), 1.0)
        brown_hi, cost_hi = _frame_sweep(self.model, lam, onsite, price, hi, self.solver)
        while brown_hi > budget:
            hi *= 4.0
            if hi > 1e12:
                # Even the max-penalty plan overshoots the forecast budget.
                return hi, brown_hi, cost_hi, False
            brown_hi, cost_hi = _frame_sweep(
                self.model, lam, onsite, price, hi, self.solver
            )
        lo = 0.0
        best = (brown_hi, cost_hi, hi)
        for _ in range(_BISECT_ITERS):
            mid = 0.5 * (lo + hi)
            brown_m, cost_m = _frame_sweep(
                self.model, lam, onsite, price, mid, self.solver
            )
            if brown_m > budget:
                lo = mid
            else:
                hi = mid
                best = (brown_m, cost_m, mid)
        brown_f, cost_f, mu = best
        return mu, brown_f, cost_f, True

    def describe(self) -> str:
        return (
            f"advisor(T={self.frame_length}, alpha={self.alpha}, "
            f"provider={self.provider.describe()})"
        )
