"""The learning-augmented controller: COCA plus gated forecast advice.

:class:`AdvisedController` wraps a plain :class:`~repro.core.coca.COCA`
instance.  Every slot it first runs the wrapped controller verbatim -- the
*shadow* decision, computed on exactly the state plain COCA would hold --
then, when a trusted advice frame covers the slot, solves the advised
alternative (P3 at the advice multiplier) and lets the
:class:`~repro.advice.trust.TrustGuard` pick which action to commit.

The wrapper preserves the repo's replay-determinism contract: the shadow
solve always happens first on the inner controller's own solver and state,
and the advised solve runs on a *separate* solver instance, so when advice
is absent, disabled, or never trusted the committed actions -- and every
derived record array -- are bit-identical to a plain COCA run.

Serving integration: :meth:`ingest_frame` accepts each resolved
:class:`~repro.serve.signals.SignalFrame` and forwards its optional
``forecast`` payload to a :class:`~repro.advice.forecast.FeedForecastProvider`;
a frame that arrives stale, synthesized, or without a payload simply
yields no advice window, so feed degradation lands on the plain-COCA
fallback path instead of stalling the slot loop.
"""

from __future__ import annotations

import numpy as np

from ..core.coca import COCA, default_solver
from ..core.controller import Controller, SlotObservation, SlotOutcome
from ..solvers.base import SlotSolution, SlotSolver
from ..solvers.degraded import solve_with_failed_groups
from ..solvers.problem import InfeasibleError
from .advisor import Advice, ForecastAdvisor
from .trust import TrustGuard

__all__ = ["AdvisedController"]

#: Fields scored for realized forecast error, with the floor applied to
#: each denominator (so near-zero actuals do not blow the error up).
_ERROR_FIELDS = ("arrival", "onsite", "price")
_ERROR_FLOOR = 1e-3


class AdvisedController(Controller):
    """COCA with untrusted forecast advice and a certified fallback.

    Parameters
    ----------
    inner:
        The plain COCA instance to wrap (and to fall back to).
    advisor:
        Advice source; ``None`` makes the wrapper a transparent shell
        around ``inner`` (useful for differential tests).
    guard:
        Trust policy; defaults to a :class:`TrustGuard` with λ = 0.25.
    advice_solver:
        P3 engine for advised solves.  Defaults to a fresh
        :func:`~repro.core.coca.default_solver` instance -- deliberately
        *not* the inner controller's solver, so advised solves cannot
        perturb the shadow path's state.
    """

    def __init__(
        self,
        inner: COCA,
        *,
        advisor: ForecastAdvisor | None = None,
        guard: TrustGuard | None = None,
        advice_solver: SlotSolver | None = None,
    ) -> None:
        self.inner = inner
        self.advisor = advisor
        self.guard = guard if guard is not None else TrustGuard()
        self._advice_solver = (
            advice_solver if advice_solver is not None else default_solver(inner.model)
        )
        self._advice: Advice | None = None
        self._frame_started = -1
        self._prev_committed_on: np.ndarray | None = None
        self._failed: frozenset[int] = frozenset()
        self._injector = None
        self._horizon = inner.portfolio.horizon

    # ------------------------------------------------------------------
    @property
    def model(self):
        return self.inner.model

    @property
    def solver(self):
        """The shadow path's P3 engine (what fault injection wires into)."""
        return self.inner.solver

    @property
    def queue_at_decision(self) -> list[float]:
        return self.inner.queue_at_decision

    @property
    def v_history(self) -> list[float]:
        return self.inner.v_history

    def bind_telemetry(self, telemetry) -> None:
        # The advice solver stays unbound on purpose: advised solves are
        # speculative, and their engine events would double-count the
        # slot's solve attribution.
        super().bind_telemetry(telemetry)
        self.inner.bind_telemetry(telemetry)

    def attach_injector(self, injector) -> None:
        """Route advice windows through the fault injector's forecast
        degradation (called by the simulator when chaos is active)."""
        self._injector = injector

    def set_failed_groups(self, failed: frozenset[int]) -> None:
        self._failed = frozenset(failed)
        self.inner.set_failed_groups(failed)

    def set_solve_deadline(self, budget_ms: float | None) -> None:
        self.inner.set_solve_deadline(budget_ms)
        if hasattr(self._advice_solver, "deadline_ms"):
            self._advice_solver.deadline_ms = budget_ms

    # ------------------------------------------------------------------
    def start(self, environment) -> None:
        self.inner.start(environment)
        if self.advisor is not None and environment.horizon != self.advisor.horizon:
            raise ValueError(
                f"advisor horizon {self.advisor.horizon} does not match "
                f"environment horizon {environment.horizon}"
            )
        if self.telemetry.enabled:
            guard = self.guard
            self.telemetry.emit(
                "advice.config",
                controller=self.name(),
                lam=guard.lam,
                error_threshold=guard.error_threshold,
                regret_threshold=guard.regret_threshold,
                distrust_after=guard.distrust_after,
                trust_after=guard.trust_after,
                initial_trust=guard.initial_trust,
                frame_length=None if self.advisor is None else self.advisor.frame_length,
                provider=None if self.advisor is None else self.advisor.provider.describe(),
            )
            self.telemetry.metrics.gauge("advice.trusted").set(1.0 if guard.trusted else 0.0)

    def decide(self, observation: SlotObservation) -> SlotSolution:
        # Shadow first, on the inner controller's own state: this line is
        # byte-for-byte what a plain COCA run would execute this slot.
        shadow = self.inner.decide(observation)
        if self.advisor is None:
            self._prev_committed_on = shadow.action.on_counts(self.model.fleet)
            return shadow

        t = observation.t
        T = self.advisor.frame_length
        frame = t // T
        if t % T == 0 and frame != self._frame_started:
            self._refresh_advice(t)
            self._frame_started = frame
        # History feedback happens after the frame's window was produced,
        # so causal providers never see the slot they are predicting.
        self.advisor.provider.record_observation(observation)

        advice = self._advice
        error: float | None = None
        advised: SlotSolution | None = None
        if advice is not None and advice.covers(t):
            error = self._window_error(advice, observation)
            advised = self._advised_solve(observation, advice.mu)

        advised_cost = None if advised is None else advised.evaluation.cost
        before = len(self.guard.transitions)
        use_advice = self.guard.assess(
            t,
            error=error,
            advised_cost=advised_cost,
            shadow_cost=shadow.evaluation.cost,
            has_advice=advised is not None,
        )
        committed = advised if use_advice and advised is not None else shadow
        self._prev_committed_on = committed.action.on_counts(self.model.fleet)

        tele = self.telemetry
        if tele.enabled:
            if len(self.guard.transitions) > before:
                at, trusted = self.guard.transitions[-1]
                tele.emit("advice.transition", t=int(at), trusted=bool(trusted))
                tele.metrics.counter("advice.transitions").inc()
            tele.emit(
                "advice.decision",
                t=t,
                used=use_advice,
                trusted=self.guard.trusted,
                has_advice=advised is not None,
                error=error,
                error_ewma=self.guard.error_ewma,
                advised_cost=advised_cost,
                shadow_cost=shadow.evaluation.cost,
                cost_ratio=self.guard.cost_ratio,
                mu=None if advice is None else advice.mu,
            )
            tele.metrics.counter(
                "advice.advised_slots" if use_advice else "advice.fallback_slots"
            ).inc()
            tele.metrics.gauge("advice.trusted").set(1.0 if self.guard.trusted else 0.0)
        return committed

    def _refresh_advice(self, t: int) -> None:
        provider = self.advisor.provider
        window = provider.window(t, self.advisor.frame_length)
        degraded = False
        if window is not None and self._injector is not None:
            fields = window.as_fields()
            out = self._injector.degrade_forecast(t, fields)
            if out is None:
                window = None  # dropout: the forecast is lost entirely
                degraded = True
            elif out is not fields:
                from .forecast import ForecastWindow

                window = ForecastWindow.from_fields(t, out)
                degraded = True
        self._advice = None if window is None else self.advisor.advise(t, window)
        if self.telemetry.enabled:
            advice = self._advice
            self.telemetry.emit(
                "advice.frame",
                t=t,
                has_advice=advice is not None,
                degraded=degraded,
                mu=None if advice is None else advice.mu,
                feasible=None if advice is None else advice.feasible,
                planned_cost=None if advice is None else advice.planned_cost,
                budget=None if advice is None else advice.budget,
            )
            if advice is None:
                self.telemetry.metrics.counter("advice.frames_skipped").inc()
            else:
                self.telemetry.metrics.counter("advice.frames_advised").inc()

    def _window_error(self, advice: Advice, observation: SlotObservation) -> float:
        """Mean relative error of the frame's forecast at this slot."""
        i = observation.t - advice.start
        window = advice.window
        actuals = {
            "arrival": observation.arrival_rate,
            "onsite": observation.onsite,
            "price": observation.price,
        }
        total = 0.0
        for name in _ERROR_FIELDS:
            actual = float(actuals[name])
            predicted = float(getattr(window, name)[i])
            total += abs(predicted - actual) / max(abs(actual), _ERROR_FLOOR)
        return total / len(_ERROR_FIELDS)

    def _advised_solve(
        self, observation: SlotObservation, mu: float
    ) -> SlotSolution | None:
        problem = self.model.slot_problem(
            arrival_rate=observation.arrival_rate,
            onsite=observation.onsite,
            price=observation.price,
            network_delay=observation.network_delay,
            pue_override=observation.pue,
            q=mu,
            V=1.0,
            prev_on_counts=self._prev_committed_on,
        )
        try:
            if self._failed:
                return solve_with_failed_groups(self._advice_solver, problem, self._failed)
            return self._advice_solver.solve(problem)
        except InfeasibleError:
            return None

    # ------------------------------------------------------------------
    def on_fallback(self, observation: SlotObservation, solution: SlotSolution) -> None:
        self.inner.on_fallback(observation, solution)
        self._prev_committed_on = solution.action.on_counts(self.model.fleet)
        if self.advisor is not None:
            # Keep causal forecast history aligned with the slot index.
            self.advisor.provider.record_observation(observation)

    def observe(self, outcome: SlotOutcome) -> None:
        self.inner.observe(outcome)
        if self.advisor is not None:
            self.advisor.provider.record_offsite(outcome.offsite)
        if self.telemetry.enabled and outcome.t == self._horizon - 1:
            self.telemetry.emit("advice.summary", **self.guard.summary())

    # ------------------------------------------------------------ serving
    def ingest_frame(self, frame) -> None:
        """Feed hook: forward a resolved signal frame's forecast payload to
        a feed-backed provider (no-op for every other provider kind)."""
        if self.advisor is None:
            return
        ingest = getattr(self.advisor.provider, "ingest", None)
        if ingest is not None:
            ingest(getattr(frame, "forecast", None))

    def status_dict(self) -> dict:
        status = self.inner.status_dict()
        status["advice"] = {
            "enabled": self.advisor is not None,
            "trusted": self.guard.trusted,
            "lam": self.guard.lam,
            "cost_ratio": self.guard.cost_ratio,
            "advised_slots": self.guard.advised_slots,
            "fallback_slots": self.guard.fallback_slots,
            "error_ewma": self.guard.error_ewma,
        }
        return status

    # -------------------------------------------------------- checkpointing
    def state_dict(self) -> dict:
        from ..state.serialize import encode_array

        provider_state = None
        if self.advisor is not None:
            get = getattr(self.advisor.provider, "state_dict", None)
            provider_state = get() if get is not None else None
        return {
            "inner": self.inner.state_dict(),
            "guard": self.guard.state_dict(),
            "frame_started": int(self._frame_started),
            "advice": None if self._advice is None else self._advice.to_dict(),
            "prev_committed_on": encode_array(self._prev_committed_on),
            "failed": sorted(self._failed),
            "advice_solver": self._advice_solver.state_dict(),
            "provider": provider_state,
        }

    def load_state_dict(self, state: dict) -> None:
        from ..state.serialize import decode_array

        self.inner.load_state_dict(state["inner"])
        self.guard.load_state_dict(state["guard"])
        self._frame_started = int(state["frame_started"])
        advice = state["advice"]
        self._advice = None if advice is None else Advice.from_dict(advice)
        self._prev_committed_on = decode_array(state["prev_committed_on"])
        self._failed = frozenset(int(g) for g in state["failed"])
        self._advice_solver.load_state_dict(state["advice_solver"])
        if self.advisor is not None and state.get("provider") is not None:
            load = getattr(self.advisor.provider, "load_state_dict", None)
            if load is not None:
                load(state["provider"])

    def name(self) -> str:
        return "COCA+advice"
