"""Forecast windows and the providers that produce them.

The advice layer consumes *windows*: for a frame starting at slot ``s``,
per-slot forecasts of arrivals, on-site supply, price, and off-site supply
over ``[s, s + T)``.  A :class:`ForecastProvider` is where those windows
come from:

===============================  =====================================
:class:`TraceForecastProvider`   reads the environment's own traces --
                                 perfect foresight, the "advice is
                                 right" end of the consistency/
                                 robustness trade-off (forecast faults
                                 corrupt it downstream)
:class:`CausalForecastProvider`  runs a :class:`repro.traces.forecast`
                                 forecaster over the history observed so
                                 far -- strictly causal, multi-step by
                                 recursive one-step prediction
:class:`FeedForecastProvider`    serve mode: windows arrive as optional
                                 payloads on :class:`~repro.serve.signals.SignalFrame`
                                 objects; a stale or missing payload
                                 yields no window, which the controller
                                 degrades to plain COCA
===============================  =====================================

Providers never see whether their windows were trusted; they only produce
the advice channel's raw material.  Degradation (forecast faults, feed
staleness) and trust live in :mod:`repro.advice.controller`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from ..traces.forecast import Forecaster, SeasonalNaive

__all__ = [
    "ForecastWindow",
    "ForecastProvider",
    "TraceForecastProvider",
    "CausalForecastProvider",
    "FeedForecastProvider",
]

#: Series a window carries (also the wire-format keys in serve feeds).
WINDOW_FIELDS = ("arrival", "onsite", "price", "offsite")


@dataclass(frozen=True)
class ForecastWindow:
    """Per-slot forecasts over one frame ``[start, start + length)``."""

    start: int
    arrival: np.ndarray
    onsite: np.ndarray
    price: np.ndarray
    offsite: np.ndarray

    def __post_init__(self) -> None:
        for name in WINDOW_FIELDS:
            object.__setattr__(
                self, name, np.asarray(getattr(self, name), dtype=np.float64)
            )
        sizes = {getattr(self, name).size for name in WINDOW_FIELDS}
        if len(sizes) != 1 or 0 in sizes:
            raise ValueError(f"window series must share a positive length, got {sizes}")

    @property
    def length(self) -> int:
        return int(self.arrival.size)

    def as_fields(self) -> dict[str, np.ndarray]:
        """The injector-facing view (see ``FaultInjector.degrade_forecast``)."""
        return {name: getattr(self, name) for name in WINDOW_FIELDS}

    def to_dict(self) -> dict:
        """JSON-ready payload (the serve feed's ``forecast`` field)."""
        out: dict = {"start": int(self.start)}
        for name in WINDOW_FIELDS:
            out[name] = [float(x) for x in getattr(self, name)]
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "ForecastWindow":
        return cls(
            start=int(data["start"]),
            **{name: np.asarray(data[name], dtype=np.float64) for name in WINDOW_FIELDS},
        )

    @classmethod
    def from_fields(cls, start: int, fields: dict[str, np.ndarray]) -> "ForecastWindow":
        return cls(start=start, **{name: fields[name] for name in WINDOW_FIELDS})


class ForecastProvider(ABC):
    """Source of forecast windows for the advisor.

    ``record_observation`` / ``record_offsite`` are the causal feedback
    hooks -- the controller calls them every slot so history-driven
    providers stay current; stateless providers inherit the no-ops.
    """

    @abstractmethod
    def window(self, start: int, length: int) -> ForecastWindow | None:
        """The forecast window for ``[start, start + length)``, or ``None``
        when no (fresh) forecast is available for that frame."""

    def record_observation(self, observation) -> None:
        """One slot's realized observation (called after the frame's
        window was produced, so history stays strictly causal)."""

    def record_offsite(self, offsite: float) -> None:
        """One slot's realized off-site supply (known end of slot)."""

    def describe(self) -> str:
        return type(self).__name__


class TraceForecastProvider(ForecastProvider):
    """Perfect-foresight windows read from the environment's own traces.

    This is deliberately the *best possible* advice: the consistency end
    of the learning-augmented trade-off.  Scenario packs then degrade it
    through seeded forecast faults to study the robustness end.  Reads the
    environment's *predicted* workload (so overestimation studies feed the
    advisor the same erred series the controller plans against).
    """

    def __init__(self, environment) -> None:
        self.environment = environment

    def window(self, start: int, length: int) -> ForecastWindow | None:
        horizon = self.environment.horizon
        if start < 0 or start >= horizon:
            return None
        stop = min(start + length, horizon)
        sl = slice(start, stop)
        return ForecastWindow(
            start=start,
            arrival=self.environment.predicted_workload.values[sl],
            onsite=self.environment.portfolio.onsite.values[sl],
            price=self.environment.price.values[sl],
            offsite=self.environment.portfolio.offsite.values[sl],
        )

    def describe(self) -> str:
        return f"trace({self.environment.horizon} slots)"


class CausalForecastProvider(ForecastProvider):
    """Windows forecast from observed history with a
    :class:`~repro.traces.forecast.Forecaster`.

    Multi-step forecasts come from recursive one-step prediction: the
    forecaster predicts the next slot from history, the prediction is
    appended, and the recursion continues -- for :class:`SeasonalNaive`
    this reduces to "same hour yesterday", the right baseline for the
    diurnal traces here.  Until any history exists the provider returns
    no window, so frame 0 always runs plain COCA (strict causality).
    """

    def __init__(self, forecaster: Forecaster | None = None) -> None:
        self.forecaster = forecaster if forecaster is not None else SeasonalNaive()
        self._history: dict[str, list[float]] = {name: [] for name in WINDOW_FIELDS}

    def record_observation(self, observation) -> None:
        self._history["arrival"].append(float(observation.arrival_rate))
        self._history["onsite"].append(float(observation.onsite))
        self._history["price"].append(float(observation.price))

    def record_offsite(self, offsite: float) -> None:
        self._history["offsite"].append(float(offsite))

    def _multistep(self, history: list[float], length: int) -> np.ndarray:
        extended = list(history)
        out = []
        for _ in range(length):
            # predict_series(values)[-1] predicts the last index from
            # values[:-1], so the appended placeholder is never read.
            series = np.asarray(extended + [extended[-1]], dtype=np.float64)
            nxt = float(self.forecaster.predict_series(series)[-1])
            out.append(max(nxt, 0.0))
            extended.append(out[-1])
        return np.asarray(out, dtype=np.float64)

    def window(self, start: int, length: int) -> ForecastWindow | None:
        if length < 1 or not self._history["arrival"]:
            return None
        fields = {}
        for name in ("arrival", "onsite", "price"):
            fields[name] = self._multistep(self._history[name], length)
        # Off-site realizations lag observations by one slot; fall back to
        # the on-site history length when none have been recorded yet.
        offsite_hist = self._history["offsite"] or [0.0]
        fields["offsite"] = self._multistep(offsite_hist, length)
        return ForecastWindow(start=start, **fields)

    def describe(self) -> str:
        return f"causal({self.forecaster.name()})"

    def state_dict(self) -> dict:
        return {name: list(values) for name, values in self._history.items()}

    def load_state_dict(self, state: dict) -> None:
        self._history = {
            name: [float(x) for x in state.get(name, [])] for name in WINDOW_FIELDS
        }


class FeedForecastProvider(ForecastProvider):
    """Windows delivered by the serving feed, one per frame boundary.

    :meth:`ingest` is called with every resolved frame's optional
    ``forecast`` payload; :meth:`window` hands out the stored window only
    when its ``start`` matches the requested frame -- a stale window (left
    over from an earlier frame because the feed lost the fresh one) is
    *not* reused, so staleness degrades to plain COCA instead of steering
    the fleet with outdated advice.
    """

    def __init__(self) -> None:
        self._window: ForecastWindow | None = None
        self.ingested = 0
        self.stale_rejected = 0

    def ingest(self, payload: dict | None) -> None:
        """Store a feed frame's forecast payload (``None`` = none aboard)."""
        if payload is None:
            return
        self._window = ForecastWindow.from_dict(payload)
        self.ingested += 1

    def window(self, start: int, length: int) -> ForecastWindow | None:
        window = self._window
        if window is None:
            return None
        if window.start != start:
            self.stale_rejected += 1
            return None
        return window

    def describe(self) -> str:
        return f"feed({self.ingested} windows)"

    def state_dict(self) -> dict:
        return {
            "window": None if self._window is None else self._window.to_dict(),
            "ingested": int(self.ingested),
            "stale_rejected": int(self.stale_rejected),
        }

    def load_state_dict(self, state: dict) -> None:
        window = state.get("window")
        self._window = None if window is None else ForecastWindow.from_dict(window)
        self.ingested = int(state.get("ingested", 0))
        self.stale_rejected = int(state.get("stale_rejected", 0))
