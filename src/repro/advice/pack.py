"""The declarative advice scenario pack behind ``repro scenarios``.

Each scenario is one named, fully reproducible experiment: a
:func:`~repro.scenarios.small_scenario` environment, an advised controller
(COCA wrapped with a :class:`~repro.advice.controller.AdvisedController`),
a plain-COCA reference run over the *same* traces and fault schedule, and
the forecast-fault storyline that gives the scenario its name:

``advice-good``
    Perfect trace-backed forecasts, no faults -- the consistency end:
    advice stays trusted and the advised run should match or beat plain
    COCA.
``advice-degrading``
    The forecaster decays mid-run: a bias burst, then a dropout window,
    then lead-time drift.  Exercises the trust hysteresis both ways.
``advice-adversarial``
    From the second frame on, forecasts are adversarially flipped
    (high where reality is low).  The guard must fall back and the
    certified bound must hold: advised cost ≤ (1+λ) × plain COCA.

Every run is seeded and slot-deterministic, so scenario outputs are
replayable by name -- ROADMAP item 3's declarative scenario pack.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..core.coca import COCA
from ..faults.schedule import FaultEvent, FaultSchedule
from ..scenarios import Scenario, small_scenario
from ..sim.engine import simulate
from ..sim.metrics import SimulationRecord
from .controller import AdvisedController
from .advisor import ForecastAdvisor
from .forecast import TraceForecastProvider
from .trust import TrustGuard

__all__ = [
    "SCENARIOS",
    "AdviceScenarioSpec",
    "AdviceRunResult",
    "list_scenarios",
    "run_scenario",
]

#: Pack-wide controller parameters (shared so runs are comparable).
PACK_FRAME = 24
PACK_HORIZON = 24 * 7


@dataclass(frozen=True)
class AdviceScenarioSpec:
    """One named scenario: a storyline of forecast faults over a horizon."""

    name: str
    description: str
    #: horizon -> forecast fault events (empty tuple = clean forecasts).
    events: Callable[[int], tuple[FaultEvent, ...]] = field(repr=False)

    def schedule(self, horizon: int) -> FaultSchedule | None:
        events = self.events(horizon)
        if not events:
            return None
        return FaultSchedule(events=events)


def _good(horizon: int) -> tuple[FaultEvent, ...]:
    return ()


def _degrading(horizon: int) -> tuple[FaultEvent, ...]:
    quarter = max(horizon // 4, PACK_FRAME)
    return (
        FaultEvent(t=quarter, kind="forecast", mode="bias",
                   duration=quarter, magnitude=0.5),
        FaultEvent(t=2 * quarter, kind="forecast", mode="dropout",
                   duration=max(quarter // 2, 1)),
        FaultEvent(t=2 * quarter + max(quarter // 2, 1), kind="forecast",
                   mode="drift", duration=quarter, magnitude=0.7),
    )


def _adversarial(horizon: int) -> tuple[FaultEvent, ...]:
    # Frame 0 plans on clean forecasts; everything after is flipped.
    return (
        FaultEvent(t=PACK_FRAME, kind="forecast", mode="adversarial",
                   duration=max(horizon - PACK_FRAME, 1)),
    )


SCENARIOS: dict[str, AdviceScenarioSpec] = {
    spec.name: spec
    for spec in (
        AdviceScenarioSpec(
            name="advice-good",
            description="perfect forecasts, no faults: advice stays trusted",
            events=_good,
        ),
        AdviceScenarioSpec(
            name="advice-degrading",
            description="bias burst, dropout window, then drift: trust falls and recovers",
            events=_degrading,
        ),
        AdviceScenarioSpec(
            name="advice-adversarial",
            description="adversarially flipped forecasts: certified (1+λ) fallback bound",
            events=_adversarial,
        ),
    )
}


def list_scenarios() -> list[tuple[str, str]]:
    """``(name, description)`` pairs, registry order."""
    return [(s.name, s.description) for s in SCENARIOS.values()]


@dataclass(frozen=True)
class AdviceRunResult:
    """Outcome of one scenario: the advised run against its plain shadow."""

    name: str
    lam: float
    horizon: int
    v: float
    advised: SimulationRecord
    plain: SimulationRecord
    guard: dict

    @property
    def advised_cost(self) -> float:
        return float(self.advised.cost.sum())

    @property
    def plain_cost(self) -> float:
        return float(self.plain.cost.sum())

    @property
    def cost_ratio(self) -> float:
        """Realized advised / plain total cost (the bench-gated quantity)."""
        if self.plain_cost <= 0.0:
            return 1.0
        return self.advised_cost / self.plain_cost

    @property
    def bound(self) -> float:
        return 1.0 + self.lam

    @property
    def bound_holds(self) -> bool:
        return self.cost_ratio <= self.bound + 1e-9

    @property
    def bit_identical(self) -> bool:
        """Whether the advised run committed plain COCA's actions everywhere."""
        return bool(
            np.array_equal(self.advised.cost, self.plain.cost)
            and np.array_equal(self.advised.brown_energy, self.plain.brown_energy)
            and np.array_equal(self.advised.queue, self.plain.queue)
        )

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "lam": self.lam,
            "horizon": self.horizon,
            "v": self.v,
            "advised_cost": self.advised_cost,
            "plain_cost": self.plain_cost,
            "cost_ratio": self.cost_ratio,
            "bound": self.bound,
            "bound_holds": self.bound_holds,
            "bit_identical": self.bit_identical,
            "advised_brown": float(self.advised.brown_energy.sum()),
            "plain_brown": float(self.plain.brown_energy.sum()),
            "guard": self.guard,
        }


def neutral_v(scenario: Scenario) -> float:
    """The pack's ``V`` calibration: the largest constant ``V`` for which
    plain COCA still reaches carbon neutrality on the scenario (the
    paper's own "appropriately choose V" rule).  Deterministic, so every
    scenario run on the same environment uses the same ``V``."""
    from ..analysis import find_neutral_v

    return find_neutral_v(scenario, iters=8)


def build_advised(
    scenario: Scenario,
    *,
    v: float,
    lam: float = 0.25,
    frame_length: int = PACK_FRAME,
    guard: TrustGuard | None = None,
) -> AdvisedController:
    """The pack's advised controller: trace-backed advice over COCA."""
    inner = COCA(
        scenario.model,
        scenario.environment.portfolio,
        v_schedule=v,
        alpha=scenario.alpha,
    )
    advisor = ForecastAdvisor(
        scenario.model,
        scenario.environment.portfolio,
        frame_length=frame_length,
        horizon=scenario.horizon,
        provider=TraceForecastProvider(scenario.environment),
        alpha=scenario.alpha,
    )
    if guard is None:
        guard = TrustGuard(lam=lam)
    return AdvisedController(inner, advisor=advisor, guard=guard)


def build_plain(scenario: Scenario, *, v: float) -> COCA:
    """The reference controller the bound is measured against."""
    return COCA(
        scenario.model,
        scenario.environment.portfolio,
        v_schedule=v,
        alpha=scenario.alpha,
    )


def run_scenario(
    name: str,
    *,
    horizon: int = PACK_HORIZON,
    lam: float = 0.25,
    scenario: Scenario | None = None,
    v: float | None = None,
    telemetry=None,
    guard: TrustGuard | None = None,
) -> AdviceRunResult:
    """Run one named scenario and its plain-COCA reference.

    Both runs share the environment, the (neutrality-calibrated) ``V``,
    and the fault schedule (forecast faults only touch the advice
    channel, so the plain run doubles as the clean reference).
    ``telemetry`` instruments the advised run -- that is where the
    ``advice.*`` stream and its monitors live.
    """
    if name not in SCENARIOS:
        known = ", ".join(sorted(SCENARIOS))
        raise KeyError(f"unknown scenario {name!r} (known: {known})")
    spec = SCENARIOS[name]
    if scenario is None:
        scenario = small_scenario(horizon=horizon)
    horizon = scenario.horizon
    if horizon % PACK_FRAME != 0:
        raise ValueError(f"scenario horizon {horizon} must be a multiple of {PACK_FRAME}")
    if v is None:
        v = neutral_v(scenario)

    advised_controller = build_advised(scenario, v=v, lam=lam, guard=guard)
    advised = simulate(
        scenario.model,
        advised_controller,
        scenario.environment,
        faults=spec.schedule(horizon),
        telemetry=telemetry,
    )
    plain = simulate(
        scenario.model,
        build_plain(scenario, v=v),
        scenario.environment,
        faults=spec.schedule(horizon),
    )
    return AdviceRunResult(
        name=name,
        lam=lam,
        horizon=horizon,
        v=v,
        advised=advised,
        plain=plain,
        guard=advised_controller.guard.summary(),
    )
