"""Online trust tracking with hysteresis and a certified cost budget.

The :class:`TrustGuard` decides, every slot, whether the advised action
or the shadow (plain-COCA) action is committed.  Two mechanisms compose:

**Hysteresis trust state.**  A slot is *bad* when advice is absent, the
EWMA of realized forecast error exceeds ``error_threshold``, or the
advised slot cost exceeds ``(1 + regret_threshold)`` times the shadow
cost.  ``distrust_after`` consecutive bad slots flip the guard to
untrusted; ``trust_after`` consecutive good slots flip it back.  Streaks
reset on every transition, so two transitions are always at least
``min(distrust_after, trust_after)`` slots apart -- the no-flapping
property the hypothesis suite pins down.

**Certified (1+λ) budget.**  Independent of the trust state, an advised
action is committed only if doing so keeps

    committed_cost + advised_slot ≤ (1 + λ) · (shadow_cost + shadow_slot)

When the advised action is rejected (by trust or by budget) the shadow
action is committed, and both sides of the inequality grow by the same
shadow slot cost -- so the invariant ``committed ≤ (1+λ)·shadow`` holds
inductively at every slot, for *any* advice sequence.  That is the
worst-case robustness bound `bench_advice` gates on; it follows the
budget-check pattern of LACS (arXiv 2404.15211).
"""

from __future__ import annotations

__all__ = ["TrustGuard"]


class TrustGuard:
    """Per-slot advice gating: hysteresis trust plus a (1+λ) cost budget.

    Parameters
    ----------
    lam:
        Robustness knob λ ≥ 0.  Committed cost never exceeds
        ``(1 + lam)`` times the cost plain COCA would have paid on the
        same run.  ``lam = 0`` disables advice entirely (any positive
        advised excess would break the budget).
    error_threshold:
        EWMA relative forecast error above which a slot counts as bad.
    regret_threshold:
        Relative advised-vs-shadow slot cost excess above which a slot
        counts as bad.
    distrust_after / trust_after:
        Hysteresis streak lengths (bad slots to distrust, good slots to
        re-trust).  ``trust_after`` should be the larger: distrust fast,
        re-trust slowly.
    error_alpha:
        EWMA smoothing weight for the realized forecast error.
    initial_trust:
        Whether the guard starts out trusting advice.
    """

    def __init__(
        self,
        *,
        lam: float = 0.25,
        error_threshold: float = 0.35,
        regret_threshold: float = 0.30,
        distrust_after: int = 3,
        trust_after: int = 12,
        error_alpha: float = 0.3,
        initial_trust: bool = True,
    ) -> None:
        if lam < 0.0:
            raise ValueError(f"lam must be >= 0, got {lam}")
        if error_threshold <= 0.0 or regret_threshold < 0.0:
            raise ValueError("thresholds must be positive")
        if distrust_after < 1 or trust_after < 1:
            raise ValueError("hysteresis streaks must be >= 1")
        if not 0.0 < error_alpha <= 1.0:
            raise ValueError(f"error_alpha must be in (0, 1], got {error_alpha}")
        self.lam = float(lam)
        self.error_threshold = float(error_threshold)
        self.regret_threshold = float(regret_threshold)
        self.distrust_after = int(distrust_after)
        self.trust_after = int(trust_after)
        self.error_alpha = float(error_alpha)
        self.initial_trust = bool(initial_trust)

        self.trusted = bool(initial_trust)
        self.error_ewma = 0.0
        self._bad_streak = 0
        self._good_streak = 0
        # Cost accounting for the certified budget.
        self.committed_cost = 0.0
        self.shadow_cost = 0.0
        self.advised_slots = 0
        self.fallback_slots = 0
        self.budget_blocks = 0
        self.transitions: list[tuple[int, bool]] = []

    # ------------------------------------------------------------------
    def assess(
        self,
        t: int,
        *,
        error: float | None,
        advised_cost: float | None,
        shadow_cost: float,
        has_advice: bool,
    ) -> bool:
        """Gate one slot; returns ``True`` iff the advised action commits.

        ``error`` is the realized relative forecast error for the slot
        (``None`` when no forecast covered it), ``advised_cost`` /
        ``shadow_cost`` the slot costs of the advised and plain actions.
        The caller commits whichever action this returns and must report
        the same costs it passed in -- the guard does its own accounting.
        """
        shadow_cost = float(shadow_cost)
        if error is not None:
            self.error_ewma += self.error_alpha * (float(error) - self.error_ewma)

        regret_bad = False
        if advised_cost is not None and shadow_cost > 0.0:
            regret_bad = float(advised_cost) > (1.0 + self.regret_threshold) * shadow_cost
        bad = (
            not has_advice
            or advised_cost is None
            or self.error_ewma > self.error_threshold
            or regret_bad
        )
        self._update_state(t, bad)

        use_advice = self.trusted and has_advice and advised_cost is not None
        if use_advice:
            # Certified budget: committing must preserve
            # committed <= (1+lam) * shadow after this slot.
            allowed = (1.0 + self.lam) * (self.shadow_cost + shadow_cost)
            if self.committed_cost + float(advised_cost) > allowed:
                use_advice = False
                self.budget_blocks += 1

        self.shadow_cost += shadow_cost
        if use_advice:
            self.committed_cost += float(advised_cost)
            self.advised_slots += 1
        else:
            self.committed_cost += shadow_cost
            self.fallback_slots += 1
        return use_advice

    def _update_state(self, t: int, bad: bool) -> None:
        if bad:
            self._bad_streak += 1
            self._good_streak = 0
            if self.trusted and self._bad_streak >= self.distrust_after:
                self.trusted = False
                self._bad_streak = 0
                self.transitions.append((t, False))
        else:
            self._good_streak += 1
            self._bad_streak = 0
            if not self.trusted and self._good_streak >= self.trust_after:
                self.trusted = True
                self._good_streak = 0
                self.transitions.append((t, True))

    # ------------------------------------------------------------------
    @property
    def cost_ratio(self) -> float:
        """Committed / shadow cost so far (1.0 before any cost accrues)."""
        if self.shadow_cost <= 0.0:
            return 1.0
        return self.committed_cost / self.shadow_cost

    def summary(self) -> dict:
        return {
            "lam": self.lam,
            "trusted": self.trusted,
            "error_ewma": self.error_ewma,
            "committed_cost": self.committed_cost,
            "shadow_cost": self.shadow_cost,
            "cost_ratio": self.cost_ratio,
            "advised_slots": self.advised_slots,
            "fallback_slots": self.fallback_slots,
            "budget_blocks": self.budget_blocks,
            "transitions": [[int(t), bool(up)] for t, up in self.transitions],
        }

    def state_dict(self) -> dict:
        return {
            "trusted": self.trusted,
            "error_ewma": self.error_ewma,
            "bad_streak": self._bad_streak,
            "good_streak": self._good_streak,
            "committed_cost": self.committed_cost,
            "shadow_cost": self.shadow_cost,
            "advised_slots": self.advised_slots,
            "fallback_slots": self.fallback_slots,
            "budget_blocks": self.budget_blocks,
            "transitions": [[int(t), bool(up)] for t, up in self.transitions],
        }

    def load_state_dict(self, state: dict) -> None:
        self.trusted = bool(state["trusted"])
        self.error_ewma = float(state["error_ewma"])
        self._bad_streak = int(state["bad_streak"])
        self._good_streak = int(state["good_streak"])
        self.committed_cost = float(state["committed_cost"])
        self.shadow_cost = float(state["shadow_cost"])
        self.advised_slots = int(state["advised_slots"])
        self.fallback_slots = int(state["fallback_slots"])
        self.budget_blocks = int(state["budget_blocks"])
        self.transitions = [(int(t), bool(up)) for t, up in state["transitions"]]
