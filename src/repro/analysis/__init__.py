"""Analysis: experiment sweeps, run comparisons, table rendering."""

from .report import scenario_report
from .stats import (
    TraceSummary,
    autocorrelation,
    exceedance_hours,
    load_duration_curve,
    peak_to_mean,
    summarize_trace,
)
from .summary import compare_records, cost_saving, time_bucket_rows
from .sweep import (
    advice_overestimation_sweep,
    budget_sweep,
    compare_with_perfecthp,
    find_neutral_v,
    overestimation_sweep,
    portfolio_sweep,
    run_coca,
    run_varying_v,
    sweep_constant_v,
    switching_sweep,
)
from .tables import format_value, render_table

__all__ = [
    "run_coca",
    "sweep_constant_v",
    "find_neutral_v",
    "run_varying_v",
    "compare_with_perfecthp",
    "budget_sweep",
    "overestimation_sweep",
    "advice_overestimation_sweep",
    "switching_sweep",
    "portfolio_sweep",
    "compare_records",
    "cost_saving",
    "time_bucket_rows",
    "render_table",
    "format_value",
    "scenario_report",
    "summarize_trace",
    "TraceSummary",
    "load_duration_curve",
    "autocorrelation",
    "peak_to_mean",
    "exceedance_hours",
]
