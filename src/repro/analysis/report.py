"""Scenario report generator: one markdown document per experiment run.

``scenario_report`` runs the core comparison (carbon-unaware, COCA at its
neutral V, optionally OPT) on a scenario and renders a self-contained
markdown report -- inputs, trace statistics, controller comparison, deficit
queue behaviour -- the artifact a user would attach to a capacity-planning
decision.  Exposed on the command line as ``python -m repro report``.
"""

from __future__ import annotations

import numpy as np

from ..baselines import CarbonUnaware, OfflineOptimal
from ..scenarios import Scenario
from ..sim import simulate
from .stats import summarize_trace
from .sweep import find_neutral_v, run_coca
from .tables import render_table

__all__ = ["scenario_report"]


def _md_table(rows: list[dict]) -> str:
    """Minimal markdown table from mapping rows."""
    if not rows:
        return "(empty)\n"
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)

    def fmt(v) -> str:
        if isinstance(v, bool):
            return "yes" if v else "no"
        if isinstance(v, float):
            return f"{v:,.4g}"
        return str(v)

    head = "| " + " | ".join(columns) + " |"
    rule = "|" + "|".join("---" for _ in columns) + "|"
    body = "\n".join(
        "| " + " | ".join(fmt(row.get(c, "")) for c in columns) + " |" for row in rows
    )
    return "\n".join([head, rule, body]) + "\n"


def scenario_report(
    scenario: Scenario,
    *,
    v: float | None = None,
    include_opt: bool = True,
    v_iters: int = 9,
    telemetry=None,
) -> str:
    """Run the core comparison and return the markdown report text."""
    env = scenario.environment
    portfolio = env.portfolio

    lines: list[str] = []
    lines.append("# COCA scenario report\n")
    lines.append("## Scenario\n")
    lines.append(
        _md_table(
            [
                {
                    "servers": scenario.model.fleet.num_servers,
                    "groups": scenario.model.fleet.num_groups,
                    "horizon (h)": scenario.horizon,
                    "beta": scenario.model.beta,
                    "gamma": scenario.model.gamma,
                    "alpha": scenario.alpha,
                    "budget (MWh)": scenario.budget,
                    "budget / unaware": scenario.budget_fraction,
                    "offsite share": portfolio.offsite_fraction,
                }
            ]
        )
    )

    lines.append("## Input traces\n")
    lines.append(
        _md_table(
            [
                summarize_trace(env.actual_workload).as_row(),
                summarize_trace(env.price).as_row(),
                summarize_trace(portfolio.onsite).as_row(),
                summarize_trace(portfolio.offsite).as_row(),
            ]
        )
    )

    # Controllers.
    unaware = simulate(
        scenario.model, CarbonUnaware(scenario.model), env, telemetry=telemetry
    )
    v_used = v if v is not None else find_neutral_v(scenario, iters=v_iters)
    coca_record, coca = run_coca(scenario, v_used, telemetry=telemetry)
    records = [("carbon-unaware", unaware), ("COCA", coca_record)]
    if include_opt:
        opt = OfflineOptimal(scenario.model, budget=scenario.budget, alpha=scenario.alpha)
        records.append(
            ("OPT (offline)", simulate(scenario.model, opt, env, telemetry=telemetry))
        )

    lines.append(f"## Controllers (COCA V = {v_used:.4g})\n")
    rows = []
    for name, rec in records:
        summary = rec.summary(portfolio, scenario.alpha)
        rows.append(
            {
                "controller": name,
                "avg cost ($/h)": summary.average_cost,
                "vs unaware": summary.average_cost / unaware.average_cost,
                "elec share": summary.average_electricity_cost / summary.average_cost,
                "brown (MWh)": summary.total_brown,
                "brown / budget": summary.total_brown / scenario.budget,
                "neutral": summary.is_neutral,
            }
        )
    lines.append(_md_table(rows))

    lines.append("## Carbon-deficit queue (COCA)\n")
    q = np.asarray(coca.queue.history)
    lines.append(
        _md_table(
            [
                {
                    "final length (MWh)": float(q[-1]) if q.size else 0.0,
                    "peak length (MWh)": float(q.max()) if q.size else 0.0,
                    "mean length (MWh)": float(q.mean()) if q.size else 0.0,
                    "slots at zero": int(np.sum(q == 0.0)),
                    "required true-up (MWh)": coca_record.ledger(
                        portfolio, scenario.alpha
                    ).required_trueup(),
                }
            ]
        )
    )

    lines.append("## Notes\n")
    lines.append(
        "- Costs combine electricity (Eq. 3) and delay (Eq. 4) per the "
        "paper's Eq. (5); see EXPERIMENTS.md for the unit calibration.\n"
        "- `neutral` means total brown energy within alpha x (off-site "
        "renewables + RECs) over the horizon (Eq. 10).\n"
    )
    return "\n".join(lines)
