"""Descriptive statistics for traces and run records.

The quantities capacity planners actually look at: load-duration curves
(how many hours per year exceed a level -- the shape that determines how
much fleet right-sizing can save), autocorrelation (how predictable the
next hour is), peak-to-mean ratios, and a one-stop summary used by the
report generator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..traces.base import Trace

__all__ = [
    "load_duration_curve",
    "autocorrelation",
    "peak_to_mean",
    "exceedance_hours",
    "TraceSummary",
    "summarize_trace",
]


def load_duration_curve(trace: Trace, points: int = 100) -> np.ndarray:
    """Values sorted descending, sampled at ``points`` evenly spaced
    exceedance fractions (entry ``i`` = the level exceeded for fraction
    ``i/(points-1)`` of the time)."""
    if points < 2:
        raise ValueError("need at least two points")
    ordered = np.sort(trace.values)[::-1]
    idx = np.linspace(0, ordered.size - 1, points).astype(int)
    return ordered[idx]


def autocorrelation(values: np.ndarray, max_lag: int = 48) -> np.ndarray:
    """Sample autocorrelation at lags ``0..max_lag`` (biased estimator)."""
    values = np.asarray(values, dtype=np.float64)
    if values.size < 2:
        raise ValueError("need at least two samples")
    max_lag = min(max_lag, values.size - 1)
    x = values - values.mean()
    denom = float(np.dot(x, x))
    if denom == 0.0:
        return np.concatenate(([1.0], np.zeros(max_lag)))
    out = np.empty(max_lag + 1)
    for lag in range(max_lag + 1):
        out[lag] = float(np.dot(x[: values.size - lag], x[lag:])) / denom
    return out


def peak_to_mean(trace: Trace) -> float:
    """Peak-to-mean ratio (burstiness in the capacity-planning sense)."""
    if trace.mean <= 0:
        raise ValueError("trace mean must be positive")
    return trace.peak / trace.mean


def exceedance_hours(trace: Trace, level: float) -> int:
    """Number of slots at or above ``level``."""
    return int(np.sum(trace.values >= level))


@dataclass(frozen=True)
class TraceSummary:
    """One-stop descriptive summary of a trace."""

    name: str
    horizon: int
    mean: float
    peak: float
    p95: float
    peak_to_mean: float
    lag1_autocorr: float
    lag24_autocorr: float
    coefficient_of_variation: float

    def as_row(self) -> dict:
        """Flat dict for table rendering."""
        return {
            "trace": self.name,
            "mean": self.mean,
            "p95": self.p95,
            "peak": self.peak,
            "peak/mean": self.peak_to_mean,
            "rho(1h)": self.lag1_autocorr,
            "rho(24h)": self.lag24_autocorr,
            "CV": self.coefficient_of_variation,
        }


def summarize_trace(trace: Trace) -> TraceSummary:
    """Compute the :class:`TraceSummary` of a trace."""
    acf = autocorrelation(trace.values, max_lag=min(24, len(trace) - 1))
    mean = trace.mean
    return TraceSummary(
        name=trace.name,
        horizon=len(trace),
        mean=mean,
        peak=trace.peak,
        p95=float(np.quantile(trace.values, 0.95)),
        peak_to_mean=trace.peak / mean if mean > 0 else np.inf,
        lag1_autocorr=float(acf[1]) if acf.size > 1 else 1.0,
        lag24_autocorr=float(acf[24]) if acf.size > 24 else float("nan"),
        coefficient_of_variation=float(trace.values.std() / mean) if mean > 0 else np.inf,
    )
