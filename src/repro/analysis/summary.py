"""Cross-run comparison helpers.

Turn a set of :class:`~repro.sim.metrics.SimulationRecord` runs into
normalized comparison rows: who is cheapest, who is neutral, and by what
factors -- the quantities the paper's headline claims are stated in
("reduces cost by more than 25% ... while resulting in a smaller carbon
footprint").
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..energy.renewables import RenewablePortfolio
from ..sim.metrics import SimulationRecord

__all__ = ["compare_records", "cost_saving", "time_bucket_rows"]


def compare_records(
    records: Sequence[SimulationRecord],
    portfolio: RenewablePortfolio,
    *,
    alpha: float = 1.0,
    baseline: str | None = None,
) -> list[dict]:
    """One row per record with costs normalized to ``baseline`` (default:
    the first record)."""
    if not records:
        return []
    base_name = baseline if baseline is not None else records[0].controller
    base = next((r for r in records if r.controller == base_name), None)
    if base is None:
        raise ValueError(f"baseline record {base_name!r} not found")
    rows = []
    for rec in records:
        summary = rec.summary(portfolio, alpha)
        rows.append(
            {
                "controller": rec.controller,
                "avg_cost": summary.average_cost,
                "cost_vs_base": summary.average_cost / base.average_cost,
                "avg_deficit": summary.average_deficit,
                "brown": summary.total_brown,
                "neutral": summary.is_neutral,
            }
        )
    return rows


def cost_saving(ours: SimulationRecord, theirs: SimulationRecord) -> float:
    """Fractional saving of ``ours`` relative to ``theirs`` (0.25 = 25%)."""
    if theirs.average_cost <= 0:
        raise ValueError("reference record has non-positive cost")
    return 1.0 - ours.average_cost / theirs.average_cost


def time_bucket_rows(
    records: Sequence[SimulationRecord],
    portfolio: RenewablePortfolio,
    *,
    alpha: float = 1.0,
    buckets: int = 12,
    kind: str = "running",
    window: int = 45 * 24,
) -> list[dict]:
    """Sample each record's cost/deficit time series at ``buckets`` evenly
    spaced slots -- the tabular rendering of Fig. 2(c,d) ("moving", 45-day
    trailing window) and Fig. 3 ("running" averages)."""
    if not records:
        return []
    horizon = records[0].horizon
    idx = np.unique(np.linspace(0, horizon - 1, buckets).astype(int))
    rows = []
    for t in idx:
        row: dict = {"slot": int(t)}
        for rec in records:
            if kind == "running":
                cost = rec.running_average_cost()
                deficit = rec.running_average_deficit(portfolio, alpha)
            elif kind == "moving":
                cost = rec.moving_average_cost(window)
                deficit = rec.moving_average_deficit(portfolio, alpha, window)
            else:
                raise ValueError("kind must be 'running' or 'moving'")
            row[f"{rec.controller} cost"] = float(cost[t])
            row[f"{rec.controller} deficit"] = float(deficit[t])
        rows.append(row)
    return rows
