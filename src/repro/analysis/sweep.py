"""Experiment drivers: the parameter sweeps behind every figure.

Each function runs controllers over a :class:`~repro.scenarios.Scenario`
and returns plain row dictionaries (ready for
:func:`repro.analysis.tables.render_table` or further processing), so the
benchmark harness, the examples, and ad-hoc notebooks share one
implementation of each experiment.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..baselines.carbon_unaware import CarbonUnaware
from ..baselines.offline_opt import OfflineOptimal
from ..baselines.perfect_hp import PerfectHP
from ..core.coca import COCA
from ..core.vschedule import VSchedule
from ..scenarios import Scenario
from ..sim.engine import simulate
from ..sim.metrics import SimulationRecord
from ..traces.noise import overestimate

__all__ = [
    "run_coca",
    "sweep_constant_v",
    "find_neutral_v",
    "run_varying_v",
    "compare_with_perfecthp",
    "budget_sweep",
    "overestimation_sweep",
    "switching_sweep",
    "portfolio_sweep",
]


def run_coca(
    scenario: Scenario,
    v_schedule: VSchedule | float,
    *,
    frame_length: int | None = None,
) -> tuple[SimulationRecord, COCA]:
    """Run COCA once on the scenario; returns (record, controller)."""
    controller = COCA(
        scenario.model,
        scenario.environment.portfolio,
        v_schedule=v_schedule,
        frame_length=frame_length,
        alpha=scenario.alpha,
    )
    record = simulate(scenario.model, controller, scenario.environment)
    return record, controller


def sweep_constant_v(scenario: Scenario, v_values: Sequence[float]) -> list[dict]:
    """Fig. 2(a,b): average hourly cost and carbon deficit vs constant V."""
    portfolio = scenario.environment.portfolio
    rows = []
    for v in v_values:
        record, _ = run_coca(scenario, float(v))
        rows.append(
            {
                "V": float(v),
                "avg_cost": record.average_cost,
                "avg_deficit": record.average_deficit(portfolio, scenario.alpha),
                "brown": record.total_brown,
                "brown_fraction": record.total_brown / scenario.unaware_brown,
                "neutral": record.ledger(portfolio, scenario.alpha).is_neutral(),
            }
        )
    return rows


def find_neutral_v(
    scenario: Scenario,
    *,
    v_lo: float = 1e-3,
    v_hi: float = 1e6,
    iters: int = 12,
) -> float:
    """Largest (cheapest) constant ``V`` that still satisfies neutrality.

    Brown energy is monotonically nondecreasing in ``V`` (more cost focus,
    less deficit pressure), so bisection applies.  This automates the
    paper's "we appropriately choose V such that carbon neutrality is
    satisfied" for the sensitivity studies.
    """
    portfolio = scenario.environment.portfolio

    def neutral(v: float) -> bool:
        record, _ = run_coca(scenario, v)
        return record.ledger(portfolio, scenario.alpha).is_neutral()

    if neutral(v_hi):
        return v_hi
    if not neutral(v_lo):
        raise ValueError(
            f"even V={v_lo} violates neutrality; the budget may be infeasible"
        )
    lo, hi = v_lo, v_hi
    for _ in range(iters):
        mid = float(np.sqrt(lo * hi))  # geometric: V spans decades
        if neutral(mid):
            lo = mid
        else:
            hi = mid
    return lo


def run_varying_v(
    scenario: Scenario,
    v_schedule: VSchedule | Sequence[float],
    frame_length: int,
) -> tuple[SimulationRecord, COCA]:
    """Fig. 2(c,d): COCA with per-frame V values (e.g. quarterly)."""
    from ..core.vschedule import FrameV

    if not isinstance(v_schedule, VSchedule):
        v_schedule = FrameV(tuple(float(v) for v in v_schedule))
    return run_coca(scenario, v_schedule, frame_length=frame_length)


def compare_with_perfecthp(scenario: Scenario, v: float) -> dict:
    """Fig. 3: COCA vs PerfectHP records plus headline ratios."""
    portfolio = scenario.environment.portfolio
    coca_record, _ = run_coca(scenario, v)
    hp = PerfectHP(scenario.model, alpha=scenario.alpha)
    hp_record = simulate(scenario.model, hp, scenario.environment)
    return {
        "coca": coca_record,
        "perfecthp": hp_record,
        "cost_saving": 1.0 - coca_record.average_cost / hp_record.average_cost,
        "coca_deficit": coca_record.average_deficit(portfolio, scenario.alpha),
        "perfecthp_deficit": hp_record.average_deficit(portfolio, scenario.alpha),
    }


def budget_sweep(
    scenario: Scenario,
    fractions: Sequence[float],
    *,
    include_opt: bool = True,
    v_iters: int = 10,
) -> list[dict]:
    """Fig. 5(a,b): normalized cost vs carbon budget for COCA / OPT /
    carbon-unaware.  Costs are normalized by the unaware average cost;
    budgets by the unaware brown energy.  COCA's V is auto-tuned per budget
    (the paper: "we appropriately choose V such that carbon neutrality is
    satisfied")."""
    portfolio0 = scenario.environment.portfolio
    unaware = CarbonUnaware(scenario.model)
    unaware_record = simulate(scenario.model, unaware, scenario.environment)
    rows = []
    for frac in fractions:
        sc = scenario.with_budget_fraction(float(frac))
        portfolio = sc.environment.portfolio
        row: dict = {
            "budget_fraction": float(frac),
            "unaware_cost": unaware_record.average_cost / scenario.unaware_cost,
            "unaware_neutral": unaware_record.total_brown <= sc.budget,
        }
        if frac >= 1.0 and unaware_record.total_brown <= sc.budget:
            # Budget exceeds unaware usage: COCA (any large V) == unaware.
            record, _ = run_coca(sc, 1e9)
        else:
            v_star = find_neutral_v(sc, iters=v_iters)
            record, _ = run_coca(sc, v_star)
            row["v_star"] = v_star
        row["coca_cost"] = record.average_cost / scenario.unaware_cost
        row["coca_neutral"] = record.ledger(portfolio, sc.alpha).is_neutral()
        if include_opt:
            opt = OfflineOptimal(scenario.model, budget=sc.budget, alpha=sc.alpha)
            opt_record = simulate(scenario.model, opt, sc.environment)
            row["opt_cost"] = opt_record.average_cost / scenario.unaware_cost
            row["opt_neutral"] = opt_record.total_brown <= sc.budget * (1 + 1e-9)
        rows.append(row)
    return rows


def _neutral_run(
    scenario: Scenario, environment, v: float | None, *, v_iters: int = 9
) -> tuple[SimulationRecord, float]:
    """Run COCA neutrally: use ``v`` if it satisfies neutrality on this
    environment, otherwise re-tune V (the paper: "for all the cases, we
    appropriately choose V such that carbon neutrality is satisfied")."""

    def attempt(v_try: float) -> SimulationRecord:
        controller = COCA(
            scenario.model,
            environment.portfolio,
            v_schedule=v_try,
            alpha=scenario.alpha,
        )
        return simulate(scenario.model, controller, environment)

    if v is not None:
        record = attempt(v)
        if record.ledger(environment.portfolio, scenario.alpha).is_neutral():
            return record, v

    lo, hi = 1e-4, 1e7
    if not attempt(lo).ledger(environment.portfolio, scenario.alpha).is_neutral():
        return attempt(lo), lo  # budget infeasible even at tiny V; report it
    best = lo
    for _ in range(v_iters):
        mid = float(np.sqrt(lo * hi))
        if attempt(mid).ledger(environment.portfolio, scenario.alpha).is_neutral():
            lo = best = mid
        else:
            hi = mid
    return attempt(best), best


def overestimation_sweep(
    scenario: Scenario, phis: Sequence[float], *, v: float | None = None
) -> list[dict]:
    """Fig. 5(c): total-cost impact of overestimating workloads by phi.

    Per the paper's protocol, V is (re-)chosen at every point so that
    neutrality holds before costs are compared.
    """
    if v is None:
        v = find_neutral_v(scenario)
    base_cost = None
    rows = []
    for phi in phis:
        env = scenario.environment.with_workload(
            overestimate(scenario.environment.actual_workload, float(phi))
        )
        record, v_used = _neutral_run(scenario, env, v)
        if base_cost is None:
            base_cost = record.average_cost
        rows.append(
            {
                "phi": float(phi),
                "avg_cost": record.average_cost,
                "cost_increase": record.average_cost / base_cost - 1.0,
                "v_used": v_used,
                "dropped": float(record.dropped.sum()),
                "neutral": record.ledger(env.portfolio, scenario.alpha).is_neutral(),
            }
        )
    return rows


def switching_sweep(
    scenario: Scenario, fractions: Sequence[float], *, v: float | None = None
) -> list[dict]:
    """Fig. 5(d): total-cost impact of per-server switching cost, expressed
    as a fraction of the server's maximum hourly energy."""
    if v is None:
        v = find_neutral_v(scenario)
    base_cost = None
    rows = []
    for frac in fractions:
        sc = scenario.with_switching(float(frac))
        record, v_used = _neutral_run(sc, sc.environment, v)
        if base_cost is None:
            base_cost = record.average_cost
        rows.append(
            {
                "switching_fraction": float(frac),
                "avg_cost": record.average_cost,
                "cost_increase": record.average_cost / base_cost - 1.0,
                "v_used": v_used,
                "switching_energy": float(record.switching_energy.sum()),
                "neutral": record.ledger(
                    sc.environment.portfolio, sc.alpha
                ).is_neutral(),
            }
        )
    return rows


def portfolio_sweep(
    scenario: Scenario, offsite_fractions: Sequence[float], *, v: float | None = None
) -> list[dict]:
    """Section 5.2.4 remark: cost sensitivity to the off-site/REC split of a
    fixed total budget (paper: <1% change)."""
    if v is None:
        v = find_neutral_v(scenario)
    rows = []
    base_cost = None
    for frac in offsite_fractions:
        sc = scenario.with_budget_fraction(
            scenario.budget_fraction, offsite_fraction=float(frac)
        )
        record, _ = _neutral_run(sc, sc.environment, v)
        if base_cost is None:
            base_cost = record.average_cost
        rows.append(
            {
                "offsite_fraction": float(frac),
                "avg_cost": record.average_cost,
                "cost_change": record.average_cost / base_cost - 1.0,
                "neutral": record.ledger(
                    sc.environment.portfolio, sc.alpha
                ).is_neutral(),
            }
        )
    return rows
