"""Experiment drivers: the parameter sweeps behind every figure.

Each function runs controllers over a :class:`~repro.scenarios.Scenario`
and returns plain row dictionaries (ready for
:func:`repro.analysis.tables.render_table` or further processing), so the
benchmark harness, the examples, and ad-hoc notebooks share one
implementation of each experiment.

The sweep-shaped drivers (:func:`sweep_constant_v`, :func:`budget_sweep`,
:func:`overestimation_sweep`) take an opt-in ``workers=`` argument: sweep
points are embarrassingly parallel (each is an independent seeded run), so
they fan out over a ``ProcessPoolExecutor`` while keeping row order and
numerical results identical to the serial path.  Every driver also takes an
optional ``telemetry=`` handle; with workers, each point records into a
fresh in-memory telemetry that the parent absorbs back in point order.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Sequence

import numpy as np

from ..baselines.carbon_unaware import CarbonUnaware
from ..baselines.offline_opt import OfflineOptimal
from ..baselines.perfect_hp import PerfectHP
from ..core.coca import COCA
from ..core.vschedule import VSchedule
from ..scenarios import Scenario
from ..sim.engine import simulate
from ..sim.metrics import SimulationRecord
from ..telemetry import Telemetry
from ..traces.noise import overestimate

__all__ = [
    "run_coca",
    "sweep_constant_v",
    "find_neutral_v",
    "run_varying_v",
    "compare_with_perfecthp",
    "budget_sweep",
    "overestimation_sweep",
    "advice_overestimation_sweep",
    "switching_sweep",
    "portfolio_sweep",
]


def run_coca(
    scenario: Scenario,
    v_schedule: VSchedule | float,
    *,
    frame_length: int | None = None,
    telemetry: Telemetry | None = None,
) -> tuple[SimulationRecord, COCA]:
    """Run COCA once on the scenario; returns (record, controller)."""
    controller = COCA(
        scenario.model,
        scenario.environment.portfolio,
        v_schedule=v_schedule,
        frame_length=frame_length,
        alpha=scenario.alpha,
    )
    record = simulate(
        scenario.model, controller, scenario.environment, telemetry=telemetry
    )
    return record, controller


# ------------------------------------------------------------ parallel plumbing
def _pool_point(task) -> tuple[dict, tuple[list[dict], dict] | None]:
    """Worker shim: run one sweep point, optionally under fresh telemetry.

    Runs in a subprocess, so everything it touches must be picklable; the
    recorded events and metric state travel back as plain containers.
    """
    point, payload, collect = task
    telemetry = Telemetry.recording() if collect else None
    row = point(payload, telemetry)
    return row, (telemetry.drain() if telemetry is not None else None)


def _map_points(
    point: Callable[[tuple, Telemetry | None], dict],
    payloads: Sequence[tuple],
    *,
    workers: int | None,
    telemetry: Telemetry | None,
) -> list[dict]:
    """Run ``point`` over ``payloads`` serially or in a process pool.

    Row order always follows payload order.  With workers, each point's
    telemetry is recorded in the subprocess and absorbed into the parent
    handle in that same order, so traces match serial execution.
    """
    if workers is None or workers <= 1:
        return [point(payload, telemetry) for payload in payloads]
    tasks = [(point, payload, telemetry is not None) for payload in payloads]
    with ProcessPoolExecutor(max_workers=workers) as pool:
        results = list(pool.map(_pool_point, tasks))
    rows = []
    for row, drained in results:
        if drained is not None and telemetry is not None:
            telemetry.absorb(*drained)
        rows.append(row)
    return rows


def _constant_v_point(payload: tuple, telemetry: Telemetry | None) -> dict:
    scenario, v = payload
    portfolio = scenario.environment.portfolio
    record, _ = run_coca(scenario, float(v), telemetry=telemetry)
    return {
        "V": float(v),
        "avg_cost": record.average_cost,
        "avg_deficit": record.average_deficit(portfolio, scenario.alpha),
        "brown": record.total_brown,
        "brown_fraction": record.total_brown / scenario.unaware_brown,
        "neutral": record.ledger(portfolio, scenario.alpha).is_neutral(),
    }


def sweep_constant_v(
    scenario: Scenario,
    v_values: Sequence[float],
    *,
    workers: int | None = None,
    telemetry: Telemetry | None = None,
) -> list[dict]:
    """Fig. 2(a,b): average hourly cost and carbon deficit vs constant V."""
    payloads = [(scenario, float(v)) for v in v_values]
    return _map_points(
        _constant_v_point, payloads, workers=workers, telemetry=telemetry
    )


def find_neutral_v(
    scenario: Scenario,
    *,
    v_lo: float = 1e-3,
    v_hi: float = 1e6,
    iters: int = 12,
) -> float:
    """Largest (cheapest) constant ``V`` that still satisfies neutrality.

    Brown energy is monotonically nondecreasing in ``V`` (more cost focus,
    less deficit pressure), so bisection applies.  This automates the
    paper's "we appropriately choose V such that carbon neutrality is
    satisfied" for the sensitivity studies.
    """
    portfolio = scenario.environment.portfolio

    def neutral(v: float) -> bool:
        record, _ = run_coca(scenario, v)
        return record.ledger(portfolio, scenario.alpha).is_neutral()

    if neutral(v_hi):
        return v_hi
    if not neutral(v_lo):
        raise ValueError(
            f"even V={v_lo} violates neutrality; the budget may be infeasible"
        )
    lo, hi = v_lo, v_hi
    for _ in range(iters):
        mid = float(np.sqrt(lo * hi))  # geometric: V spans decades
        if neutral(mid):
            lo = mid
        else:
            hi = mid
    return lo


def run_varying_v(
    scenario: Scenario,
    v_schedule: VSchedule | Sequence[float],
    frame_length: int,
) -> tuple[SimulationRecord, COCA]:
    """Fig. 2(c,d): COCA with per-frame V values (e.g. quarterly)."""
    from ..core.vschedule import FrameV

    if not isinstance(v_schedule, VSchedule):
        v_schedule = FrameV(tuple(float(v) for v in v_schedule))
    return run_coca(scenario, v_schedule, frame_length=frame_length)


def compare_with_perfecthp(
    scenario: Scenario, v: float, *, telemetry: Telemetry | None = None
) -> dict:
    """Fig. 3: COCA vs PerfectHP records plus headline ratios."""
    portfolio = scenario.environment.portfolio
    coca_record, _ = run_coca(scenario, v, telemetry=telemetry)
    hp = PerfectHP(scenario.model, alpha=scenario.alpha)
    hp_record = simulate(scenario.model, hp, scenario.environment, telemetry=telemetry)
    return {
        "coca": coca_record,
        "perfecthp": hp_record,
        "cost_saving": 1.0 - coca_record.average_cost / hp_record.average_cost,
        "coca_deficit": coca_record.average_deficit(portfolio, scenario.alpha),
        "perfecthp_deficit": hp_record.average_deficit(portfolio, scenario.alpha),
    }


def _budget_point(payload: tuple, telemetry: Telemetry | None) -> dict:
    scenario, frac, unaware_avg_cost, unaware_total_brown, include_opt, v_iters = (
        payload
    )
    sc = scenario.with_budget_fraction(float(frac))
    portfolio = sc.environment.portfolio
    row: dict = {
        "budget_fraction": float(frac),
        "unaware_cost": unaware_avg_cost / scenario.unaware_cost,
        "unaware_neutral": unaware_total_brown <= sc.budget,
    }
    if frac >= 1.0 and unaware_total_brown <= sc.budget:
        # Budget exceeds unaware usage: COCA (any large V) == unaware.
        record, _ = run_coca(sc, 1e9, telemetry=telemetry)
    else:
        v_star = find_neutral_v(sc, iters=v_iters)
        record, _ = run_coca(sc, v_star, telemetry=telemetry)
        row["v_star"] = v_star
    row["coca_cost"] = record.average_cost / scenario.unaware_cost
    row["coca_neutral"] = record.ledger(portfolio, sc.alpha).is_neutral()
    if include_opt:
        opt = OfflineOptimal(scenario.model, budget=sc.budget, alpha=sc.alpha)
        opt_record = simulate(
            scenario.model, opt, sc.environment, telemetry=telemetry
        )
        row["opt_cost"] = opt_record.average_cost / scenario.unaware_cost
        row["opt_neutral"] = opt_record.total_brown <= sc.budget * (1 + 1e-9)
    return row


def budget_sweep(
    scenario: Scenario,
    fractions: Sequence[float],
    *,
    include_opt: bool = True,
    v_iters: int = 10,
    workers: int | None = None,
    telemetry: Telemetry | None = None,
) -> list[dict]:
    """Fig. 5(a,b): normalized cost vs carbon budget for COCA / OPT /
    carbon-unaware.  Costs are normalized by the unaware average cost;
    budgets by the unaware brown energy.  COCA's V is auto-tuned per budget
    (the paper: "we appropriately choose V such that carbon neutrality is
    satisfied").  Points are independent, so ``workers`` parallelizes the
    fraction loop (V auto-tuning included); the shared carbon-unaware
    reference run happens once, up front."""
    unaware = CarbonUnaware(scenario.model)
    unaware_record = simulate(
        scenario.model, unaware, scenario.environment, telemetry=telemetry
    )
    payloads = [
        (
            scenario,
            float(frac),
            unaware_record.average_cost,
            unaware_record.total_brown,
            include_opt,
            v_iters,
        )
        for frac in fractions
    ]
    return _map_points(_budget_point, payloads, workers=workers, telemetry=telemetry)


def _neutral_run(
    scenario: Scenario,
    environment,
    v: float | None,
    *,
    v_iters: int = 9,
    telemetry: Telemetry | None = None,
) -> tuple[SimulationRecord, float]:
    """Run COCA neutrally: use ``v`` if it satisfies neutrality on this
    environment, otherwise re-tune V (the paper: "for all the cases, we
    appropriately choose V such that carbon neutrality is satisfied").

    Only the run whose record is returned carries ``telemetry``; bisection
    probes stay untraced so the event stream holds one run per point.
    """

    def attempt(
        v_try: float, tele: Telemetry | None = None
    ) -> SimulationRecord:
        controller = COCA(
            scenario.model,
            environment.portfolio,
            v_schedule=v_try,
            alpha=scenario.alpha,
        )
        return simulate(scenario.model, controller, environment, telemetry=tele)

    if v is not None:
        record = attempt(v, telemetry)
        if record.ledger(environment.portfolio, scenario.alpha).is_neutral():
            return record, v

    lo, hi = 1e-4, 1e7
    if not attempt(lo).ledger(environment.portfolio, scenario.alpha).is_neutral():
        # Budget infeasible even at tiny V; report it.
        return attempt(lo, telemetry), lo
    best = lo
    for _ in range(v_iters):
        mid = float(np.sqrt(lo * hi))
        if attempt(mid).ledger(environment.portfolio, scenario.alpha).is_neutral():
            lo = best = mid
        else:
            hi = mid
    return attempt(best, telemetry), best


def _overestimation_point(payload: tuple, telemetry: Telemetry | None) -> dict:
    scenario, phi, v = payload
    env = scenario.environment.with_workload(
        overestimate(scenario.environment.actual_workload, float(phi))
    )
    record, v_used = _neutral_run(scenario, env, v, telemetry=telemetry)
    return {
        "phi": float(phi),
        "avg_cost": record.average_cost,
        "v_used": v_used,
        "dropped": float(record.dropped.sum()),
        "neutral": record.ledger(env.portfolio, scenario.alpha).is_neutral(),
    }


def overestimation_sweep(
    scenario: Scenario,
    phis: Sequence[float],
    *,
    v: float | None = None,
    workers: int | None = None,
    telemetry: Telemetry | None = None,
) -> list[dict]:
    """Fig. 5(c): total-cost impact of overestimating workloads by phi.

    Per the paper's protocol, V is (re-)chosen at every point so that
    neutrality holds before costs are compared.  ``cost_increase`` is
    relative to the first phi, so it is derived after all points complete
    -- which is also what lets ``workers`` fan the points out.
    """
    if v is None:
        v = find_neutral_v(scenario)
    payloads = [(scenario, float(phi), v) for phi in phis]
    measured = _map_points(
        _overestimation_point, payloads, workers=workers, telemetry=telemetry
    )
    if not measured:
        return []
    base_cost = measured[0]["avg_cost"]
    return [
        {
            "phi": m["phi"],
            "avg_cost": m["avg_cost"],
            "cost_increase": m["avg_cost"] / base_cost - 1.0,
            "v_used": m["v_used"],
            "dropped": m["dropped"],
            "neutral": m["neutral"],
        }
        for m in measured
    ]


def _advice_overestimation_point(payload: tuple, telemetry: Telemetry | None) -> dict:
    scenario, phi, v, lam, frame = payload
    from ..advice.pack import build_advised, build_plain
    from ..faults.schedule import FaultEvent, FaultSchedule

    horizon = scenario.horizon
    schedule = None
    if phi > 0.0:
        # Frame 0 plans on clean forecasts; from the second frame on,
        # every forecast overestimates arrivals by the factor (1 + phi).
        schedule = FaultSchedule(
            events=(
                FaultEvent(
                    t=frame, kind="forecast", mode="bias",
                    duration=max(horizon - frame, 1), magnitude=float(phi),
                ),
            )
        )
    advised_controller = build_advised(
        scenario, v=v, lam=lam, frame_length=frame
    )
    advised = simulate(
        scenario.model,
        advised_controller,
        scenario.environment,
        faults=schedule,
        telemetry=telemetry,
    )
    plain = simulate(
        scenario.model,
        build_plain(scenario, v=v),
        scenario.environment,
        faults=schedule,
    )
    guard = advised_controller.guard.summary()
    advised_cost = float(advised.cost.sum())
    plain_cost = float(plain.cost.sum())
    ratio = advised_cost / plain_cost if plain_cost > 0.0 else 1.0
    return {
        "phi": float(phi),
        "advised_cost": advised_cost,
        "plain_cost": plain_cost,
        "cost_ratio": ratio,
        "bound": 1.0 + float(lam),
        "bound_holds": ratio <= 1.0 + float(lam) + 1e-9,
        "advised_slots": int(guard["advised_slots"]),
        "fallback_slots": int(guard["fallback_slots"]),
        "transitions": len(guard["transitions"]),
        "trusted_final": bool(guard["trusted"]),
    }


def advice_overestimation_sweep(
    scenario: Scenario,
    phis: Sequence[float],
    *,
    lam: float = 0.25,
    v: float | None = None,
    frame_length: int | None = None,
    workers: int | None = None,
    telemetry: Telemetry | None = None,
) -> list[dict]:
    """Robustness of the advice layer to forecast overestimation.

    The advice-layer counterpart of :func:`overestimation_sweep`: instead
    of degrading the workload trace COCA itself sees, each point biases
    only the *forecast* channel by ``(1 + phi)`` and measures the advised
    run against its plain-COCA shadow on the same traces.  At ``phi = 0``
    advice is exact; as phi grows the :class:`~repro.advice.TrustGuard`
    must fall back, and ``bound_holds`` certifies the worst-case
    guarantee -- advised cost ≤ (1+λ)× plain COCA -- at *every* point,
    which is what ``bench_advice --check`` gates on.
    """
    from ..advice.pack import PACK_FRAME

    if v is None:
        v = find_neutral_v(scenario, iters=8)
    if frame_length is None:
        frame_length = PACK_FRAME
    if scenario.horizon % int(frame_length):
        raise ValueError(
            f"frame_length {frame_length} must divide the horizon "
            f"({scenario.horizon})"
        )
    payloads = [
        (scenario, float(phi), float(v), float(lam), int(frame_length))
        for phi in phis
    ]
    return _map_points(
        _advice_overestimation_point, payloads, workers=workers,
        telemetry=telemetry,
    )


def switching_sweep(
    scenario: Scenario,
    fractions: Sequence[float],
    *,
    v: float | None = None,
    telemetry: Telemetry | None = None,
) -> list[dict]:
    """Fig. 5(d): total-cost impact of per-server switching cost, expressed
    as a fraction of the server's maximum hourly energy."""
    if v is None:
        v = find_neutral_v(scenario)
    base_cost = None
    rows = []
    for frac in fractions:
        sc = scenario.with_switching(float(frac))
        record, v_used = _neutral_run(sc, sc.environment, v, telemetry=telemetry)
        if base_cost is None:
            base_cost = record.average_cost
        rows.append(
            {
                "switching_fraction": float(frac),
                "avg_cost": record.average_cost,
                "cost_increase": record.average_cost / base_cost - 1.0,
                "v_used": v_used,
                "switching_energy": float(record.switching_energy.sum()),
                "neutral": record.ledger(
                    sc.environment.portfolio, sc.alpha
                ).is_neutral(),
            }
        )
    return rows


def portfolio_sweep(
    scenario: Scenario,
    offsite_fractions: Sequence[float],
    *,
    v: float | None = None,
    telemetry: Telemetry | None = None,
) -> list[dict]:
    """Section 5.2.4 remark: cost sensitivity to the off-site/REC split of a
    fixed total budget (paper: <1% change)."""
    if v is None:
        v = find_neutral_v(scenario)
    rows = []
    base_cost = None
    for frac in offsite_fractions:
        sc = scenario.with_budget_fraction(
            scenario.budget_fraction, offsite_fraction=float(frac)
        )
        record, _ = _neutral_run(sc, sc.environment, v, telemetry=telemetry)
        if base_cost is None:
            base_cost = record.average_cost
        rows.append(
            {
                "offsite_fraction": float(frac),
                "avg_cost": record.average_cost,
                "cost_change": record.average_cost / base_cost - 1.0,
                "neutral": record.ledger(
                    sc.environment.portfolio, sc.alpha
                ).is_neutral(),
            }
        )
    return rows
