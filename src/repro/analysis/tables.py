"""Plain-text table rendering for the benchmark harness.

The paper's figures are line plots; the harness reports the same series as
aligned text tables (one row per sweep point / time bucket) so the shapes --
who wins, by what factor, where crossovers fall -- are directly readable in
benchmark output and EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

__all__ = ["render_table", "format_value"]


def format_value(value: Any, *, precision: int = 4) -> str:
    """Human formatting: floats to significant digits, bools as yes/no."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e5 or magnitude < 1e-3:
            return f"{value:.{precision}g}"
        return f"{value:,.{precision}g}"
    return str(value)


def render_table(
    rows: Sequence[Mapping[str, Any]],
    *,
    columns: Sequence[str] | None = None,
    title: str | None = None,
    precision: int = 4,
) -> str:
    """Render mapping rows as an aligned text table.

    Parameters
    ----------
    rows:
        Sequence of dict-like rows; missing keys render blank.
    columns:
        Column order; defaults to first-appearance order over all rows.
    title:
        Optional heading line.
    precision:
        Significant digits for floats.
    """
    if not rows:
        return f"{title}\n(empty)" if title else "(empty)"
    if columns is None:
        columns = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)

    cells = [
        [format_value(row.get(col, ""), precision=precision) for col in columns]
        for row in rows
    ]
    widths = [
        max(len(str(col)), *(len(r[i]) for r in cells))
        for i, col in enumerate(columns)
    ]
    header = "  ".join(str(c).rjust(w) for c, w in zip(columns, widths))
    rule = "-" * len(header)
    body = "\n".join("  ".join(r[i].rjust(widths[i]) for i in range(len(columns))) for r in cells)
    parts = [title, header, rule, body] if title else [header, rule, body]
    return "\n".join(p for p in parts if p is not None)
