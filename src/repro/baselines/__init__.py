"""Baseline policies the paper compares COCA against."""

from .carbon_unaware import CarbonUnaware, calibrate_budget
from .lookahead import FrameOptimum, TStepLookahead, lookahead_optima
from .offline_opt import DualSweep, OfflineOptimal, solve_dual_multiplier
from .perfect_hp import PerfectHP

__all__ = [
    "CarbonUnaware",
    "calibrate_budget",
    "OfflineOptimal",
    "DualSweep",
    "solve_dual_multiplier",
    "PerfectHP",
    "TStepLookahead",
    "FrameOptimum",
    "lookahead_optima",
]
