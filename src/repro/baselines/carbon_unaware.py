"""Carbon-unaware baseline: pure per-slot cost minimization.

This is COCA's ``V -> infinity`` limit (section 5.2.1): every slot minimizes
``g = e + beta d`` with no regard for the neutrality constraint.  The paper
uses its annual electricity consumption (1.55e5 MWh under their settings) to
*define* the experiments' carbon budgets -- e.g. the default budget is 92%
of the unaware usage -- so this controller doubles as the calibration tool
(:func:`calibrate_budget`).
"""

from __future__ import annotations

from ..core.config import DataCenterModel
from ..core.controller import Controller, SlotObservation
from ..solvers.base import SlotSolution, SlotSolver
from ..solvers.batch import batch_enumerate, supports_batch
from ..solvers.enumeration import HomogeneousEnumerationSolver
from ..solvers.convex import CoordinateDescentSolver

__all__ = ["CarbonUnaware", "calibrate_budget"]


class CarbonUnaware(Controller):
    """Minimize the instantaneous cost ``g(t)`` every slot (``q = 0``)."""

    def __init__(self, model: DataCenterModel, *, solver: SlotSolver | None = None):
        self.model = model
        if solver is None:
            solver = (
                HomogeneousEnumerationSolver()
                if model.fleet.is_homogeneous
                else CoordinateDescentSolver()
            )
        self.solver = solver
        self._prev_on = None

    def decide(self, observation: SlotObservation) -> SlotSolution:
        problem = self.model.slot_problem(
            arrival_rate=observation.arrival_rate,
            onsite=observation.onsite,
            price=observation.price,
            network_delay=observation.network_delay,
            pue_override=observation.pue,
            q=0.0,
            V=1.0,
            prev_on_counts=self._prev_on,
        )
        solution = self.solver.solve(problem)
        self._prev_on = solution.action.on_counts(self.model.fleet)
        return solution

    def name(self) -> str:
        return "carbon-unaware"


def calibrate_budget(model: DataCenterModel, environment) -> float:
    """Total brown energy (MWh) the carbon-unaware policy would draw over
    the period -- the normalization constant of the paper's budget sweeps
    (their 1.55e5 MWh).  Uses the vectorized sweep when available."""
    if supports_batch(model):
        result = batch_enumerate(
            model,
            environment.actual_workload.values,
            environment.portfolio.onsite.values,
            environment.price.values,
            q=0.0,
            V=1.0,
        )
        return result.total_brown
    from ..sim.engine import simulate

    record = simulate(model, CarbonUnaware(model), environment)
    return record.total_brown
