"""The T-step lookahead offline benchmark (problem P2, section 3.2).

P2 splits the period into ``R`` frames of ``T`` slots; within each frame an
oracle with perfect information minimizes average cost subject to the
frame's own neutrality constraint (15), whose budget is the frame's off-site
supply plus ``Z / R``.  The per-frame optimum ``G_r^*`` is exactly the
quantity Theorem 2 compares COCA against, so this module both provides a
runnable benchmark policy and feeds the bound-validation experiment.

Each frame is solved like OPT: the frame constraint is a single coupling
constraint, so bisection on a frame multiplier ``mu_r`` over per-slot P3
solves yields a feasible near-optimal policy plus a certified dual lower
bound on ``G_r^*``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.config import DataCenterModel
from ..core.controller import Controller, SlotObservation
from ..solvers.base import SlotSolution, SlotSolver
from ..solvers.batch import batch_enumerate, supports_batch
from ..solvers.convex import CoordinateDescentSolver
from ..solvers.enumeration import HomogeneousEnumerationSolver

__all__ = ["FrameOptimum", "lookahead_optima", "TStepLookahead"]

_BISECT_ITERS = 40


@dataclass(frozen=True)
class FrameOptimum:
    """Solution of one frame of P2.

    Attributes
    ----------
    frame:
        Frame index ``r``.
    mu:
        Frame multiplier on brown energy.
    average_cost:
        ``G_r`` of the dual policy -- an upper estimate of ``G_r^*``.
    lower_bound:
        Certified dual lower bound on ``G_r^*``.
    total_brown:
        Frame brown energy (MWh) under the policy.
    budget:
        Frame budget ``alpha (sum_frame f + Z/R)`` (MWh).
    """

    frame: int
    mu: float
    average_cost: float
    lower_bound: float
    total_brown: float
    budget: float

    @property
    def feasible(self) -> bool:
        """Whether the frame policy meets constraint (15)."""
        return self.total_brown <= self.budget * (1.0 + 1e-9)


def _frame_sweep(
    model: DataCenterModel, lam, onsite, price, mu: float, solver: SlotSolver | None
) -> tuple[float, float]:
    """(total brown, total cost) of the frame at multiplier ``mu``."""
    if supports_batch(model) and solver is None:
        res = batch_enumerate(model, lam, onsite, price, q=mu, V=1.0)
        return res.total_brown, float(res.cost.sum())
    eng = solver or (
        HomogeneousEnumerationSolver()
        if model.fleet.is_homogeneous
        else CoordinateDescentSolver()
    )
    brown = cost = 0.0
    for t in range(lam.size):
        problem = model.slot_problem(
            arrival_rate=lam[t], onsite=onsite[t], price=price[t], q=mu, V=1.0
        )
        sol = eng.solve(problem)
        brown += sol.evaluation.brown_energy
        cost += sol.evaluation.cost
    return brown, cost


def lookahead_optima(
    model: DataCenterModel,
    environment,
    T: int,
    *,
    alpha: float = 1.0,
    solver: SlotSolver | None = None,
) -> list[FrameOptimum]:
    """Solve P2 frame by frame; requires ``J`` divisible by ``T``."""
    J = environment.horizon
    if T < 1 or J % T != 0:
        raise ValueError(f"frame length {T} must divide the horizon {J}")
    R = J // T
    lam_all = environment.actual_workload.values
    onsite_all = environment.portfolio.onsite.values
    price_all = environment.price.values
    f_all = environment.portfolio.offsite.values
    z_frame = environment.portfolio.recs / R

    results: list[FrameOptimum] = []
    for r in range(R):
        sl = slice(r * T, (r + 1) * T)
        lam, onsite, price = lam_all[sl], onsite_all[sl], price_all[sl]
        budget = alpha * (float(f_all[sl].sum()) + z_frame)

        brown0, cost0 = _frame_sweep(model, lam, onsite, price, 0.0, solver)
        if brown0 <= budget:
            results.append(
                FrameOptimum(r, 0.0, cost0 / T, cost0 / T, brown0, budget)
            )
            continue

        hi = max(float(price.max()), 1.0)
        brown_hi, cost_hi = _frame_sweep(model, lam, onsite, price, hi, solver)
        infeasible_frame = False
        while brown_hi > budget:
            hi *= 4.0
            if hi > 1e12:
                # The paper's per-frame feasibility assumption fails for
                # this (T, trace) combination: even the minimum-power
                # configuration overshoots the frame budget.  Report the
                # max-penalty solution; FrameOptimum.feasible exposes it.
                infeasible_frame = True
                break
            brown_hi, cost_hi = _frame_sweep(model, lam, onsite, price, hi, solver)
        if infeasible_frame:
            lower = (cost_hi + hi * brown_hi - hi * budget) / T
            results.append(
                FrameOptimum(r, hi, cost_hi / T, min(lower, cost_hi / T), brown_hi, budget)
            )
            continue
        lo = 0.0
        best = (brown_hi, cost_hi, hi)
        for _ in range(_BISECT_ITERS):
            mid = 0.5 * (lo + hi)
            brown_m, cost_m = _frame_sweep(model, lam, onsite, price, mid, solver)
            if brown_m > budget:
                lo = mid
            else:
                hi = mid
                best = (brown_m, cost_m, mid)
        brown_f, cost_f, mu = best
        lower = (cost_f + mu * brown_f - mu * budget) / T
        results.append(
            FrameOptimum(r, mu, cost_f / T, lower, brown_f, budget)
        )
    return results


class TStepLookahead(Controller):
    """Replayable controller form of the P2 oracle: uses each frame's dual
    multiplier when deciding slots of that frame."""

    def __init__(
        self,
        model: DataCenterModel,
        T: int,
        *,
        alpha: float = 1.0,
        solver: SlotSolver | None = None,
    ):
        self.model = model
        self.T = T
        self.alpha = alpha
        self.solver = solver
        self.frames: list[FrameOptimum] | None = None
        self._slot_solver = solver or (
            HomogeneousEnumerationSolver()
            if model.fleet.is_homogeneous
            else CoordinateDescentSolver()
        )
        self._prev_on = None

    def start(self, environment) -> None:
        self.frames = lookahead_optima(
            self.model, environment, self.T, alpha=self.alpha, solver=self.solver
        )

    def decide(self, observation: SlotObservation) -> SlotSolution:
        if self.frames is None:
            raise RuntimeError("TStepLookahead.start() was not called")
        mu = self.frames[observation.t // self.T].mu
        problem = self.model.slot_problem(
            arrival_rate=observation.arrival_rate,
            onsite=observation.onsite,
            price=observation.price,
            network_delay=observation.network_delay,
            pue_override=observation.pue,
            q=mu,
            V=1.0,
            prev_on_counts=self._prev_on,
        )
        solution = self._slot_solver.solve(problem)
        self._prev_on = solution.action.on_counts(self.model.fleet)
        return solution

    def name(self) -> str:
        return f"lookahead-T{self.T}"
