"""OPT: the offline optimal benchmark (paper Fig. 5(a,b)).

OPT sees the entire period's traces and minimizes average cost subject to
the carbon-neutrality constraint (problem P1).  P1 couples the slots only
through the single long-term constraint ``sum_t y(t) <= alpha (sum_t f(t) +
Z)``, so its Lagrangian decomposes per slot:

    min_t  g(t) + mu y(t),

exactly a P3 instance with ``q = mu`` and ``V = 1``.  The total brown
energy of the per-slot minimizers is nonincreasing in ``mu``; bisection on
``mu`` finds the smallest multiplier whose sweep meets the budget.  For the
discrete speed sets the per-slot problems are nonconvex, so this dual
approach carries a (tiny, with 200 groups) duality gap: the returned policy
is *feasible* and near-optimal, and :func:`dual_lower_bound` reports the
certified lower bound ``L(mu) = sum_t min[g + mu y] - mu * budget`` that
brackets the true optimum from below.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.config import DataCenterModel
from ..core.controller import Controller, SlotObservation
from ..solvers.base import SlotSolution, SlotSolver
from ..solvers.batch import BatchResult, batch_enumerate, supports_batch
from ..solvers.convex import CoordinateDescentSolver
from ..solvers.enumeration import HomogeneousEnumerationSolver

__all__ = ["OfflineOptimal", "DualSweep", "solve_dual_multiplier"]

_BISECT_ITERS = 40


@dataclass(frozen=True)
class DualSweep:
    """One full-horizon sweep at a fixed multiplier."""

    mu: float
    total_brown: float
    total_cost: float

    def lower_bound(self, budget: float, horizon: int) -> float:
        """Certified per-slot lower bound on P1's optimal average cost:
        ``(sum_t min[g + mu y] - mu budget) / J``."""
        return (self.total_cost + self.mu * self.total_brown - self.mu * budget) / horizon


def _sweep(model: DataCenterModel, environment, mu: float, solver: SlotSolver | None) -> DualSweep:
    """Run every slot at penalty ``mu``; fast path for homogeneous fleets."""
    lam = environment.actual_workload.values
    onsite = environment.portfolio.onsite.values
    price = environment.price.values
    pue = environment.pue.values if getattr(environment, "pue", None) is not None else None
    if supports_batch(model) and solver is None:
        res: BatchResult = batch_enumerate(
            model, lam, onsite, price, q=mu, V=1.0, pue=pue
        )
        return DualSweep(mu=mu, total_brown=res.total_brown, total_cost=float(res.cost.sum()))
    eng = solver or (
        HomogeneousEnumerationSolver()
        if model.fleet.is_homogeneous
        else CoordinateDescentSolver()
    )
    brown = cost = 0.0
    for t in range(environment.horizon):
        problem = model.slot_problem(
            arrival_rate=lam[t], onsite=onsite[t], price=price[t], q=mu, V=1.0
        )
        sol = eng.solve(problem)
        brown += sol.evaluation.brown_energy
        cost += sol.evaluation.cost
    return DualSweep(mu=mu, total_brown=brown, total_cost=cost)


def solve_dual_multiplier(
    model: DataCenterModel,
    environment,
    budget: float,
    *,
    solver: SlotSolver | None = None,
    iters: int = _BISECT_ITERS,
) -> tuple[float, DualSweep]:
    """Bisection for the smallest ``mu >= 0`` whose sweep's total brown
    energy fits within ``budget`` MWh.  Returns ``(mu, final sweep)``."""
    if budget < 0:
        raise ValueError("budget must be non-negative")
    base = _sweep(model, environment, 0.0, solver)
    if base.total_brown <= budget:
        return 0.0, base

    hi = max(float(environment.price.peak), 1.0)
    sweep_hi = _sweep(model, environment, hi, solver)
    while sweep_hi.total_brown > budget:
        hi *= 4.0
        if hi > 1e12:
            raise ValueError(
                "cannot meet the budget even with an enormous penalty; the "
                "workload's minimum power exceeds it"
            )
        sweep_hi = _sweep(model, environment, hi, solver)

    lo = 0.0
    final = sweep_hi
    for _ in range(iters):
        mid = 0.5 * (lo + hi)
        sweep = _sweep(model, environment, mid, solver)
        if sweep.total_brown > budget:
            lo = mid
        else:
            hi = mid
            final = sweep
    return hi, final


class OfflineOptimal(Controller):
    """The OPT baseline: full-information dual policy.

    Parameters
    ----------
    model:
        Facility parameters.
    budget:
        Total allowed brown energy in MWh (``alpha * (sum f + Z)``); when
        ``None`` it is read from the environment's portfolio at start.
    alpha:
        Capping aggressiveness used when deriving the budget from the
        portfolio.
    """

    def __init__(
        self,
        model: DataCenterModel,
        *,
        budget: float | None = None,
        alpha: float = 1.0,
        solver: SlotSolver | None = None,
    ):
        self.model = model
        self.budget = budget
        self.alpha = alpha
        self.solver = solver
        self.mu: float | None = None
        self.sweep: DualSweep | None = None
        self._prev_on = None
        self._slot_solver = solver or (
            HomogeneousEnumerationSolver()
            if model.fleet.is_homogeneous
            else CoordinateDescentSolver()
        )

    def start(self, environment) -> None:
        budget = (
            self.budget
            if self.budget is not None
            else self.alpha * environment.portfolio.carbon_budget
        )
        self.mu, self.sweep = solve_dual_multiplier(
            self.model, environment, budget, solver=self.solver
        )

    def decide(self, observation: SlotObservation) -> SlotSolution:
        if self.mu is None:
            raise RuntimeError("OfflineOptimal.start() was not called")
        problem = self.model.slot_problem(
            arrival_rate=observation.arrival_rate,
            onsite=observation.onsite,
            price=observation.price,
            network_delay=observation.network_delay,
            pue_override=observation.pue,
            q=self.mu,
            V=1.0,
            prev_on_counts=self._prev_on,
        )
        solution = self._slot_solver.solve(problem)
        self._prev_on = solution.action.on_counts(self.model.fleet)
        return solution

    def name(self) -> str:
        return "OPT"
