"""PerfectHP: the prediction-based comparison heuristic (section 5.2.2).

The best known prior approach to energy capping budgets energy using
short-term predictions [17, 31].  The paper's comparison variant, *perfect
hourly prediction* (PerfectHP), works as follows:

* the operator has perfect 48-hour-ahead predictions of hourly workloads
  (predictions beyond 48 h "will typically exhibit large errors");
* the carbon budget -- RECs plus off-site renewables, but *not* on-site
  renewables -- is allocated to hours **in proportion to the predicted
  hourly workloads** within each 48-hour planning window (the annual budget
  is spread evenly across windows, since the far future is unknown);
* each hour, cost is minimized subject to the hour's allocated carbon cap;
  when no feasible solution exists for an hour (e.g. a workload burst needs
  more power than the cap allows), the operator "will minimize the cost
  without considering the hourly carbon budget".

The per-hour capped subproblem ``min g s.t. y <= cap`` is solved by
bisecting a per-hour multiplier ``mu_t`` on brown energy (the exact
Lagrangian of the cap); all hours bisect simultaneously through the
vectorized sweep when the fleet is homogeneous.
"""

from __future__ import annotations

import numpy as np

from ..core.config import DataCenterModel
from ..core.controller import Controller, SlotObservation
from ..solvers.base import SlotSolution, SlotSolver
from ..solvers.batch import batch_enumerate, supports_batch
from ..solvers.convex import CoordinateDescentSolver
from ..solvers.enumeration import HomogeneousEnumerationSolver
from ..solvers.problem import InfeasibleError

__all__ = ["PerfectHP"]

_WINDOW = 48
_MU_MAX = 1e9
_BISECT_ITERS = 45


def allocate_caps(
    predicted: np.ndarray, budget: float, window: int = _WINDOW
) -> np.ndarray:
    """Per-hour carbon caps: the annual ``budget`` is spread evenly over
    ``window``-hour planning windows, then within each window allocated in
    proportion to the predicted workloads (uniformly when a window is
    idle)."""
    if budget < 0:
        raise ValueError("budget must be non-negative")
    n = predicted.size
    n_windows = int(np.ceil(n / window))
    per_window = budget * np.diff(
        np.minimum(np.arange(n_windows + 1) * window, n)
    ) / n  # even split, partial last window pro-rated
    caps = np.empty(n)
    for wdx in range(n_windows):
        lo, hi = wdx * window, min((wdx + 1) * window, n)
        w = predicted[lo:hi]
        total = w.sum()
        if total > 0:
            caps[lo:hi] = per_window[wdx] * w / total
        else:
            caps[lo:hi] = per_window[wdx] / (hi - lo)
    return caps


class PerfectHP(Controller):
    """The prediction-based heuristic baseline.

    Parameters
    ----------
    model:
        Facility parameters.
    alpha:
        Capping aggressiveness; the allocated budget is
        ``alpha * (sum f + Z)``.
    window:
        Planning-window length in hours (paper: 48).
    """

    def __init__(
        self,
        model: DataCenterModel,
        *,
        alpha: float = 1.0,
        window: int = _WINDOW,
        solver: SlotSolver | None = None,
    ):
        if window < 1:
            raise ValueError("window must be positive")
        self.model = model
        self.alpha = alpha
        self.window = window
        self.solver = solver or (
            HomogeneousEnumerationSolver()
            if model.fleet.is_homogeneous
            else CoordinateDescentSolver()
        )
        self.caps: np.ndarray | None = None
        self.mu: np.ndarray | None = None
        self.fallback: np.ndarray | None = None
        self._prev_on = None

    # ------------------------------------------------------------------
    def start(self, environment) -> None:
        predicted = environment.predicted_workload.values
        budget = self.alpha * environment.portfolio.carbon_budget
        self.caps = allocate_caps(predicted, budget, self.window)
        if supports_batch(self.model):
            self.mu, self.fallback = self._solve_multipliers_batch(environment)
        else:
            self.mu, self.fallback = self._solve_multipliers_slow(environment)

    def _solve_multipliers_batch(self, environment):
        lam = environment.predicted_workload.values
        onsite = environment.portfolio.onsite.values
        price = environment.price.values
        caps = self.caps

        pue = (
            environment.pue.values
            if getattr(environment, "pue", None) is not None
            else None
        )

        def brown(q):
            return batch_enumerate(
                self.model, lam, onsite, price, q=q, V=1.0, pue=pue
            ).brown_energy

        y_unconstrained = brown(0.0)
        binding = y_unconstrained > caps
        y_min = brown(_MU_MAX)
        fallback = binding & (y_min > caps)  # cap unreachable -> ignore it
        active = binding & ~fallback

        lo = np.zeros(lam.size)
        hi = np.full(lam.size, _MU_MAX)
        for _ in range(_BISECT_ITERS):
            mid = 0.5 * (lo + hi)
            y = brown(np.where(active, mid, 0.0))
            too_high = y > caps
            lo = np.where(active & too_high, mid, lo)
            hi = np.where(active & ~too_high, mid, hi)
        mu = np.where(active, hi, 0.0)
        return mu, fallback

    def _solve_multipliers_slow(self, environment):
        n = environment.horizon
        mu = np.zeros(n)
        fallback = np.zeros(n, dtype=bool)
        for t in range(n):
            obs = environment.observation(t)
            cap = self.caps[t]

            def brown_at(q):
                problem = self.model.slot_problem(
                    arrival_rate=obs.arrival_rate,
                    onsite=obs.onsite,
                    price=obs.price,
                    q=q,
                    V=1.0,
                )
                return self.solver.solve(problem).evaluation.brown_energy

            if brown_at(0.0) <= cap:
                continue
            if brown_at(_MU_MAX) > cap:
                fallback[t] = True
                continue
            lo, hi = 0.0, _MU_MAX
            for _ in range(_BISECT_ITERS):
                mid = 0.5 * (lo + hi)
                if brown_at(mid) > cap:
                    lo = mid
                else:
                    hi = mid
            mu[t] = hi
        return mu, fallback

    # ------------------------------------------------------------------
    def decide(self, observation: SlotObservation) -> SlotSolution:
        if self.mu is None:
            raise RuntimeError("PerfectHP.start() was not called")
        t = observation.t
        problem = self.model.slot_problem(
            arrival_rate=observation.arrival_rate,
            onsite=observation.onsite,
            price=observation.price,
            network_delay=observation.network_delay,
            pue_override=observation.pue,
            q=float(self.mu[t]),
            V=1.0,
            prev_on_counts=self._prev_on,
        )
        solution = self.solver.solve(problem)
        self._prev_on = solution.action.on_counts(self.model.fleet)
        return solution

    def name(self) -> str:
        return "PerfectHP"
