"""Command-line interface: run the paper's experiments from a shell.

``python -m repro <command>`` exposes the experiment drivers without
writing any Python:

=============  ==========================================================
Command        What it runs
=============  ==========================================================
quickstart     COCA vs carbon-unaware on one scenario (the README demo)
sweep-v        Fig. 2(a,b): cost/deficit vs constant V
compare-hp     Fig. 3: COCA vs PerfectHP
budget-sweep   Fig. 5(a,b): normalized cost vs carbon budget
report         full markdown scenario report
traces         summarize any of the synthetic trace generators
telemetry      summarize a JSONL event trace written by ``--trace-out``
dashboard      offline HTML health report (monitors + charts) from a trace
chaos          COCA under seeded fault injection (failures, lossy messaging)
=============  ==========================================================

Scenario commands accept ``--scale {small,paper}`` (a 400-server fortnight
vs the 216 K-server year), ``--horizon`` to override the number of hourly
slots, and ``--workload {fiu,msr}``.  Every subcommand additionally takes
the global observability flags ``--trace-out FILE`` (stream a JSONL event
trace of the run) and ``--metrics-out FILE`` (write a metrics snapshot:
``.md`` renders markdown, anything else CSV); see ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import argparse
import sys
from contextlib import contextmanager
from typing import Sequence

import numpy as np

__all__ = ["main", "build_parser"]


def _add_scenario_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale",
        choices=["small", "paper"],
        default="small",
        help="small: 400 servers / 2 weeks; paper: 216k servers / 1 year",
    )
    parser.add_argument("--horizon", type=int, default=None, help="slots override")
    parser.add_argument("--workload", choices=["fiu", "msr"], default="fiu")
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument(
        "--budget-fraction",
        type=float,
        default=0.92,
        help="carbon budget as a fraction of the carbon-unaware usage",
    )


def _add_telemetry_args(parser: argparse.ArgumentParser) -> None:
    """The global observability flags, attached to every subcommand."""
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE",
        help="stream a JSONL event trace of the run to FILE",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help="write a metrics snapshot to FILE (.md = markdown, else CSV)",
    )


@contextmanager
def _telemetry_scope(args):
    """Yield a Telemetry wired to the requested outputs, or None.

    On exit, closes the trace stream and writes the metrics snapshot, then
    reports where everything went -- so every subcommand gets the flags'
    behaviour from one place.
    """
    trace_out = getattr(args, "trace_out", None)
    metrics_out = getattr(args, "metrics_out", None)
    if not trace_out and not metrics_out:
        yield None
        return
    from .telemetry import JsonlTracer, Telemetry, write_metrics

    tracer = JsonlTracer(trace_out) if trace_out else None
    telemetry = Telemetry(tracer=tracer)
    try:
        yield telemetry
    finally:
        if tracer is not None:
            tracer.close()
            print(f"trace written to {trace_out} ({tracer.count} events)")
        if metrics_out:
            write_metrics(telemetry.metrics, metrics_out)
            print(f"metrics written to {metrics_out}")


def _build_scenario(args):
    from .scenarios import paper_scenario, small_scenario

    kwargs: dict = {
        "workload": args.workload,
        "budget_fraction": args.budget_fraction,
    }
    if args.seed is not None:
        kwargs["seed"] = args.seed
    if args.horizon is not None:
        kwargs["horizon"] = args.horizon
    if args.scale == "paper":
        return paper_scenario(**kwargs)
    return small_scenario(**kwargs)


# ----------------------------------------------------------------- commands
def _cmd_quickstart(args) -> int:
    from .analysis import compare_records, find_neutral_v, render_table, run_coca
    from .baselines import CarbonUnaware
    from .sim import simulate

    scenario = _build_scenario(args)
    portfolio = scenario.environment.portfolio
    print(
        f"scenario: {scenario.model.fleet.num_servers} servers, "
        f"{scenario.horizon} h, budget {scenario.budget:.4g} MWh "
        f"({100 * scenario.budget_fraction:.0f}% of unaware)"
    )
    v = args.v if args.v is not None else find_neutral_v(scenario, iters=args.v_iters)
    print(f"V = {v:.4g}" + ("" if args.v is not None else " (auto-tuned for neutrality)"))
    with _telemetry_scope(args) as telemetry:
        unaware = simulate(
            scenario.model,
            CarbonUnaware(scenario.model),
            scenario.environment,
            telemetry=telemetry,
        )
        record, _ = run_coca(scenario, v, telemetry=telemetry)
    rows = compare_records([unaware, record], portfolio, alpha=scenario.alpha)
    print(render_table(rows, title="carbon-unaware vs COCA"))
    return 0


def _cmd_sweep_v(args) -> int:
    from .analysis import render_table, sweep_constant_v

    scenario = _build_scenario(args)
    values = [float(v) for v in args.values.split(",")]
    with _telemetry_scope(args) as telemetry:
        rows = sweep_constant_v(
            scenario, values, workers=args.workers, telemetry=telemetry
        )
    print(render_table(rows, title="Fig. 2(a,b): impact of constant V"))
    return 0


def _cmd_compare_hp(args) -> int:
    from .analysis import compare_with_perfecthp, find_neutral_v, render_table, time_bucket_rows

    scenario = _build_scenario(args)
    v = args.v if args.v is not None else find_neutral_v(scenario, iters=args.v_iters)
    with _telemetry_scope(args) as telemetry:
        cmp = compare_with_perfecthp(scenario, v, telemetry=telemetry)
    print(f"COCA (V={v:.4g}) vs PerfectHP: cost saving {100 * cmp['cost_saving']:.1f}%")
    rows = time_bucket_rows(
        [cmp["coca"], cmp["perfecthp"]],
        scenario.environment.portfolio,
        alpha=scenario.alpha,
        buckets=args.buckets,
    )
    print(render_table(rows, title="Fig. 3: running averages"))
    return 0


def _cmd_budget_sweep(args) -> int:
    from .analysis import budget_sweep, render_table

    scenario = _build_scenario(args)
    fractions = [float(f) for f in args.fractions.split(",")]
    with _telemetry_scope(args) as telemetry:
        rows = budget_sweep(
            scenario,
            fractions,
            include_opt=not args.no_opt,
            v_iters=args.v_iters,
            workers=args.workers,
            telemetry=telemetry,
        )
    print(render_table(rows, title="Fig. 5: normalized cost vs carbon budget"))
    return 0


def _cmd_report(args) -> int:
    from .analysis.report import scenario_report

    scenario = _build_scenario(args)
    with _telemetry_scope(args) as telemetry:
        text = scenario_report(
            scenario,
            v=args.v,
            include_opt=not args.no_opt,
            v_iters=args.v_iters,
            telemetry=telemetry,
        )
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text)
        print(f"report written to {args.output}")
    else:
        print(text)
    return 0


def _cmd_traces(args) -> int:
    from .energy.rec_market import rec_price_trace
    from .traces import fiu_workload, msr_workload, price_trace, solar_trace, wind_trace

    generators = {
        "fiu": lambda: fiu_workload(args.horizon or 8760, peak=1.0, seed=args.seed or 2012),
        "msr": lambda: msr_workload(args.horizon or 8760, peak=1.0, seed=args.seed or 2007),
        "solar": lambda: solar_trace(args.horizon or 8760, seed=args.seed or 77),
        "wind": lambda: wind_trace(args.horizon or 8760, seed=args.seed or 88),
        "price": lambda: price_trace(args.horizon or 8760, seed=args.seed or 55),
        "rec-price": lambda: rec_price_trace(args.horizon or 8760, seed=args.seed or 31),
    }
    trace = generators[args.kind]()
    print(trace.describe())
    profile = trace.daily_profile()
    peak_hour = int(np.argmax(profile))
    print(f"daily profile peak at hour {peak_hour:02d}:00 "
          f"(x{profile[peak_hour] / profile.mean():.2f} of the daily mean)")
    with _telemetry_scope(args) as telemetry:
        if telemetry is not None:
            telemetry.emit(
                "trace.generated",
                trace=trace.name,
                horizon=len(trace),
                mean=float(trace.values.mean()),
                peak=float(trace.values.max()),
                peak_hour=peak_hour,
            )
    return 0


def _load_trace_or_fail(command: str, path: str) -> list[dict] | None:
    """Load a trace for a CLI command; on failure print the reason (no
    traceback) to stderr and return None."""
    from .telemetry import TraceError, load_trace

    try:
        return load_trace(path)
    except TraceError as exc:
        print(f"repro {command}: {exc}", file=sys.stderr)
        return None


def _cmd_telemetry(args) -> int:
    from .telemetry import render_trace_summary

    events = _load_trace_or_fail("telemetry", args.trace)
    if events is None:
        return 1
    print(render_trace_summary(events, title=args.trace))
    return 0


def _cmd_dashboard(args) -> int:
    from .monitor import default_suite, replay, write_dashboard

    events = _load_trace_or_fail("dashboard", args.trace)
    if events is None:
        return 1
    suite = replay(events, default_suite())
    write_dashboard(events, args.output, suite=suite, title=args.title or args.trace)
    reports = suite.reports()
    passing = sum(1 for r in reports if r.passed)
    worst = suite.channel.worst_severity or "none"
    print(
        f"dashboard written to {args.output} "
        f"({passing}/{len(reports)} monitors passing, "
        f"{suite.channel.count()} alerts, worst severity: {worst})"
    )
    if args.strict and passing < len(reports):
        for report in reports:
            if not report.passed:
                print(
                    f"repro dashboard: FAIL {report.monitor}: {report.detail}",
                    file=sys.stderr,
                )
        return 2
    return 0


def _chaos_schedule(args, horizon: int, num_groups: int):
    """The run's fault schedule: loaded from ``--schedule`` or generated."""
    from .faults import FaultSchedule

    if args.schedule:
        return FaultSchedule.from_json(args.schedule)
    return FaultSchedule.generate(
        args.fault_seed,
        horizon=horizon,
        num_groups=num_groups,
        failure_rate=args.failure_rate,
        mean_repair=args.mean_repair,
        signal_rate=args.signal_rate,
        loss=args.loss,
        delay=args.delay,
        duplicate=args.duplicate,
    )


def _chaos_run(scenario, schedule, args, telemetry):
    """One seeded chaos run; returns (record, injector, policy)."""
    from .core.coca import COCA
    from .faults import DegradationPolicy, FaultInjector
    from .sim import simulate
    from .solvers import DistributedGSD

    solver = None
    if args.distributed:
        solver = DistributedGSD(
            iterations=args.iterations,
            rng=np.random.default_rng(args.fault_seed),
        )
    controller = COCA(
        scenario.model,
        scenario.environment.portfolio,
        v_schedule=args.v,
        alpha=scenario.alpha,
        solver=solver,
    )
    injector = FaultInjector(
        schedule, num_groups=scenario.model.fleet.num_groups
    )
    policy = DegradationPolicy(mode=args.fallback, retries=args.retries)
    record = simulate(
        scenario.model,
        controller,
        scenario.environment,
        telemetry=telemetry,
        faults=injector,
        degradation=policy,
    )
    return record, injector, policy


#: Record arrays compared for bit-identical chaos replays.
_REPLAY_FIELDS = (
    "cost",
    "brown_energy",
    "queue",
    "served",
    "dropped",
    "facility_power",
    "v_applied",
)


def _cmd_chaos(args) -> int:
    from .monitor import default_suite
    from .monitor.suite import MonitoringTracer
    from .telemetry import JsonlTracer, Telemetry, write_metrics

    scenario = _build_scenario(args)
    schedule = _chaos_schedule(
        args, scenario.horizon, scenario.model.fleet.num_groups
    )
    if args.schedule_out:
        schedule.to_json(path=args.schedule_out)
        print(f"fault schedule written to {args.schedule_out}")
    profile = schedule.messages
    print(
        f"chaos: {len(schedule.events)} timed events over {scenario.horizon} h"
        + (
            f"; messages loss={profile.loss:.2f} delay={profile.delay:.2f} "
            f"duplicate={profile.duplicate:.2f}"
            if profile is not None
            else "; reliable messaging"
        )
    )
    if profile is not None and not args.distributed:
        print(
            "note: message faults only bite with --distributed "
            "(the default solvers pass no messages)"
        )

    # The monitor tap sits on the trace path, so the suite sees the run
    # live whether or not a trace file was requested.
    suite = default_suite()
    tracer = JsonlTracer(args.trace_out) if args.trace_out else None
    telemetry = Telemetry(tracer=MonitoringTracer(suite, tracer))
    record, injector, policy = _chaos_run(scenario, schedule, args, telemetry)
    suite.finalize()
    if tracer is not None:
        tracer.close()
        print(f"trace written to {args.trace_out} ({tracer.count} events)")
    if args.metrics_out:
        write_metrics(telemetry.metrics, args.metrics_out)
        print(f"metrics written to {args.metrics_out}")

    summary = injector.summary()
    deg = policy.stats()
    print(
        f"faults: {summary['injected']} injected "
        f"({', '.join(f'{k}={v}' for k, v in sorted(summary['by_kind'].items())) or 'none'}), "
        f"{summary['suppressed']} suppressed; "
        f"{deg['fallbacks']} fallback slot(s) ({deg['mode']}), "
        f"{deg['solve_retries']} solve retries"
    )
    if summary.get("last_bus"):
        bus = summary["last_bus"]
        print(
            f"bus (last solve): {bus.get('delivered', 0)} delivered, "
            f"{bus.get('dropped', 0)} dropped, {bus.get('delayed', 0)} delayed, "
            f"{bus.get('duplicated', 0)} duplicated over {summary['bus_solves']} solves"
        )
    print(
        f"run: cost ${record.cost.sum():,.0f}, "
        f"brown {record.brown_energy.sum():.4g} MWh, "
        f"dropped {record.dropped.sum():.4g} req/s, "
        f"final queue {record.queue[-1]:.4g} MWh"
    )
    reports = suite.reports()
    passing = sum(1 for r in reports if r.passed)
    print(f"monitors: {passing}/{len(reports)} passing")
    for report in reports:
        if not report.passed:
            print(f"  FAIL {report.monitor}: {report.detail}", file=sys.stderr)

    ok = True
    if args.verify_replay:
        replayed, _, _ = _chaos_run(scenario, schedule, args, telemetry=None)
        mismatched = [
            name
            for name in _REPLAY_FIELDS
            if not np.array_equal(getattr(record, name), getattr(replayed, name))
        ]
        if mismatched:
            ok = False
            print(
                f"repro chaos: replay DIVERGED in {', '.join(mismatched)}",
                file=sys.stderr,
            )
        else:
            print("replay: bit-identical across "
                  f"{len(_REPLAY_FIELDS)} record arrays")
    if not ok:
        return 1
    if args.strict and passing < len(reports):
        return 2
    return 0


# ----------------------------------------------------------------- parser
def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="COCA (SC'13) reproduction: experiments from the command line",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("quickstart", help="COCA vs carbon-unaware")
    _add_scenario_args(p)
    _add_telemetry_args(p)
    p.add_argument("--v", type=float, default=None, help="fixed V (default: auto)")
    p.add_argument("--v-iters", type=int, default=9)
    p.set_defaults(func=_cmd_quickstart)

    p = sub.add_parser("sweep-v", help="Fig. 2(a,b): V sweep")
    _add_scenario_args(p)
    _add_telemetry_args(p)
    p.add_argument("--values", default="0.001,0.01,0.1,1,10,100")
    p.add_argument(
        "--workers", type=int, default=None, help="parallel processes for the sweep"
    )
    p.set_defaults(func=_cmd_sweep_v)

    p = sub.add_parser("compare-hp", help="Fig. 3: COCA vs PerfectHP")
    _add_scenario_args(p)
    _add_telemetry_args(p)
    p.add_argument("--v", type=float, default=None)
    p.add_argument("--v-iters", type=int, default=9)
    p.add_argument("--buckets", type=int, default=10)
    p.set_defaults(func=_cmd_compare_hp)

    p = sub.add_parser("budget-sweep", help="Fig. 5: budget sweep")
    _add_scenario_args(p)
    _add_telemetry_args(p)
    p.add_argument("--fractions", default="0.85,0.95,1.0")
    p.add_argument("--no-opt", action="store_true", help="skip the OPT baseline")
    p.add_argument("--v-iters", type=int, default=8)
    p.add_argument(
        "--workers", type=int, default=None, help="parallel processes for the sweep"
    )
    p.set_defaults(func=_cmd_budget_sweep)

    p = sub.add_parser("report", help="full markdown scenario report")
    _add_scenario_args(p)
    _add_telemetry_args(p)
    p.add_argument("--v", type=float, default=None)
    p.add_argument("--v-iters", type=int, default=9)
    p.add_argument("--no-opt", action="store_true")
    p.add_argument("--output", "-o", default=None, help="write to a file")
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser("traces", help="summarize a synthetic trace")
    _add_telemetry_args(p)
    p.add_argument("kind", choices=["fiu", "msr", "solar", "wind", "price", "rec-price"])
    p.add_argument("--horizon", type=int, default=None)
    p.add_argument("--seed", type=int, default=None)
    p.set_defaults(func=_cmd_traces)

    p = sub.add_parser("telemetry", help="summarize a JSONL event trace")
    _add_telemetry_args(p)
    p.add_argument("trace", help="path to a trace written with --trace-out")
    p.set_defaults(func=_cmd_telemetry)

    p = sub.add_parser(
        "dashboard", help="render an offline HTML health report from a trace"
    )
    p.add_argument(
        "--trace", required=True, help="path to a trace written with --trace-out"
    )
    p.add_argument(
        "--output", "-o", default="dashboard.html", help="HTML file to write"
    )
    p.add_argument("--title", default=None, help="report title (default: trace path)")
    p.add_argument(
        "--strict",
        action="store_true",
        help="exit 2 when any invariant monitor fails (CI gating)",
    )
    p.set_defaults(func=_cmd_dashboard)

    p = sub.add_parser(
        "chaos", help="COCA under seeded fault injection (chaos run)"
    )
    _add_scenario_args(p)
    _add_telemetry_args(p)
    p.add_argument("--v", type=float, default=150.0, help="fixed V for the run")
    p.add_argument(
        "--fault-seed",
        type=int,
        default=7,
        help="seed for the generated fault schedule (and message faults)",
    )
    p.add_argument(
        "--failure-rate", type=float, default=0.02,
        help="per-slot, per-group failure probability",
    )
    p.add_argument(
        "--mean-repair", type=float, default=6.0,
        help="mean slots a failed group stays down",
    )
    p.add_argument(
        "--signal-rate", type=float, default=0.0,
        help="per-slot probability of a stale/missing observation fault",
    )
    p.add_argument(
        "--loss", type=float, default=0.0, help="message loss probability"
    )
    p.add_argument(
        "--delay", type=float, default=0.0, help="message delay probability"
    )
    p.add_argument(
        "--duplicate", type=float, default=0.0,
        help="message duplication probability",
    )
    p.add_argument(
        "--schedule", default=None, metavar="FILE",
        help="replay a fault schedule from JSON instead of generating one",
    )
    p.add_argument(
        "--schedule-out", default=None, metavar="FILE",
        help="write the schedule (generated or loaded) to JSON for replay",
    )
    p.add_argument(
        "--fallback",
        choices=["last_action", "proportional"],
        default="last_action",
        help="degraded action when a slot solve fails",
    )
    p.add_argument(
        "--retries", type=int, default=1,
        help="slot-solve retries before falling back",
    )
    p.add_argument(
        "--distributed",
        action="store_true",
        help="solve P3 with DistributedGSD so message faults apply",
    )
    p.add_argument(
        "--iterations", type=int, default=12,
        help="DistributedGSD iterations per solve (with --distributed)",
    )
    p.add_argument(
        "--verify-replay",
        action="store_true",
        help="run twice and require bit-identical records (exit 1 otherwise)",
    )
    p.add_argument(
        "--strict",
        action="store_true",
        help="exit 2 when any invariant monitor fails (CI gating)",
    )
    p.set_defaults(func=_cmd_chaos)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
