"""Command-line interface: run the paper's experiments from a shell.

``python -m repro <command>`` exposes the experiment drivers without
writing any Python:

=============  ==========================================================
Command        What it runs
=============  ==========================================================
quickstart     COCA vs carbon-unaware on one scenario (the README demo)
sweep-v        Fig. 2(a,b): cost/deficit vs constant V
compare-hp     Fig. 3: COCA vs PerfectHP
budget-sweep   Fig. 5(a,b): normalized cost vs carbon budget
report         full markdown scenario report
traces         summarize any of the synthetic trace generators
telemetry      summarize a JSONL event trace written by ``--trace-out``
dashboard      offline HTML health report (monitors + charts) from a trace
profile        sampling flamegraph of a COCA run with span attribution
bench          run benchmark suites; append rows to the trend ledger
chaos          COCA under seeded fault injection (failures, lossy messaging)
run            checkpointed long-horizon run (crash-safe, resumable)
resume         continue a killed ``run`` from its newest valid checkpoint
serve          long-running online control service over a live signal feed
=============  ==========================================================

Scenario commands accept ``--scale {small,paper}`` (a 400-server fortnight
vs the 216 K-server year), ``--horizon`` to override the number of hourly
slots, and ``--workload {fiu,msr}``.  Every subcommand additionally takes
the global observability flags ``--trace-out FILE`` (stream a JSONL event
trace of the run) and ``--metrics-out FILE`` (write a metrics snapshot:
``.md`` renders markdown, anything else CSV); see ``docs/OBSERVABILITY.md``.

Failures exit with a *distinct* nonzero code so CI and scripts can tell
them apart: :data:`EXIT_BAD_INPUT` (1) for unreadable/invalid inputs,
:data:`EXIT_MONITOR_CRITICAL` (2) for ``--strict`` invariant-monitor
failures, :data:`EXIT_REPLAY_MISMATCH` (3) when ``--verify-replay`` finds
a bit-level divergence, :data:`EXIT_SHUTDOWN` (4) when ``repro serve``
stopped on SIGTERM/SIGINT after writing its shutdown checkpoint (the
resumable exit; see ``docs/OPERATIONS.md``).
"""

from __future__ import annotations

import argparse
import sys
from contextlib import contextmanager
from typing import Sequence

import numpy as np

__all__ = [
    "main",
    "build_parser",
    "EXIT_BAD_INPUT",
    "EXIT_MONITOR_CRITICAL",
    "EXIT_REPLAY_MISMATCH",
    "EXIT_SHUTDOWN",
]

#: Unreadable or invalid input (missing trace, torn schedule, bad manifest).
EXIT_BAD_INPUT = 1
#: An invariant monitor failed under ``--strict`` (CI gating).
EXIT_MONITOR_CRITICAL = 2
#: ``--verify-replay`` found records that are not bit-identical.
EXIT_REPLAY_MISMATCH = 3
#: ``repro serve`` stopped on a signal after a clean shutdown checkpoint.
EXIT_SHUTDOWN = 4


def _add_scenario_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale",
        choices=["small", "paper"],
        default="small",
        help="small: 400 servers / 2 weeks; paper: 216k servers / 1 year",
    )
    parser.add_argument("--horizon", type=int, default=None, help="slots override")
    parser.add_argument("--workload", choices=["fiu", "msr"], default="fiu")
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument(
        "--budget-fraction",
        type=float,
        default=0.92,
        help="carbon budget as a fraction of the carbon-unaware usage",
    )


def _add_telemetry_args(parser: argparse.ArgumentParser) -> None:
    """The global observability flags, attached to every subcommand."""
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE",
        help="stream a JSONL event trace of the run to FILE",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help="write a metrics snapshot to FILE (.md = markdown, else CSV)",
    )


@contextmanager
def _telemetry_scope(args):
    """Yield a Telemetry wired to the requested outputs, or None.

    On exit, closes the trace stream and writes the metrics snapshot, then
    reports where everything went -- so every subcommand gets the flags'
    behaviour from one place.
    """
    trace_out = getattr(args, "trace_out", None)
    metrics_out = getattr(args, "metrics_out", None)
    if not trace_out and not metrics_out:
        yield None
        return
    from .telemetry import JsonlTracer, Telemetry, write_metrics

    tracer = JsonlTracer(trace_out) if trace_out else None
    telemetry = Telemetry(tracer=tracer)
    try:
        yield telemetry
    finally:
        if tracer is not None:
            tracer.close()
            print(f"trace written to {trace_out} ({tracer.count} events)")
        if metrics_out:
            write_metrics(telemetry.metrics, metrics_out)
            print(f"metrics written to {metrics_out}")


def _build_scenario(args):
    from .scenarios import paper_scenario, small_scenario

    kwargs: dict = {
        "workload": args.workload,
        "budget_fraction": args.budget_fraction,
    }
    if args.seed is not None:
        kwargs["seed"] = args.seed
    if args.horizon is not None:
        kwargs["horizon"] = args.horizon
    if args.scale == "paper":
        return paper_scenario(**kwargs)
    return small_scenario(**kwargs)


# ----------------------------------------------------------------- commands
def _cmd_quickstart(args) -> int:
    from .analysis import compare_records, find_neutral_v, render_table, run_coca
    from .baselines import CarbonUnaware
    from .sim import simulate

    scenario = _build_scenario(args)
    portfolio = scenario.environment.portfolio
    print(
        f"scenario: {scenario.model.fleet.num_servers} servers, "
        f"{scenario.horizon} h, budget {scenario.budget:.4g} MWh "
        f"({100 * scenario.budget_fraction:.0f}% of unaware)"
    )
    v = args.v if args.v is not None else find_neutral_v(scenario, iters=args.v_iters)
    print(f"V = {v:.4g}" + ("" if args.v is not None else " (auto-tuned for neutrality)"))
    with _telemetry_scope(args) as telemetry:
        unaware = simulate(
            scenario.model,
            CarbonUnaware(scenario.model),
            scenario.environment,
            telemetry=telemetry,
        )
        record, _ = run_coca(scenario, v, telemetry=telemetry)
    rows = compare_records([unaware, record], portfolio, alpha=scenario.alpha)
    print(render_table(rows, title="carbon-unaware vs COCA"))
    return 0


def _cmd_sweep_v(args) -> int:
    from .analysis import render_table, sweep_constant_v

    scenario = _build_scenario(args)
    values = [float(v) for v in args.values.split(",")]
    with _telemetry_scope(args) as telemetry:
        rows = sweep_constant_v(
            scenario, values, workers=args.workers, telemetry=telemetry
        )
    print(render_table(rows, title="Fig. 2(a,b): impact of constant V"))
    return 0


def _cmd_compare_hp(args) -> int:
    from .analysis import compare_with_perfecthp, find_neutral_v, render_table, time_bucket_rows

    scenario = _build_scenario(args)
    v = args.v if args.v is not None else find_neutral_v(scenario, iters=args.v_iters)
    with _telemetry_scope(args) as telemetry:
        cmp = compare_with_perfecthp(scenario, v, telemetry=telemetry)
    print(f"COCA (V={v:.4g}) vs PerfectHP: cost saving {100 * cmp['cost_saving']:.1f}%")
    rows = time_bucket_rows(
        [cmp["coca"], cmp["perfecthp"]],
        scenario.environment.portfolio,
        alpha=scenario.alpha,
        buckets=args.buckets,
    )
    print(render_table(rows, title="Fig. 3: running averages"))
    return 0


def _cmd_budget_sweep(args) -> int:
    from .analysis import budget_sweep, render_table

    scenario = _build_scenario(args)
    fractions = [float(f) for f in args.fractions.split(",")]
    with _telemetry_scope(args) as telemetry:
        rows = budget_sweep(
            scenario,
            fractions,
            include_opt=not args.no_opt,
            v_iters=args.v_iters,
            workers=args.workers,
            telemetry=telemetry,
        )
    print(render_table(rows, title="Fig. 5: normalized cost vs carbon budget"))
    return 0


def _cmd_report(args) -> int:
    from .analysis.report import scenario_report

    scenario = _build_scenario(args)
    with _telemetry_scope(args) as telemetry:
        text = scenario_report(
            scenario,
            v=args.v,
            include_opt=not args.no_opt,
            v_iters=args.v_iters,
            telemetry=telemetry,
        )
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text)
        print(f"report written to {args.output}")
    else:
        print(text)
    return 0


def _cmd_traces(args) -> int:
    from .energy.rec_market import rec_price_trace
    from .traces import fiu_workload, msr_workload, price_trace, solar_trace, wind_trace

    generators = {
        "fiu": lambda: fiu_workload(args.horizon or 8760, peak=1.0, seed=args.seed or 2012),
        "msr": lambda: msr_workload(args.horizon or 8760, peak=1.0, seed=args.seed or 2007),
        "solar": lambda: solar_trace(args.horizon or 8760, seed=args.seed or 77),
        "wind": lambda: wind_trace(args.horizon or 8760, seed=args.seed or 88),
        "price": lambda: price_trace(args.horizon or 8760, seed=args.seed or 55),
        "rec-price": lambda: rec_price_trace(args.horizon or 8760, seed=args.seed or 31),
    }
    trace = generators[args.kind]()
    print(trace.describe())
    profile = trace.daily_profile()
    peak_hour = int(np.argmax(profile))
    print(f"daily profile peak at hour {peak_hour:02d}:00 "
          f"(x{profile[peak_hour] / profile.mean():.2f} of the daily mean)")
    with _telemetry_scope(args) as telemetry:
        if telemetry is not None:
            telemetry.emit(
                "trace.generated",
                trace=trace.name,
                horizon=len(trace),
                mean=float(trace.values.mean()),
                peak=float(trace.values.max()),
                peak_hour=peak_hour,
            )
    return 0


def _load_trace_or_fail(command: str, path: str) -> list[dict] | None:
    """Load a trace for a CLI command; on failure print the reason (no
    traceback) to stderr and return None."""
    from .telemetry import TraceError, load_trace

    try:
        return load_trace(path)
    except TraceError as exc:
        print(f"repro {command}: {exc}", file=sys.stderr)
        return None


def _cmd_telemetry(args) -> int:
    from .telemetry import render_trace_summary

    events = _load_trace_or_fail("telemetry", args.trace)
    if events is None:
        return EXIT_BAD_INPUT
    print(render_trace_summary(events, title=args.trace, spans=args.spans))
    return 0


def _cmd_dashboard(args) -> int:
    from .monitor import default_suite, replay, write_dashboard

    events = _load_trace_or_fail("dashboard", args.trace)
    if events is None:
        return EXIT_BAD_INPUT
    suite = replay(events, default_suite())
    write_dashboard(events, args.output, suite=suite, title=args.title or args.trace)
    reports = suite.reports()
    passing = sum(1 for r in reports if r.passed)
    worst = suite.channel.worst_severity or "none"
    print(
        f"dashboard written to {args.output} "
        f"({passing}/{len(reports)} monitors passing, "
        f"{suite.channel.count()} alerts, worst severity: {worst})"
    )
    if args.strict and passing < len(reports):
        for report in reports:
            if not report.passed:
                print(
                    f"repro dashboard: FAIL {report.monitor}: {report.detail}",
                    file=sys.stderr,
                )
        return EXIT_MONITOR_CRITICAL
    return 0


def _cmd_profile(args) -> int:
    import os

    from .core.coca import COCA
    from .profile import StackSampler, write_flamegraph, write_folded
    from .sim import simulate
    from .solvers import GSDSolver
    from .telemetry import InMemoryTracer, JsonlTracer, Telemetry, write_metrics

    scenario = _build_scenario(args)
    solver = None
    if args.solver == "gsd":
        solver = GSDSolver(
            iterations=args.iterations,
            rng=np.random.default_rng(args.solver_seed),
        )
    controller = COCA(
        scenario.model,
        scenario.environment.portfolio,
        v_schedule=args.v,
        alpha=scenario.alpha,
        solver=solver,
    )
    # The sampler prefixes stacks with the live span path, which only
    # exists under an enabled tracer -- so the profiled run always gets
    # one; --trace-out decides whether the events also land on disk.
    tracer = JsonlTracer(args.trace_out) if args.trace_out else InMemoryTracer()
    telemetry = Telemetry(tracer=tracer)
    sampler = StackSampler(interval_ms=args.interval_ms, telemetry=telemetry)
    with sampler:
        record = simulate(
            scenario.model, controller, scenario.environment, telemetry=telemetry
        )
    if args.trace_out:
        tracer.close()
        print(f"trace written to {args.trace_out} ({tracer.count} events)")
    if args.metrics_out:
        write_metrics(telemetry.metrics, args.metrics_out)
        print(f"metrics written to {args.metrics_out}")

    folded = sampler.folded()
    os.makedirs(args.out_dir, exist_ok=True)
    folded_path = os.path.join(args.out_dir, "profile.folded")
    html_path = os.path.join(args.out_dir, "profile.html")
    write_folded(folded, folded_path)
    title = (
        f"repro profile: {args.scale} scenario, "
        f"{scenario.horizon} slots, solver={args.solver}"
    )
    write_flamegraph(folded, html_path, title=title)

    _print_run_summary(record)
    total = sampler.total_samples
    print(
        f"\n{total} samples over {sampler.duration_s:.2f} s profiled "
        f"({args.interval_ms:g} ms period); top {args.top} frames by self time:"
    )
    for frame, count in sampler.hotspots(args.top):
        print(f"  {count:>7}  {100.0 * count / total:5.1f}%  {frame}")
    print(f"folded stacks written to {folded_path}")
    print(f"flame view written to {html_path}")
    if total == 0:
        print(
            "repro profile: no samples collected -- raise --horizon or "
            "lower --interval-ms",
            file=sys.stderr,
        )
        return EXIT_BAD_INPUT
    return 0


def _cmd_bench(args) -> int:
    from datetime import datetime, timezone

    from .profile import (
        append_row,
        check_rows,
        discover_benches,
        git_revision,
        load_rows,
        make_row,
        run_suite,
    )

    suites = discover_benches(args.bench_dir)
    if not suites:
        print(
            f"repro bench: no bench_*.py found under {args.bench_dir}",
            file=sys.stderr,
        )
        return EXIT_BAD_INPUT
    if args.list:
        for name, suite in sorted(suites.items()):
            tag = "runnable" if suite.runnable else "figure driver (not runnable)"
            print(f"{name:24s} {tag}")
        return 0
    if args.suites:
        bad = [
            n for n in args.suites if n not in suites or not suites[n].runnable
        ]
        if bad:
            print(
                f"repro bench: not a runnable suite: {', '.join(bad)} "
                "(see `repro bench --list`)",
                file=sys.stderr,
            )
            return EXIT_BAD_INPUT
        selected = [suites[n] for n in args.suites]
    else:
        selected = [s for _, s in sorted(suites.items()) if s.runnable]

    history = load_rows(args.ledger)
    rev = git_revision()
    timestamp = datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ")
    fresh = []
    for suite in selected:
        print(
            f"running {suite.name} [{' '.join(suite.default_args) or 'defaults'}]",
            flush=True,
        )
        result = run_suite(suite, out_dir=args.out_dir)
        row = make_row(result, git_rev=rev, timestamp=timestamp)
        fresh.append(row)
        print(
            f"  exit {result.exit_code}, wall {result.wall_s:.2f} s, "
            f"{len(row['metrics'])} metrics"
        )
    if not args.no_append:
        for row in fresh:
            append_row(args.ledger, row)
        print(f"{len(fresh)} row(s) appended to {args.ledger}")

    rc = 0
    if args.check:
        ok, messages = check_rows(history, fresh, tolerance=args.tolerance)
        for message in messages:
            print(f"  {message}")
        if ok:
            print("repro bench: check passed")
        else:
            print("repro bench: REGRESSION detected", file=sys.stderr)
            rc = EXIT_BAD_INPUT
    if any(row["exit_code"] != 0 for row in fresh):
        # A suite's own contract failed (overhead budget, bit-identity, ...)
        # even without --check; never report success over that.
        rc = rc or EXIT_BAD_INPUT
    return rc


def _load_schedule_or_fail(command: str, path: str):
    """Load a fault schedule for a CLI command; on failure print the reason
    (no traceback) to stderr and return None."""
    import json as _json

    from .faults import FaultSchedule

    try:
        return FaultSchedule.from_json(path)
    except (OSError, ValueError, KeyError, TypeError, _json.JSONDecodeError) as exc:
        print(f"repro {command}: cannot load fault schedule {path}: {exc}", file=sys.stderr)
        return None


def _chaos_schedule(args, horizon: int, num_groups: int):
    """The run's fault schedule: loaded from ``--schedule`` or generated;
    None when a requested schedule file cannot be read."""
    if args.schedule:
        return _load_schedule_or_fail("chaos", args.schedule)
    from .faults import FaultSchedule

    return FaultSchedule.generate(
        args.fault_seed,
        horizon=horizon,
        num_groups=num_groups,
        failure_rate=args.failure_rate,
        mean_repair=args.mean_repair,
        signal_rate=args.signal_rate,
        loss=args.loss,
        delay=args.delay,
        duplicate=args.duplicate,
    )


def _chaos_run(scenario, schedule, args, telemetry):
    """One seeded chaos run; returns (record, injector, policy)."""
    from .core.coca import COCA
    from .faults import DegradationPolicy, FaultInjector
    from .sim import simulate
    from .solvers import DistributedGSD

    solver = None
    if args.distributed:
        solver = DistributedGSD(
            iterations=args.iterations,
            rng=np.random.default_rng(args.fault_seed),
        )
    controller = COCA(
        scenario.model,
        scenario.environment.portfolio,
        v_schedule=args.v,
        alpha=scenario.alpha,
        solver=solver,
    )
    injector = FaultInjector(
        schedule, num_groups=scenario.model.fleet.num_groups
    )
    policy = DegradationPolicy(mode=args.fallback, retries=args.retries)
    record = simulate(
        scenario.model,
        controller,
        scenario.environment,
        telemetry=telemetry,
        faults=injector,
        degradation=policy,
    )
    return record, injector, policy


#: Record arrays compared for bit-identical chaos replays.
_REPLAY_FIELDS = (
    "cost",
    "brown_energy",
    "queue",
    "served",
    "dropped",
    "facility_power",
    "v_applied",
)


def _cmd_chaos(args) -> int:
    from .monitor import default_suite
    from .monitor.suite import MonitoringTracer
    from .telemetry import JsonlTracer, Telemetry, write_metrics

    scenario = _build_scenario(args)
    schedule = _chaos_schedule(
        args, scenario.horizon, scenario.model.fleet.num_groups
    )
    if schedule is None:
        return EXIT_BAD_INPUT
    if args.schedule_out:
        schedule.to_json(path=args.schedule_out)
        print(f"fault schedule written to {args.schedule_out}")
    profile = schedule.messages
    print(
        f"chaos: {len(schedule.events)} timed events over {scenario.horizon} h"
        + (
            f"; messages loss={profile.loss:.2f} delay={profile.delay:.2f} "
            f"duplicate={profile.duplicate:.2f}"
            if profile is not None
            else "; reliable messaging"
        )
    )
    if profile is not None and not args.distributed:
        print(
            "note: message faults only bite with --distributed "
            "(the default solvers pass no messages)"
        )

    # The monitor tap sits on the trace path, so the suite sees the run
    # live whether or not a trace file was requested.
    suite = default_suite()
    tracer = JsonlTracer(args.trace_out) if args.trace_out else None
    telemetry = Telemetry(tracer=MonitoringTracer(suite, tracer))
    record, injector, policy = _chaos_run(scenario, schedule, args, telemetry)
    suite.finalize()
    if tracer is not None:
        tracer.close()
        print(f"trace written to {args.trace_out} ({tracer.count} events)")
    if args.metrics_out:
        write_metrics(telemetry.metrics, args.metrics_out)
        print(f"metrics written to {args.metrics_out}")

    summary = injector.summary()
    deg = policy.stats()
    print(
        f"faults: {summary['injected']} injected "
        f"({', '.join(f'{k}={v}' for k, v in sorted(summary['by_kind'].items())) or 'none'}), "
        f"{summary['suppressed']} suppressed; "
        f"{deg['fallbacks']} fallback slot(s) ({deg['mode']}), "
        f"{deg['solve_retries']} solve retries"
    )
    if summary.get("last_bus"):
        bus = summary["last_bus"]
        print(
            f"bus (last solve): {bus.get('delivered', 0)} delivered, "
            f"{bus.get('dropped', 0)} dropped, {bus.get('delayed', 0)} delayed, "
            f"{bus.get('duplicated', 0)} duplicated over {summary['bus_solves']} solves"
        )
    print(
        f"run: cost ${record.cost.sum():,.0f}, "
        f"brown {record.brown_energy.sum():.4g} MWh, "
        f"dropped {record.dropped.sum():.4g} req/s, "
        f"final queue {record.queue[-1]:.4g} MWh"
    )
    reports = suite.reports()
    passing = sum(1 for r in reports if r.passed)
    print(f"monitors: {passing}/{len(reports)} passing")
    for report in reports:
        if not report.passed:
            print(f"  FAIL {report.monitor}: {report.detail}", file=sys.stderr)

    ok = True
    if args.verify_replay:
        replayed, _, _ = _chaos_run(scenario, schedule, args, telemetry=None)
        mismatched = [
            name
            for name in _REPLAY_FIELDS
            if not np.array_equal(getattr(record, name), getattr(replayed, name))
        ]
        if mismatched:
            ok = False
            print(
                f"repro chaos: replay DIVERGED in {', '.join(mismatched)}",
                file=sys.stderr,
            )
        else:
            print("replay: bit-identical across "
                  f"{len(_REPLAY_FIELDS)} record arrays")
    if not ok:
        return EXIT_REPLAY_MISMATCH
    if args.strict and passing < len(reports):
        return EXIT_MONITOR_CRITICAL
    return 0


# -------------------------------------------------------------- scenarios
def _cmd_scenarios_list(args) -> int:
    from .advice import list_scenarios

    for name, description in list_scenarios():
        print(f"{name:20s} {description}")
    return 0


def _cmd_scenarios_run(args) -> int:
    import json

    from .advice import run_scenario
    from .monitor import default_suite
    from .monitor.suite import MonitoringTracer
    from .telemetry import JsonlTracer, Telemetry

    # The monitor tap sits on the advised run's trace path, so the
    # advice-trust monitor (and the rest of the default suite) sees the
    # scenario live -- exactly the wiring `repro chaos` uses.
    suite = default_suite()
    tracer = JsonlTracer(args.trace_out) if args.trace_out else None
    telemetry = Telemetry(tracer=MonitoringTracer(suite, tracer))
    try:
        result = run_scenario(
            args.name, horizon=args.horizon, lam=args.lam, telemetry=telemetry
        )
    except (KeyError, ValueError) as exc:
        reason = exc.args[0] if exc.args else exc
        print(f"repro scenarios: {reason}", file=sys.stderr)
        return EXIT_BAD_INPUT
    suite.finalize()
    if tracer is not None:
        tracer.close()

    reports = suite.reports()
    passing = sum(1 for r in reports if r.passed)
    guard = result.guard
    if args.json:
        payload = result.to_dict()
        payload["monitors"] = {
            "passing": passing,
            "total": len(reports),
            "failed": [r.monitor for r in reports if not r.passed],
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(
            f"scenario {result.name}: {result.horizon} slots, "
            f"λ={result.lam:g}, V={result.v:.4g}"
        )
        print(
            f"advised ${result.advised_cost:,.0f} vs plain ${result.plain_cost:,.0f}"
            f" -> ratio {result.cost_ratio:.4f} "
            f"(bound {result.bound:.2f}: "
            f"{'holds' if result.bound_holds else 'VIOLATED'})"
        )
        print(
            f"advice: {guard['advised_slots']}/{result.horizon} slots advised, "
            f"{guard['budget_blocks']} budget block(s), "
            f"{len(guard['transitions'])} trust transition(s), "
            f"final {'trusted' if guard['trusted'] else 'untrusted'}"
        )
        if tracer is not None:
            print(f"trace written to {args.trace_out} ({tracer.count} events)")
        print(f"monitors: {passing}/{len(reports)} passing")
    for report in reports:
        if not report.passed:
            print(f"  FAIL {report.monitor}: {report.detail}", file=sys.stderr)
    if not result.bound_holds:
        print(
            f"repro scenarios: certified bound VIOLATED "
            f"(ratio {result.cost_ratio:.4f} > {result.bound:.2f})",
            file=sys.stderr,
        )
        return EXIT_MONITOR_CRITICAL
    if args.strict and passing < len(reports):
        return EXIT_MONITOR_CRITICAL
    return 0


# ------------------------------------------------------------ run / resume
#: Manifest file a checkpointed run writes next to its checkpoints; resume
#: rebuilds the identical scenario/controller/fault stack from it.
MANIFEST_NAME = "manifest.json"
_MANIFEST_FORMAT = "repro-run-manifest"


def _scenario_from_manifest(sc: dict):
    from .scenarios import paper_scenario, small_scenario

    kwargs: dict = {
        "workload": sc["workload"],
        "budget_fraction": sc["budget_fraction"],
    }
    if sc.get("seed") is not None:
        kwargs["seed"] = int(sc["seed"])
    if sc.get("horizon") is not None:
        kwargs["horizon"] = int(sc["horizon"])
    builder = paper_scenario if sc["scale"] == "paper" else small_scenario
    return builder(**kwargs)


def _materialize_run(manifest: dict, scenario=None):
    """Rebuild the full run stack a manifest describes.

    Returns ``(scenario, controller, injector, policy)``; ``injector`` and
    ``policy`` are None for fault-free runs.  Both ``repro run`` and
    ``repro resume`` construct the stack through this one function, so a
    resumed run is guaranteed to sit on the same deterministic foundation
    as the run that wrote the checkpoint.
    """
    from .core.coca import COCA
    from .faults import DegradationPolicy, FaultInjector, FaultSchedule
    from .solvers import DistributedGSD, GSDSolver, ShardedGSDSolver

    if scenario is None:
        scenario = _scenario_from_manifest(manifest["scenario"])
    run = manifest["run"]
    solver = None
    shards = int(run.get("shards") or 0)
    if shards:
        # --shards N promotes the GSD chain to the process-sharded solver
        # (bit-identical results; see docs/SCALING.md).
        solver = ShardedGSDSolver(
            shards=shards,
            iterations=int(run["iterations"]),
            rng=np.random.default_rng(int(run["solver_seed"])),
        )
    elif run["solver"] == "gsd":
        solver = GSDSolver(
            iterations=int(run["iterations"]),
            rng=np.random.default_rng(int(run["solver_seed"])),
        )
    elif run["solver"] == "distributed":
        solver = DistributedGSD(
            iterations=int(run["iterations"]),
            rng=np.random.default_rng(int(run["solver_seed"])),
        )
    controller = COCA(
        scenario.model,
        scenario.environment.portfolio,
        v_schedule=float(run["v"]),
        alpha=scenario.alpha,
        solver=solver,
    )
    advice = run.get("advice")
    if advice:
        # Advice-augmented runs wrap the same COCA in an AdvisedController
        # fed from the signal frames; a feed that never delivers forecast
        # payloads leaves the run bit-identical to the plain controller,
        # so a batch `repro resume` of an advised serve checkpoint is safe.
        from .advice import (
            AdvisedController,
            FeedForecastProvider,
            ForecastAdvisor,
            TrustGuard,
        )

        advisor = ForecastAdvisor(
            scenario.model,
            scenario.environment.portfolio,
            frame_length=int(advice["frame"]),
            horizon=scenario.horizon,
            provider=FeedForecastProvider(),
            alpha=scenario.alpha,
        )
        controller = AdvisedController(
            controller,
            advisor=advisor,
            guard=TrustGuard(lam=float(advice["lam"])),
        )
    injector = policy = None
    if manifest.get("schedule") is not None:
        schedule = FaultSchedule.from_dict(manifest["schedule"])
        injector = FaultInjector(
            schedule, num_groups=scenario.model.fleet.num_groups
        )
        policy = DegradationPolicy(
            mode=run["fallback"], retries=int(run["retries"])
        )
    return scenario, controller, injector, policy


def _shutdown_solver(controller) -> None:
    """Release solver-held resources (the sharded solver's worker pool)."""
    close = getattr(getattr(controller, "solver", None), "close", None)
    if callable(close):
        close()


def _check_shards_flags(command: str, args) -> bool:
    """Validate the --shards flag combination; prints and returns False on
    a bad combination."""
    if getattr(args, "shards", None) is None:
        return True
    if args.shards < 1:
        print(f"repro {command}: --shards must be >= 1", file=sys.stderr)
        return False
    if args.solver == "distributed":
        print(
            f"repro {command}: --shards drives the process-sharded GSD "
            "chain and cannot be combined with --solver distributed "
            "(the in-process message-passing protocol)",
            file=sys.stderr,
        )
        return False
    return True


def _print_run_summary(record) -> None:
    print(
        f"run: cost ${record.cost.sum():,.0f}, "
        f"brown {record.brown_energy.sum():.4g} MWh, "
        f"dropped {record.dropped.sum():.4g} req/s, "
        f"final queue {record.queue[-1]:.4g} MWh"
    )


def _maybe_save_record(args, record) -> None:
    if getattr(args, "record_out", None):
        from .state import save_record

        save_record(record, args.record_out)
        print(f"record written to {args.record_out}")


def _cmd_run(args) -> int:
    import json
    import os

    from .sim import simulate
    from .state import CheckpointWriter, atomic_write_text

    if not _check_shards_flags("run", args):
        return EXIT_BAD_INPUT
    scenario_cfg = {
        "scale": args.scale,
        "horizon": args.horizon,
        "workload": args.workload,
        "seed": args.seed,
        "budget_fraction": args.budget_fraction,
    }
    scenario = _scenario_from_manifest(scenario_cfg)

    schedule = None
    if args.schedule or args.chaos:
        if args.schedule:
            schedule = _load_schedule_or_fail("run", args.schedule)
            if schedule is None:
                return EXIT_BAD_INPUT
        else:
            schedule = _chaos_schedule(
                args, scenario.horizon, scenario.model.fleet.num_groups
            )
        if args.schedule_out:
            schedule.to_json(path=args.schedule_out)
            print(f"fault schedule written to {args.schedule_out}")
    if (
        args.solve_deadline_ms is not None
        and args.solver == "distributed"
    ):
        print(
            "note: --solve-deadline-ms applies to the local iterative "
            "solvers (gsd/cd/enumeration); the distributed protocol "
            "ignores it",
            file=sys.stderr,
        )

    manifest = {
        "format": _MANIFEST_FORMAT,
        "version": 1,
        "scenario": scenario_cfg,
        "run": {
            "v": args.v,
            "solver": args.solver,
            "iterations": args.iterations,
            "solver_seed": args.fault_seed,
            "shards": args.shards,
            "fallback": args.fallback,
            "retries": args.retries,
            "solve_deadline_ms": args.solve_deadline_ms,
        },
        "schedule": None if schedule is None else schedule.to_dict(),
        "checkpoint": {"every": args.checkpoint_every, "keep": args.checkpoint_keep},
    }
    _, controller, injector, policy = _materialize_run(manifest, scenario=scenario)

    writer = None
    if args.checkpoint_dir:
        os.makedirs(args.checkpoint_dir, exist_ok=True)
        atomic_write_text(
            os.path.join(args.checkpoint_dir, MANIFEST_NAME),
            json.dumps(manifest, indent=2, sort_keys=True) + "\n",
        )
        writer = CheckpointWriter(
            args.checkpoint_dir,
            every=args.checkpoint_every,
            keep=args.checkpoint_keep,
        )
        print(
            f"checkpointing every {args.checkpoint_every} slot(s) "
            f"into {args.checkpoint_dir} (keep {args.checkpoint_keep})"
        )

    try:
        with _telemetry_scope(args) as telemetry:
            record = simulate(
                scenario.model,
                controller,
                scenario.environment,
                telemetry=telemetry,
                faults=injector,
                degradation=policy,
                checkpoint=writer,
                solve_deadline_ms=args.solve_deadline_ms,
                slot_sleep_s=args.slot_sleep_ms / 1000.0,
            )
    finally:
        _shutdown_solver(controller)
    _print_run_summary(record)
    _maybe_save_record(args, record)
    return 0


def _cmd_resume(args) -> int:
    import json
    import os

    from .sim import simulate
    from .state import CheckpointError, CheckpointWriter, latest_valid_checkpoint

    manifest_path = os.path.join(args.checkpoint_dir, MANIFEST_NAME)
    try:
        with open(manifest_path) as fh:
            manifest = json.load(fh)
        if manifest.get("format") != _MANIFEST_FORMAT:
            raise ValueError(f"not a {_MANIFEST_FORMAT} file")
    except (OSError, ValueError, KeyError) as exc:
        print(f"repro resume: cannot load {manifest_path}: {exc}", file=sys.stderr)
        return EXIT_BAD_INPUT

    deadline_ms = manifest["run"].get("solve_deadline_ms")
    if args.verify_replay and deadline_ms is not None:
        # Deadline expiry depends on wall-clock speed, so a deadline-bounded
        # run is *expected* to diverge between machines; a bit-identity
        # check against it would only produce noise.
        print(
            "repro resume: --verify-replay is incompatible with a run that "
            "used --solve-deadline-ms (wall-clock deadlines intentionally "
            "break bit-replay)",
            file=sys.stderr,
        )
        return EXIT_BAD_INPUT

    with _telemetry_scope(args) as telemetry:
        ckpt = latest_valid_checkpoint(args.checkpoint_dir, telemetry=telemetry)
        if ckpt is None:
            print(
                f"repro resume: no valid checkpoint in {args.checkpoint_dir}",
                file=sys.stderr,
            )
            return EXIT_BAD_INPUT
        scenario, controller, injector, policy = _materialize_run(manifest)
        print(
            f"resuming from {ckpt.path} "
            f"(slot {ckpt.slot}/{scenario.horizon})"
        )
        writer = CheckpointWriter(
            args.checkpoint_dir,
            every=int(manifest["checkpoint"]["every"]),
            keep=int(manifest["checkpoint"]["keep"]),
        )
        try:
            record = simulate(
                scenario.model,
                controller,
                scenario.environment,
                telemetry=telemetry,
                faults=injector,
                degradation=policy,
                checkpoint=writer,
                resume_from=ckpt,
                solve_deadline_ms=deadline_ms,
            )
        except CheckpointError as exc:
            print(f"repro resume: {exc}", file=sys.stderr)
            return EXIT_BAD_INPUT
        finally:
            _shutdown_solver(controller)
    _print_run_summary(record)
    _maybe_save_record(args, record)

    if args.verify_replay:
        from .state import record_mismatches

        _, golden_ctrl, golden_inj, golden_pol = _materialize_run(
            manifest, scenario=scenario
        )
        try:
            golden = simulate(
                scenario.model,
                golden_ctrl,
                scenario.environment,
                faults=golden_inj,
                degradation=golden_pol,
            )
        finally:
            _shutdown_solver(golden_ctrl)
        mismatched = record_mismatches(record, golden)
        if mismatched:
            print(
                f"repro resume: replay DIVERGED in {', '.join(mismatched)}",
                file=sys.stderr,
            )
            return EXIT_REPLAY_MISMATCH
        print("replay: resumed run is bit-identical to an uninterrupted run")
    return 0


# ----------------------------------------------------------------- serve
def _serve_config(args):
    """A :class:`~repro.serve.ServeConfig` from the parsed CLI flags."""
    from .serve import ServeConfig

    return ServeConfig(
        source=args.source,
        feed=args.feed,
        slot_period_s=args.slot_period_s,
        signal_timeout_s=args.signal_timeout_s,
        poll_interval_s=args.poll_interval_s,
        solve_deadline_ms=args.solve_deadline_ms,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_every=args.checkpoint_every,
        checkpoint_keep=args.checkpoint_keep,
        status_port=args.status_port,
        status_port_file=args.status_port_file,
        dashboard_out=args.dashboard_out,
        dashboard_every=args.dashboard_every,
        alert_rearm=args.alert_rearm,
        max_slots=args.max_slots,
        source_seed=args.source_seed,
        fallback=args.fallback,
        retries=args.retries,
        synthetic={
            "p_drop": args.p_drop,
            "p_late": args.p_late,
            "p_field_loss": args.p_field_loss,
            "p_swap": args.p_swap,
        },
    )


def _load_manifest_or_fail(command: str, checkpoint_dir: str) -> dict | None:
    """Load a run manifest for a CLI command; on failure print the reason
    (no traceback) to stderr and return None."""
    import json
    import os

    manifest_path = os.path.join(checkpoint_dir, MANIFEST_NAME)
    try:
        with open(manifest_path) as fh:
            manifest = json.load(fh)
        if manifest.get("format") != _MANIFEST_FORMAT:
            raise ValueError(f"not a {_MANIFEST_FORMAT} file")
        return manifest
    except (OSError, ValueError, KeyError) as exc:
        print(f"repro {command}: cannot load {manifest_path}: {exc}", file=sys.stderr)
        return None


def _serve_build_feed(config, scenario, advice_frame=None):
    """(source, environment, injector, policy) for the configured feed.

    ``advice_frame`` (slots) makes the replay/synthetic sources attach a
    forecast payload to every frame-boundary signal frame; file feeds
    carry whatever payloads were written into them.

    Replay wraps the scenario's own environment (base-backed, so its
    checkpoints are interchangeable with batch ``repro run``) and attaches
    *no* injector: replay promises perfect delivery, and the fault-free
    runner path is exactly the batch path -- bit-identity by construction.
    Live feeds (file, synthetic) run over a bare :class:`LiveEnvironment`
    with an empty-schedule injector, so every feed loss degrades through
    the standard chaos machinery.
    """
    from .faults import DegradationPolicy, FaultInjector, FaultSchedule
    from .serve import (
        FileTailSignalSource,
        LiveEnvironment,
        ReplaySignalSource,
        SyntheticSignalSource,
    )

    if config.source == "replay":
        source = ReplaySignalSource(scenario.environment, advice_frame=advice_frame)
        environment = LiveEnvironment(scenario.horizon, base=scenario.environment)
        return source, environment, None, None
    if config.source == "file":
        source = FileTailSignalSource(config.feed)
    else:
        source = SyntheticSignalSource(
            scenario.environment,
            seed=config.source_seed,
            advice_frame=advice_frame,
            **config.synthetic,
        )
    environment = LiveEnvironment(scenario.horizon)
    injector = FaultInjector(
        FaultSchedule(), num_groups=scenario.model.fleet.num_groups
    )
    policy = DegradationPolicy(mode=config.fallback, retries=config.retries)
    return source, environment, injector, policy


def _cmd_serve(args) -> int:
    import json
    import os
    import signal as _signal
    import threading

    from .monitor import default_suite
    from .monitor.alerts import AlertChannel, stderr_sink
    from .monitor.suite import MonitoringTracer
    from .serve import (
        JOURNAL_NAME,
        ControlService,
        FrameJournal,
        StalenessResolver,
        StatusBoard,
        StatusServer,
        frames_from_environment,
    )
    from .state import (
        CheckpointError,
        CheckpointWriter,
        atomic_write_text,
        latest_valid_checkpoint,
    )
    from .telemetry import (
        JsonlTracer,
        MetricsRegistry,
        RingBufferTracer,
        Telemetry,
        write_metrics,
    )

    if not _check_shards_flags("serve", args):
        return EXIT_BAD_INPUT
    config = _serve_config(args)

    manifest = None
    if args.resume:
        if not args.checkpoint_dir:
            print(
                "repro serve: --resume requires --checkpoint-dir DIR",
                file=sys.stderr,
            )
            return EXIT_BAD_INPUT
        manifest = _load_manifest_or_fail("serve", args.checkpoint_dir)
        if manifest is None:
            return EXIT_BAD_INPUT
        # The manifest owns everything determinism depends on (scenario,
        # solver, feed identity); the current invocation keeps only the
        # operational knobs (pacing, ports, dashboard, max-slots).
        serve_cfg = manifest.get("serve", {})
        config.source = serve_cfg.get("source", config.source)
        config.feed = serve_cfg.get("feed", config.feed)
        config.source_seed = int(serve_cfg.get("source_seed", config.source_seed))
        config.synthetic = dict(serve_cfg.get("synthetic", config.synthetic))
        config.signal_timeout_s = float(
            serve_cfg.get("signal_timeout_s", config.signal_timeout_s)
        )
        config.fallback = manifest["run"].get("fallback", config.fallback)
        config.retries = int(manifest["run"].get("retries", config.retries))
        config.solve_deadline_ms = manifest["run"].get("solve_deadline_ms")
        config.checkpoint_every = int(manifest["checkpoint"]["every"])
        config.checkpoint_keep = int(manifest["checkpoint"]["keep"])

    problems = config.problems()
    if args.dry_run:
        if problems:
            for problem in problems:
                print(f"repro serve: {problem}", file=sys.stderr)
            print(f"dry run: {len(problems)} problem(s) found", file=sys.stderr)
            return EXIT_BAD_INPUT
        print(f"dry run: config ok ({config.describe()})")
        return 0
    if problems:
        for problem in problems:
            print(f"repro serve: {problem}", file=sys.stderr)
        return EXIT_BAD_INPUT

    if manifest is not None:
        scenario = _scenario_from_manifest(manifest["scenario"])
    else:
        scenario_cfg = {
            "scale": args.scale,
            "horizon": args.horizon,
            "workload": args.workload,
            "seed": args.seed,
            "budget_fraction": args.budget_fraction,
        }
        scenario = _scenario_from_manifest(scenario_cfg)
        if args.advice:
            if args.advice_lam < 0:
                print("repro serve: --advice-lam must be >= 0", file=sys.stderr)
                return EXIT_BAD_INPUT
            if args.advice_frame < 1 or scenario.horizon % args.advice_frame:
                print(
                    f"repro serve: --advice-frame {args.advice_frame} must "
                    f"divide the horizon ({scenario.horizon})",
                    file=sys.stderr,
                )
                return EXIT_BAD_INPUT
        manifest = {
            "format": _MANIFEST_FORMAT,
            "version": 1,
            "scenario": scenario_cfg,
            # The run block matches `repro run` exactly, and `schedule` is
            # None, so a batch `repro resume DIR` rebuilds the identical
            # fault-free stack from a serve checkpoint directory.
            "run": {
                "v": args.v,
                "solver": args.solver,
                "iterations": args.iterations,
                "solver_seed": args.solver_seed,
                "shards": args.shards,
                "fallback": config.fallback,
                "retries": config.retries,
                "solve_deadline_ms": config.solve_deadline_ms,
                # Advice identity lives in the run block so both serve
                # --resume and batch `repro resume` rebuild the same
                # (possibly advised) controller stack.
                "advice": (
                    {"lam": args.advice_lam, "frame": args.advice_frame}
                    if args.advice
                    else None
                ),
            },
            "schedule": None,
            "checkpoint": {
                "every": config.checkpoint_every,
                "keep": config.checkpoint_keep,
            },
            "serve": {
                "source": config.source,
                "feed": config.feed,
                "source_seed": config.source_seed,
                "synthetic": config.synthetic,
                "signal_timeout_s": config.signal_timeout_s,
            },
        }

    advice_cfg = manifest["run"].get("advice")
    source, environment, injector, policy = _serve_build_feed(
        config,
        scenario,
        advice_frame=int(advice_cfg["frame"]) if advice_cfg else None,
    )
    _, controller, _, _ = _materialize_run(manifest, scenario=scenario)
    if advice_cfg:
        print(
            f"advice: enabled (λ={float(advice_cfg['lam']):g}, "
            f"frame={int(advice_cfg['frame'])} slots; untrusted advice "
            "falls back to plain COCA)"
        )

    # Alerts stream to stderr as monitors raise them; --alert-rearm re-arms
    # a persisting condition every N slots instead of once per run.
    channel = AlertChannel([stderr_sink], dedup_window=config.alert_rearm)
    suite = default_suite(channel=channel)
    file_tracer = JsonlTracer(args.trace_out) if args.trace_out else None
    ring = None
    tap_inner = file_tracer
    if config.dashboard_every:
        ring = RingBufferTracer(inner=file_tracer)
        tap_inner = ring
    # Serve runs indefinitely, so histograms default to a bounded seeded
    # reservoir instead of append-forever raw lists (percentiles exact
    # until the reservoir fills, uniformly sampled after).
    reservoir = args.metrics_reservoir if args.metrics_reservoir > 0 else None
    telemetry = Telemetry(
        tracer=MonitoringTracer(suite, tap_inner),
        metrics=MetricsRegistry(reservoir=reservoir),
    )

    writer = journal = None
    journal_path = None
    if config.checkpoint_dir:
        os.makedirs(config.checkpoint_dir, exist_ok=True)
        journal_path = os.path.join(config.checkpoint_dir, JOURNAL_NAME)
        if not args.resume:
            atomic_write_text(
                os.path.join(config.checkpoint_dir, MANIFEST_NAME),
                json.dumps(manifest, indent=2, sort_keys=True) + "\n",
            )
        writer = CheckpointWriter(
            config.checkpoint_dir,
            every=config.checkpoint_every,
            keep=config.checkpoint_keep,
        )

    from .sim.engine import SlotRunner

    runner = SlotRunner(
        scenario.model,
        controller,
        environment,
        telemetry=telemetry,
        faults=injector,
        degradation=policy,
        checkpoint=writer,
        solve_deadline_ms=config.solve_deadline_ms,
    )
    resolver = StalenessResolver(
        source,
        injector=runner.injector,
        telemetry=telemetry,
        timeout_s=config.signal_timeout_s,
        poll_interval_s=config.poll_interval_s,
    )
    runner.start()

    if args.resume:
        ckpt = latest_valid_checkpoint(config.checkpoint_dir, telemetry=telemetry)
        if ckpt is None:
            print(
                f"repro serve: no valid checkpoint in {config.checkpoint_dir}",
                file=sys.stderr,
            )
            return EXIT_BAD_INPUT
        # Refill the resolved prefix the checkpoint's fingerprint covers:
        # replay regenerates it from the scenario traces; live feeds replay
        # the journal (synthesized values exist nowhere else).
        if config.source == "replay":
            frames = [
                f
                for f in frames_from_environment(
                    scenario.environment,
                    advice_frame=int(advice_cfg["frame"]) if advice_cfg else None,
                )
                if f.slot < ckpt.slot
            ]
        else:
            frames = FrameJournal.load(journal_path, upto=ckpt.slot)
            if len(frames) < ckpt.slot:
                print(
                    f"repro serve: journal {journal_path} holds "
                    f"{len(frames)} frame(s) but the checkpoint is at slot "
                    f"{ckpt.slot}; cannot rebuild the resolved prefix",
                    file=sys.stderr,
                )
                return EXIT_BAD_INPUT
            FrameJournal.truncate(journal_path, frames)
        for frame in frames:
            environment.append(frame)
        try:
            runner.restore(ckpt)
        except CheckpointError as exc:
            print(f"repro serve: {exc}", file=sys.stderr)
            return EXIT_BAD_INPUT
        source.seek(ckpt.slot)
        resolver.restore(frames[-1] if frames else None)
        print(f"resuming from {ckpt.path} (slot {ckpt.slot}/{scenario.horizon})")
    if journal_path is not None:
        journal = FrameJournal(journal_path)

    board = StatusBoard()
    server = None
    if config.status_port is not None:
        server = StatusServer(
            board, port=config.status_port, registry=telemetry.metrics
        )
        print(f"status endpoint at {server.url}/status")
        print(f"metrics endpoint at {server.url}/metrics")
        if config.status_port_file:
            atomic_write_text(config.status_port_file, f"{server.port}\n")

    service = ControlService(
        runner,
        resolver,
        board=board,
        suite=suite,
        journal=journal,
        budget_mwh=scenario.budget,
        slot_period_s=config.slot_period_s,
        max_slots=config.max_slots,
        dashboard_out=config.dashboard_out,
        dashboard_every=config.dashboard_every,
        recent_events=ring,
    )

    stop = threading.Event()
    previous_handlers = {}
    for sig in (_signal.SIGTERM, _signal.SIGINT):
        previous_handlers[sig] = _signal.signal(sig, lambda *_: stop.set())
    print(f"serving: {config.describe()} ({scenario.horizon} slots)")
    try:
        result = service.run(stop)
    finally:
        for sig, handler in previous_handlers.items():
            _signal.signal(sig, handler)
        _shutdown_solver(controller)
        suite.finalize()
        if journal is not None:
            journal.close()
        source.close()
        if server is not None:
            server.close()
        if file_tracer is not None:
            file_tracer.close()
            print(f"trace written to {args.trace_out} ({file_tracer.count} events)")
        if args.metrics_out:
            write_metrics(telemetry.metrics, args.metrics_out)
            print(f"metrics written to {args.metrics_out}")

    reports = suite.reports()
    passing = sum(1 for r in reports if r.passed)
    for report in reports:
        if not report.passed:
            print(f"  FAIL {report.monitor}: {report.detail}", file=sys.stderr)

    if result.status == "stopped":
        where = f"slot {result.stopped_at}/{scenario.horizon}"
        if result.checkpoint_path:
            print(f"serve: stopped at {where}; checkpoint {result.checkpoint_path}")
            print(
                f"resume with: repro serve --resume --checkpoint-dir "
                f"{config.checkpoint_dir}"
                + (
                    f"  (or: repro resume {config.checkpoint_dir})"
                    if config.source == "replay"
                    else ""
                )
            )
        else:
            print(f"serve: stopped at {where} (no checkpoint dir; not resumable)")
        return EXIT_SHUTDOWN if stop.is_set() else 0

    _print_run_summary(result.record)
    _maybe_save_record(args, result.record)
    stats = resolver.stats()
    degraded = sum(v for k, v in stats.items() if k not in ("ok", "late"))
    print(
        f"signals: {stats['ok']} ok, {stats['late']} late, {degraded} degraded "
        f"({', '.join(f'{k}={v}' for k, v in stats.items() if k not in ('ok', 'late') and v)})"
        if degraded
        else f"signals: {stats['ok']} ok, {stats['late']} late"
    )
    print(f"monitors: {passing}/{len(reports)} passing")
    if args.strict and passing < len(reports):
        return EXIT_MONITOR_CRITICAL
    return 0


# ----------------------------------------------------------------- parser
def _add_fault_args(parser: argparse.ArgumentParser) -> None:
    """The fault-schedule flags shared by ``chaos`` and ``run``."""
    parser.add_argument(
        "--fault-seed",
        type=int,
        default=7,
        help="seed for the generated fault schedule (and message faults)",
    )
    parser.add_argument(
        "--failure-rate", type=float, default=0.02,
        help="per-slot, per-group failure probability",
    )
    parser.add_argument(
        "--mean-repair", type=float, default=6.0,
        help="mean slots a failed group stays down",
    )
    parser.add_argument(
        "--signal-rate", type=float, default=0.0,
        help="per-slot probability of a stale/missing observation fault",
    )
    parser.add_argument(
        "--loss", type=float, default=0.0, help="message loss probability"
    )
    parser.add_argument(
        "--delay", type=float, default=0.0, help="message delay probability"
    )
    parser.add_argument(
        "--duplicate", type=float, default=0.0,
        help="message duplication probability",
    )
    parser.add_argument(
        "--schedule", default=None, metavar="FILE",
        help="replay a fault schedule from JSON instead of generating one",
    )
    parser.add_argument(
        "--schedule-out", default=None, metavar="FILE",
        help="write the schedule (generated or loaded) to JSON for replay",
    )
    parser.add_argument(
        "--fallback",
        choices=["last_action", "proportional"],
        default="last_action",
        help="degraded action when a slot solve fails",
    )
    parser.add_argument(
        "--retries", type=int, default=1,
        help="slot-solve retries before falling back",
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="COCA (SC'13) reproduction: experiments from the command line",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("quickstart", help="COCA vs carbon-unaware")
    _add_scenario_args(p)
    _add_telemetry_args(p)
    p.add_argument("--v", type=float, default=None, help="fixed V (default: auto)")
    p.add_argument("--v-iters", type=int, default=9)
    p.set_defaults(func=_cmd_quickstart)

    p = sub.add_parser("sweep-v", help="Fig. 2(a,b): V sweep")
    _add_scenario_args(p)
    _add_telemetry_args(p)
    p.add_argument("--values", default="0.001,0.01,0.1,1,10,100")
    p.add_argument(
        "--workers", type=int, default=None, help="parallel processes for the sweep"
    )
    p.set_defaults(func=_cmd_sweep_v)

    p = sub.add_parser("compare-hp", help="Fig. 3: COCA vs PerfectHP")
    _add_scenario_args(p)
    _add_telemetry_args(p)
    p.add_argument("--v", type=float, default=None)
    p.add_argument("--v-iters", type=int, default=9)
    p.add_argument("--buckets", type=int, default=10)
    p.set_defaults(func=_cmd_compare_hp)

    p = sub.add_parser("budget-sweep", help="Fig. 5: budget sweep")
    _add_scenario_args(p)
    _add_telemetry_args(p)
    p.add_argument("--fractions", default="0.85,0.95,1.0")
    p.add_argument("--no-opt", action="store_true", help="skip the OPT baseline")
    p.add_argument("--v-iters", type=int, default=8)
    p.add_argument(
        "--workers", type=int, default=None, help="parallel processes for the sweep"
    )
    p.set_defaults(func=_cmd_budget_sweep)

    p = sub.add_parser("report", help="full markdown scenario report")
    _add_scenario_args(p)
    _add_telemetry_args(p)
    p.add_argument("--v", type=float, default=None)
    p.add_argument("--v-iters", type=int, default=9)
    p.add_argument("--no-opt", action="store_true")
    p.add_argument("--output", "-o", default=None, help="write to a file")
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser("traces", help="summarize a synthetic trace")
    _add_telemetry_args(p)
    p.add_argument("kind", choices=["fiu", "msr", "solar", "wind", "price", "rec-price"])
    p.add_argument("--horizon", type=int, default=None)
    p.add_argument("--seed", type=int, default=None)
    p.set_defaults(func=_cmd_traces)

    p = sub.add_parser("telemetry", help="summarize a JSONL event trace")
    _add_telemetry_args(p)
    p.add_argument("trace", help="path to a trace written with --trace-out")
    p.add_argument(
        "--spans",
        action="store_true",
        help="append the span hotspot tree (schema v3 traces; older traces "
        "report no span events)",
    )
    p.set_defaults(func=_cmd_telemetry)

    p = sub.add_parser(
        "dashboard", help="render an offline HTML health report from a trace"
    )
    p.add_argument(
        "--trace", required=True, help="path to a trace written with --trace-out"
    )
    p.add_argument(
        "--output", "-o", default="dashboard.html", help="HTML file to write"
    )
    p.add_argument("--title", default=None, help="report title (default: trace path)")
    p.add_argument(
        "--strict",
        action="store_true",
        help="exit 2 when any invariant monitor fails (CI gating)",
    )
    p.set_defaults(func=_cmd_dashboard)

    p = sub.add_parser(
        "profile",
        help="profile a COCA run: sampling flamegraph with span attribution",
    )
    _add_scenario_args(p)
    _add_telemetry_args(p)
    p.add_argument("--v", type=float, default=150.0, help="fixed V for the run")
    p.add_argument(
        "--solver",
        choices=["auto", "gsd"],
        default="auto",
        help="P3 engine under the profiler (auto = exact enumeration)",
    )
    p.add_argument(
        "--iterations", type=int, default=200,
        help="iterations per solve for --solver gsd",
    )
    p.add_argument(
        "--solver-seed", type=int, default=7,
        help="RNG seed for the stochastic solvers",
    )
    p.add_argument(
        "--interval-ms", type=float, default=2.0, metavar="MS",
        help="sampling period on the profile clock",
    )
    p.add_argument(
        "--out-dir", "-o", default="profile", metavar="DIR",
        help="write profile.folded and profile.html here",
    )
    p.add_argument(
        "--top", type=int, default=10, metavar="N",
        help="hotspot frames printed to the console",
    )
    p.set_defaults(func=_cmd_profile)

    p = sub.add_parser(
        "bench",
        help="run benchmark suites; append rows to the trend ledger",
    )
    p.add_argument(
        "suites", nargs="*", metavar="SUITE",
        help="suite names (default: every runnable suite; see --list)",
    )
    p.add_argument(
        "--bench-dir", default="benchmarks", metavar="DIR",
        help="directory scanned for bench_*.py suites",
    )
    p.add_argument(
        "--ledger", default="benchmarks/results/trend.jsonl", metavar="FILE",
        help="JSONL trend ledger to append to and check against",
    )
    p.add_argument(
        # Not benchmarks/results: ledger runs use shortened suite args
        # (--quick, fewer repeats), and writing there would clobber the
        # committed full-run references CI checks against.
        "--out-dir", default="benchmarks/results/latest", metavar="DIR",
        help="where suites write their BENCH_<suite>.json reports",
    )
    p.add_argument(
        "--list", action="store_true",
        help="list discovered suites (runnable or not) and exit",
    )
    p.add_argument(
        "--check", action="store_true",
        help="exit 1 when a gated counter regressed vs the previous "
        "ledger row for the same suite",
    )
    p.add_argument(
        "--tolerance", type=float, default=0.20, metavar="FRAC",
        help="relative growth allowed on gated counters with --check",
    )
    p.add_argument(
        "--no-append", action="store_true",
        help="run (and optionally check) without writing ledger rows",
    )
    p.set_defaults(func=_cmd_bench)

    p = sub.add_parser(
        "chaos", help="COCA under seeded fault injection (chaos run)"
    )
    _add_scenario_args(p)
    _add_telemetry_args(p)
    _add_fault_args(p)
    p.add_argument("--v", type=float, default=150.0, help="fixed V for the run")
    p.add_argument(
        "--distributed",
        action="store_true",
        help="solve P3 with DistributedGSD so message faults apply",
    )
    p.add_argument(
        "--iterations", type=int, default=12,
        help="DistributedGSD iterations per solve (with --distributed)",
    )
    p.add_argument(
        "--verify-replay",
        action="store_true",
        help="run twice and require bit-identical records (exit 3 otherwise)",
    )
    p.add_argument(
        "--strict",
        action="store_true",
        help="exit 2 when any invariant monitor fails (CI gating)",
    )
    p.set_defaults(func=_cmd_chaos)

    p = sub.add_parser(
        "run",
        help="checkpointed long-horizon run (crash-safe, resumable)",
    )
    _add_scenario_args(p)
    _add_telemetry_args(p)
    _add_fault_args(p)
    p.add_argument("--v", type=float, default=150.0, help="fixed V for the run")
    p.add_argument(
        "--solver",
        choices=["auto", "gsd", "distributed"],
        default="auto",
        help="P3 engine (auto = exact enumeration/coordinate descent)",
    )
    p.add_argument(
        "--iterations", type=int, default=200,
        help="iterations per solve for --solver gsd/distributed",
    )
    p.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="run the GSD chain over N worker processes (bit-identical to "
        "the single-process solver; see docs/SCALING.md)",
    )
    p.add_argument(
        "--chaos",
        action="store_true",
        help="inject a generated fault schedule (see the fault flags)",
    )
    p.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help="write crash-safe checkpoints (and the resume manifest) here",
    )
    p.add_argument(
        "--checkpoint-every", type=int, default=1, metavar="N",
        help="checkpoint cadence in slots",
    )
    p.add_argument(
        "--checkpoint-keep", type=int, default=3, metavar="K",
        help="checkpoints retained in the rotation",
    )
    p.add_argument(
        "--solve-deadline-ms", type=float, default=None, metavar="MS",
        help="wall-clock budget per slot solve (anytime cut on expiry)",
    )
    p.add_argument(
        "--record-out", default=None, metavar="FILE",
        help="save the final SimulationRecord (.npz) for golden diffs",
    )
    p.add_argument(
        "--slot-sleep-ms", type=float, default=0.0, metavar="MS",
        help="sleep after each slot (crash-harness aid; results unchanged)",
    )
    p.set_defaults(func=_cmd_run)

    p = sub.add_parser(
        "resume",
        help="continue a killed run from its newest valid checkpoint",
    )
    _add_telemetry_args(p)
    p.add_argument(
        "checkpoint_dir", metavar="DIR",
        help="checkpoint directory written by `repro run --checkpoint-dir`",
    )
    p.add_argument(
        "--verify-replay",
        action="store_true",
        help="also run uninterrupted and require bit-identical records "
             "(exit 3 otherwise)",
    )
    p.add_argument(
        "--record-out", default=None, metavar="FILE",
        help="save the final SimulationRecord (.npz) for golden diffs",
    )
    p.set_defaults(func=_cmd_resume)

    p = sub.add_parser(
        "serve",
        help="long-running online control service over a live signal feed",
    )
    _add_scenario_args(p)
    _add_telemetry_args(p)
    p.add_argument(
        "--source",
        choices=["replay", "file", "synthetic"],
        default="replay",
        help="signal feed: replay the scenario traces (deterministic), "
        "tail a JSONL feed file, or a seeded lossy generator",
    )
    p.add_argument(
        "--feed", default=None, metavar="FILE",
        help="JSONL feed path (required with --source file)",
    )
    p.add_argument("--v", type=float, default=150.0, help="fixed V for the run")
    p.add_argument(
        "--solver",
        choices=["auto", "gsd", "distributed"],
        default="auto",
        help="P3 engine (auto = exact enumeration/coordinate descent)",
    )
    p.add_argument(
        "--iterations", type=int, default=200,
        help="iterations per solve for --solver gsd/distributed",
    )
    p.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="run the GSD chain over N worker processes (bit-identical to "
        "the single-process solver; see docs/SCALING.md)",
    )
    p.add_argument(
        "--solver-seed", type=int, default=7,
        help="RNG seed for the stochastic solvers",
    )
    p.add_argument(
        "--fallback",
        choices=["last_action", "proportional"],
        default="last_action",
        help="degraded action when a slot solve fails",
    )
    p.add_argument(
        "--retries", type=int, default=1,
        help="slot-solve retries before falling back",
    )
    p.add_argument(
        "--advice",
        action="store_true",
        help="wrap the controller with the learning-augmented advice layer "
        "(forecast payloads from the feed; see docs/ADVICE.md)",
    )
    p.add_argument(
        "--advice-lam", type=float, default=0.25, metavar="L",
        help="robustness knob λ: committed cost never exceeds (1+λ)× plain "
        "COCA",
    )
    p.add_argument(
        "--advice-frame", type=int, default=24, metavar="T",
        help="advice frame length in slots (must divide the horizon)",
    )
    p.add_argument(
        "--slot-period-s", type=float, default=0.0, metavar="S",
        help="wall-clock pacing per slot (0 = free-running)",
    )
    p.add_argument(
        "--signal-timeout-s", type=float, default=0.0, metavar="S",
        help="staleness budget waiting for a slot's frame (0 = one poll)",
    )
    p.add_argument(
        "--poll-interval-s", type=float, default=0.05, metavar="S",
        help="sleep between feed polls while waiting",
    )
    p.add_argument(
        "--solve-deadline-ms", type=float, default=None, metavar="MS",
        help="wall-clock budget per slot solve (anytime cut on expiry)",
    )
    p.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help="write crash-safe checkpoints, the resume manifest, and the "
        "frame journal here",
    )
    p.add_argument(
        "--checkpoint-every", type=int, default=1, metavar="N",
        help="checkpoint cadence in slots",
    )
    p.add_argument(
        "--checkpoint-keep", type=int, default=3, metavar="K",
        help="checkpoints retained in the rotation",
    )
    p.add_argument(
        "--status-port", type=int, default=None, metavar="PORT",
        help="serve GET /status, /healthz, and Prometheus /metrics on "
        "127.0.0.1:PORT (0 = ephemeral)",
    )
    p.add_argument(
        "--metrics-reservoir", type=int, default=8192, metavar="N",
        help="bound each latency histogram to a seeded N-sample reservoir "
        "(exact until N observations; 0 = unbounded raw lists)",
    )
    p.add_argument(
        "--status-port-file", default=None, metavar="FILE",
        help="write the bound status port to FILE (ephemeral-port discovery)",
    )
    p.add_argument(
        "--dashboard-out", default=None, metavar="FILE",
        help="re-render a live HTML dashboard to FILE",
    )
    p.add_argument(
        "--dashboard-every", type=int, default=0, metavar="N",
        help="slots between dashboard re-renders (0 = disabled)",
    )
    p.add_argument(
        "--alert-rearm", type=int, default=None, metavar="W",
        help="re-announce a persisting alert every W slots (default: once)",
    )
    p.add_argument(
        "--max-slots", type=int, default=None, metavar="N",
        help="stop (with a checkpoint) after N slots; smoke-test aid",
    )
    p.add_argument(
        "--source-seed", type=int, default=0,
        help="delivery seed for --source synthetic",
    )
    p.add_argument(
        "--p-drop", type=float, default=0.02,
        help="synthetic: probability a slot's frame is never delivered",
    )
    p.add_argument(
        "--p-late", type=float, default=0.1,
        help="synthetic: probability a frame needs an extra poll",
    )
    p.add_argument(
        "--p-field-loss", type=float, default=0.02,
        help="synthetic: per-field omission probability",
    )
    p.add_argument(
        "--p-swap", type=float, default=0.05,
        help="synthetic: probability adjacent frames swap delivery order",
    )
    p.add_argument(
        "--resume",
        action="store_true",
        help="continue from the newest valid checkpoint in --checkpoint-dir",
    )
    p.add_argument(
        "--dry-run",
        action="store_true",
        help="validate the service configuration and exit 0 (clean) or 1",
    )
    p.add_argument(
        "--record-out", default=None, metavar="FILE",
        help="save the final SimulationRecord (.npz) for golden diffs",
    )
    p.add_argument(
        "--strict",
        action="store_true",
        help="exit 2 when any invariant monitor fails (CI gating)",
    )
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "scenarios",
        help="named learning-augmented advice scenarios (docs/ADVICE.md)",
    )
    ssub = p.add_subparsers(dest="scenarios_cmd", required=True, metavar="COMMAND")
    sp = ssub.add_parser("list", help="list the scenario pack")
    sp.set_defaults(func=_cmd_scenarios_list)
    sp = ssub.add_parser(
        "run",
        help="run one named scenario against its plain-COCA shadow",
    )
    sp.add_argument("name", help="scenario name (see `repro scenarios list`)")
    sp.add_argument(
        "--lam", type=float, default=0.25, metavar="L",
        help="robustness knob λ: advised cost is certified ≤ (1+λ)× plain",
    )
    sp.add_argument(
        "--horizon", type=int, default=24 * 7,
        help="slots to run (must be a multiple of the 24-slot advice frame)",
    )
    sp.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="write the advised run's JSONL event trace (advice.* stream)",
    )
    sp.add_argument(
        "--json", action="store_true",
        help="print the full result (costs, bound, guard summary) as JSON",
    )
    sp.add_argument(
        "--strict", action="store_true",
        help="exit 2 when any invariant monitor fails (CI gating); the "
        "certified (1+λ) bound is always enforced",
    )
    sp.set_defaults(func=_cmd_scenarios_run)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
