"""Data-center substrate: servers, fleets, queueing, power, switching."""

from .fleet import Fleet, FleetAction, ServerGroup, default_fleet
from .power import LinearTariff, PowerModel, Tariff, TieredTariff, brown_energy
from .queueing import DELAY_UNIT_COST, DelayCostModel, MG1PSDelay, SquaredLoadDelay
from .server import WATT, ServerProfile, cubic_dvfs_profile, opteron_2380
from .switching import OPTERON_MAX_HOURLY_KWH, SwitchingCostModel
from .thermal import pue_from_temperature, temperature_trace

__all__ = [
    "ServerProfile",
    "opteron_2380",
    "cubic_dvfs_profile",
    "WATT",
    "Fleet",
    "FleetAction",
    "ServerGroup",
    "default_fleet",
    "DelayCostModel",
    "MG1PSDelay",
    "SquaredLoadDelay",
    "DELAY_UNIT_COST",
    "PowerModel",
    "Tariff",
    "LinearTariff",
    "TieredTariff",
    "brown_energy",
    "SwitchingCostModel",
    "OPTERON_MAX_HOURLY_KWH",
    "temperature_trace",
    "pue_from_temperature",
]
