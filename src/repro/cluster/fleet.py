"""Heterogeneous server fleets and fleet-level actions.

The paper manages a data center of ~216 K servers by grouping homogeneous
machines and making capacity-provisioning decisions "on a group basis:
changing speed selections for a whole group of (homogeneous) servers in
batch" (section 4.2; GSD is evaluated with 200 groups).  :class:`Fleet`
captures that structure: a list of :class:`ServerGroup` entries, each a
count of identical servers, possibly with *different* profiles across groups
(heterogeneity "due to various reasons such as different purchase dates").

A one-slot decision -- the pair (speed vector, load distribution) of problem
P3 -- is a :class:`FleetAction`: one speed level per group (``-1`` = off,
i.e. the zero speed ``s_{i,0}``) plus a per-server load for each group.  By
symmetry and convexity of the delay cost, servers inside a group always
share load equally at an optimum, so a per-group scalar loses nothing.

Everything is laid out as padded NumPy tables so solvers can evaluate power
(Eq. (2)) and delay cost (Eq. (4)) for whole fleets, or for batches of
candidate actions, without Python-level loops.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from .server import ServerProfile, opteron_2380

__all__ = ["ServerGroup", "Fleet", "FleetAction", "default_fleet"]


@dataclass(frozen=True)
class ServerGroup:
    """``count`` identical servers sharing one :class:`ServerProfile`."""

    profile: ServerProfile
    count: int

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise ValueError("group count must be positive")

    @property
    def max_capacity(self) -> float:
        """Aggregate top-speed service rate (req/s)."""
        return self.count * self.profile.max_speed

    @property
    def max_power(self) -> float:
        """Aggregate full-speed full-load power (MW)."""
        return self.count * self.profile.max_power


class Fleet:
    """A heterogeneous data center as padded group-level NumPy tables.

    Attributes (all read-only arrays; ``G`` groups, ``K`` = max speed count):

    - ``counts[g]`` -- servers in group ``g``.
    - ``num_levels[g]`` -- number of positive speed levels of group ``g``.
    - ``speed_table[g, k]`` -- service rate of level ``k`` (req/s); padded
      entries (``k >= num_levels[g]``) hold ``nan`` and are masked by
      ``level_valid``.
    - ``dyn_coeff[g, k]`` -- dynamic power per unit load (MW per req/s),
      i.e. ``p_c(x) / x`` from Eq. (1).
    - ``static_power[g]`` -- per-server idle power (MW).
    """

    def __init__(self, groups: Sequence[ServerGroup]):
        if not groups:
            raise ValueError("fleet needs at least one group")
        self.groups: tuple[ServerGroup, ...] = tuple(groups)
        G = len(self.groups)
        K = max(g.profile.num_speeds for g in self.groups)

        counts = np.array([g.count for g in self.groups], dtype=np.float64)
        num_levels = np.array([g.profile.num_speeds for g in self.groups])
        speed_table = np.full((G, K), np.nan)
        dyn_table = np.full((G, K), np.nan)
        static = np.array([g.profile.static_power for g in self.groups])
        for gi, grp in enumerate(self.groups):
            k = grp.profile.num_speeds
            speed_table[gi, :k] = grp.profile.speeds
            dyn_table[gi, :k] = grp.profile.dynamic_power
        level_valid = ~np.isnan(speed_table)
        with np.errstate(invalid="ignore"):
            dyn_coeff = dyn_table / speed_table

        for arr in (counts, speed_table, dyn_table, static, level_valid, dyn_coeff):
            arr.setflags(write=False)
        self.counts = counts
        self.num_levels = num_levels
        self.speed_table = speed_table
        self.dynamic_power_table = dyn_table
        self.static_power = static
        self.level_valid = level_valid
        self.dyn_coeff = dyn_coeff

    # ------------------------------------------------------------------
    @property
    def num_groups(self) -> int:
        """Number of groups ``G``."""
        return len(self.groups)

    @property
    def num_servers(self) -> int:
        """Total server count ``N``."""
        return int(self.counts.sum())

    @property
    def max_levels(self) -> int:
        """Padded speed-table width ``K``."""
        return self.speed_table.shape[1]

    @property
    def max_capacity(self) -> float:
        """Total top-speed service rate (req/s)."""
        return float(sum(g.max_capacity for g in self.groups))

    @property
    def max_power(self) -> float:
        """Total power (MW) with every server at top speed, fully loaded."""
        return float(sum(g.max_power for g in self.groups))

    @property
    def is_homogeneous(self) -> bool:
        """True when all groups share one profile (enables the fast
        enumeration solver)."""
        first = self.groups[0].profile
        return all(g.profile is first or g.profile == first for g in self.groups[1:])

    def capacity(self, gamma: float) -> float:
        """Usable service rate under the utilization cap ``gamma`` (Eq. (7))."""
        return gamma * self.max_capacity

    # ------------------------------------------------------------------
    # Vectorized action evaluation
    # ------------------------------------------------------------------
    def group_speeds(self, levels: np.ndarray) -> np.ndarray:
        """Per-group service rate for a level vector (``-1`` -> 0 speed)."""
        levels = np.asarray(levels)
        on = levels >= 0
        out = np.zeros(self.num_groups)
        out[on] = self.speed_table[np.nonzero(on)[0], levels[on]]
        return out

    def action_power(self, levels: np.ndarray, per_server_load: np.ndarray) -> float:
        """Total IT power (MW) of an action -- Eq. (2) summed over groups."""
        levels = np.asarray(levels)
        load = np.asarray(per_server_load, dtype=np.float64)
        on = levels >= 0
        idx = np.nonzero(on)[0]
        if idx.size == 0:
            return 0.0
        coeff = self.dyn_coeff[idx, levels[idx]]
        per_server = self.static_power[idx] + coeff * load[idx]
        return float(np.sum(self.counts[idx] * per_server))

    def action_delay_sum(
        self,
        levels: np.ndarray,
        per_server_load: np.ndarray,
        delay_model=None,
    ) -> float:
        """Unweighted delay sum over all servers.

        With the default ``delay_model=None`` this is Eq. (4)'s M/G/1/PS
        form ``sum_i lambda_i / (x_i - lambda_i)``; pass any
        :class:`~repro.cluster.queueing.DelayCostModel` to evaluate an
        alternative convex delay cost (section 2.3's generality claim).
        Infinite when any server is at or beyond saturation under the
        M/G/1/PS model; other models define their own saturation behavior.
        """
        levels = np.asarray(levels)
        load = np.asarray(per_server_load, dtype=np.float64)
        on = levels >= 0
        idx = np.nonzero(on)[0]
        if idx.size == 0:
            return 0.0 if np.all(load[~on] <= 0) else np.inf
        x = self.speed_table[idx, levels[idx]]
        lam = load[idx]
        if delay_model is None:
            if np.any(lam >= x):
                return np.inf
            return float(np.sum(self.counts[idx] * lam / (x - lam)))
        return float(np.sum(self.counts[idx] * delay_model.cost(lam, x)))

    def validate_action(
        self,
        levels: np.ndarray,
        per_server_load: np.ndarray,
        total_load: float,
        gamma: float,
        *,
        atol: float = 1e-6,
    ) -> None:
        """Raise ``ValueError`` unless the action satisfies constraints
        (7)-(9): valid levels, loads in ``[0, gamma * x]``, and loads summing
        to ``total_load``."""
        levels = np.asarray(levels)
        load = np.asarray(per_server_load, dtype=np.float64)
        if levels.shape != (self.num_groups,) or load.shape != (self.num_groups,):
            raise ValueError("action arrays must have one entry per group")
        if np.any(levels >= self.num_levels):
            raise ValueError("speed level out of range for some group")
        off = levels < 0
        if np.any(load[off] > atol):
            raise ValueError("off groups must carry zero load")
        if np.any(load < -atol):
            raise ValueError("negative per-server load")
        speeds = self.group_speeds(levels)
        if np.any(load > gamma * speeds + atol * np.maximum(speeds, 1.0)):
            raise ValueError("per-server load exceeds gamma * speed")
        served = float(np.sum(self.counts * load))
        scale = max(abs(total_load), 1.0)
        if abs(served - total_load) > 1e-6 * scale + atol:
            raise ValueError(
                f"load distribution serves {served:.6g}, expected {total_load:.6g}"
            )


@dataclass(frozen=True)
class FleetAction:
    """One slot's capacity-provisioning + load-distribution decision.

    Attributes
    ----------
    levels:
        Integer speed level per group; ``-1`` means the zero speed (off).
    per_server_load:
        Arrival rate (req/s) routed to *each server* of each group.
    """

    levels: np.ndarray
    per_server_load: np.ndarray

    def __post_init__(self) -> None:
        levels = np.asarray(self.levels, dtype=np.int64).copy()
        load = np.asarray(self.per_server_load, dtype=np.float64).copy()
        if levels.shape != load.shape or levels.ndim != 1:
            raise ValueError("levels and per_server_load must be equal-length 1-D")
        levels.setflags(write=False)
        load.setflags(write=False)
        object.__setattr__(self, "levels", levels)
        object.__setattr__(self, "per_server_load", load)

    @classmethod
    def all_off(cls, fleet: Fleet) -> "FleetAction":
        """The idle action: every group at the zero speed."""
        g = fleet.num_groups
        return cls(levels=np.full(g, -1, dtype=np.int64), per_server_load=np.zeros(g))

    def power(self, fleet: Fleet) -> float:
        """Total IT power (MW) under this action."""
        return fleet.action_power(self.levels, self.per_server_load)

    def delay_sum(self, fleet: Fleet) -> float:
        """Unweighted delay-cost sum (Eq. (4)) under this action."""
        return fleet.action_delay_sum(self.levels, self.per_server_load)

    def served_load(self, fleet: Fleet) -> float:
        """Total arrival rate served (req/s)."""
        return float(np.sum(fleet.counts * self.per_server_load))

    def active_servers(self, fleet: Fleet) -> float:
        """Number of servers that are on (at a positive speed)."""
        return float(np.sum(fleet.counts[self.levels >= 0]))

    def on_counts(self, fleet: Fleet) -> np.ndarray:
        """Per-group count of servers that are on."""
        return np.where(self.levels >= 0, fleet.counts, 0.0)


def default_fleet(
    *, num_groups: int = 200, servers_per_group: int = 1080
) -> Fleet:
    """The paper's simulated data center: ~216 K Opteron-2380 servers with a
    50 MW peak (216,000 x 231 W = 49.9 MW), organized as 200 homogeneous
    groups like the GSD evaluation."""
    profile = opteron_2380()
    return Fleet([ServerGroup(profile, servers_per_group) for _ in range(num_groups)])
