"""Facility power and electricity-tariff models (paper Eqs. (2)-(3)).

The paper focuses on server (IT) power and absorbs cooling, power delivery,
and other overheads into a power usage effectiveness (PUE) factor that
multiplies IT power to give facility power.  Electricity cost is then

    e(t) = w(t) * [ PUE * p_IT(t) - r(t) ]^+

for the linear tariff the evaluation uses; section 2.1 notes the analysis
also covers "nonlinear convex functions (e.g., the data center is charged at
a higher price if it consumes more power)", so a tiered convex tariff is
provided as well.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

__all__ = ["PowerModel", "Tariff", "LinearTariff", "TieredTariff", "brown_energy"]


def brown_energy(facility_power: float, renewable: float) -> float:
    """Grid (brown) energy drawn in one slot: ``[p - r]^+`` in MWh.

    ``facility_power`` is the slot's facility power in MW (= MWh over the
    hour); ``renewable`` is the on-site supply available that slot.
    """
    return max(facility_power - renewable, 0.0)


@dataclass(frozen=True)
class PowerModel:
    """Converts IT power to facility power via a PUE factor.

    The paper treats PUE as possibly time-varying; a constant is sufficient
    for the experiments, but :meth:`facility_power` accepts a per-call
    override so a trace-driven PUE can be layered on.
    """

    pue: float = 1.0

    def __post_init__(self) -> None:
        if self.pue < 1.0:
            raise ValueError("PUE must be >= 1")

    def facility_power(self, it_power: float, pue: float | None = None) -> float:
        """Facility power (MW) for a given IT power."""
        factor = self.pue if pue is None else pue
        if factor < 1.0:
            raise ValueError("PUE must be >= 1")
        return factor * it_power


class Tariff(ABC):
    """Electricity-cost function ``e(brown_energy; price)`` for one slot."""

    @abstractmethod
    def cost(self, brown: float, price: float) -> float:
        """Dollar cost of drawing ``brown`` MWh at posted price ``price``
        ($/MWh)."""

    @abstractmethod
    def marginal(self, brown: float, price: float) -> float:
        """d(cost)/d(brown) at the given draw -- used by solvers that need
        a local linearization of a convex tariff."""


@dataclass(frozen=True)
class LinearTariff(Tariff):
    """The evaluation's default: cost = price x energy (Eq. (3))."""

    def cost(self, brown: float, price: float) -> float:
        if brown < 0:
            raise ValueError("brown energy must be non-negative")
        return price * brown

    def marginal(self, brown: float, price: float) -> float:
        return price


@dataclass(frozen=True)
class TieredTariff(Tariff):
    """Convex piecewise-linear tariff: draws beyond each threshold are
    charged at escalating multiples of the posted price.

    Parameters
    ----------
    thresholds:
        Increasing MWh breakpoints where the rate escalates.
    multipliers:
        Price multiplier applied within each tier; length must be
        ``len(thresholds) + 1`` and non-decreasing (convexity).
    """

    thresholds: tuple[float, ...]
    multipliers: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.multipliers) != len(self.thresholds) + 1:
            raise ValueError("need one more multiplier than thresholds")
        if any(b <= a for a, b in zip(self.thresholds, self.thresholds[1:])):
            raise ValueError("thresholds must be strictly increasing")
        if any(b < a for a, b in zip(self.multipliers, self.multipliers[1:])):
            raise ValueError("multipliers must be non-decreasing (convex tariff)")
        if self.multipliers[0] < 0:
            raise ValueError("multipliers must be non-negative")

    def cost(self, brown: float, price: float) -> float:
        if brown < 0:
            raise ValueError("brown energy must be non-negative")
        edges = (0.0, *self.thresholds, np.inf)
        total = 0.0
        for lo, hi, mult in zip(edges[:-1], edges[1:], self.multipliers):
            if brown <= lo:
                break
            total += (min(brown, hi) - lo) * mult * price
        return total

    def marginal(self, brown: float, price: float) -> float:
        tier = int(np.searchsorted(np.asarray(self.thresholds), brown, side="right"))
        return self.multipliers[tier] * price
