"""Delay-cost models (paper Eq. (4) and generalizations).

The paper quantifies delay-induced revenue loss with a convex per-server
function ``d_i(lambda_i, x_i)``, increasing in the load and decreasing in
the service rate, and instantiates it with the M/G/1/PS mean number in
system ``lambda / (x - lambda)`` (average response time times arrival rate,
by Little's law).  Section 2.3 notes the analysis is "not restricted to the
specific delay cost given by (4)", so the solvers here work against the
:class:`DelayCostModel` interface; any strictly convex model that can report
its marginal cost and invert it plugs in.

``DELAY_UNIT_COST`` is the calibration constant converting one unit of
delay cost (one job-in-system for one hour) to dollars.  The paper's
absolute normalization of beta = 10 is not recoverable from the text (its
units depend on the authors' internal scaling); we document the combined
monetary weight ``beta * DELAY_UNIT_COST`` in EXPERIMENTS.md and verify that
the *relative* results (cost ratios, crossovers) are insensitive to it over
a wide band.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

__all__ = ["DelayCostModel", "MG1PSDelay", "SquaredLoadDelay", "DELAY_UNIT_COST"]

#: Dollars per (job in system x hour); see module docstring.  Calibrated so
#: that, at the carbon-unaware optimum of the paper-scale scenario, delay
#: contributes roughly half of the operational cost and the neutrality knee
#: of the V sweep lands near the paper's V ~ 240 (see EXPERIMENTS.md).
DELAY_UNIT_COST = 6e-4


class DelayCostModel(ABC):
    """Convex per-server delay-cost interface.

    All methods are vectorized: ``load`` and ``speed`` may be arrays of a
    common broadcast shape.  Implementations must be convex and increasing
    in ``load``, decreasing in ``speed``, with ``cost(0, x) == 0``.
    """

    @abstractmethod
    def cost(self, load: np.ndarray, speed: np.ndarray) -> np.ndarray:
        """Delay cost of one server at service rate ``speed`` serving
        ``load`` req/s (infinite at or beyond saturation)."""

    @abstractmethod
    def marginal(self, load: np.ndarray, speed: np.ndarray) -> np.ndarray:
        """Partial derivative of :meth:`cost` with respect to ``load``."""

    @abstractmethod
    def load_at_marginal(self, m: np.ndarray, speed: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`marginal` in the load argument: the load at
        which the marginal delay cost equals ``m`` (clipped to ``[0, speed)``
        semantics are the caller's responsibility)."""


@dataclass(frozen=True)
class MG1PSDelay(DelayCostModel):
    """The paper's default: M/G/1/PS mean jobs in system, Eq. (4).

    ``cost = load / (speed - load)``; the marginal is
    ``speed / (speed - load)^2`` and its inverse is
    ``load = speed - sqrt(speed / m)``.
    """

    def cost(self, load, speed):
        load = np.asarray(load, dtype=np.float64)
        speed = np.asarray(speed, dtype=np.float64)
        with np.errstate(divide="ignore", invalid="ignore"):
            out = np.where(load < speed, load / (speed - load), np.inf)
        return np.where(load <= 0, 0.0, out)

    def marginal(self, load, speed):
        load = np.asarray(load, dtype=np.float64)
        speed = np.asarray(speed, dtype=np.float64)
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.where(load < speed, speed / (speed - load) ** 2, np.inf)

    def load_at_marginal(self, m, speed):
        m = np.asarray(m, dtype=np.float64)
        speed = np.asarray(speed, dtype=np.float64)
        with np.errstate(divide="ignore", invalid="ignore"):
            lam = speed - np.sqrt(speed / m)
        return np.clip(lam, 0.0, speed)

    def mean_response_time(self, load, speed):
        """Mean response time (seconds, for req/s rates): ``1/(x - lambda)``
        scaled by nothing -- with rates in req/s this is already seconds."""
        load = np.asarray(load, dtype=np.float64)
        speed = np.asarray(speed, dtype=np.float64)
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.where(load < speed, 1.0 / (speed - load), np.inf)


@dataclass(frozen=True)
class SquaredLoadDelay(DelayCostModel):
    """A smooth alternative convex model: ``cost = load^2 / speed``.

    Finite even at saturation; used in tests to demonstrate the solvers are
    not tied to the M/G/1/PS form (paper section 2.3 last paragraph).
    """

    def cost(self, load, speed):
        load = np.asarray(load, dtype=np.float64)
        speed = np.asarray(speed, dtype=np.float64)
        return load**2 / speed

    def marginal(self, load, speed):
        load = np.asarray(load, dtype=np.float64)
        speed = np.asarray(speed, dtype=np.float64)
        return 2.0 * load / speed

    def load_at_marginal(self, m, speed):
        m = np.asarray(m, dtype=np.float64)
        speed = np.asarray(speed, dtype=np.float64)
        return np.clip(m * speed / 2.0, 0.0, speed)
