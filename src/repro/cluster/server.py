"""Server power/performance models (paper Eq. (1)).

A server exposes a finite set of processing speeds ``S_i = {s_0=0, s_1, ...,
s_K}`` (P-states via DVFS; ``0`` means deep sleep / off) and consumes

    p_i(lambda_i, x_i) = p_static + p_dynamic(x_i) * lambda_i / x_i   if x_i > 0
    p_i(lambda_i, 0)   = 0

where ``lambda_i / x_i`` is the utilization.  The default profile is the
PowerPack-measured quad-core AMD Opteron 2380 the paper uses: 140 W idle and
four DVFS speeds 0.8 / 1.3 / 1.8 / 2.5 GHz drawing 184 / 194 / 208 / 231 W
at full load, processing 10 req/s at the top speed (paper section 5.1).

Internally all powers are in **MW** and service rates in **req/s**, the
units used throughout the library (slot length is one hour, so a power of
``p`` MW is also an energy of ``p`` MWh per slot).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["ServerProfile", "opteron_2380", "cubic_dvfs_profile", "WATT"]

#: Conversion from watts to the library's MW power unit.
WATT = 1e-6


@dataclass(frozen=True, eq=False)
class ServerProfile:
    """Power/performance model of one server type.

    Parameters
    ----------
    name:
        Identifier used in reports.
    static_power:
        Idle (load-independent) power in MW drawn whenever the server is on,
        regardless of the chosen positive speed.
    speeds:
        Strictly increasing positive service rates (req/s), one per DVFS
        level; the zero speed is implicit.
    dynamic_power:
        Full-load *computing* power (MW) at each speed, i.e. total power at
        100% utilization minus ``static_power``.
    """

    name: str
    static_power: float
    speeds: np.ndarray
    dynamic_power: np.ndarray

    def __post_init__(self) -> None:
        speeds = np.asarray(self.speeds, dtype=np.float64)
        dyn = np.asarray(self.dynamic_power, dtype=np.float64)
        if speeds.ndim != 1 or speeds.size == 0:
            raise ValueError("speeds must be a non-empty 1-D array")
        if speeds.shape != dyn.shape:
            raise ValueError("speeds and dynamic_power must have equal length")
        if np.any(speeds <= 0) or np.any(np.diff(speeds) <= 0):
            raise ValueError("speeds must be strictly increasing and positive")
        if np.any(dyn < 0):
            raise ValueError("dynamic power must be non-negative")
        if self.static_power < 0:
            raise ValueError("static power must be non-negative")
        speeds = speeds.copy()
        dyn = dyn.copy()
        speeds.setflags(write=False)
        dyn.setflags(write=False)
        object.__setattr__(self, "speeds", speeds)
        object.__setattr__(self, "dynamic_power", dyn)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ServerProfile):
            return NotImplemented
        return (
            self.name == other.name
            and self.static_power == other.static_power
            and np.array_equal(self.speeds, other.speeds)
            and np.array_equal(self.dynamic_power, other.dynamic_power)
        )

    def __hash__(self) -> int:
        return hash(
            (
                self.name,
                self.static_power,
                self.speeds.tobytes(),
                self.dynamic_power.tobytes(),
            )
        )

    # ------------------------------------------------------------------
    @property
    def num_speeds(self) -> int:
        """Number of positive speed levels (``K_i`` in the paper)."""
        return int(self.speeds.size)

    @property
    def max_speed(self) -> float:
        """Top service rate in req/s."""
        return float(self.speeds[-1])

    @property
    def max_power(self) -> float:
        """Power (MW) at top speed and full utilization."""
        return float(self.static_power + self.dynamic_power[-1])

    @property
    def energy_per_request(self) -> np.ndarray:
        """Dynamic energy (MWh) per request at each speed: ``p_c(x)/x / 3600``
        is *not* used here -- since slots are hourly, the per-(req/s) dynamic
        power coefficient ``p_c(x)/x`` is the natural unit.  This property
        returns that coefficient (MW per req/s) for each speed level."""
        return self.dynamic_power / self.speeds

    # ------------------------------------------------------------------
    def power(self, load: float, speed_index: int) -> float:
        """Average power (MW) of one server at speed level ``speed_index``
        (0-based, into :attr:`speeds`) serving ``load`` req/s.  Paper Eq. (1);
        the off state is represented by the caller simply not calling this.
        """
        x = float(self.speeds[speed_index])
        if not 0.0 <= load <= x:
            raise ValueError(f"load {load} outside [0, {x}]")
        return self.static_power + float(self.dynamic_power[speed_index]) * load / x

    def utilization(self, load: float, speed_index: int) -> float:
        """Fraction of capacity in use: ``load / speed``."""
        return load / float(self.speeds[speed_index])

    def describe(self) -> str:
        """Human-readable summary of the profile."""
        levels = ", ".join(
            f"{s:.3g} req/s @ {(self.static_power + d) / WATT:.0f} W"
            for s, d in zip(self.speeds, self.dynamic_power)
        )
        return f"{self.name}: idle {self.static_power / WATT:.0f} W; [{levels}]"


def opteron_2380() -> ServerProfile:
    """The paper's measured server: quad-core AMD Opteron 2380.

    Idle 140 W; DVFS levels 0.8 / 1.3 / 1.8 / 2.5 GHz drawing 184 / 194 /
    208 / 231 W at full load.  Service rate is 10 req/s at 2.5 GHz and is
    assumed proportional to frequency at the lower levels.
    """
    freqs = np.array([0.8, 1.3, 1.8, 2.5])
    total_watts = np.array([184.0, 194.0, 208.0, 231.0])
    return ServerProfile(
        name="opteron-2380",
        static_power=140.0 * WATT,
        speeds=10.0 * freqs / freqs[-1],
        dynamic_power=(total_watts - 140.0) * WATT,
    )


def cubic_dvfs_profile(
    *,
    name: str = "cubic-dvfs",
    max_speed: float = 10.0,
    static_watts: float = 100.0,
    max_dynamic_watts: float = 150.0,
    levels: int = 4,
    exponent: float = 3.0,
) -> ServerProfile:
    """A textbook DVFS profile with dynamic power cubic in frequency.

    Unlike the measured Opteron numbers (where the top speed dominates on
    every axis), a cubic curve makes intermediate speeds genuinely
    energy-efficient per request, which exercises the speed-selection logic
    of the solvers on non-degenerate trade-offs.  Used by tests and the
    heterogeneous-fleet example.
    """
    if levels < 1:
        raise ValueError("need at least one speed level")
    fracs = np.linspace(1.0 / levels, 1.0, levels)
    return ServerProfile(
        name=name,
        static_power=static_watts * WATT,
        speeds=max_speed * fracs,
        dynamic_power=max_dynamic_watts * WATT * fracs**exponent,
    )
