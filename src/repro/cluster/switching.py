"""Server on/off switching-cost model (paper Fig. 5(d)).

Toggling servers wastes energy and time and causes wear and tear.  Following
the paper (and Lin et al. [19]), all of these are folded into a single
*energy-equivalent* cost per transition, normalized against the maximum
hourly energy of one server (0.231 kWh for the Opteron 2380): the paper's
sensitivity study sweeps the per-server switching cost from 0 to 10% of
0.231 kWh and finds the total cost rises by <5%.

Because the cost is denominated in energy, it is charged as *additional
power draw* in the slot where the transition happens -- it therefore both
costs money at the posted price and counts against the carbon budget, which
is exactly why an aggressive controller that thrashes servers hurts twice.

Convention: following the right-sizing literature, only *power-on*
transitions are charged by default (booting dominates); set
``charge_off=True`` to charge both directions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SwitchingCostModel", "OPTERON_MAX_HOURLY_KWH"]

#: Max hourly energy of the paper's server, kWh (231 W for one hour).
OPTERON_MAX_HOURLY_KWH = 0.231


@dataclass(frozen=True)
class SwitchingCostModel:
    """Energy-equivalent switching cost.

    Parameters
    ----------
    energy_per_toggle:
        MWh charged per server transition.  Use
        :meth:`from_fraction` to express it as a fraction of a server's
        maximum hourly energy, the paper's normalization.
    charge_off:
        Whether power-off transitions are charged too (default: only on).
    """

    energy_per_toggle: float = 0.0
    charge_off: bool = False

    def __post_init__(self) -> None:
        if self.energy_per_toggle < 0:
            raise ValueError("switching energy must be non-negative")

    @classmethod
    def from_fraction(
        cls,
        fraction: float,
        *,
        max_hourly_kwh: float = OPTERON_MAX_HOURLY_KWH,
        charge_off: bool = False,
    ) -> "SwitchingCostModel":
        """Build from the paper's normalization: ``fraction`` of the
        server's maximum hourly energy (e.g. 0.10 -> 0.0231 kWh/toggle)."""
        if fraction < 0:
            raise ValueError("fraction must be non-negative")
        return cls(
            energy_per_toggle=fraction * max_hourly_kwh * 1e-3,  # kWh -> MWh
            charge_off=charge_off,
        )

    @property
    def enabled(self) -> bool:
        """True when transitions carry a nonzero charge."""
        return self.energy_per_toggle > 0.0

    def transition_count(
        self, prev_on: np.ndarray, new_on: np.ndarray
    ) -> float:
        """Number of charged transitions between per-group on-counts."""
        prev_on = np.asarray(prev_on, dtype=np.float64)
        new_on = np.asarray(new_on, dtype=np.float64)
        delta = new_on - prev_on
        count = float(np.sum(np.maximum(delta, 0.0)))
        if self.charge_off:
            count += float(np.sum(np.maximum(-delta, 0.0)))
        return count

    def energy(self, prev_on: np.ndarray, new_on: np.ndarray) -> float:
        """Switching energy (MWh) charged for this slot's transitions."""
        if not self.enabled:
            return 0.0
        return self.energy_per_toggle * self.transition_count(prev_on, new_on)
