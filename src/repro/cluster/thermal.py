"""Weather-driven time-varying PUE (paper footnote 1).

The paper absorbs cooling and power-delivery overheads into "a
(time-varying) power usage effectiveness (PUE) factor".  Cooling overhead
tracks outdoor conditions: free-air economization keeps PUE near its floor
when it is cool outside, and chiller load grows roughly linearly with the
temperature excess above the free-cooling threshold.  This module supplies

* :func:`temperature_trace` -- a synthetic hourly outdoor dry-bulb
  temperature with seasonal and diurnal structure plus weather wander, and
* :func:`pue_from_temperature` -- the standard piecewise-linear
  economizer/chiller map from temperature to PUE,

so experiments can hand the simulator a realistic hourly PUE series via
``Environment(pue=...)``.
"""

from __future__ import annotations

import numpy as np

from ..traces.base import HOURS_PER_DAY, HOURS_PER_YEAR, Trace

__all__ = ["temperature_trace", "pue_from_temperature"]


def temperature_trace(
    horizon: int = HOURS_PER_YEAR,
    *,
    annual_mean: float = 15.0,
    seasonal_amplitude: float = 9.0,
    diurnal_amplitude: float = 5.0,
    seed: int = 23,
    rng: np.random.Generator | None = None,
) -> Trace:
    """Synthetic hourly outdoor temperature in deg C.

    Seasonal sinusoid (coldest ~late January) + diurnal sinusoid (warmest
    mid-afternoon) + AR(1) weather wander.
    """
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    gen = rng if rng is not None else np.random.default_rng(seed)
    t = np.arange(horizon, dtype=np.float64)
    day_of_year = (t / HOURS_PER_DAY) % 365
    hour_of_day = t % HOURS_PER_DAY
    seasonal = -seasonal_amplitude * np.cos(2.0 * np.pi * (day_of_year - 25.0) / 365.0)
    diurnal = diurnal_amplitude * np.cos(2.0 * np.pi * (hour_of_day - 15.0) / 24.0)

    wander = np.empty(horizon)
    rho, sigma = 0.98, 0.45
    innov = gen.normal(0.0, sigma, size=horizon)
    wander[0] = innov[0]
    for i in range(1, horizon):
        wander[i] = rho * wander[i - 1] + innov[i]

    return Trace(annual_mean + seasonal + diurnal + wander, name="temperature", unit="degC")


def pue_from_temperature(
    temperature: Trace,
    *,
    base_pue: float = 1.12,
    free_cooling_threshold: float = 18.0,
    slope_per_degree: float = 0.02,
    max_pue: float = 1.8,
) -> Trace:
    """Piecewise-linear economizer/chiller PUE map.

    PUE equals ``base_pue`` at or below the free-cooling threshold and
    rises by ``slope_per_degree`` per deg C above it, clamped at
    ``max_pue`` (chillers saturate).
    """
    if base_pue < 1.0:
        raise ValueError("base PUE must be >= 1")
    if max_pue < base_pue:
        raise ValueError("max PUE must be >= base PUE")
    if slope_per_degree < 0:
        raise ValueError("slope must be non-negative")
    excess = np.maximum(temperature.values - free_cooling_threshold, 0.0)
    values = np.minimum(base_pue + slope_per_degree * excess, max_pue)
    return Trace(values, name="pue", unit="")
