"""COCA core: the paper's contribution (Algorithm 1, queue, V, bounds)."""

from .batch_jobs import BatchAwareCOCA, BatchBacklog
from .bounds import LyapunovConstants, cost_bound, deficit_bound, lyapunov_constants
from .coca import COCA, default_solver
from .config import DataCenterModel
from .controller import Controller, SlotObservation, SlotOutcome
from .deficit_queue import CarbonDeficitQueue
from .vschedule import AdaptiveV, ConstantV, FrameFeedback, FrameV, VSchedule, quarterly

__all__ = [
    "COCA",
    "BatchAwareCOCA",
    "BatchBacklog",
    "default_solver",
    "DataCenterModel",
    "Controller",
    "SlotObservation",
    "SlotOutcome",
    "CarbonDeficitQueue",
    "VSchedule",
    "ConstantV",
    "FrameV",
    "FrameFeedback",
    "AdaptiveV",
    "quarterly",
    "LyapunovConstants",
    "lyapunov_constants",
    "cost_bound",
    "deficit_bound",
]
