"""Delay-tolerant batch workloads: the separate queue of section 2.3.

The paper focuses on delay-sensitive interactive workloads "while isolating
delay-tolerant batch workloads that can be handled by maintaining a separate
batch job queue as considered by several existing studies [36]".  This
module builds that substrate in the same Lyapunov style as COCA itself:

* :class:`BatchBacklog` -- the batch queue ``B(t+1) = B(t) + b(t) - s(t)``
  in rate-hour units (``b(t)`` is the batch arrival rate, ``s(t)`` the
  service rate granted this slot).
* :class:`BatchAwareCOCA` -- Algorithm 1 extended with a second
  drift-plus-penalty term: each slot it picks the batch service rate ``s``
  (from a candidate grid within the fleet's capacity headroom) minimizing

      [ V g(lambda + s) + q(t) y(lambda + s) ]  -  credit(t) * s,

  where the backlog-pressure credit scales with how full the queue is
  relative to its freshness target, *normalized by a running estimate of
  the marginal cost of serving batch work*:

      credit(t) = eta * ( B(t) / (b_bar * D) ) * m_bar(t),

  with ``b_bar`` the trailing mean batch arrival rate, ``D`` the freshness
  horizon, and ``m_bar`` the trailing mean per-unit objective increase of
  serving batch.  The normalization keeps the pressure term in the same
  units as the objective regardless of fleet size or V: a near-empty queue
  only drains in slots whose marginal cost is well below average (cheap
  power / surplus renewables), while a queue approaching its freshness
  target drains anywhere.  The result is the behaviour the
  green-scheduling literature obtains by prediction -- batch follows cheap
  and green energy -- with no future information at all.

A hard freshness guarantee complements the pressure term: with
``max_age_slots = D``, every slot must grant at least ``B(t)/D`` so no work
can linger indefinitely (capacity permitting; the interactive load always
has priority).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..energy.renewables import RenewablePortfolio
from ..solvers.base import SlotSolution, SlotSolver
from ..traces.base import Trace
from .coca import COCA, default_solver
from .config import DataCenterModel
from .controller import Controller, SlotObservation, SlotOutcome
from .vschedule import VSchedule

__all__ = ["BatchBacklog", "BatchAwareCOCA"]


@dataclass
class BatchBacklog:
    """The batch-job queue in rate-hour units (1 unit = 1 req/s served for
    one hour = 3600 requests)."""

    _backlog: float = field(default=0.0, init=False)
    _history: list = field(default_factory=list, init=False, repr=False)
    _arrived: float = field(default=0.0, init=False)
    _served: float = field(default=0.0, init=False)

    @property
    def backlog(self) -> float:
        """Outstanding batch work ``B(t)`` (rate-hours)."""
        return self._backlog

    @property
    def history(self) -> np.ndarray:
        """Backlog after each update."""
        return np.asarray(self._history, dtype=np.float64)

    @property
    def total_arrived(self) -> float:
        """Cumulative batch work admitted (rate-hours)."""
        return self._arrived

    @property
    def total_served(self) -> float:
        """Cumulative batch work completed (rate-hours)."""
        return self._served

    def update(self, arrivals: float, served: float) -> float:
        """Apply one slot: ``B <- max(B + arrivals - served, 0)``.

        ``served`` may not exceed ``B + arrivals`` (cannot complete work
        that does not exist).
        """
        if arrivals < 0 or served < 0:
            raise ValueError("arrivals and served must be non-negative")
        if served > self._backlog + arrivals + 1e-9:
            raise ValueError("cannot serve more batch work than is queued")
        self._backlog = max(self._backlog + arrivals - served, 0.0)
        self._arrived += arrivals
        self._served += served
        self._history.append(self._backlog)
        return self._backlog

    # -------------------------------------------------------- checkpointing
    def state_dict(self) -> dict:
        """Backlog, totals, and history for a checkpoint."""
        return {
            "backlog": float(self._backlog),
            "history": [float(x) for x in self._history],
            "arrived": float(self._arrived),
            "served": float(self._served),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore queue state captured by :meth:`state_dict`."""
        self._backlog = float(state["backlog"])
        self._history = [float(x) for x in state["history"]]
        self._arrived = float(state["arrived"])
        self._served = float(state["served"])


class BatchAwareCOCA(Controller):
    """COCA co-scheduling a delay-tolerant batch queue.

    Parameters
    ----------
    model, portfolio, v_schedule, frame_length, alpha, solver:
        As for :class:`~repro.core.coca.COCA` (the interactive side).
    batch_arrivals:
        Hourly batch arrival-rate trace (req/s); must match the portfolio
        horizon.
    eta:
        Dimensionless backlog-pressure gain (see module docstring): at
        ``eta = 1`` a queue holding ``max_age_slots`` slots' worth of
        average arrivals is willing to pay the *average* marginal cost to
        drain; smaller values reserve batch work for cheaper-than-average
        slots, larger values drain sooner.
    max_age_slots:
        Freshness horizon ``D``: every slot at least ``B(t)/D`` is granted,
        capacity permitting, so mean queueing age stays O(D).
    service_candidates:
        Size of the candidate grid for the batch rate each slot.
    max_drain_multiple:
        Per-slot ceiling on the batch rate, as a multiple of the trailing
        mean arrival rate.  Capping the drain spreads a backed-up queue
        over *several* cheap slots instead of one crash-drain whose timing
        is only loosely price-correlated.
    """

    def __init__(
        self,
        model: DataCenterModel,
        portfolio: RenewablePortfolio,
        batch_arrivals: Trace,
        *,
        v_schedule: VSchedule | float = 100.0,
        frame_length: int | None = None,
        alpha: float = 1.0,
        solver: SlotSolver | None = None,
        eta: float = 1.0,
        max_age_slots: int = 48,
        service_candidates: int = 6,
        max_drain_multiple: float = 4.0,
    ):
        if len(batch_arrivals) != portfolio.horizon:
            raise ValueError("batch arrivals must cover the portfolio horizon")
        if eta < 0:
            raise ValueError("eta must be non-negative")
        if max_age_slots < 1:
            raise ValueError("max_age_slots must be >= 1")
        if service_candidates < 2:
            raise ValueError("need at least two service candidates")
        if max_drain_multiple <= 0:
            raise ValueError("max_drain_multiple must be positive")
        self.inner = COCA(
            model,
            portfolio,
            v_schedule=v_schedule,
            frame_length=frame_length,
            alpha=alpha,
            solver=solver,
        )
        self.model = model
        self.batch_arrivals = batch_arrivals
        self.eta = eta
        self.max_age_slots = max_age_slots
        self.service_candidates = service_candidates
        self.max_drain_multiple = max_drain_multiple
        self.backlog = BatchBacklog()
        self.batch_served: list[float] = []
        self._pending_service: float = 0.0
        self._solver = solver if solver is not None else default_solver(model)
        # Running scales for the normalized pressure credit (EMAs).
        self._marginal_ema: float | None = None
        self._arrival_ema: float = max(batch_arrivals.mean, 1e-12)
        self._ema_alpha = 0.05

    # ------------------------------------------------------------------
    def start(self, environment) -> None:
        self.inner.start(environment)

    def _candidate_rates(self, observation: SlotObservation) -> np.ndarray:
        """Feasible batch rates for this slot: from the freshness floor up
        to the capacity headroom left by the interactive load."""
        capacity = self.model.fleet.capacity(self.model.gamma)
        headroom = max(capacity - observation.arrival_rate, 0.0)
        available = self.backlog.backlog + self.batch_arrivals[observation.t]
        drain_cap = self.max_drain_multiple * self._arrival_ema
        upper = min(headroom, available, drain_cap)
        floor = min(self.backlog.backlog / self.max_age_slots, upper)
        if upper <= 0.0:
            return np.array([0.0])
        return np.unique(
            np.concatenate(
                ([floor], np.linspace(floor, upper, self.service_candidates))
            )
        )

    def decide(self, observation: SlotObservation) -> SlotSolution:
        # Let the inner COCA handle frame bookkeeping and queue exposure by
        # deciding on the combined load; we search the batch rate on top.
        candidates = self._candidate_rates(observation)

        def probe(extra_rate: float) -> float:
            # Build the problem exactly as the inner controller would,
            # without mutating its state.
            problem = self.model.slot_problem(
                arrival_rate=observation.arrival_rate + extra_rate,
                onsite=observation.onsite,
                price=observation.price,
                network_delay=observation.network_delay,
                q=self.inner.queue.length,
                V=self.inner._current_v,
                prev_on_counts=self.inner._prev_on,
            )
            return self._solver.solve(problem).objective

        rates = sorted({float(s) for s in candidates})
        objectives = {s: probe(s) for s in rates}
        base = objectives[0.0] if 0.0 in objectives else probe(0.0)

        # Update the running per-unit marginal-cost scale from this slot's
        # steepest candidate, then form the normalized pressure credit.
        s_max = rates[-1]
        if s_max > 0.0:
            marginal = max((objectives[s_max] - base) / s_max, 0.0)
            if self._marginal_ema is None:
                self._marginal_ema = marginal
            else:
                self._marginal_ema += self._ema_alpha * (marginal - self._marginal_ema)
        fullness = self.backlog.backlog / (self._arrival_ema * self.max_age_slots)
        credit = self.eta * fullness * (self._marginal_ema or 0.0)
        self._arrival_ema += self._ema_alpha * (
            self.batch_arrivals[observation.t] - self._arrival_ema
        )

        s_star = min(rates, key=lambda s: objectives[s] - credit * s)

        final_obs = SlotObservation(
            t=observation.t,
            arrival_rate=observation.arrival_rate + s_star,
            onsite=observation.onsite,
            price=observation.price,
            network_delay=observation.network_delay,
        )
        solution = self.inner.decide(final_obs)
        self._pending_service = s_star
        self.batch_served.append(s_star)
        return solution

    def observe(self, outcome: SlotOutcome) -> None:
        self.inner.observe(outcome)
        self.backlog.update(
            arrivals=self.batch_arrivals[outcome.t], served=self._pending_service
        )
        self._pending_service = 0.0

    @property
    def queue(self):
        """The carbon-deficit queue of the wrapped COCA instance."""
        return self.inner.queue

    # -------------------------------------------------------- checkpointing
    def state_dict(self) -> dict:
        """Inner COCA state plus the batch queue and pressure-credit EMAs."""
        return {
            "inner": self.inner.state_dict(),
            "backlog": self.backlog.state_dict(),
            "batch_served": [float(s) for s in self.batch_served],
            "pending_service": float(self._pending_service),
            "marginal_ema": (
                None if self._marginal_ema is None else float(self._marginal_ema)
            ),
            "arrival_ema": float(self._arrival_ema),
            "probe_solver": self._solver.state_dict(),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore state captured by :meth:`state_dict`."""
        self.inner.load_state_dict(state["inner"])
        self.backlog.load_state_dict(state["backlog"])
        self.batch_served = [float(s) for s in state["batch_served"]]
        self._pending_service = float(state["pending_service"])
        marginal = state["marginal_ema"]
        self._marginal_ema = None if marginal is None else float(marginal)
        self._arrival_ema = float(state["arrival_ema"])
        self._solver.load_state_dict(state["probe_solver"])

    def set_solve_deadline(self, budget_ms: float | None) -> None:
        """Forward the budget to both the probe solver and the inner COCA."""
        self.inner.set_solve_deadline(budget_ms)
        if hasattr(self._solver, "deadline_ms"):
            self._solver.deadline_ms = budget_ms

    def name(self) -> str:
        return "COCA+batch"
