"""Theorem 2 constants and performance bounds.

Theorem 2 bounds COCA against the optimal T-step-lookahead policy:

(a) deficit:  (1/J) sum_t y(t)  <=  (alpha/J)(sum_t f(t) + Z)
              + (1/(R sqrt(T))) sum_r sqrt( C(T) + V_r (G_r^* - g_min) ),

(b) cost:     g_bar  <=  (1/R) sum_r G_r^*  +  (C(T)/R) sum_r 1/V_r,

with ``C(T) = B + D (T-1)`` built from the boundedness constants of the
proof (Appendix B):

* ``B  >= 0.5 * (y(t) - z(t))^2`` for all t,
* ``D  >= 0.5 * q_diff * max(y(t), r(t))`` with
  ``q_diff = max_t max(y(t), z(t))``.

The helpers here compute valid (conservative) constants from a model and a
renewable portfolio, and evaluate both bounds given the lookahead optima
``G_r^*``; the ``bench_theorem2_bounds`` benchmark checks the measured COCA
run sits inside them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..energy.renewables import RenewablePortfolio
from .config import DataCenterModel

__all__ = ["LyapunovConstants", "lyapunov_constants", "cost_bound", "deficit_bound"]


@dataclass(frozen=True)
class LyapunovConstants:
    """The boundedness constants of Theorem 2's proof.

    Attributes
    ----------
    y_max:
        Largest possible per-slot brown energy (MWh).
    z_max:
        Largest per-slot budget service ``alpha f(t) + z`` (MWh).
    B, D:
        Drift constants (see module docstring).
    """

    y_max: float
    z_max: float
    B: float
    D: float

    def C(self, T: int) -> float:
        """``C(T) = B + D (T - 1)``."""
        if T < 1:
            raise ValueError("frame length T must be >= 1")
        return self.B + self.D * (T - 1)


def lyapunov_constants(
    model: DataCenterModel,
    portfolio: RenewablePortfolio,
    *,
    alpha: float = 1.0,
    switching_headroom: float = 0.0,
) -> LyapunovConstants:
    """Conservative constants from the boundedness assumption.

    ``y_max`` is the facility's worst-case hourly draw (plus optional
    switching headroom in MWh); ``z_max`` uses the portfolio's peak off-site
    slot and the per-slot REC allowance.
    """
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    y_max = model.max_facility_power + switching_headroom
    z = alpha * portfolio.recs / portfolio.horizon
    z_max = alpha * portfolio.offsite.peak + z
    q_diff = max(y_max, z_max)
    r_max = portfolio.onsite.peak
    B = 0.5 * max(y_max, z_max) ** 2
    D = 0.5 * q_diff * max(y_max, r_max)
    return LyapunovConstants(y_max=y_max, z_max=z_max, B=B, D=D)


def cost_bound(
    constants: LyapunovConstants,
    lookahead_optima: np.ndarray,
    v_values: np.ndarray,
    T: int,
) -> float:
    """Right-hand side of Theorem 2(b): the average-cost guarantee.

    Parameters
    ----------
    constants:
        Output of :func:`lyapunov_constants`.
    lookahead_optima:
        ``G_r^*`` per frame -- the optimal average cost of the T-step
        lookahead benchmark (see :mod:`repro.baselines.lookahead`).
    v_values:
        ``V_r`` per frame.
    T:
        Frame length in slots.
    """
    g = np.asarray(lookahead_optima, dtype=np.float64)
    v = np.asarray(v_values, dtype=np.float64)
    if g.shape != v.shape or g.ndim != 1 or g.size == 0:
        raise ValueError("lookahead optima and V values must be equal-length 1-D")
    if np.any(v <= 0):
        raise ValueError("V values must be positive")
    R = g.size
    return float(g.mean() + constants.C(T) / R * np.sum(1.0 / v))


def deficit_bound(
    constants: LyapunovConstants,
    portfolio: RenewablePortfolio,
    lookahead_optima: np.ndarray,
    v_values: np.ndarray,
    T: int,
    *,
    alpha: float = 1.0,
    g_min: float = 0.0,
) -> float:
    """Right-hand side of Theorem 2(a): allowed average hourly brown energy
    including the fudge factor.

    ``g_min`` is the minimum achievable hourly cost over the period (zero is
    always a valid, conservative choice since costs are non-negative).
    """
    g = np.asarray(lookahead_optima, dtype=np.float64)
    v = np.asarray(v_values, dtype=np.float64)
    if g.shape != v.shape or g.ndim != 1 or g.size == 0:
        raise ValueError("lookahead optima and V values must be equal-length 1-D")
    R = g.size
    J = portfolio.horizon
    budget_term = alpha / J * (portfolio.offsite.total + portfolio.recs)
    slack = np.sqrt(np.maximum(constants.C(T) + v * (g - g_min), 0.0))
    fudge = float(np.sum(slack) / (R * np.sqrt(T)))
    return budget_term + fudge
