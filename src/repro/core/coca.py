"""COCA: the paper's online controller (Algorithm 1).

Each slot, COCA solves P3 -- minimize ``V g + q(t) [p - r(t)]^+`` -- using
only currently-available information, then updates the carbon-deficit queue
once the slot's off-site renewable supply is realized.  At frame boundaries
(every ``T`` slots) the queue is reset and the cost-carbon parameter ``V_r``
may change (section 4.3).  Theorem 2 guarantees the resulting average cost
is within ``C(T)/V`` of the optimal T-step-lookahead policy while the
deviation from carbon neutrality stays bounded.

The P3 engine is pluggable (the paper: GSD "or other alternative
algorithms"); by default a homogeneous fleet gets the exact vectorized
enumeration engine and a heterogeneous one gets coordinate descent.
"""

from __future__ import annotations

import numpy as np

from ..energy.renewables import RenewablePortfolio
from ..solvers.base import SlotSolution, SlotSolver
from ..solvers.convex import CoordinateDescentSolver
from ..solvers.degraded import solve_with_failed_groups
from ..solvers.enumeration import HomogeneousEnumerationSolver
from .config import DataCenterModel
from .controller import Controller, SlotObservation, SlotOutcome
from .deficit_queue import CarbonDeficitQueue
from .vschedule import ConstantV, FrameFeedback, VSchedule

__all__ = ["COCA", "default_solver"]


def default_solver(model: DataCenterModel) -> SlotSolver:
    """The default P3 engine for a model's fleet (see module docstring)."""
    if model.fleet.is_homogeneous:
        return HomogeneousEnumerationSolver()
    return CoordinateDescentSolver()


class COCA(Controller):
    """Algorithm 1.

    Parameters
    ----------
    model:
        Facility-side parameters (fleet, weights, substrate models).
    portfolio:
        The period's renewable supply and RECs; provides the per-slot REC
        allowance ``z = alpha Z / J`` of the queue dynamics.
    v_schedule:
        Cost-carbon parameter per frame; a plain float means constant ``V``.
    frame_length:
        Frame size ``T`` in slots; ``None`` means one frame spanning the
        whole period (constant-``V`` runs).
    alpha:
        Electricity-capping aggressiveness of constraint (10).
    solver:
        P3 engine override.
    """

    def __init__(
        self,
        model: DataCenterModel,
        portfolio: RenewablePortfolio,
        *,
        v_schedule: VSchedule | float = 100.0,
        frame_length: int | None = None,
        alpha: float = 1.0,
        solver: SlotSolver | None = None,
    ):
        if isinstance(v_schedule, (int, float)):
            v_schedule = ConstantV(float(v_schedule))
        if frame_length is not None and frame_length < 1:
            raise ValueError("frame_length must be positive")
        self.model = model
        self.portfolio = portfolio
        self.v_schedule = v_schedule
        self.frame_length = frame_length
        self.alpha = alpha
        self.solver = solver if solver is not None else default_solver(model)

        horizon = portfolio.horizon
        self.queue = CarbonDeficitQueue(
            alpha=alpha, rec_per_slot=alpha * portfolio.recs / horizon
        )
        self._horizon = horizon
        self._prev_on: np.ndarray | None = None
        self._current_v = self.v_schedule.value(0)
        # Per-slot records for analysis.
        self.v_history: list[float] = []
        self.queue_at_decision: list[float] = []
        # Frame bookkeeping for adaptive schedules.
        self._frame_cost = 0.0
        self._frame_deficit = 0.0
        self._frame_slots = 0
        self._frame_started = -1  # guards frame logic against decide retries
        # Groups currently down (fault injection); empty = all healthy.
        self._failed: frozenset[int] = frozenset()

    # ------------------------------------------------------------------
    def bind_telemetry(self, telemetry) -> None:
        """Attach the run's telemetry and propagate it to the P3 engine."""
        super().bind_telemetry(telemetry)
        bind = getattr(self.solver, "bind_telemetry", None)
        if bind is not None:
            bind(telemetry)

    @property
    def effective_frame_length(self) -> int:
        """``T``; the full horizon when no frame length was given."""
        return self.frame_length if self.frame_length is not None else self._horizon

    def start(self, environment) -> None:
        if environment.horizon != self._horizon:
            raise ValueError(
                f"environment horizon {environment.horizon} does not match "
                f"portfolio horizon {self._horizon}"
            )
        tele = self.telemetry
        if tele.enabled:
            # Budget constants for the health monitors (alpha, per-slot REC
            # allowance, frame length) -- simulate() binds telemetry before
            # calling start(), so this is the stream's first COCA event.
            tele.emit(
                "controller.config",
                controller=self.name(),
                alpha=self.alpha,
                rec_per_slot=self.queue.rec_per_slot,
                frame_length=self.effective_frame_length,
                v0=self._current_v,
                horizon=self._horizon,
                carbon_budget=self.portfolio.offsite.total + self.portfolio.recs,
            )

    # ------------------------------------------------------------------
    def set_failed_groups(self, failed: frozenset[int]) -> None:
        """Fault-injection hook: solve subsequent slots on the sub-fleet of
        healthy groups (section 4.2's failures-shrink-the-feasible-set
        reading).  The empty set restores the ordinary solve path."""
        self._failed = frozenset(failed)

    def decide(self, observation: SlotObservation) -> SlotSolution:
        t = observation.t
        T = self.effective_frame_length
        frame = t // T
        # The frame guard makes decide idempotent per slot: a degraded
        # simulator may retry a slot's decide after a lost protocol round,
        # and the reset must not run twice (nor feed an adaptive schedule
        # zeroed feedback).
        if t % T == 0 and frame != self._frame_started:
            feedback = None
            if self._frame_slots > 0:
                feedback = FrameFeedback(
                    average_cost=self._frame_cost / self._frame_slots,
                    final_queue_length=self.queue.length,
                    average_deficit=self._frame_deficit / self._frame_slots,
                )
            self._current_v = self.v_schedule.value(frame, feedback=feedback)
            self.queue.reset()
            self._frame_cost = self._frame_deficit = 0.0
            self._frame_slots = 0
            self._frame_started = frame

        problem = self.model.slot_problem(
            arrival_rate=observation.arrival_rate,
            onsite=observation.onsite,
            price=observation.price,
            network_delay=observation.network_delay,
            pue_override=observation.pue,
            q=self.queue.length,
            V=self._current_v,
            prev_on_counts=self._prev_on,
        )
        if self._failed:
            solution = solve_with_failed_groups(self.solver, problem, self._failed)
        else:
            solution = self.solver.solve(problem)
        # Histories are appended only once the solve succeeds, so a failed
        # slot (handled via on_fallback) never records twice or misaligns.
        self.v_history.append(self._current_v)
        self.queue_at_decision.append(self.queue.length)
        self._prev_on = solution.action.on_counts(self.model.fleet)
        return solution

    def on_fallback(self, observation: SlotObservation, solution: SlotSolution) -> None:
        """Keep per-slot records aligned when the simulator committed a
        degraded action in place of this slot's failed solve."""
        self.v_history.append(self._current_v)
        self.queue_at_decision.append(self.queue.length)
        self._prev_on = solution.action.on_counts(self.model.fleet)
        if self.telemetry.enabled:
            self.telemetry.emit(
                "controller.fallback",
                t=observation.t,
                v=self._current_v,
                queue=self.queue.length,
            )

    # ------------------------------------------------------------ serving
    def status_dict(self) -> dict:
        """The deficit-queue view ``repro serve`` exposes at ``/status``."""
        return {
            "name": self.name(),
            "queue_mwh": float(self.queue.length),
            "v": float(self._current_v),
            "rec_per_slot_mwh": float(self.queue.rec_per_slot),
            "frame": int(max(self._frame_started, 0)),
            "frame_length": int(self.effective_frame_length),
            "slots_decided": len(self.v_history),
        }

    # -------------------------------------------------------- checkpointing
    def state_dict(self) -> dict:
        """Everything Algorithm 1 carries across slots, checkpoint-ready."""
        from ..state.serialize import encode_array

        return {
            "queue": self.queue.state_dict(),
            "current_v": float(self._current_v),
            "v_history": [float(v) for v in self.v_history],
            "queue_at_decision": [float(q) for q in self.queue_at_decision],
            "prev_on": encode_array(self._prev_on),
            "frame_cost": float(self._frame_cost),
            "frame_deficit": float(self._frame_deficit),
            "frame_slots": int(self._frame_slots),
            "frame_started": int(self._frame_started),
            "failed": sorted(self._failed),
            "solver": self.solver.state_dict(),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore Algorithm 1 state captured by :meth:`state_dict`."""
        from ..state.serialize import decode_array

        self.queue.load_state_dict(state["queue"])
        self._current_v = float(state["current_v"])
        self.v_history = [float(v) for v in state["v_history"]]
        self.queue_at_decision = [float(q) for q in state["queue_at_decision"]]
        self._prev_on = decode_array(state["prev_on"])
        self._frame_cost = float(state["frame_cost"])
        self._frame_deficit = float(state["frame_deficit"])
        self._frame_slots = int(state["frame_slots"])
        self._frame_started = int(state["frame_started"])
        self._failed = frozenset(int(g) for g in state["failed"])
        self.solver.load_state_dict(state["solver"])

    def set_solve_deadline(self, budget_ms: float | None) -> None:
        """Forward the per-slot wall-clock budget to the P3 engine (only
        iterative engines expose ``deadline_ms``; enumeration is closed-form
        and cannot meaningfully be cut)."""
        if hasattr(self.solver, "deadline_ms"):
            self.solver.deadline_ms = budget_ms

    def observe(self, outcome: SlotOutcome) -> None:
        brown = outcome.evaluation.brown_energy
        queue_before = self.queue.length
        self.queue.update(brown, outcome.offsite)
        z = self.queue.rec_per_slot
        self._frame_cost += outcome.evaluation.cost
        self._frame_deficit += brown - self.alpha * outcome.offsite - z
        self._frame_slots += 1
        tele = self.telemetry
        if tele.enabled:
            tele.emit(
                "queue.update",
                t=outcome.t,
                before=queue_before,
                after=self.queue.length,
                brown=brown,
                offsite=outcome.offsite,
                rec_per_slot=z,
                v=self._current_v,
            )
            tele.metrics.gauge("sim.queue_depth").set(self.queue.length)

    def name(self) -> str:
        return "COCA"
