"""Static data-center model shared by controllers and baselines.

:class:`DataCenterModel` bundles everything about the facility that does not
change slot to slot -- the fleet, the cost-model weights, and the pluggable
substrate models -- and manufactures
:class:`~repro.solvers.problem.SlotProblem` instances from per-slot inputs.
Controllers differ only in which deficit weight ``q`` and parameter ``V``
they pass (COCA uses its queue; the offline dual uses a multiplier; the
carbon-unaware baseline uses zero).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..cluster.fleet import Fleet
from ..cluster.power import LinearTariff, PowerModel, Tariff
from ..cluster.queueing import DELAY_UNIT_COST, DelayCostModel, MG1PSDelay
from ..cluster.switching import SwitchingCostModel
from ..solvers.problem import SlotProblem

__all__ = ["DataCenterModel"]


@dataclass(frozen=True)
class DataCenterModel:
    """Facility-side parameters of the optimization (see paper section 2).

    Parameters
    ----------
    fleet:
        The server groups under management.
    beta:
        Delay-cost weight of Eq. (5) (paper default 10).
    gamma:
        Maximum server utilization of constraint (7).
    delay_model, power_model, tariff:
        Substrate models (defaults: M/G/1/PS, PUE = 1, linear tariff).
    delay_unit_cost:
        $ per delay-sum unit (see :mod:`repro.cluster.queueing`).
    switching:
        Optional switching-cost model applied fleet-wide.
    peak_power_cap:
        Optional facility-power ceiling in MW (section 3.1).
    max_delay_cost:
        Optional per-slot delay-cost ceiling in dollars (section 3.1).
    slot_hours:
        Slot length in hours (default 1.0, the paper's hourly slotting);
        converts between powers (MW) and per-slot energies (MWh).
    """

    fleet: Fleet
    beta: float = 10.0
    gamma: float = 0.95
    delay_model: DelayCostModel = field(default_factory=MG1PSDelay)
    power_model: PowerModel = field(default_factory=PowerModel)
    tariff: Tariff = field(default_factory=LinearTariff)
    delay_unit_cost: float = DELAY_UNIT_COST
    switching: SwitchingCostModel | None = None
    peak_power_cap: float | None = None
    max_delay_cost: float | None = None
    slot_hours: float = 1.0

    def slot_problem(
        self,
        *,
        arrival_rate: float,
        onsite: float,
        price: float,
        q: float = 0.0,
        V: float = 1.0,
        prev_on_counts: np.ndarray | None = None,
        network_delay: float = 0.0,
        pue_override: float | None = None,
    ) -> SlotProblem:
        """Build the P3 instance for one slot."""
        return SlotProblem(
            fleet=self.fleet,
            arrival_rate=arrival_rate,
            onsite=onsite,
            price=price,
            q=q,
            V=V,
            beta=self.beta,
            gamma=self.gamma,
            delay_model=self.delay_model,
            power_model=self.power_model,
            tariff=self.tariff,
            delay_unit_cost=self.delay_unit_cost,
            switching=self.switching,
            prev_on_counts=prev_on_counts,
            peak_power_cap=self.peak_power_cap,
            max_delay_cost=self.max_delay_cost,
            network_delay=network_delay,
            pue_override=pue_override,
            slot_hours=self.slot_hours,
        )

    @property
    def max_facility_power(self) -> float:
        """Worst-case facility power (MW): full fleet at top speed and
        load, times PUE.  Used by the Theorem 2 constants."""
        return self.power_model.facility_power(self.fleet.max_power)
