"""Controller interface driven by the slot simulator.

A controller sees, at the start of slot ``t``, exactly what the paper says
COCA may see -- the (predicted) workload ``lambda(t)``, the on-site
renewable supply ``r(t)``, and the electricity price ``w(t)`` -- and must
commit a fleet action.  After the slot, it observes the realized outcome
(including the off-site supply ``f(t)``, which COCA explicitly may *not*
use when deciding) and may update internal state.  Offline baselines that
legitimately use future information (OPT, the T-step lookahead, PerfectHP's
48-hour predictions) receive it at :meth:`Controller.start` through the
full environment, which is part of their definition, not a leak.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..solvers.base import SlotSolution
from ..solvers.problem import SlotEvaluation
from ..telemetry import NULL_TELEMETRY, Telemetry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.environment import Environment

__all__ = ["SlotObservation", "SlotOutcome", "Controller"]


@dataclass(frozen=True)
class SlotObservation:
    """What a controller sees at the start of slot ``t``."""

    t: int
    arrival_rate: float  # predicted lambda(t), req/s
    onsite: float  # r(t), MW
    price: float  # w(t), $/MWh
    network_delay: float = 0.0  # user <-> data center delay (section 2.3)
    pue: float | None = None  # per-slot PUE override (time-varying PUE)


@dataclass(frozen=True)
class SlotOutcome:
    """What a controller learns at the end of slot ``t``."""

    t: int
    evaluation: SlotEvaluation  # realized costs/energies for the slot
    offsite: float  # f(t), MWh, realized after the decision


class Controller(ABC):
    """Per-slot decision strategy."""

    #: Observability handle; the simulator rebinds it per run.  The default
    #: is the shared no-op, so controllers may emit unconditionally cheap
    #: telemetry or guard expensive payloads with ``self.telemetry.enabled``.
    telemetry: Telemetry = NULL_TELEMETRY

    def bind_telemetry(self, telemetry: Telemetry) -> None:
        """Attach the run's telemetry; called by :func:`repro.sim.simulate`.
        Controllers owning sub-components (e.g. a P3 solver) override this
        to propagate the handle."""
        self.telemetry = telemetry

    def start(self, environment: "Environment") -> None:
        """Called once before the run.  Online controllers should only read
        static configuration (horizon, budget constants); offline baselines
        may precompute from the full traces -- that is their defining
        privilege."""

    @abstractmethod
    def decide(self, observation: SlotObservation) -> SlotSolution:
        """Commit the slot's capacity-provisioning and load-distribution
        decision."""

    def observe(self, outcome: SlotOutcome) -> None:
        """End-of-slot feedback; default is stateless."""

    # -- fault-injection hooks (see repro.faults) ----------------------
    def set_failed_groups(self, failed: frozenset[int]) -> None:
        """Tell the controller which server groups are currently down.

        Called by the simulator before each ``decide`` when fault
        injection is active; the empty set means all groups are healthy.
        The default ignores it — the engine still masks failed groups out
        of the *realized* action, so an unaware controller stays
        physically correct, just suboptimal.
        """

    def on_fallback(self, observation: SlotObservation, solution: SlotSolution) -> None:
        """A degraded action replaced this slot's failed ``decide``.

        Called instead of a successful ``decide`` return, with the
        fallback the simulator committed.  Stateful controllers override
        this to keep their bookkeeping (previous on-set, per-slot history)
        aligned with what actually ran; the default does nothing.
        """

    # -- checkpoint/resume hooks (see repro.state) ---------------------
    def state_dict(self) -> dict:
        """Mutable controller state a checkpoint must carry.

        Stateless controllers (the myopic baselines) inherit this empty
        default; anything with a deficit queue, switching memory, or RNG
        streams overrides both hooks so kill-and-resume stays
        bit-identical.
        """
        return {}

    def load_state_dict(self, state: dict) -> None:
        """Restore state captured by :meth:`state_dict` (no-op default)."""

    def set_solve_deadline(self, budget_ms: float | None) -> None:
        """Arm a per-slot wall-clock solve budget.

        The engine calls this once per run when ``--solve-deadline-ms`` is
        set.  The default ignores it (closed-form baselines cannot blow a
        budget); controllers owning an iterative P3 engine forward it to
        the solver's ``deadline_ms``.
        """

    # -- serving hooks (see repro.serve) -------------------------------
    def status_dict(self) -> dict:
        """Live operational state for the ``repro serve`` status endpoint.

        Unlike :meth:`state_dict` (complete, restorable, bit-exact), this
        is a small human-oriented snapshot -- queue depths, applied
        parameters -- refreshed every slot and served as JSON.  The default
        (stateless controllers) has nothing to report.
        """
        return {}

    def name(self) -> str:
        """Identifier used in reports and tables."""
        return type(self).__name__
