"""The virtual carbon-deficit queue (paper Eq. (17)).

The long-term neutrality constraint couples decisions across the whole
budgeting period; Lyapunov optimization decouples it by tracking a *virtual
queue* whose length measures how far cumulative electricity usage has
drifted above the renewable budget:

    q(t+1) = max( q(t) + [p(t) - r(t)]^+ - alpha f(t) - z , 0 ),

with ``z = alpha Z / J`` the per-slot REC allowance.  The queue length
enters P3 as an additional price on brown energy; COCA's whole philosophy is
"if violate neutrality, then use less electricity".  The queue is reset to
zero at each frame boundary so the cost-carbon parameter ``V`` can be
re-tuned per frame (section 4.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["CarbonDeficitQueue"]


@dataclass
class CarbonDeficitQueue:
    """Carbon-deficit queue state and update rule.

    Parameters
    ----------
    alpha:
        Electricity-capping aggressiveness from constraint (10).
    rec_per_slot:
        ``z = alpha * Z / J`` in MWh (already scaled by alpha).
    """

    alpha: float = 1.0
    rec_per_slot: float = 0.0
    _length: float = field(default=0.0, init=False)
    _history: list = field(default_factory=list, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.alpha <= 0:
            raise ValueError("alpha must be positive")
        if self.rec_per_slot < 0:
            raise ValueError("per-slot REC allowance must be non-negative")

    @property
    def length(self) -> float:
        """Current queue length ``q(t)`` in MWh."""
        return self._length

    @property
    def history(self) -> np.ndarray:
        """Queue length *after* each update so far."""
        return np.asarray(self._history, dtype=np.float64)

    def update(self, brown_energy: float, offsite: float) -> float:
        """Apply Eq. (17) for one slot and return the new length.

        Parameters
        ----------
        brown_energy:
            ``y(t) = [p(t) - r(t)]^+`` in MWh (including any switching
            energy drawn from the grid).
        offsite:
            Realized off-site renewable supply ``f(t)`` in MWh.  Note COCA
            takes the decision *before* seeing ``f(t)``; the queue is
            updated at the end of the slot once it is realized.
        """
        if brown_energy < 0:
            raise ValueError("brown energy must be non-negative")
        if offsite < 0:
            raise ValueError("off-site supply must be non-negative")
        arrival = brown_energy
        service = self.alpha * offsite + self.rec_per_slot
        self._length = max(self._length + arrival - service, 0.0)
        self._history.append(self._length)
        return self._length

    def reset(self) -> None:
        """Frame-boundary reset (Algorithm 1 lines 2-4): zero the length
        but keep the recorded history."""
        self._length = 0.0

    # -------------------------------------------------------- checkpointing
    def state_dict(self) -> dict:
        """Queue length and full update history for a checkpoint."""
        return {
            "length": float(self._length),
            "history": [float(x) for x in self._history],
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore queue state captured by :meth:`state_dict`."""
        self._length = float(state["length"])
        self._history = [float(x) for x in state["history"]]

    def drift_bound_B(self, y_max: float, z_max: float) -> float:
        """The Theorem 2 constant ``B >= 0.5 * (y(t) - z(t))^2`` for all t,
        from the boundedness assumption: ``0.5 * max(y_max, z_max)^2``."""
        if y_max < 0 or z_max < 0:
            raise ValueError("bounds must be non-negative")
        return 0.5 * max(y_max, z_max) ** 2
