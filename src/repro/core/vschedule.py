"""Cost-carbon parameter schedules ``V_0, V_1, ..., V_{R-1}`` (section 4.3).

COCA's ``V`` trades operational cost against deviation from neutrality: a
large ``V`` cares about cost (Theorem 2 part (b): O(1/V)-optimal), a small
``V`` polices the deficit (part (a): the fudge factor grows with ``V``).
Because the right value is workload-dependent and found "on a trial-and-
error basis", COCA explicitly supports a *time-varying* ``V_r`` per frame of
``T`` slots, resetting the deficit queue at frame boundaries so each frame's
analysis decouples.

Schedules here implement the experiments' needs: a constant ``V`` (Fig.
2(a,b)), a quarterly schedule (Fig. 2(c,d)), and a feedback rule that raises
``V`` when usage is comfortably under budget and lowers it when the deficit
queue is persistently backed up -- the paper's "if the current cost is too
high whereas the electricity usage is far below the allowed budget, the data
center operator can increase the value of V" worked into an automatic rule.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = [
    "VSchedule",
    "ConstantV",
    "FrameV",
    "quarterly",
    "AdaptiveV",
]


class VSchedule(ABC):
    """Maps a frame index ``r`` to the cost-carbon parameter ``V_r``."""

    @abstractmethod
    def value(self, frame: int, *, feedback: "FrameFeedback | None" = None) -> float:
        """``V_r`` for frame ``r``; adaptive schedules may consult the
        previous frame's feedback."""


@dataclass(frozen=True)
class FrameFeedback:
    """Summary of the frame that just ended, for adaptive schedules."""

    average_cost: float
    final_queue_length: float
    average_deficit: float  # brown minus budget per slot, may be negative


@dataclass(frozen=True)
class ConstantV(VSchedule):
    """The same ``V`` in every frame (Fig. 2(a,b))."""

    v: float

    def __post_init__(self) -> None:
        if self.v <= 0:
            raise ValueError("V must be positive")

    def value(self, frame: int, *, feedback=None) -> float:
        return self.v


@dataclass(frozen=True)
class FrameV(VSchedule):
    """An explicit per-frame sequence; frames beyond the list reuse the
    final entry."""

    values: tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.values or any(v <= 0 for v in self.values):
            raise ValueError("need a non-empty sequence of positive V values")

    def value(self, frame: int, *, feedback=None) -> float:
        if frame < 0:
            raise ValueError("frame index must be non-negative")
        return self.values[min(frame, len(self.values) - 1)]


def quarterly(values: Sequence[float]) -> FrameV:
    """Convenience for the paper's quarterly-varying experiment: four
    ``V`` values, one per quarter (use with ``frame_length = J // 4``)."""
    vals = tuple(float(v) for v in values)
    if len(vals) != 4:
        raise ValueError("quarterly schedule needs exactly 4 values")
    return FrameV(vals)


@dataclass
class AdaptiveV(VSchedule):
    """Multiplicative feedback rule on the frame deficit.

    Starting from ``v0``, the parameter is multiplied by ``up`` after a
    frame that finished under budget (average deficit below
    ``-slack_threshold``) and by ``down`` after a frame that ended with a
    backed-up queue (average deficit above ``+slack_threshold``), clamped to
    ``[v_min, v_max]``.
    """

    v0: float
    up: float = 1.5
    down: float = 0.5
    slack_threshold: float = 0.0
    v_min: float = 1e-3
    v_max: float = 1e9
    _current: float | None = None

    def __post_init__(self) -> None:
        if self.v0 <= 0 or self.up < 1.0 or not 0 < self.down <= 1.0:
            raise ValueError("need v0 > 0, up >= 1, 0 < down <= 1")
        if not 0 < self.v_min <= self.v0 <= self.v_max:
            raise ValueError("need v_min <= v0 <= v_max")

    def value(self, frame: int, *, feedback: FrameFeedback | None = None) -> float:
        if frame == 0 or self._current is None:
            self._current = self.v0
            return self._current
        if feedback is not None:
            if feedback.average_deficit < -self.slack_threshold:
                self._current = min(self._current * self.up, self.v_max)
            elif feedback.average_deficit > self.slack_threshold:
                self._current = max(self._current * self.down, self.v_min)
        return self._current
