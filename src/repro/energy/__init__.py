"""Energy and carbon substrate: renewables, RECs, neutrality accounting."""

from .carbon import CarbonLedger, neutrality_gap
from .rec import RECAccount
from .rec_market import (
    PurchasingReport,
    ThresholdRECTrader,
    evaluate_purchasing,
    rec_price_trace,
)
from .renewables import RenewablePortfolio, onsite_mix

__all__ = [
    "RenewablePortfolio",
    "onsite_mix",
    "RECAccount",
    "rec_price_trace",
    "ThresholdRECTrader",
    "PurchasingReport",
    "evaluate_purchasing",
    "CarbonLedger",
    "neutrality_gap",
]
