"""Carbon-neutrality ledger (paper Eq. (10)).

Following current market practice, the paper calls a data center carbon
neutral over a budgeting period when its brown (grid) energy is fully offset
by off-site renewables plus RECs, scaled by an aggressiveness knob
``alpha``:

    (1/J) sum_t [p(t) - r(t)]^+  <=  (alpha/J) * ( sum_t f(t) + Z ).

:class:`CarbonLedger` accumulates the left side slot by slot against a
:class:`~repro.energy.renewables.RenewablePortfolio` and answers the
questions the experiments ask: is the run neutral, what is the average
hourly carbon deficit (Fig. 2(b)), and what residual would need an
end-of-period REC true-up.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .renewables import RenewablePortfolio

__all__ = ["CarbonLedger", "neutrality_gap"]


def neutrality_gap(
    brown_energy: np.ndarray, portfolio: RenewablePortfolio, alpha: float = 1.0
) -> float:
    """Total constraint violation in MWh (positive = neutrality violated):
    ``sum_t y(t) - alpha * (sum_t f(t) + Z)``."""
    brown = np.asarray(brown_energy, dtype=np.float64)
    return float(brown.sum() - alpha * portfolio.carbon_budget)


@dataclass
class CarbonLedger:
    """Slot-by-slot brown-energy accounting against a renewable portfolio.

    Parameters
    ----------
    portfolio:
        The period's renewable supply and RECs.
    alpha:
        Desired electricity capping relative to the budget (Eq. (10));
        ``alpha < 1`` under-uses the budget, leaving surplus to sell.
    """

    portfolio: RenewablePortfolio
    alpha: float = 1.0
    _brown: list = field(default_factory=list, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.alpha <= 0:
            raise ValueError("alpha must be positive")

    # ------------------------------------------------------------------
    @property
    def slots_recorded(self) -> int:
        """Number of slots recorded so far."""
        return len(self._brown)

    def record(self, brown_energy: float) -> None:
        """Record one slot's brown draw ``[p - r]^+`` in MWh."""
        if brown_energy < 0:
            raise ValueError("brown energy must be non-negative")
        if self.slots_recorded >= self.portfolio.horizon:
            raise ValueError("ledger already covers the full budgeting period")
        self._brown.append(float(brown_energy))

    # ------------------------------------------------------------------
    @property
    def brown_energy(self) -> np.ndarray:
        """Per-slot brown energy recorded so far (MWh)."""
        return np.asarray(self._brown, dtype=np.float64)

    @property
    def total_brown(self) -> float:
        """Cumulative brown energy (MWh)."""
        return float(np.sum(self._brown)) if self._brown else 0.0

    def budget_through(self, t: int | None = None) -> float:
        """Allowed budget through slot ``t`` inclusive (default: all slots
        recorded): ``alpha * (sum_{s<=t} f(s) + (t+1) * Z / J)``."""
        n = self.slots_recorded if t is None else t + 1
        if not 0 <= n <= self.portfolio.horizon:
            raise ValueError("slot index out of range")
        f_cum = float(self.portfolio.offsite.values[:n].sum())
        z_cum = self.portfolio.recs * n / self.portfolio.horizon
        return self.alpha * (f_cum + z_cum)

    @property
    def deficit(self) -> float:
        """Brown energy minus the budget accrued so far (MWh); positive
        means neutrality is currently violated on a pro-rata basis."""
        return self.total_brown - self.budget_through()

    @property
    def average_hourly_deficit(self) -> float:
        """Deficit divided by slots recorded -- the paper's Fig. 2(b)/3(b)
        metric.  May be negative when the budget exceeds usage."""
        n = self.slots_recorded
        return self.deficit / n if n else 0.0

    def is_neutral(self, *, tolerance: float = 1e-9) -> bool:
        """Whether Eq. (10) holds over the slots recorded so far."""
        return self.deficit <= tolerance * max(self.budget_through(), 1.0)

    def required_trueup(self) -> float:
        """MWh of extra RECs needed at period end to restore neutrality
        (paper section 4.3: "data centers may purchase additional RECs at
        the end of a budgeting period"); zero when already neutral."""
        return max(self.deficit / self.alpha, 0.0)

    def surplus(self) -> float:
        """Unused budget (MWh) available to sell when ``alpha`` leaves
        slack; zero when in deficit."""
        return max(-self.deficit / self.alpha, 0.0)
