"""Renewable energy certificate (REC) accounting (paper section 2.2).

RECs are tradable credits, not physical electricity: a data center buys
``Z`` MWh-equivalent of certificates before the budgeting period and retires
them against brown-energy draw.  COCA amortizes the prepurchased total
evenly: each slot contributes ``z = alpha * Z / J`` to the carbon-deficit
queue's service rate (Eq. (17)).

:class:`RECAccount` tracks the prepurchase plus the paper's two
end-of-period remarks: leftover budget "may be sold in carbon markets" when
``alpha < 1`` leaves slack, and "data centers may purchase additional RECs
at the end of a budgeting period to offset the remaining electricity usage"
when the bounded deviation of Theorem 2 leaves a residual deficit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["RECAccount"]


@dataclass
class RECAccount:
    """Prepurchased RECs plus optional true-up bookkeeping.

    Parameters
    ----------
    prepurchased:
        ``Z`` in MWh, bought before the period at ``purchase_price``.
    purchase_price:
        $/MWh paid for the prepurchase (used only for reporting; the paper
        treats the prepurchase as sunk and excludes it from operational
        cost).
    """

    prepurchased: float
    purchase_price: float = 0.0
    _trueup: float = field(default=0.0, init=False, repr=False)
    _trueup_cost: float = field(default=0.0, init=False, repr=False)
    _sold: float = field(default=0.0, init=False, repr=False)
    _sale_revenue: float = field(default=0.0, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.prepurchased < 0:
            raise ValueError("prepurchased RECs must be non-negative")
        if self.purchase_price < 0:
            raise ValueError("purchase price must be non-negative")

    @property
    def total(self) -> float:
        """RECs available for offsetting: prepurchase + true-ups - sales."""
        return self.prepurchased + self._trueup - self._sold

    def per_slot(self, horizon: int, alpha: float = 1.0) -> float:
        """The queue-dynamics constant ``z = alpha * Z / J`` (Eq. (17))."""
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        if alpha <= 0:
            raise ValueError("alpha must be positive")
        return alpha * self.prepurchased / horizon

    def true_up(self, amount: float, price: float) -> float:
        """Buy ``amount`` MWh of additional RECs at period end; returns the
        dollar cost incurred."""
        if amount < 0 or price < 0:
            raise ValueError("true-up amount and price must be non-negative")
        self._trueup += amount
        cost = amount * price
        self._trueup_cost += cost
        return cost

    def sell_surplus(self, amount: float, price: float) -> float:
        """Sell ``amount`` MWh of unused budget; returns revenue.  Raises if
        selling more than currently held."""
        if amount < 0 or price < 0:
            raise ValueError("sale amount and price must be non-negative")
        if amount > self.total:
            raise ValueError("cannot sell more RECs than held")
        self._sold += amount
        revenue = amount * price
        self._sale_revenue += revenue
        return revenue

    @property
    def trueup_cost(self) -> float:
        """Total dollars spent on end-of-period true-ups."""
        return self._trueup_cost

    @property
    def sale_revenue(self) -> float:
        """Total dollars earned selling surplus budget."""
        return self._sale_revenue
