"""Dynamic REC purchasing (paper section 2.2).

The paper prepurchases a fixed REC block ``Z`` but notes "our model
accommodates various approaches to purchasing RECs (e.g., dynamic purchase
in real time)".  This module supplies that variant:

* :func:`rec_price_trace` -- a synthetic hourly REC market price (RECs trade
  OTC/exchange with mean-reverting prices and seasonal tightness; absolute
  levels follow the ~$1-10/MWh band of 2012-era national wind RECs).
* :class:`ThresholdRECTrader` -- an online purchasing policy: track the
  cumulative uncovered brown energy, and buy coverage when the posted price
  is cheap relative to a trailing window (a classic threshold rule), with a
  forced true-up at the horizon so the period always ends fully covered.
* :func:`evaluate_purchasing` -- replays a finished simulation record
  against a price trace and compares the dynamic policy's total REC bill
  with the naive strategies (prepurchase everything at the period-average
  price; buy every slot's deficit at spot).

The trader is deliberately decoupled from the power controller: RECs are
"not tied to any physical delivery of electricity", so purchasing is a pure
financial overlay on the brown-energy series COCA produces.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..traces.base import HOURS_PER_YEAR, Trace

__all__ = ["rec_price_trace", "ThresholdRECTrader", "PurchasingReport", "evaluate_purchasing"]


def rec_price_trace(
    horizon: int = HOURS_PER_YEAR,
    *,
    mean_price: float = 4.0,
    seed: int = 31,
    rng: np.random.Generator | None = None,
) -> Trace:
    """Synthetic hourly REC price in $/MWh (mean-reverting, seasonal)."""
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    gen = rng if rng is not None else np.random.default_rng(seed)
    t = np.arange(horizon)
    seasonal = 1.0 + 0.25 * np.sin(2.0 * np.pi * (t / HOURS_PER_YEAR - 0.3))
    wander = np.empty(horizon)
    rho, sigma = 0.995, 0.01
    innov = gen.normal(0.0, sigma, size=horizon)
    wander[0] = innov[0]
    for i in range(1, horizon):
        wander[i] = rho * wander[i - 1] + innov[i]
    values = mean_price * seasonal * np.exp(wander)
    return Trace(values, name="rec-price", unit="$/MWh").clip(lo=0.25)


@dataclass
class ThresholdRECTrader:
    """Buy-low threshold policy for covering brown energy with RECs.

    Parameters
    ----------
    percentile:
        Buy when the posted price is at or below this percentile of the
        trailing ``window`` of prices.
    window:
        Trailing price window (slots) the threshold is computed over.
    buy_multiple:
        When buying, cover up to this multiple of the current uncovered
        backlog (values > 1 stockpile during cheap spells).
    """

    percentile: float = 30.0
    window: int = 24 * 14
    buy_multiple: float = 1.5
    holdings: float = field(default=0.0, init=False)
    spent: float = field(default=0.0, init=False)
    purchases: list = field(default_factory=list, init=False, repr=False)

    def __post_init__(self) -> None:
        if not 0 < self.percentile <= 100:
            raise ValueError("percentile must be in (0, 100]")
        if self.window < 1:
            raise ValueError("window must be positive")
        if self.buy_multiple <= 0:
            raise ValueError("buy_multiple must be positive")

    def run(self, brown: np.ndarray, prices: np.ndarray) -> None:
        """Replay the whole period: accumulate uncovered brown energy and
        buy per the threshold rule; force a final true-up at the horizon."""
        brown = np.asarray(brown, dtype=np.float64)
        prices = np.asarray(prices, dtype=np.float64)
        if brown.shape != prices.shape:
            raise ValueError("brown and price series must share a length")
        uncovered = 0.0
        for t in range(brown.size):
            uncovered += brown[t]
            lo = max(t - self.window + 1, 0)
            threshold = np.percentile(prices[lo : t + 1], self.percentile)
            if prices[t] <= threshold and uncovered > self.holdings:
                amount = self.buy_multiple * (uncovered - self.holdings)
                self._buy(t, amount, prices[t])
        if uncovered > self.holdings:  # end-of-period true-up (section 4.3)
            self._buy(brown.size - 1, uncovered - self.holdings, prices[-1])

    def _buy(self, t: int, amount: float, price: float) -> None:
        self.holdings += amount
        cost = amount * price
        self.spent += cost
        self.purchases.append((t, amount, price))

    def average_price_paid(self) -> float:
        """Volume-weighted average $/MWh paid."""
        return self.spent / self.holdings if self.holdings > 0 else 0.0


@dataclass(frozen=True)
class PurchasingReport:
    """Comparison of REC purchasing strategies for one run."""

    total_brown: float
    dynamic_cost: float
    dynamic_average_price: float
    prepurchase_cost: float
    spot_cost: float

    @property
    def saving_vs_prepurchase(self) -> float:
        """Fractional saving of the threshold policy vs prepurchasing the
        whole requirement at the period-average price."""
        if self.prepurchase_cost <= 0:
            return 0.0
        return 1.0 - self.dynamic_cost / self.prepurchase_cost


def evaluate_purchasing(
    brown: np.ndarray,
    prices: Trace,
    *,
    trader: ThresholdRECTrader | None = None,
) -> PurchasingReport:
    """Run the threshold trader over a brown-energy series and compare with
    the naive strategies (see module docstring)."""
    brown = np.asarray(brown, dtype=np.float64)
    if brown.size != len(prices):
        raise ValueError("brown series and price trace must share a length")
    t = trader if trader is not None else ThresholdRECTrader()
    t.run(brown, prices.values)
    total = float(brown.sum())
    return PurchasingReport(
        total_brown=total,
        dynamic_cost=t.spent,
        dynamic_average_price=t.average_price_paid(),
        prepurchase_cost=total * prices.mean,
        spot_cost=float(np.sum(brown * prices.values)),
    )
