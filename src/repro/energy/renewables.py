"""Renewable-supply portfolios (paper section 2.2).

The paper's data center draws on three renewable sources:

* **On-site** generation ``r(t)`` (solar panels / wind turbines at the
  facility) directly offsets power draw within the slot: electricity cost
  and brown energy are computed on ``[p(t) - r(t)]^+``.
* **Off-site** generation ``f(t)`` (power purchasing agreements): fed into
  the grid elsewhere, it cannot power the servers but offsets brown energy
  in the carbon-neutrality ledger.
* **RECs** ``Z``: a fixed tradable credit purchased ahead of the budgeting
  period (see :mod:`repro.energy.rec`).

:class:`RenewablePortfolio` bundles the two traces and the REC total, plus
the constructors the experiments need: an on-site mix scaled to ~20% of a
consumption total, and an off-site/REC split of a carbon budget (the paper's
default budget is 40% off-site + 60% RECs).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..traces.base import Trace
from ..traces.solar import solar_trace
from ..traces.wind import wind_trace

__all__ = ["RenewablePortfolio", "onsite_mix"]


def onsite_mix(
    horizon: int,
    *,
    solar_fraction: float = 0.6,
    seed: int = 7,
    rng: np.random.Generator | None = None,
) -> Trace:
    """A normalized on-site supply: convex mix of solar and wind shapes.

    The result has unit *total* energy; scale it with
    :meth:`Trace.scale_to_total` to a target share of consumption (the paper
    scales on-site supply to ~20% of total energy use).
    """
    if not 0.0 <= solar_fraction <= 1.0:
        raise ValueError("solar_fraction must be in [0, 1]")
    gen = rng if rng is not None else np.random.default_rng(seed)
    sol = solar_trace(horizon, rng=gen)
    wnd = wind_trace(horizon, rng=gen)
    mixed = (
        solar_fraction * sol.scale_to_total(1.0).values
        + (1.0 - solar_fraction) * wnd.scale_to_total(1.0).values
    )
    return Trace(mixed, name="onsite-renewables", unit="MW")


@dataclass(frozen=True)
class RenewablePortfolio:
    """On-site trace, off-site trace, and REC total for a budgeting period.

    Attributes
    ----------
    onsite:
        ``r(t)`` in MW (slot energy MWh).
    offsite:
        ``f(t)`` in MW.
    recs:
        Total RECs ``Z`` in MWh purchased ahead of the period.
    """

    onsite: Trace
    offsite: Trace
    recs: float

    def __post_init__(self) -> None:
        if len(self.onsite) != len(self.offsite):
            raise ValueError("on-site and off-site traces must share a horizon")
        if self.recs < 0:
            raise ValueError("REC total must be non-negative")
        if self.onsite.values.min() < 0 or self.offsite.values.min() < 0:
            raise ValueError("renewable supply must be non-negative")

    @property
    def horizon(self) -> int:
        """Number of slots covered."""
        return len(self.onsite)

    @property
    def carbon_budget(self) -> float:
        """Total off-site energy plus RECs (MWh): the right-hand side of the
        neutrality constraint (10) before scaling by alpha."""
        return self.offsite.total + self.recs

    @property
    def offsite_fraction(self) -> float:
        """Share of the carbon budget supplied by off-site energy."""
        budget = self.carbon_budget
        return self.offsite.total / budget if budget > 0 else 0.0

    def with_budget_split(
        self, total_budget: float, offsite_fraction: float
    ) -> "RenewablePortfolio":
        """Rescale the off-site trace and REC total so that the carbon
        budget equals ``total_budget`` MWh with the given off-site share.

        This implements the paper's sensitivity knob: "with different
        combinations of off-site renewables and RECs (but with the same
        total amount), COCA achieves almost the same cost".
        """
        if total_budget < 0:
            raise ValueError("budget must be non-negative")
        if not 0.0 <= offsite_fraction <= 1.0:
            raise ValueError("offsite_fraction must be in [0, 1]")
        offsite_total = total_budget * offsite_fraction
        if offsite_total > 0 and self.offsite.total <= 0:
            raise ValueError("cannot scale a zero off-site trace to a total")
        new_offsite = (
            self.offsite.scale_to_total(offsite_total)
            if offsite_total > 0
            else self.offsite.scale(0.0)
        )
        return replace(
            self, offsite=new_offsite, recs=total_budget * (1.0 - offsite_fraction)
        )

    @classmethod
    def energy_capping(cls, horizon: int, cap: float) -> "RenewablePortfolio":
        """The paper's energy-capping variant (section 2.2, last paragraph):
        no on-site or off-site renewables; the REC parameter becomes the
        desired total electricity cap."""
        zero = Trace(np.zeros(horizon), name="zero", unit="MW")
        return cls(onsite=zero, offsite=zero, recs=cap)
