"""Seeded, deterministic fault injection for chaos experiments.

The subsystem has four pieces, each usable on its own:

* :mod:`~repro.faults.schedule` — declarative :class:`FaultSchedule`
  (timed group failures/repairs, signal degradation, a message-fault
  profile), JSON round-trippable and reproducible from one seed;
* :mod:`~repro.faults.bus` — :class:`FaultyMessageBus`, a drop-in
  unreliable fabric for the distributed protocol;
* :mod:`~repro.faults.injector` — :class:`FaultInjector`, the runtime
  that threads a schedule through :func:`repro.sim.simulate`;
* :mod:`~repro.faults.degradation` — :class:`DegradationPolicy`, what the
  simulator runs when a slot solve cannot complete.

See ``docs/TESTING.md`` for the chaos-testing workflow and
``repro chaos --help`` for the end-to-end CLI.
"""

from .bus import FaultyMessageBus
from .degradation import DegradationPolicy, proportional_action
from .injector import FaultInjector
from .schedule import (
    FAULT_KINDS,
    FORECAST_MODES,
    FaultEvent,
    FaultSchedule,
    MessageFaultProfile,
)

__all__ = [
    "FAULT_KINDS",
    "FORECAST_MODES",
    "FaultEvent",
    "FaultSchedule",
    "MessageFaultProfile",
    "FaultyMessageBus",
    "FaultInjector",
    "DegradationPolicy",
    "proportional_action",
]
