"""A message fabric that loses, delays, and duplicates messages.

:class:`FaultyMessageBus` drops in wherever a
:class:`~repro.solvers.messaging.MessageBus` does and applies a
:class:`~repro.faults.schedule.MessageFaultProfile` to every ``send``:

* **loss** -- the message vanishes before delivery; the sender sees no
  reply (``None``).
* **delay** -- the message *is* delivered (the recipient's handler runs and
  its state changes), but the reply arrives after the sender's timeout
  window, so the sender still sees ``None``.  This models the nasty
  asymmetric case where the network ate the answer, not the question.
* **duplicate** -- the message is delivered twice back to back (agent
  handlers are overwrite-idempotent, so this stresses that property); the
  sender receives the second reply, matching the recipient's final state.

One uniform variate is drawn per ``send``, so the fault pattern is a pure
function of the profile's seed -- chaos runs replay bit-identically.  The
coordinator-side recovery (per-agent retries, :class:`BusTimeoutError`)
lives in :mod:`repro.solvers.messaging`.

The bus is agnostic to where an agent's work actually happens: when the
registered agents are :class:`~repro.solvers.sharded.ShardAgent` proxies,
the same three fault modes apply to traffic that crosses a real process
boundary -- loss means the frame is never forwarded to the worker, delay
means the worker did the work but the reply is discarded, duplicate means
the frame is forwarded twice (see docs/SCALING.md for the full mapping).
"""

from __future__ import annotations

import numpy as np

from ..solvers.messaging import Message, MessageBus
from .schedule import MessageFaultProfile

__all__ = ["FaultyMessageBus"]


class FaultyMessageBus(MessageBus):
    """A :class:`MessageBus` with seeded loss/delay/duplication.

    Besides the base counters (``delivered``, ``by_kind``) it tracks
    ``dropped`` / ``delayed`` / ``duplicated`` so tests and telemetry can
    assert on the exact communication degradation a run experienced.
    """

    def __init__(
        self,
        *,
        loss: float = 0.0,
        delay: float = 0.0,
        duplicate: float = 0.0,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        # Reuse the profile's validation (ranges, total mass below 1).
        profile = MessageFaultProfile(loss=loss, delay=delay, duplicate=duplicate)
        self.loss = profile.loss
        self.delay = profile.delay
        self.duplicate = profile.duplicate
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.dropped = 0
        self.delayed = 0
        self.duplicated = 0

    @classmethod
    def from_profile(
        cls, profile: MessageFaultProfile, *, salt: int = 0
    ) -> "FaultyMessageBus":
        """A bus seeded by ``(profile.seed, salt)``.

        The injector salts with a per-solve counter so every slot sees a
        distinct -- but fully reproducible -- fault pattern.
        """
        return cls(
            loss=profile.loss,
            delay=profile.delay,
            duplicate=profile.duplicate,
            rng=np.random.default_rng([int(profile.seed), int(salt)]),
        )

    # ------------------------------------------------------------------
    def send(self, message: Message) -> Message | None:
        u = float(self.rng.random())
        if u < self.loss:
            # Vanished in flight: recipient never sees it, sender gets no
            # reply.  Unknown recipients still fail loudly -- a lost
            # message must not mask an addressing bug.
            if message.recipient not in self._agents:
                raise KeyError(f"unknown recipient {message.recipient!r}")
            self.dropped += 1
            return None
        if u < self.loss + self.delay:
            # Delivered late: the handler runs, the reply misses the
            # sender's timeout window.
            super().send(message)
            self.delayed += 1
            return None
        if u >= 1.0 - self.duplicate:
            super().send(message)
            self.duplicated += 1
            return super().send(message)
        return super().send(message)

    # ------------------------------------------------------------------
    def fault_stats(self) -> dict[str, int]:
        """Degradation counters for telemetry and run summaries."""
        return {
            "delivered": int(self.delivered),
            "dropped": int(self.dropped),
            "delayed": int(self.delayed),
            "duplicated": int(self.duplicated),
        }
