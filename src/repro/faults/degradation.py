"""Graceful degradation when a slot solve cannot complete.

The paper assumes every slot's P3 is solvable and every protocol round
completes; under injected chaos neither holds.  The simulator's contract
stays simple: *a data center never stops serving because an optimizer
failed*.  :class:`DegradationPolicy` decides what to run instead when the
controller's ``decide`` raises — a lost protocol round
(:class:`~repro.solvers.messaging.BusTimeoutError`, retried up to
``retries`` extra times first) or an infeasible slot
(:class:`~repro.solvers.problem.InfeasibleError`, not retried: it is
deterministic):

* ``"last_action"`` (default): reuse the last committed configuration,
  masked to the currently-healthy groups, its load redistributed to the
  slot's workload; falls through to proportional dispatch when there is no
  usable last action.
* ``"proportional"``: every healthy group to top speed, load spread
  pro-rata to capped capacity — the classic "dumb but safe" dispatch.

Fallback actions are *planned* actions like any controller decision: the
engine still realizes them against the actual arrival (clipping at the
utilization cap, recording drops) and bills realized costs, so the
carbon-deficit queue keeps running on real brown energy and Theorem 2
accounting carries through degraded slots unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..cluster.fleet import FleetAction
from ..core.config import DataCenterModel
from ..core.controller import SlotObservation
from ..solvers.base import SlotSolution
from ..solvers.problem import InfeasibleError

__all__ = ["DegradationPolicy", "proportional_action"]

#: Fallback modes a policy may use.
FALLBACK_MODES = ("last_action", "proportional")


def proportional_action(
    model: DataCenterModel,
    arrival_rate: float,
    failed: frozenset[int] | set[int] = frozenset(),
) -> FleetAction:
    """Top-speed levels on healthy groups, load pro-rata to capacity.

    Deliberately ignores cost: this runs when optimization is unavailable
    and the only goal is serving the workload within the utilization cap.
    """
    fleet = model.fleet
    levels = np.array(
        [
            -1 if g in failed else fleet.groups[g].profile.num_speeds - 1
            for g in range(fleet.num_groups)
        ],
        dtype=np.int64,
    )
    caps = np.where(levels >= 0, model.gamma * fleet.group_speeds(levels), 0.0)
    total = float(np.sum(fleet.counts * caps))
    if total <= 0.0:
        raise InfeasibleError("no healthy capacity for proportional dispatch")
    ratio = min(max(arrival_rate, 0.0) / total, 1.0)
    return FleetAction(levels=levels, per_server_load=caps * ratio)


@dataclass
class DegradationPolicy:
    """How the simulator degrades when a slot solve fails.

    Mutable counters (``fallbacks``, ``solve_retries``, ``by_reason``)
    accumulate over a run for the ``fault.summary`` event and CLI report.
    """

    mode: str = "last_action"
    retries: int = 1
    fallbacks: int = 0
    solve_retries: int = 0
    by_reason: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.mode not in FALLBACK_MODES:
            raise ValueError(f"fallback mode must be one of {FALLBACK_MODES}")
        if self.retries < 0:
            raise ValueError("retries must be non-negative")

    # ------------------------------------------------------------------
    def fallback(
        self,
        model: DataCenterModel,
        observation: SlotObservation,
        last_action: FleetAction | None,
        failed: frozenset[int] | set[int] = frozenset(),
    ) -> SlotSolution:
        """The action to run instead of the failed solve.

        Raises :class:`InfeasibleError` only when *no* healthy capacity
        exists at all — the one situation with nothing left to degrade to.
        """
        action: FleetAction | None = None
        used = self.mode
        if self.mode == "last_action" and last_action is not None:
            action = self._rescale_last(model, observation, last_action, failed)
        if action is None:
            used = "proportional"
            action = proportional_action(model, observation.arrival_rate, failed)

        # Evaluate at (q=0, V=1): the planned-cost view for telemetry.  The
        # engine re-evaluates the realized action with the slot's actual
        # arrival, so run accounting never depends on these numbers.
        problem = model.slot_problem(
            arrival_rate=observation.arrival_rate,
            onsite=observation.onsite,
            price=observation.price,
            network_delay=observation.network_delay,
            pue_override=observation.pue,
        )
        return SlotSolution(
            action=action,
            evaluation=problem.evaluate(action),
            info={"fallback": used, "failed_groups": sorted(failed)},
        )

    def _rescale_last(
        self,
        model: DataCenterModel,
        observation: SlotObservation,
        last_action: FleetAction,
        failed: frozenset[int] | set[int],
    ) -> FleetAction | None:
        """Mask the last action to healthy groups and retarget its load to
        the slot's workload; ``None`` when nothing usable remains on."""
        fleet = model.fleet
        levels = np.where(
            np.isin(np.arange(fleet.num_groups), sorted(failed)),
            -1,
            last_action.levels,
        ).astype(np.int64)
        caps = np.where(levels >= 0, model.gamma * fleet.group_speeds(levels), 0.0)
        weights = fleet.counts * caps
        total = float(weights.sum())
        if total <= 0.0:
            return None
        ratio = min(max(observation.arrival_rate, 0.0) / total, 1.0)
        return FleetAction(levels=levels, per_server_load=caps * ratio)

    # ------------------------------------------------------------------
    def record(self, reason: str, *, fallback: bool) -> None:
        """Count one degradation decision (engine bookkeeping)."""
        if fallback:
            self.fallbacks += 1
            self.by_reason[reason] = self.by_reason.get(reason, 0) + 1
        else:
            self.solve_retries += 1

    def stats(self) -> dict:
        """Accumulated degradation counters for summaries."""
        return {
            "mode": self.mode,
            "retries": int(self.retries),
            "fallbacks": int(self.fallbacks),
            "solve_retries": int(self.solve_retries),
            "by_reason": dict(self.by_reason),
        }

    # -------------------------------------------------------- checkpointing
    def state_dict(self) -> dict:
        """Accumulated counters (mode/retries are manifest configuration)."""
        return {
            "fallbacks": int(self.fallbacks),
            "solve_retries": int(self.solve_retries),
            "by_reason": {str(k): int(v) for k, v in sorted(self.by_reason.items())},
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore counters captured by :meth:`state_dict`."""
        self.fallbacks = int(state["fallbacks"])
        self.solve_retries = int(state["solve_retries"])
        self.by_reason = {str(k): int(v) for k, v in state["by_reason"].items()}
