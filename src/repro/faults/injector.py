"""Runtime fault injection for the slot simulator.

:class:`FaultInjector` turns a declarative
:class:`~repro.faults.schedule.FaultSchedule` into per-slot effects:

* tracks which server groups are down (``failed_groups``), applying
  ``group_fail`` / ``group_repair`` events at their slot;
* degrades the controller's :class:`~repro.core.controller.SlotObservation`
  while a ``signal`` fault is active (stale = frozen at the last clean
  value, missing = conservative default);
* degrades the advice channel's forecast windows while a ``forecast``
  fault is active (:meth:`FaultInjector.degrade_forecast`: bias, drift,
  dropout, adversarial flip -- see
  :data:`~repro.faults.schedule.FORECAST_MODES`);
* installs a seeded :class:`~repro.faults.bus.FaultyMessageBus` factory
  into a message-passing solver so the distributed protocol experiences
  the schedule's loss/delay/duplication.

The injector holds **no RNG of its own** — every random choice was made
when the schedule was generated (timed events) or is made by the seeded
bus (message faults, salted with a deterministic per-solve counter), so a
chaos run is a pure function of ``(scenario seed, fault schedule)`` and
replays bit-identically.  With an empty schedule every method is a no-op
returning its inputs unchanged, preserving the repo's bit-identical
uninstrumented-run contract.

Everything the injector does is emitted as ``fault.*`` telemetry (schema
v2) so the :mod:`repro.monitor` watchdogs and dashboard can surface the
chaos a run experienced.
"""

from __future__ import annotations

from dataclasses import replace

from ..core.controller import SlotObservation
from ..telemetry import NULL_TELEMETRY, Telemetry, coerce
from .bus import FaultyMessageBus
from .schedule import FaultEvent, FaultSchedule

__all__ = ["FaultInjector"]


def _event_payload(event: FaultEvent) -> dict:
    """Telemetry payload for a fault event; the event's ``kind`` field is
    renamed ``fault`` so it cannot shadow the telemetry event kind."""
    payload = event.to_dict()
    payload["fault"] = payload.pop("kind")
    return payload


class FaultInjector:
    """Applies one :class:`FaultSchedule` to one simulation run.

    Parameters
    ----------
    schedule:
        The chaos scenario to inject.
    num_groups:
        Fleet size; used to refuse a failure that would take the *last*
        healthy group down (the simulator needs some capacity to exist —
        such events are suppressed and reported, not applied).
    default_retries:
        Retry budget handed to a message-passing solver that has none
        configured when :meth:`install` wires in the faulty bus.
    """

    def __init__(
        self,
        schedule: FaultSchedule,
        *,
        num_groups: int | None = None,
        default_retries: int = 3,
    ) -> None:
        if default_retries < 0:
            raise ValueError("default_retries must be non-negative")
        self.schedule = schedule
        self.num_groups = num_groups
        self.default_retries = default_retries
        self.telemetry: Telemetry = NULL_TELEMETRY

        self.failed_groups: set[int] = set()
        #: field -> (mode, first slot *past* the fault window)
        self._active_signals: dict[str, tuple[str, int]] = {}
        #: Active forecast faults: (mode, magnitude, first slot past window).
        self._active_forecast: list[tuple[str, float | None, int]] = []
        self._last_clean: dict[str, float] = {}
        self._by_slot = schedule.by_slot()
        self._solve_count = 0
        self.last_bus: FaultyMessageBus | None = None

        # Bookkeeping for summaries and monitors.
        self.injected = 0
        self.suppressed = 0
        self.ignored = 0
        self.by_kind: dict[str, int] = {}

    # ------------------------------------------------------------------
    def bind_telemetry(self, telemetry: Telemetry | None) -> None:
        """Attach the run's telemetry stream (``fault.*`` events)."""
        self.telemetry = coerce(telemetry)

    # ------------------------------------------------------------------
    def begin_slot(self, t: int) -> list[FaultEvent]:
        """Apply the schedule's events for slot ``t``; returns those applied."""
        for field_ in [
            f for f, (_, until) in self._active_signals.items() if until <= t
        ]:
            del self._active_signals[field_]
        if self._active_forecast:
            self._active_forecast = [
                f for f in self._active_forecast if f[2] > t
            ]

        applied: list[FaultEvent] = []
        for event in self._by_slot.get(t, ()):  # schedule order is sorted
            if event.kind == "group_fail":
                if event.group in self.failed_groups:
                    self._skip(event, "already_down")
                    continue
                if (
                    self.num_groups is not None
                    and len(self.failed_groups) + 1 >= self.num_groups
                ):
                    # Losing the last healthy group leaves nothing to serve
                    # with; report the near-miss instead of applying it.
                    self._suppress(event, "last_healthy_group")
                    continue
                self.failed_groups.add(int(event.group))  # type: ignore[arg-type]
            elif event.kind == "group_repair":
                if event.group not in self.failed_groups:
                    self._skip(event, "not_down")
                    continue
                self.failed_groups.discard(int(event.group))  # type: ignore[arg-type]
            elif event.kind == "forecast":
                self._active_forecast.append(
                    (str(event.mode), event.magnitude, t + event.duration)
                )
            else:  # signal
                self._active_signals[event.field] = (  # type: ignore[index]
                    event.mode,  # type: ignore[assignment]
                    t + event.duration,
                )
            applied.append(event)
            self.injected += 1
            self.by_kind[event.kind] = self.by_kind.get(event.kind, 0) + 1
            if self.telemetry.enabled:
                self.telemetry.emit(
                    "fault.inject",
                    **_event_payload(event),
                    failed_groups=sorted(self.failed_groups),
                )
                self.telemetry.metrics.counter("fault.injected").inc()
        return applied

    def _suppress(self, event: FaultEvent, reason: str) -> None:
        self.suppressed += 1
        if self.telemetry.enabled:
            self.telemetry.emit(
                "fault.suppressed", reason=reason, **_event_payload(event)
            )

    def _skip(self, event: FaultEvent, reason: str) -> None:
        self.ignored += 1
        if self.telemetry.enabled:
            self.telemetry.emit(
                "fault.ignored", reason=reason, **_event_payload(event)
            )

    # ------------------------------------------------------------------
    def inject_signal(
        self,
        field: str,
        mode: str,
        *,
        t: int,
        duration: int = 1,
        origin: str = "runtime",
    ) -> None:
        """Activate a signal fault *now*, outside the declarative schedule.

        The serving loop's staleness policy calls this when a live feed
        loses an observation: a late/missing signal is exactly a ``signal``
        fault, so it degrades through :meth:`degrade_observation` -- same
        last-clean semantics, same ``fault.signal`` telemetry, same monitor
        visibility -- instead of growing a parallel degradation path.

        Call it *before* the slot's :meth:`begin_slot`: the fault stays
        active through slot ``t + duration - 1`` (``begin_slot`` expires
        entries at their first slot past the window, matching scheduled
        signal events).
        """
        from .schedule import SIGNAL_FIELDS, SIGNAL_MODES

        if field not in SIGNAL_FIELDS:
            raise ValueError(
                f"signal field must be one of {SIGNAL_FIELDS}, got {field!r}"
            )
        if mode not in SIGNAL_MODES:
            raise ValueError(
                f"signal mode must be one of {SIGNAL_MODES}, got {mode!r}"
            )
        if duration < 1:
            raise ValueError("signal fault duration must be >= 1 slot")
        self._active_signals[field] = (mode, int(t) + int(duration))
        self.injected += 1
        self.by_kind["signal"] = self.by_kind.get("signal", 0) + 1
        if self.telemetry.enabled:
            self.telemetry.emit(
                "fault.inject",
                t=int(t),
                fault="signal",
                field=field,
                mode=mode,
                duration=int(duration),
                origin=origin,
                failed_groups=sorted(self.failed_groups),
            )
            self.telemetry.metrics.counter("fault.injected").inc()

    # ------------------------------------------------------------------
    def inject_forecast(
        self,
        mode: str,
        *,
        t: int,
        duration: int = 1,
        magnitude: float | None = None,
        origin: str = "runtime",
    ) -> None:
        """Activate a forecast fault *now*, outside the declarative schedule.

        The serving loop uses this when the advice feed itself degrades
        (stale or missing forecast payloads), so live losses flow through
        the same :meth:`degrade_forecast` path, telemetry, and monitors as
        scheduled forecast chaos.  Same timing contract as
        :meth:`inject_signal`: call before the slot's :meth:`begin_slot`.
        """
        from .schedule import FORECAST_MODES

        if mode not in FORECAST_MODES:
            raise ValueError(
                f"forecast mode must be one of {FORECAST_MODES}, got {mode!r}"
            )
        if duration < 1:
            raise ValueError("forecast fault duration must be >= 1 slot")
        self._active_forecast.append(
            (mode, None if magnitude is None else float(magnitude), int(t) + int(duration))
        )
        self.injected += 1
        self.by_kind["forecast"] = self.by_kind.get("forecast", 0) + 1
        if self.telemetry.enabled:
            self.telemetry.emit(
                "fault.inject",
                t=int(t),
                fault="forecast",
                mode=mode,
                duration=int(duration),
                magnitude=magnitude,
                origin=origin,
                failed_groups=sorted(self.failed_groups),
            )
            self.telemetry.metrics.counter("fault.injected").inc()

    def degrade_forecast(
        self, t: int, fields: dict[str, "np.ndarray"]
    ) -> dict[str, "np.ndarray"] | None:
        """The advice channel's view of a forecast window under active
        forecast faults.

        ``fields`` maps forecast series names (``arrival``, ``onsite``,
        ``price``, ...) to per-slot arrays over the window starting at
        slot ``t``.  Returns the *same* object when no forecast fault is
        active (preserving the bit-identity contract), ``None`` when a
        ``dropout`` fault is active (the forecast is lost entirely), and
        otherwise a new dict with every active fault applied in activation
        order:

        - ``bias``: arrivals scaled by ``1 + magnitude``;
        - ``drift``: arrivals scaled by a bias growing linearly with lead
          time, reaching ``magnitude`` at the window's end;
        - ``adversarial``: arrival/price/onsite reflected around their
          window midpoints (high forecasts where reality is low and vice
          versa).

        Each applied fault is emitted as a ``fault.forecast`` event with a
        ``fault.forecast_<mode>`` counter.
        """
        import numpy as np

        active = [f for f in self._active_forecast if f[2] > t]
        if not active:
            return fields

        def _tally(mode: str, magnitude: float | None) -> None:
            if self.telemetry.enabled:
                self.telemetry.emit(
                    "fault.forecast", t=int(t), mode=mode, magnitude=magnitude
                )
                self.telemetry.metrics.counter(f"fault.forecast_{mode}").inc()

        for mode, magnitude, _ in active:
            if mode == "dropout":
                _tally(mode, magnitude)
                return None

        out = {k: np.array(v, dtype=np.float64, copy=True) for k, v in fields.items()}
        for mode, magnitude, _ in active:
            _tally(mode, magnitude)
            if mode == "bias":
                out["arrival"] = np.maximum(out["arrival"] * (1.0 + magnitude), 0.0)
            elif mode == "drift":
                n = out["arrival"].size
                lead = np.arange(1, n + 1, dtype=np.float64) / max(n, 1)
                out["arrival"] = np.maximum(
                    out["arrival"] * (1.0 + magnitude * lead), 0.0
                )
            elif mode == "adversarial":
                for name in ("arrival", "price", "onsite"):
                    series = out.get(name)
                    if series is not None and series.size:
                        out[name] = (series.max() + series.min()) - series
        return out

    # ------------------------------------------------------------------
    def degrade_observation(self, observation: SlotObservation) -> SlotObservation:
        """The controller's view of slot ``t`` under active signal faults.

        ``stale`` freezes a field at its last clean value; ``missing``
        falls back conservatively — on-site supply to zero (assume no
        renewables rather than imaginary ones), price and the workload
        prediction to their last clean values (the facility must still
        plan *some* capacity).  With no active faults the observation is
        returned unchanged (the same object, preserving bit-identity).
        """
        clean = {
            "price": observation.price,
            "onsite": observation.onsite,
            "arrival": observation.arrival_rate,
        }
        if not self._active_signals:
            self._last_clean.update(clean)
            return observation

        overrides: dict[str, float] = {}
        for field_, value in clean.items():
            fault = self._active_signals.get(field_)
            if fault is None:
                self._last_clean[field_] = value
                continue
            mode = fault[0]
            if mode == "missing" and field_ == "onsite":
                degraded = 0.0
            else:  # stale, or missing price/arrival: hold the last clean value
                degraded = self._last_clean.get(field_, value)
            attr = "arrival_rate" if field_ == "arrival" else field_
            overrides[attr] = degraded
            if self.telemetry.enabled:
                self.telemetry.emit(
                    "fault.signal",
                    t=observation.t,
                    field=field_,
                    mode=mode,
                    clean=value,
                    degraded=degraded,
                )
        return replace(observation, **overrides)

    # ------------------------------------------------------------------
    def bus_factory(self) -> FaultyMessageBus:
        """A fresh seeded faulty bus; each call salts the profile's seed
        with a deterministic per-solve counter, so every slot sees a
        distinct but fully reproducible fault pattern."""
        profile = self.schedule.messages
        if profile is None:
            raise ValueError("schedule has no message-fault profile")
        salt = self._solve_count
        self._solve_count += 1
        bus = FaultyMessageBus.from_profile(profile, salt=salt)
        self.last_bus = bus
        return bus

    def install(self, controller) -> bool:
        """Wire message faults into the controller's solver, if any.

        Returns True when a message-passing solver (one exposing
        ``bus_factory``, e.g.
        :class:`~repro.solvers.messaging.DistributedGSD`) was found and
        the schedule carries a non-null message profile.  Solvers with no
        retry budget get ``default_retries`` so a single lost message does
        not doom every solve.
        """
        profile = self.schedule.messages
        if profile is None or profile.is_null:
            return False
        solver = getattr(controller, "solver", controller)
        if not hasattr(solver, "bus_factory"):
            return False
        solver.bus_factory = self.bus_factory
        if getattr(solver, "retries", 0) == 0:
            solver.retries = self.default_retries
        return True

    # -------------------------------------------------------- checkpointing
    def state_dict(self) -> dict:
        """Everything mutable about the injector mid-run.

        The schedule itself is immutable configuration (the resume manifest
        carries it); what a checkpoint needs is the *cursor*: which groups
        are down, which signal faults are active and until when, the
        last-clean observation values, the per-solve bus-salt counter, and
        the accounting so ``fault.summary`` stays consistent after resume.
        """
        return {
            "failed_groups": sorted(int(g) for g in self.failed_groups),
            "active_signals": {
                field_: [str(mode), int(until)]
                for field_, (mode, until) in sorted(self._active_signals.items())
            },
            "active_forecast": [
                [str(mode), None if mag is None else float(mag), int(until)]
                for mode, mag, until in self._active_forecast
            ],
            "last_clean": {k: float(v) for k, v in sorted(self._last_clean.items())},
            "solve_count": int(self._solve_count),
            "injected": int(self.injected),
            "suppressed": int(self.suppressed),
            "ignored": int(self.ignored),
            "by_kind": {str(k): int(v) for k, v in sorted(self.by_kind.items())},
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore the injection cursor captured by :meth:`state_dict`."""
        self.failed_groups = {int(g) for g in state["failed_groups"]}
        self._active_signals = {
            field_: (str(mode), int(until))
            for field_, (mode, until) in state["active_signals"].items()
        }
        self._active_forecast = [
            (str(mode), None if mag is None else float(mag), int(until))
            for mode, mag, until in state.get("active_forecast", [])
        ]
        self._last_clean = {k: float(v) for k, v in state["last_clean"].items()}
        self._solve_count = int(state["solve_count"])
        self.injected = int(state["injected"])
        self.suppressed = int(state["suppressed"])
        self.ignored = int(state["ignored"])
        self.by_kind = {str(k): int(v) for k, v in state["by_kind"].items()}

    # ------------------------------------------------------------------
    def summary(self) -> dict:
        """Run-level fault accounting for telemetry and CLI reports."""
        out = {
            "injected": int(self.injected),
            "suppressed": int(self.suppressed),
            "ignored": int(self.ignored),
            "by_kind": dict(self.by_kind),
            "failed_groups_at_end": sorted(self.failed_groups),
            "bus_solves": int(self._solve_count),
        }
        if self.last_bus is not None:
            out["last_bus"] = self.last_bus.fault_stats()
        return out
