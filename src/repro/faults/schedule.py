"""Declarative, seeded fault schedules.

The paper's robustness story (section 4.2's server-failure remark, the
ROADMAP's "as many scenarios as you can imagine") needs faults that arrive
*mid-horizon*, not as a static configuration.  A :class:`FaultSchedule` is
the single source of truth for one chaos scenario:

* **timed events** (:class:`FaultEvent`): server-group failures and
  repairs, stale/missing exogenous signals (price, on-site renewables,
  the workload prediction), and degraded *forecasts* (bias, drift,
  dropout, adversarial flips on the :mod:`repro.advice` channel);
* a **message-fault profile** (:class:`MessageFaultProfile`): seeded
  loss/delay/duplication probabilities applied to every message of the
  distributed protocol in :mod:`repro.solvers.messaging`.

Schedules are plain data: JSON/dict round-trippable (``to_dict`` /
``from_dict`` / ``to_json`` / ``from_json``) and fully reproducible --
:meth:`FaultSchedule.generate` derives every event from one integer seed,
so the same seed always yields a bit-identical schedule, and replaying a
recorded schedule reproduces the original chaos run exactly (the property
tests in ``tests/test_faults.py`` pin both).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "FaultEvent",
    "MessageFaultProfile",
    "FaultSchedule",
    "FAULT_KINDS",
    "FORECAST_MODES",
]

#: Timed event kinds a schedule may contain.
FAULT_KINDS = ("group_fail", "group_repair", "signal", "forecast")

#: Observation fields a ``signal`` event may degrade.
SIGNAL_FIELDS = ("price", "onsite", "arrival")

#: Degradation modes for signal faults: ``stale`` freezes the field at its
#: last clean value; ``missing`` drops it entirely (price/arrival fall back
#: to hold-last-value, on-site supply conservatively to zero).
SIGNAL_MODES = ("stale", "missing")

#: Degradation modes for ``forecast`` faults, which corrupt the advice
#: channel (:mod:`repro.advice`) rather than the slot observation:
#: ``bias`` scales the forecast arrivals by ``1 + magnitude``; ``drift``
#: applies a bias that grows linearly with lead time (reaching
#: ``magnitude`` at the end of the window); ``dropout`` loses the forecast
#: entirely (the advisor produces no advice); ``adversarial`` reflects
#: arrival/price/on-site forecasts around their window midpoints, turning
#: the advice actively anti-correlated with reality.
FORECAST_MODES = ("bias", "drift", "dropout", "adversarial")


@dataclass(frozen=True)
class FaultEvent:
    """One timed fault.

    Parameters
    ----------
    t:
        Slot index at which the event takes effect (start of slot).
    kind:
        One of :data:`FAULT_KINDS`.
    group:
        Target group index (``group_fail`` / ``group_repair``).
    field:
        Degraded observation field (``signal``); see :data:`SIGNAL_FIELDS`.
    mode:
        ``"stale"`` or ``"missing"`` (``signal``); one of
        :data:`FORECAST_MODES` (``forecast``).
    duration:
        Number of slots a ``signal``/``forecast`` fault stays active
        (failures persist until an explicit ``group_repair``).
    magnitude:
        Severity of a ``forecast`` ``bias``/``drift`` fault (relative
        error injected into the forecast; defaults to 0.25).
    """

    t: int
    kind: str
    group: int | None = None
    field: str | None = None
    mode: str | None = None
    duration: int = 1
    magnitude: float | None = None

    def __post_init__(self) -> None:
        if self.t < 0:
            raise ValueError(f"fault time must be non-negative, got {self.t}")
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r} (use {FAULT_KINDS})")
        if self.kind in ("group_fail", "group_repair"):
            if self.group is None or self.group < 0:
                raise ValueError(f"{self.kind} needs a non-negative group index")
        if self.kind == "signal":
            if self.field not in SIGNAL_FIELDS:
                raise ValueError(
                    f"signal fault field must be one of {SIGNAL_FIELDS}, got {self.field!r}"
                )
            if self.mode not in SIGNAL_MODES:
                raise ValueError(
                    f"signal fault mode must be one of {SIGNAL_MODES}, got {self.mode!r}"
                )
            if self.duration < 1:
                raise ValueError("signal fault duration must be >= 1 slot")
        if self.kind == "forecast":
            if self.mode not in FORECAST_MODES:
                raise ValueError(
                    f"forecast fault mode must be one of {FORECAST_MODES}, got {self.mode!r}"
                )
            if self.duration < 1:
                raise ValueError("forecast fault duration must be >= 1 slot")
            if self.mode in ("bias", "drift"):
                magnitude = 0.25 if self.magnitude is None else float(self.magnitude)
                if not magnitude > -1.0 or magnitude == 0.0:
                    raise ValueError(
                        f"forecast {self.mode} magnitude must be > -1 and non-zero, "
                        f"got {magnitude}"
                    )
                object.__setattr__(self, "magnitude", magnitude)

    def to_dict(self) -> dict:
        """Flat JSON-safe representation (``None`` fields omitted)."""
        out: dict = {"t": int(self.t), "kind": self.kind}
        if self.group is not None:
            out["group"] = int(self.group)
        if self.field is not None:
            out["field"] = self.field
        if self.mode is not None:
            out["mode"] = self.mode
        if self.kind in ("signal", "forecast"):
            out["duration"] = int(self.duration)
        if self.magnitude is not None:
            out["magnitude"] = float(self.magnitude)
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "FaultEvent":
        known = {"t", "kind", "group", "field", "mode", "duration", "magnitude"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown fault event keys: {sorted(unknown)}")
        return cls(
            t=int(data["t"]),
            kind=str(data["kind"]),
            group=None if data.get("group") is None else int(data["group"]),
            field=data.get("field"),
            mode=data.get("mode"),
            duration=int(data.get("duration", 1)),
            magnitude=(
                None if data.get("magnitude") is None else float(data["magnitude"])
            ),
        )


@dataclass(frozen=True)
class MessageFaultProfile:
    """Seeded per-message fault probabilities for the distributed protocol.

    Each message crossing a :class:`~repro.faults.bus.FaultyMessageBus`
    independently draws one uniform variate: with probability ``loss`` it
    vanishes, with probability ``delay`` it is delivered but its reply
    misses the sender's timeout window, with probability ``duplicate`` it
    is delivered twice.  ``seed`` anchors the bus RNG so a run replays
    bit-identically.
    """

    loss: float = 0.0
    delay: float = 0.0
    duplicate: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("loss", "delay", "duplicate"):
            p = getattr(self, name)
            if not 0.0 <= p < 1.0:
                raise ValueError(f"{name} probability must be in [0, 1), got {p}")
        if self.loss + self.delay + self.duplicate >= 1.0:
            raise ValueError("loss + delay + duplicate must stay below 1")

    @property
    def is_null(self) -> bool:
        """True when every fault probability is zero."""
        return self.loss == 0.0 and self.delay == 0.0 and self.duplicate == 0.0

    def to_dict(self) -> dict:
        return {
            "loss": float(self.loss),
            "delay": float(self.delay),
            "duplicate": float(self.duplicate),
            "seed": int(self.seed),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MessageFaultProfile":
        known = {"loss", "delay", "duplicate", "seed"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown message-fault keys: {sorted(unknown)}")
        return cls(
            loss=float(data.get("loss", 0.0)),
            delay=float(data.get("delay", 0.0)),
            duplicate=float(data.get("duplicate", 0.0)),
            seed=int(data.get("seed", 0)),
        )


@dataclass(frozen=True)
class FaultSchedule:
    """A full chaos scenario: timed events plus a message-fault profile.

    ``events`` are stored sorted by ``(t, kind, group, field)`` so equal
    schedules compare equal regardless of construction order; ``seed``
    records provenance when the schedule came from :meth:`generate` (it is
    informational -- replay uses the events themselves, never the seed).
    """

    events: tuple[FaultEvent, ...] = ()
    messages: MessageFaultProfile | None = None
    seed: int | None = None

    def __post_init__(self) -> None:
        events = tuple(
            sorted(
                self.events,
                key=lambda e: (e.t, e.kind, -1 if e.group is None else e.group, e.field or ""),
            )
        )
        object.__setattr__(self, "events", events)
        # A group must not fail twice without an intervening repair, and a
        # repair must target a group that is down: catching these statically
        # keeps injection-time behavior unambiguous.
        down: set[int] = set()
        for e in events:
            if e.kind == "group_fail":
                if e.group in down:
                    raise ValueError(
                        f"group {e.group} fails at t={e.t} while already down"
                    )
                down.add(e.group)  # type: ignore[arg-type]
            elif e.kind == "group_repair":
                if e.group not in down:
                    raise ValueError(
                        f"group {e.group} repaired at t={e.t} but was never down"
                    )
                down.discard(e.group)  # type: ignore[arg-type]

    # ------------------------------------------------------------------
    @classmethod
    def empty(cls) -> "FaultSchedule":
        """The no-fault schedule (simulation must be bit-identical)."""
        return cls()

    @property
    def is_empty(self) -> bool:
        """True when there is nothing to inject."""
        return not self.events and (self.messages is None or self.messages.is_null)

    def events_at(self, t: int) -> tuple[FaultEvent, ...]:
        """Events taking effect at slot ``t`` (sorted)."""
        return tuple(e for e in self.events if e.t == t)

    def by_slot(self) -> dict[int, list[FaultEvent]]:
        """``t -> events`` map for O(1) per-slot lookup in the injector."""
        out: dict[int, list[FaultEvent]] = {}
        for e in self.events:
            out.setdefault(e.t, []).append(e)
        return out

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        out: dict = {"events": [e.to_dict() for e in self.events]}
        if self.messages is not None:
            out["messages"] = self.messages.to_dict()
        if self.seed is not None:
            out["seed"] = int(self.seed)
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSchedule":
        known = {"events", "messages", "seed"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown fault schedule keys: {sorted(unknown)}")
        messages = data.get("messages")
        return cls(
            events=tuple(FaultEvent.from_dict(e) for e in data.get("events", ())),
            messages=None if messages is None else MessageFaultProfile.from_dict(messages),
            seed=None if data.get("seed") is None else int(data["seed"]),
        )

    def to_json(self, path: str | None = None, *, indent: int = 2) -> str:
        """Serialize; when ``path`` is given also write the file atomically
        (write temp + fsync + rename), so a crash mid-write can never leave
        a torn schedule behind for a later replay to trip over."""
        text = json.dumps(self.to_dict(), indent=indent, sort_keys=True)
        if path is not None:
            from ..state.atomic import atomic_write_text

            atomic_write_text(path, text + "\n")
        return text

    @classmethod
    def from_json(cls, text_or_path: str) -> "FaultSchedule":
        """Parse a schedule from a JSON string or a path to a JSON file."""
        text = text_or_path
        if not text_or_path.lstrip().startswith("{"):
            with open(text_or_path) as fh:
                text = fh.read()
        return cls.from_dict(json.loads(text))

    # ------------------------------------------------------------------
    @classmethod
    def generate(
        cls,
        seed: int,
        *,
        horizon: int,
        num_groups: int,
        failure_rate: float = 0.01,
        mean_repair: float = 6.0,
        signal_rate: float = 0.0,
        forecast_rate: float = 0.0,
        loss: float = 0.0,
        delay: float = 0.0,
        duplicate: float = 0.0,
    ) -> "FaultSchedule":
        """Draw a reproducible schedule from one seed.

        Per slot, each currently-healthy group fails with probability
        ``failure_rate`` (repair after a geometric duration with mean
        ``mean_repair`` slots); at most ``num_groups - 1`` groups are ever
        down together, so the fleet always retains some capacity.  With
        probability ``signal_rate`` per slot one observation field degrades
        for 1-3 slots, and with probability ``forecast_rate`` per slot the
        advice channel degrades (a random :data:`FORECAST_MODES` mode, a
        magnitude in [0.1, 0.6) for bias/drift, lasting 1-24 slots).  The
        message profile reuses ``seed`` so the whole scenario hangs off a
        single integer.  ``forecast_rate=0.0`` draws nothing from the RNG,
        so pre-existing seeds keep generating bit-identical schedules.
        """
        if horizon < 1 or num_groups < 1:
            raise ValueError("horizon and num_groups must be positive")
        if not 0.0 <= failure_rate < 1.0:
            raise ValueError("failure_rate must be in [0, 1)")
        if mean_repair < 1.0:
            raise ValueError("mean_repair must be >= 1 slot")
        if not 0.0 <= signal_rate < 1.0:
            raise ValueError("signal_rate must be in [0, 1)")
        if not 0.0 <= forecast_rate < 1.0:
            raise ValueError("forecast_rate must be in [0, 1)")
        rng = np.random.default_rng(seed)
        events: list[FaultEvent] = []
        repair_at: dict[int, int] = {}  # group -> slot it comes back
        for t in range(horizon):
            just_repaired = sorted(g for g, tr in repair_at.items() if tr == t)
            for g in just_repaired:
                events.append(FaultEvent(t=t, kind="group_repair", group=g))
                del repair_at[g]
            for g in range(num_groups):
                # A group that just came back spends the slot healthy; letting
                # it fail again at the same t would order fail-before-repair
                # after the canonical sort and fail validation.
                if g in repair_at or g in just_repaired:
                    continue
                if rng.random() < failure_rate and len(repair_at) < num_groups - 1:
                    down_for = 1 + int(rng.geometric(1.0 / mean_repair))
                    events.append(FaultEvent(t=t, kind="group_fail", group=g))
                    back = t + down_for
                    if back < horizon:
                        repair_at[g] = back
                    else:
                        repair_at[g] = horizon + 1  # never repaired in-run
            if signal_rate > 0.0 and rng.random() < signal_rate:
                field_ = SIGNAL_FIELDS[int(rng.integers(0, len(SIGNAL_FIELDS)))]
                mode = SIGNAL_MODES[int(rng.integers(0, len(SIGNAL_MODES)))]
                duration = int(rng.integers(1, 4))
                events.append(
                    FaultEvent(
                        t=t, kind="signal", field=field_, mode=mode, duration=duration
                    )
                )
            if forecast_rate > 0.0 and rng.random() < forecast_rate:
                mode = FORECAST_MODES[int(rng.integers(0, len(FORECAST_MODES)))]
                duration = int(rng.integers(1, 25))
                magnitude = (
                    float(rng.uniform(0.1, 0.6))
                    if mode in ("bias", "drift")
                    else None
                )
                events.append(
                    FaultEvent(
                        t=t,
                        kind="forecast",
                        mode=mode,
                        duration=duration,
                        magnitude=magnitude,
                    )
                )
        profile = MessageFaultProfile(loss=loss, delay=delay, duplicate=duplicate, seed=seed)
        return cls(
            events=tuple(events),
            messages=None if profile.is_null else profile,
            seed=seed,
        )
