"""Geo-distributed extension: COCA across multiple data center sites.

Fuses the paper's online carbon-neutral control with geographical load
balancing (the related-work direction of [21, 29, 32]): one global carbon
budget and deficit queue, per-site fleets/prices/renewables/latencies, and
a marginal-cost-equalizing dispatcher.  See DESIGN.md section 5.
"""

from .controller import GeoCOCA, GeoEnvironment, ProportionalGeo
from .dispatch import DispatchResult, dispatch_slot, proportional_shares
from .engine import GeoRecord, simulate_geo
from .site import Site

__all__ = [
    "Site",
    "GeoEnvironment",
    "GeoCOCA",
    "ProportionalGeo",
    "DispatchResult",
    "dispatch_slot",
    "proportional_shares",
    "GeoRecord",
    "simulate_geo",
]
