"""GeoCOCA: online carbon-neutral control across multiple sites.

The multi-site analogue of Algorithm 1.  Carbon neutrality is an
*aggregate* constraint -- the operator's total brown energy across all
sites must stay within the global off-site-renewables-plus-RECs budget --
so a single carbon-deficit queue prices every site's brown energy:

    q(t+1) = max( q(t) + sum_s y_s(t) - alpha f(t) - z , 0 ).

Each slot, the dispatcher splits the global workload so the P3 objectives
``V g_s + q y_s`` sum to a minimum (see :mod:`repro.geo.dispatch`), which
simultaneously chases cheap electricity, local renewables, and low network
delay -- geographic load balancing [21, 29, 32] fused with the paper's
energy budgeting, with no future information.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..core.deficit_queue import CarbonDeficitQueue
from ..core.vschedule import ConstantV, VSchedule
from ..solvers.base import SlotSolver
from ..telemetry import Telemetry, coerce
from ..traces.base import Trace
from .dispatch import DispatchResult, dispatch_slot, proportional_shares
from .site import Site

__all__ = ["GeoEnvironment", "GeoCOCA", "ProportionalGeo"]


@dataclass(frozen=True)
class GeoEnvironment:
    """Global inputs for a multi-site run.

    Parameters
    ----------
    workload:
        Global arrival-rate trace (req/s) to be split across sites.
    sites:
        The locations (each with local traces of the same horizon).
    offsite:
        Global off-site renewable supply ``f(t)`` in MW (PPAs offset
        aggregate brown energy wherever it is drawn).
    recs:
        Global REC prepurchase ``Z`` in MWh.
    alpha:
        Capping aggressiveness of the aggregate constraint.
    """

    workload: Trace
    sites: tuple[Site, ...]
    offsite: Trace
    recs: float
    alpha: float = 1.0

    def __post_init__(self) -> None:
        if not self.sites:
            raise ValueError("need at least one site")
        horizons = {len(self.workload), len(self.offsite)}
        horizons.update(s.horizon for s in self.sites)
        if len(horizons) != 1:
            raise ValueError(f"inconsistent horizons: {sorted(horizons)}")
        if self.recs < 0:
            raise ValueError("REC total must be non-negative")
        object.__setattr__(self, "sites", tuple(self.sites))

    @property
    def horizon(self) -> int:
        """Number of slots."""
        return len(self.workload)

    @property
    def carbon_budget(self) -> float:
        """Global budget ``sum f + Z`` in MWh."""
        return self.offsite.total + self.recs

    @property
    def total_capacity(self) -> float:
        """Aggregate capped service rate across sites (req/s)."""
        return float(sum(s.capacity() for s in self.sites))


class GeoCOCA:
    """Multi-site COCA with a single global deficit queue.

    Parameters
    ----------
    environment:
        Global traces and sites.
    v_schedule:
        Cost-carbon parameter (constant or per-frame schedule).
    frame_length:
        Queue-reset frame ``T`` (None = one frame).
    dispatch_rounds:
        Transfer rounds per slot for the dispatcher.
    solvers:
        Optional per-site P3 engines.
    telemetry:
        Optional observability handle: each slot emits a ``geo.dispatch``
        event (load split, queue, realized cost/brown) and times the
        dispatch into the ``geo.dispatch_time_s`` histogram.
    """

    def __init__(
        self,
        environment: GeoEnvironment,
        *,
        v_schedule: VSchedule | float = 100.0,
        frame_length: int | None = None,
        dispatch_rounds: int = 24,
        solvers: Sequence[SlotSolver] | None = None,
        telemetry: Telemetry | None = None,
    ):
        if isinstance(v_schedule, (int, float)):
            v_schedule = ConstantV(float(v_schedule))
        self.environment = environment
        self.v_schedule = v_schedule
        self.frame_length = frame_length
        self.dispatch_rounds = dispatch_rounds
        self.solvers = list(solvers) if solvers is not None else None
        self.telemetry = coerce(telemetry)
        if self.solvers is not None:
            for solver in self.solvers:
                bind = getattr(solver, "bind_telemetry", None)
                if bind is not None:
                    bind(self.telemetry)
        self.queue = CarbonDeficitQueue(
            alpha=environment.alpha,
            rec_per_slot=environment.alpha * environment.recs / environment.horizon,
        )
        self._prev_on: list[np.ndarray | None] = [None] * len(environment.sites)
        self._prev_shares: np.ndarray | None = None
        self._last_v: float = self.v_schedule.value(0)
        if self.telemetry.enabled:
            # Budget constants for the health monitors (mirrors COCA's
            # controller.config on the single-site path).
            self.telemetry.emit(
                "geo.config",
                controller=self.name(),
                alpha=environment.alpha,
                rec_per_slot=self.queue.rec_per_slot,
                horizon=environment.horizon,
                num_sites=len(environment.sites),
                capacity=environment.total_capacity,
                carbon_budget=environment.carbon_budget,
            )

    def decide(self, t: int) -> DispatchResult:
        """Dispatch slot ``t`` and provision every site."""
        T = self.frame_length or self.environment.horizon
        if t % T == 0:
            self.queue.reset()
        v = self.v_schedule.value(t // T)
        self._last_v = v
        with self.telemetry.timer("geo.dispatch_time_s") as dispatch_timer:
            result = dispatch_slot(
                self.environment.sites,
                t,
                self.environment.workload[t],
                q=self.queue.length,
                V=v,
                prev_on=self._prev_on,
                solvers=self.solvers,
                rounds=self.dispatch_rounds,
                initial_shares=self._warm_start(t),
            )
        if self.telemetry.enabled:
            self.telemetry.emit(
                "geo.dispatch",
                t=t,
                load=float(self.environment.workload[t]),
                queue=self.queue.length,
                v=v,
                shares=[float(s) for s in result.shares],
                cost=float(sum(sol.cost for sol in result.solutions)),
                brown=result.total_brown,
                solve_time_s=dispatch_timer.elapsed,
            )
        self._prev_on = [
            sol.action.on_counts(site.model.fleet)
            for sol, site in zip(result.solutions, self.environment.sites)
        ]
        self._prev_shares = result.shares.copy()
        return result

    def _warm_start(self, t: int) -> np.ndarray | None:
        """Rescale the previous slot's split to this slot's total -- a good
        starting point because the environment is autocorrelated."""
        if self._prev_shares is None:
            return None
        total = self.environment.workload[t]
        prev_total = float(self._prev_shares.sum())
        if prev_total <= 0.0 or total <= 0.0:
            return None
        scaled = self._prev_shares * (total / prev_total)
        caps = np.array([s.capacity() for s in self.environment.sites])
        if np.any(scaled > caps):
            return None
        return scaled

    def observe(self, t: int, result: DispatchResult) -> None:
        """End-of-slot queue update with the realized off-site supply."""
        before = self.queue.length
        self.queue.update(result.total_brown, self.environment.offsite[t])
        if self.telemetry.enabled:
            self.telemetry.emit(
                "queue.update",
                t=t,
                before=before,
                after=self.queue.length,
                brown=result.total_brown,
                offsite=float(self.environment.offsite[t]),
                rec_per_slot=self.queue.rec_per_slot,
                v=self._last_v,
            )
            self.telemetry.metrics.gauge("geo.queue_depth").set(self.queue.length)

    # -------------------------------------------------------- checkpointing
    def state_dict(self) -> dict:
        """Queue, per-site switching memory, and warm-start split."""
        from ..state.serialize import encode_array

        return {
            "queue": self.queue.state_dict(),
            "prev_on": [encode_array(arr) for arr in self._prev_on],
            "prev_shares": encode_array(self._prev_shares),
            "last_v": float(self._last_v),
            "solvers": (
                None
                if self.solvers is None
                else [s.state_dict() for s in self.solvers]
            ),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore state captured by :meth:`state_dict`."""
        from ..state.serialize import decode_array

        self.queue.load_state_dict(state["queue"])
        self._prev_on = [decode_array(obj) for obj in state["prev_on"]]
        self._prev_shares = decode_array(state["prev_shares"])
        self._last_v = float(state["last_v"])
        if self.solvers is not None and state["solvers"] is not None:
            for solver, solver_state in zip(self.solvers, state["solvers"]):
                solver.load_state_dict(solver_state)

    def name(self) -> str:
        return "GeoCOCA"


class ProportionalGeo:
    """Naive baseline: capacity-proportional split, carbon-unaware sites."""

    def __init__(self, environment: GeoEnvironment):
        self.environment = environment
        self._prev_on: list[np.ndarray | None] = [None] * len(environment.sites)

    def decide(self, t: int) -> DispatchResult:
        sites = self.environment.sites
        total = self.environment.workload[t]
        shares = proportional_shares(sites, total)
        result = dispatch_slot(
            sites,
            t,
            total,
            q=0.0,
            V=1.0,
            prev_on=self._prev_on,
            rounds=0,
            initial_shares=shares,
        )
        self._prev_on = [
            sol.action.on_counts(site.model.fleet)
            for sol, site in zip(result.solutions, sites)
        ]
        return result

    def observe(self, t: int, result: DispatchResult) -> None:
        """Stateless baseline; nothing to update."""

    def name(self) -> str:
        return "proportional"
