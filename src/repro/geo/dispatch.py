"""Per-slot workload dispatch across sites.

Each slot the operator splits the global arrival rate ``lambda(t)`` across
sites; each site then provisions its own fleet (its local P3).  The global
objective is separable given the split,

    min_{x >= 0, sum x_s = lambda}   sum_s  F_s(x_s),

where ``F_s`` is site ``s``'s optimal P3 objective as a function of its
share -- piecewise-smooth and (approximately) convex, since each site's
inner problem relaxes to a convex program.  :func:`dispatch_slot` solves the
split by *marginal-cost equalization*: starting from a capacity-
proportional split, it repeatedly moves a shrinking block of load from the
site with the highest marginal cost to the one with the lowest, accepting
only improving transfers -- a derivative-free analogue of projected
gradient descent that is robust to the discrete kinks of ``F_s`` (server
counts change in group-size steps).

:class:`ProportionalDispatch` (split by capacity, ignore prices and
renewables) is the naive baseline the geo ablation compares against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..solvers.base import SlotSolution, SlotSolver
from ..solvers.enumeration import HomogeneousEnumerationSolver
from ..solvers.convex import CoordinateDescentSolver
from ..solvers.problem import InfeasibleError
from .site import Site

__all__ = ["DispatchResult", "dispatch_slot", "proportional_shares"]


@dataclass(frozen=True)
class DispatchResult:
    """Outcome of one slot's dispatch."""

    shares: np.ndarray  # req/s routed to each site
    solutions: tuple[SlotSolution, ...]  # per-site local solutions
    total_objective: float
    evaluations: int  # number of site-level P3 solves performed

    @property
    def total_cost(self) -> float:
        """Aggregate operational cost ``sum_s g_s`` for the slot."""
        return float(sum(s.cost for s in self.solutions))

    @property
    def total_brown(self) -> float:
        """Aggregate brown energy (MWh) for the slot."""
        return float(sum(s.evaluation.brown_energy for s in self.solutions))


def _default_solver(site: Site) -> SlotSolver:
    if site.model.fleet.is_homogeneous:
        return HomogeneousEnumerationSolver()
    return CoordinateDescentSolver()


def proportional_shares(sites: Sequence[Site], total_load: float) -> np.ndarray:
    """Capacity-proportional split (the naive baseline)."""
    caps = np.array([s.capacity() for s in sites])
    if total_load > caps.sum() * (1 + 1e-12):
        raise InfeasibleError("global workload exceeds aggregate capacity")
    return total_load * caps / caps.sum()


def dispatch_slot(
    sites: Sequence[Site],
    t: int,
    total_load: float,
    *,
    q: float = 0.0,
    V: float = 1.0,
    prev_on: Sequence[np.ndarray | None] | None = None,
    solvers: Sequence[SlotSolver] | None = None,
    rounds: int = 24,
    initial_shares: np.ndarray | None = None,
) -> DispatchResult:
    """Split ``total_load`` across ``sites`` and solve each local P3.

    Parameters
    ----------
    sites:
        The locations; their traces must cover slot ``t``.
    total_load:
        Global arrival rate (req/s).
    q, V:
        Global deficit weight and cost-carbon parameter.
    prev_on:
        Per-site previous on-counts (switching awareness), or None.
    solvers:
        Per-site engines (defaults chosen per fleet).
    rounds:
        Transfer rounds; each tries one highest-to-lowest-marginal move
        with a geometrically shrinking block size.
    initial_shares:
        Starting split; defaults to capacity-proportional.
    """
    S = len(sites)
    if S == 0:
        raise ValueError("need at least one site")
    if prev_on is None:
        prev_on = [None] * S
    if solvers is None:
        solvers = [_default_solver(s) for s in sites]
    caps = np.array([s.capacity() for s in sites])
    shares = (
        initial_shares.astype(np.float64).copy()
        if initial_shares is not None
        else proportional_shares(sites, total_load)
    )
    if abs(shares.sum() - total_load) > 1e-6 * max(total_load, 1.0):
        raise ValueError("initial shares must sum to the total load")

    evaluations = 0
    cache: dict[tuple[int, float], SlotSolution] = {}

    def solve_site(i: int, load: float) -> SlotSolution:
        nonlocal evaluations
        key = (i, round(load, 6))
        hit = cache.get(key)
        if hit is not None:
            return hit
        problem = sites[i].slot_problem(
            t, load, q=q, V=V, prev_on_counts=prev_on[i]
        )
        solution = solvers[i].solve(problem)
        evaluations += 1
        cache[key] = solution
        return solution

    solutions = [solve_site(i, shares[i]) for i in range(S)]
    objectives = np.array([s.objective for s in solutions])

    if S > 1 and total_load > 0.0:
        block = 0.25 * total_load
        for _ in range(rounds):
            # Marginal estimate via the transfer block itself: try moving
            # `amount` from the currently-costliest site to each other site
            # and keep the best improving move.
            donor = int(np.argmax(objectives))
            amount = min(block, shares[donor])
            improved = False
            if amount > 1e-9 * max(total_load, 1.0):
                base_total = objectives.sum()
                donor_after = solve_site(donor, shares[donor] - amount)
                for recv in range(S):
                    if recv == donor or shares[recv] + amount > caps[recv]:
                        continue
                    recv_after = solve_site(recv, shares[recv] + amount)
                    delta = (
                        donor_after.objective
                        + recv_after.objective
                        - objectives[donor]
                        - objectives[recv]
                    )
                    if delta < -1e-12 * max(base_total, 1.0):
                        shares[donor] -= amount
                        shares[recv] += amount
                        solutions[donor] = donor_after
                        solutions[recv] = recv_after
                        objectives[donor] = donor_after.objective
                        objectives[recv] = recv_after.objective
                        improved = True
                        break
            if not improved:
                block *= 0.5
                if block < 1e-6 * total_load:
                    break

    return DispatchResult(
        shares=shares,
        solutions=tuple(solutions),
        total_objective=float(objectives.sum()),
        evaluations=evaluations,
    )
