"""Multi-site simulation loop and per-run records."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..telemetry import NULL_TELEMETRY, Telemetry, coerce
from .controller import GeoEnvironment

__all__ = ["GeoRecord", "simulate_geo"]


@dataclass
class GeoRecord:
    """Per-slot outcomes of a multi-site run.

    Matrices are ``(horizon, sites)``; vectors are per-slot totals.
    """

    controller: str
    site_names: tuple[str, ...]
    shares: np.ndarray  # req/s routed to each site
    brown: np.ndarray  # MWh drawn at each site
    cost: np.ndarray  # $ spent at each site (g_s)
    electricity_cost: np.ndarray
    delay_cost: np.ndarray
    queue: np.ndarray  # global deficit queue at decision time

    @property
    def horizon(self) -> int:
        """Number of slots recorded."""
        return self.shares.shape[0]

    @property
    def total_brown(self) -> float:
        """Aggregate brown energy (MWh) across sites and slots."""
        return float(self.brown.sum())

    @property
    def average_cost(self) -> float:
        """Mean hourly aggregate operational cost ($)."""
        return float(self.cost.sum(axis=1).mean())

    def site_share_of_load(self) -> np.ndarray:
        """Each site's fraction of the total work routed over the run."""
        totals = self.shares.sum(axis=0)
        return totals / max(totals.sum(), 1e-300)

    def is_neutral(self, environment: GeoEnvironment) -> bool:
        """Aggregate neutrality: total brown <= alpha * (sum f + Z)."""
        return self.total_brown <= environment.alpha * environment.carbon_budget * (
            1 + 1e-9
        )


def simulate_geo(
    controller,
    environment: GeoEnvironment,
    *,
    telemetry: Telemetry | None = None,
) -> GeoRecord:
    """Run a geo controller over the full period.

    The controller must expose ``decide(t) -> DispatchResult`` and
    ``observe(t, result)`` (see :class:`~repro.geo.controller.GeoCOCA`).

    ``telemetry`` roots each slot in a ``geo.slot`` attribution span so the
    controller's ``geo.dispatch_time_s`` timer (and any per-site solver
    spans beneath it) nest under the slot.  When omitted, the controller's
    own bound telemetry is used, so instrumented :class:`GeoCOCA` runs gain
    span structure without any call-site change; runs with no telemetry at
    all stay bit-identical.
    """
    tele = (
        coerce(telemetry)
        if telemetry is not None
        else getattr(controller, "telemetry", NULL_TELEMETRY)
    )
    J = environment.horizon
    S = len(environment.sites)
    shares = np.empty((J, S))
    brown = np.empty((J, S))
    cost = np.empty((J, S))
    e_cost = np.empty((J, S))
    d_cost = np.empty((J, S))
    queue = np.zeros(J)

    for t in range(J):
        with tele.span("geo.slot", t=t):
            q_now = getattr(controller, "queue", None)
            queue[t] = q_now.length if q_now is not None else 0.0
            result = controller.decide(t)
            shares[t] = result.shares
            for i, sol in enumerate(result.solutions):
                brown[t, i] = sol.evaluation.brown_energy
                cost[t, i] = sol.cost
                e_cost[t, i] = sol.evaluation.electricity_cost
                d_cost[t, i] = sol.evaluation.delay_cost
            controller.observe(t, result)

    return GeoRecord(
        controller=controller.name(),
        site_names=tuple(s.name for s in environment.sites),
        shares=shares,
        brown=brown,
        cost=cost,
        electricity_cost=e_cost,
        delay_cost=d_cost,
        queue=queue,
    )
