"""Geo-distributed sites: one data center location with its local inputs.

The paper's related-work section positions COCA against geographical load
balancing ([21, 29, 32]: route work to where energy is cheap/green); this
subpackage *combines* the two -- COCA's online carbon-neutral control with
multi-site dispatch -- as the natural extension of the framework.

A :class:`Site` bundles what is local to one location: the facility model
(fleet, PUE, tariffs), the on-site renewable and electricity-price traces,
and the mean user-to-site network delay (the quantity that makes dispatch a
real trade-off: the cheapest site is rarely the closest).  Off-site
renewables and RECs remain *global* -- they offset the operator's aggregate
brown energy regardless of which site drew it, exactly like the paper's
accounting (RECs "are not tied to any physical delivery of electricity").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.config import DataCenterModel
from ..solvers.problem import SlotProblem
from ..traces.base import Trace

__all__ = ["Site"]


@dataclass(frozen=True)
class Site:
    """One data center location.

    Parameters
    ----------
    name:
        Identifier used in reports.
    model:
        Facility-side parameters for this location's fleet.
    onsite:
        Local on-site renewable supply ``r_s(t)`` in MW.
    price:
        Local electricity price ``w_s(t)`` in $/MWh (regional markets
        differ -- this is the arbitrage geographic balancing exploits).
    network_delay:
        Mean user-to-site network delay in the units of Eq. (4)'s response
        time; charged per request routed here (see
        :class:`~repro.solvers.problem.SlotProblem`).
    """

    name: str
    model: DataCenterModel
    onsite: Trace
    price: Trace
    network_delay: float = 0.0

    def __post_init__(self) -> None:
        if len(self.onsite) != len(self.price):
            raise ValueError(f"site {self.name!r}: trace horizons differ")
        if self.network_delay < 0:
            raise ValueError("network delay must be non-negative")

    @property
    def horizon(self) -> int:
        """Number of slots covered by the site's traces."""
        return len(self.price)

    def capacity(self) -> float:
        """Usable service rate under the site's utilization cap (req/s)."""
        return self.model.fleet.capacity(self.model.gamma)

    def slot_problem(
        self,
        t: int,
        share: float,
        *,
        q: float = 0.0,
        V: float = 1.0,
        prev_on_counts: np.ndarray | None = None,
    ) -> SlotProblem:
        """The site's local P3 for slot ``t`` given its workload ``share``
        (req/s).  The global deficit weight ``q`` prices this site's brown
        energy identically to every other site's -- carbon neutrality is an
        aggregate constraint."""
        return self.model.slot_problem(
            arrival_rate=share,
            onsite=self.onsite[t],
            price=self.price[t],
            q=q,
            V=V,
            prev_on_counts=prev_on_counts,
            network_delay=self.network_delay,
        )
