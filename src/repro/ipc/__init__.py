"""Inter-process plumbing for the sharded solvers.

:mod:`repro.ipc` is deliberately small and solver-agnostic: a framed,
sequence-numbered pickle channel over an OS pipe (:mod:`~repro.ipc
.transport`) and a warm pool of persistent worker processes
(:mod:`~repro.ipc.pool`).  Everything protocol-specific -- what the frames
*mean*, how faults are modeled, how determinism is preserved -- lives with
the solver that speaks the protocol (:mod:`repro.solvers.sharded`).  The
split mirrors the existing message layer: :class:`~repro.solvers.messaging
.MessageBus` models the *fabric*, :mod:`repro.faults.bus` models its
failures, and this package is merely the wire.
"""

from .pool import ShardWorkerPool, WorkerHandle
from .transport import Channel, ChannelClosedError, channel_pair

__all__ = [
    "Channel",
    "ChannelClosedError",
    "channel_pair",
    "ShardWorkerPool",
    "WorkerHandle",
]
