"""A warm pool of persistent worker processes.

The pool exists to amortize process startup across an entire run: workers
are forked once, live for the lifetime of their owner (a sharded solver, a
long ``repro serve`` loop), and are fed per-slot work over their
:class:`~repro.ipc.transport.Channel`.  Cold-spawning a process per slot
would cost more than the slot's solve; the ModelOps-style alternative --
keep workers hot and key the *bulk state* they hold by fingerprint -- is
what :meth:`WorkerHandle.knows` / :meth:`WorkerHandle.mark_known`
implement: the owner ships a heavy payload (a pickled fleet + slot-problem
structure) to a worker at most once per fingerprint, and every later slot
sends only the small per-slot deltas.

Process-management policy:

- **fork start method.**  Workers inherit the parent's imported modules
  and code; nothing but live per-run data ever crosses the pipe.
- **daemon workers.**  A normal interpreter exit never hangs on the pool.
- **orphan self-destruction.**  A worker whose parent vanished (SIGKILL --
  no chance to clean up) notices via ``os.getppid()`` inside its receive
  loop and exits, so crash tests and killed runs leave no stragglers.
- **explicit respawn.**  The pool never auto-restarts a dead worker: death
  is surfaced to the owner as :class:`~repro.ipc.transport
  .ChannelClosedError`, and the owner decides what state must be replayed
  into the replacement (see the recovery contract in
  :mod:`repro.solvers.sharded`).
"""

from __future__ import annotations

import multiprocessing
import os
import weakref
from typing import Callable

from .transport import Channel, ChannelClosedError, channel_pair

__all__ = ["ShardWorkerPool", "WorkerHandle"]

#: Seconds between orphan checks in the worker receive loop.
_ORPHAN_POLL_S = 1.0


class WorkerHandle:
    """Parent-side view of one worker process."""

    def __init__(self, index: int, process, channel: Channel):
        self.index = index
        self.process = process
        self.channel = channel
        self.generation = 0
        self._known: set[str] = set()

    # -------------------------------------------------- fingerprint cache
    def knows(self, fingerprint: str) -> bool:
        """Whether this worker already holds the payload for ``fingerprint``."""
        return fingerprint in self._known

    def mark_known(self, fingerprint: str) -> None:
        """Record that the payload for ``fingerprint`` reached this worker."""
        self._known.add(fingerprint)

    def forget_all(self) -> None:
        self._known.clear()

    # ------------------------------------------------------------------
    @property
    def alive(self) -> bool:
        return self.process.is_alive() and not self.channel.closed

    @property
    def pid(self) -> int | None:
        return self.process.pid


def _child_entry(
    channel: Channel,
    inherited: list[Channel],
    index: int,
    target: Callable[[Channel, int], None],
) -> None:
    """Worker bootstrap: drop inherited pipe ends, then run the target.

    A forked child holds copies of the parent ends of every *earlier*
    worker's pipe; keeping them open would stop those workers from seeing
    EOF when their real peer dies.
    """
    for other in inherited:
        other.close()
    target(channel, index)


def worker_loop(
    channel: Channel,
    handlers: dict[str, Callable[[dict], dict]],
) -> None:
    """Generic worker dispatch loop: recv frame, dispatch on ``op``, reply.

    The reply frame always echoes the request's ``seq``.  A handler's
    returned dict becomes the reply payload; a handler raising an
    exception produces an ``{"error": ...}`` reply instead of killing the
    worker (the owner decides whether that is fatal).  The loop exits when
    the channel closes or the parent process disappears.
    """
    parent = os.getppid()
    while True:
        try:
            frame = channel.recv(timeout=_ORPHAN_POLL_S)
        except ChannelClosedError:
            return
        if frame is None:
            if os.getppid() != parent:
                return  # orphaned by a parent SIGKILL
            continue
        op = frame.get("op")
        handler = handlers.get(op)
        if handler is None:
            reply = {"error": f"unknown op {op!r}"}
        else:
            try:
                reply = handler(frame)
            except Exception as exc:  # noqa: BLE001 - forwarded to the owner
                reply = {"error": f"{type(exc).__name__}: {exc}"}
        reply["seq"] = frame["seq"]
        reply["op"] = op
        try:
            channel.send(reply)
        except ChannelClosedError:
            return


class ShardWorkerPool:
    """``size`` persistent workers, spawned lazily, addressed by index.

    Parameters
    ----------
    size:
        Number of workers.
    target:
        ``target(channel, index)`` run inside each child; typically a thin
        wrapper around :func:`worker_loop` with protocol-specific handlers.
    """

    def __init__(self, size: int, target: Callable[[Channel, int], None]):
        if size < 1:
            raise ValueError("pool size must be >= 1")
        self.size = size
        self.target = target
        self._ctx = multiprocessing.get_context("fork")
        self._workers: list[WorkerHandle | None] = [None] * size
        self._seq = 0
        self.respawns = 0
        # Guarantees cleanup even when the owner forgets to close(): the
        # finalizer holds only what teardown needs, not the pool itself.
        self._finalizer = weakref.finalize(self, _shutdown, self._workers)

    # ------------------------------------------------------------------
    def next_seq(self) -> int:
        """A fresh pool-global sequence number (monotonic per worker too)."""
        self._seq += 1
        return self._seq

    def worker(self, index: int) -> WorkerHandle:
        """The handle for worker ``index``, spawning it on first use."""
        if not 0 <= index < self.size:
            raise IndexError(f"worker index {index} out of range")
        handle = self._workers[index]
        if handle is None:
            handle = self._spawn(index, generation=0)
            self._workers[index] = handle
        return handle

    def _spawn(self, index: int, generation: int) -> WorkerHandle:
        parent_ch, child_ch = channel_pair(self._ctx)
        inherited = [
            w.channel for w in self._workers if w is not None and not w.channel.closed
        ]
        process = self._ctx.Process(
            target=_child_entry,
            args=(child_ch, inherited, index, self.target),
            name=f"repro-shard-{index}",
            daemon=True,
        )
        process.start()
        child_ch.close()  # parent keeps only its own end
        handle = WorkerHandle(index, process, parent_ch)
        handle.generation = generation
        return handle

    def respawn(self, index: int) -> WorkerHandle:
        """Replace a dead (or wedged) worker with a fresh process.

        The replacement starts empty: its fingerprint cache is cleared, so
        the owner's next ``ensure``-style check re-ships whatever bulk
        state the protocol needs.
        """
        old = self._workers[index]
        generation = 0
        if old is not None:
            generation = old.generation + 1
            old.channel.close()
            if old.process.is_alive():
                old.process.terminate()
            old.process.join(timeout=5.0)
        handle = self._spawn(index, generation)
        self._workers[index] = handle
        self.respawns += 1
        return handle

    # ------------------------------------------------------------------
    def request(
        self, index: int, op: str, *, timeout: float | None = None, **fields
    ) -> dict | None:
        """Synchronous round-trip: post ``op`` and await its reply.

        Returns ``None`` on timeout (lost-reply semantics); raises
        :class:`ChannelClosedError` when the worker is dead.
        """
        seq = self.post(index, op, **fields)
        return self.collect(index, seq, timeout=timeout)

    def post(self, index: int, op: str, **fields) -> int:
        """Fire-and-forget send; returns the seq to :meth:`collect` later.

        Posting to every involved worker before collecting from any is how
        the sharded solver overlaps shard compute.
        """
        handle = self.worker(index)
        if not handle.alive:
            raise ChannelClosedError(f"worker {index} is not running")
        seq = self.next_seq()
        frame = {"seq": seq, "op": op}
        frame.update(fields)
        handle.channel.send(frame)
        return seq

    def collect(self, index: int, seq: int, *, timeout: float | None = None) -> dict | None:
        """Await the reply to ``seq`` from worker ``index`` (stale-safe)."""
        handle = self.worker(index)
        return handle.channel.recv_seq(seq, timeout=timeout)

    # ------------------------------------------------------------------
    @property
    def spawned(self) -> int:
        """How many workers are currently running."""
        return sum(1 for w in self._workers if w is not None and w.alive)

    def close(self) -> None:
        """Terminate every worker and release the pipes (idempotent)."""
        self._finalizer()

    def __enter__(self) -> "ShardWorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _shutdown(workers: list[WorkerHandle | None]) -> None:
    for handle in workers:
        if handle is None:
            continue
        handle.channel.close()
        if handle.process.is_alive():
            handle.process.terminate()
            handle.process.join(timeout=5.0)
    workers[:] = [None] * len(workers)
