"""Framed, sequence-numbered pickle transport over an OS pipe.

One :class:`Channel` wraps one end of a ``multiprocessing`` pipe.  Frames
are plain dicts with a mandatory integer ``"seq"`` field; payload values
are whatever pickle can carry (numpy arrays ride for free).  The transport
adds exactly three behaviours on top of the raw pipe:

- **Framing.**  Each frame is pickled once and shipped with
  ``send_bytes``, so a frame is delivered whole or not at all; a torn read
  surfaces as :class:`ChannelClosedError`, never as a half-parsed object.
- **Timeouts.**  :meth:`Channel.recv` polls with a wall-clock budget and
  returns ``None`` on expiry.  A timeout is *not* an error at this layer:
  the sharded protocol maps it to a lost reply and retries (the same
  shape as :func:`repro.solvers.messaging.exchange` on a silent bus).
- **Stale-frame discipline.**  :meth:`Channel.recv_seq` discards frames
  whose ``seq`` predates the one awaited.  A round the caller abandoned
  (timeout, retry, fault injection) may leave its late reply in the pipe;
  the discipline guarantees that reply can never be mistaken for the
  answer to a *newer* request -- the cross-process analogue of the
  message layer's "late duplicate ack is discarded" contract.

The pipe itself is reliable; *modeled* unreliability (seeded loss, delay,
duplication) is injected upstream by :class:`repro.faults.bus
.FaultyMessageBus` before a frame ever reaches the transport, so chaos
stays a pure function of the fault profile's seed.
"""

from __future__ import annotations

import pickle
from multiprocessing.connection import Connection

__all__ = ["Channel", "ChannelClosedError", "channel_pair"]

#: Pickle protocol for frames; 5 (out-of-band buffers capable) everywhere
#: this repo supports, but spelled as a floor so older interpreters work.
_PICKLE_PROTOCOL = min(5, pickle.HIGHEST_PROTOCOL)


class ChannelClosedError(ConnectionError):
    """The peer end of the channel is gone (process death, closed pipe)."""


class Channel:
    """One end of a duplex framed-pickle pipe.

    Channels are single-owner: exactly one thread of one process sends and
    receives on an end.  ``stale_drops`` counts frames discarded by the
    sequence discipline, for tests and telemetry.
    """

    def __init__(self, conn: Connection):
        self._conn = conn
        self.sent = 0
        self.received = 0
        self.stale_drops = 0

    # ------------------------------------------------------------------
    def send(self, frame: dict) -> None:
        """Ship one frame; raises :class:`ChannelClosedError` on a dead peer."""
        payload = pickle.dumps(frame, protocol=_PICKLE_PROTOCOL)
        try:
            self._conn.send_bytes(payload)
        except (BrokenPipeError, OSError, EOFError) as exc:
            raise ChannelClosedError(f"peer gone while sending: {exc}") from exc
        self.sent += 1

    def recv(self, timeout: float | None = None) -> dict | None:
        """Next frame, or ``None`` when ``timeout`` seconds pass without one.

        ``timeout=None`` blocks until a frame arrives or the peer closes
        (the latter raises :class:`ChannelClosedError`).
        """
        try:
            if timeout is not None and not self._conn.poll(timeout):
                return None
            payload = self._conn.recv_bytes()
        except (EOFError, BrokenPipeError, OSError) as exc:
            raise ChannelClosedError(f"peer gone while receiving: {exc}") from exc
        self.received += 1
        frame = pickle.loads(payload)
        if not isinstance(frame, dict) or "seq" not in frame:
            raise ValueError("malformed frame: expected a dict with a 'seq' field")
        return frame

    def recv_seq(self, seq: int, timeout: float | None = None) -> dict | None:
        """The frame answering ``seq``, discarding stale predecessors.

        Frames with ``frame["seq"] < seq`` are late replies to rounds the
        caller already gave up on; they are counted in ``stale_drops`` and
        skipped.  A frame from the *future* (``> seq``) means the two ends
        disagree about the conversation and is a protocol bug, raised
        loudly rather than mis-delivered.
        """
        while True:
            frame = self.recv(timeout)
            if frame is None:
                return None
            got = int(frame["seq"])
            if got == seq:
                return frame
            if got < seq:
                self.stale_drops += 1
                continue
            raise RuntimeError(
                f"out-of-order frame: awaiting seq {seq}, peer sent {got}"
            )

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close this end; the peer's next receive sees the channel closed."""
        try:
            self._conn.close()
        except OSError:
            pass

    @property
    def closed(self) -> bool:
        return self._conn.closed

    def fileno(self) -> int:
        return self._conn.fileno()


def channel_pair(context) -> tuple[Channel, Channel]:
    """A connected ``(parent, child)`` channel pair from an mp context."""
    parent_conn, child_conn = context.Pipe(duplex=True)
    return Channel(parent_conn), Channel(child_conn)
