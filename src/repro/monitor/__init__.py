"""Health monitoring: watchdogs over the telemetry stream.

PR 1's :mod:`repro.telemetry` records what a run did; this package judges
whether it was *healthy*.  It consumes the same event stream -- live,
through a :class:`MonitoringTracer` tap on the run's tracer, or offline by
replaying a JSONL trace -- and layers on:

- **invariant monitors** (:mod:`~repro.monitor.invariants`): the
  deficit-queue Lyapunov bound, the carbon-budget trajectory, per-slot
  load conservation/capacity, dropped-load thresholds, accounting sanity;
- **GSD convergence diagnostics** (:mod:`~repro.monitor.gsd`): acceptance
  band, improvement-stall detection, cross-chain dispersion;
- an **alert channel** (:mod:`~repro.monitor.alerts`) with severity
  levels, deduplication, and pluggable sinks;
- the **offline HTML dashboard** (:mod:`~repro.monitor.dashboard`) behind
  ``repro dashboard``.

Everything is opt-in and read-only: monitors never touch the simulation's
arithmetic or RNG, so an instrumented run stays bit-identical.  See
``docs/MONITORING.md`` for the monitor catalog.
"""

from .advice import AdviceTrustMonitor
from .alerts import SEVERITIES, Alert, AlertChannel, JsonlAlertSink, stderr_sink
from .base import HealthMonitor, MonitorReport
from .dashboard import DASHBOARD_SECTIONS, render_dashboard, write_dashboard
from .deadline import DeadlineMonitor
from .faults import FaultActivityMonitor
from .gsd import GSDAcceptanceMonitor, GSDDispersionMonitor, GSDStallMonitor
from .invariants import (
    BudgetTrajectoryMonitor,
    DroppedLoadMonitor,
    LoadConservationMonitor,
    QueueBoundMonitor,
    SlotSanityMonitor,
)
from .suite import (
    MonitoringTracer,
    MonitorSuite,
    default_suite,
    monitored_telemetry,
    replay,
)

__all__ = [
    "SEVERITIES",
    "Alert",
    "AlertChannel",
    "JsonlAlertSink",
    "stderr_sink",
    "HealthMonitor",
    "MonitorReport",
    "QueueBoundMonitor",
    "BudgetTrajectoryMonitor",
    "LoadConservationMonitor",
    "DroppedLoadMonitor",
    "SlotSanityMonitor",
    "GSDAcceptanceMonitor",
    "GSDStallMonitor",
    "GSDDispersionMonitor",
    "FaultActivityMonitor",
    "DeadlineMonitor",
    "AdviceTrustMonitor",
    "MonitorSuite",
    "MonitoringTracer",
    "default_suite",
    "monitored_telemetry",
    "replay",
    "render_dashboard",
    "write_dashboard",
    "DASHBOARD_SECTIONS",
]
