"""Watchdog over the learning-augmented advice stream (``advice.*``).

Advice is allowed to be wrong -- that is the premise of the layer -- so
this monitor does not fail on distrust or fallback.  It fails on broken
*guarantees*:

* the certified budget: an ``advice.decision`` whose running cost ratio
  exceeds ``(1 + λ)`` (λ from ``advice.config``) means the
  :class:`~repro.advice.trust.TrustGuard` committed more than its bound;
* hysteresis flapping: two trust transitions closer together than the
  guard's own minimum streak length, which the streak counters make
  impossible by construction;
* summary consistency: an ``advice.summary`` whose counters disagree with
  the decisions streamed before it.

Everything else is narration for the dashboard: trust drops and
recoveries are surfaced as info/warning alerts so a chaos run's log tells
the advice story alongside the fault story.
"""

from __future__ import annotations

from .alerts import AlertChannel
from .base import HealthMonitor

__all__ = ["AdviceTrustMonitor"]

_RATIO_SLACK = 1e-9


class AdviceTrustMonitor(HealthMonitor):
    """Certifies the (1+λ) bound and the trust hysteresis online."""

    name = "advice-trust"
    description = "advice cost stays within (1+λ)× shadow; trust never flaps"
    kinds = (
        "advice.config",
        "advice.frame",
        "advice.decision",
        "advice.transition",
        "advice.summary",
    )

    def __init__(self) -> None:
        super().__init__()
        self.lam: float | None = None
        self.distrust_after = 1
        self.trust_after = 1
        self.decisions = 0
        self.advised = 0
        self.fallbacks = 0
        self.frames = 0
        self.frames_advised = 0
        self.transitions: list[tuple[int, bool]] = []
        self.worst_ratio = 0.0
        self._summary: dict | None = None
        #: Slot of the first decision seen; nonzero means the stream
        #: joined a resumed run partway through.
        self._first_decision_t: int | None = None

    # ------------------------------------------------------------------
    def observe(self, event: dict, alerts: AlertChannel) -> None:
        kind = event["kind"]
        self.checked += 1
        if kind == "advice.config":
            self.lam = float(event.get("lam", 0.0))
            self.distrust_after = int(event.get("distrust_after", 1))
            self.trust_after = int(event.get("trust_after", 1))
        elif kind == "advice.frame":
            self.frames += 1
            if event.get("has_advice"):
                self.frames_advised += 1
        elif kind == "advice.decision":
            if self._first_decision_t is None:
                self._first_decision_t = int(event.get("t", 0))
            self.decisions += 1
            if event.get("used"):
                self.advised += 1
            else:
                self.fallbacks += 1
            ratio = float(event.get("cost_ratio", 1.0))
            self.worst_ratio = max(self.worst_ratio, ratio)
            if self.lam is not None and ratio > 1.0 + self.lam + _RATIO_SLACK:
                self.violations += 1
                alerts.raise_alert(
                    "critical",
                    self.name,
                    f"committed/shadow cost ratio {ratio:.4f} exceeds the "
                    f"certified bound 1+λ = {1.0 + self.lam:.4f}",
                    t=event.get("t"),
                    key=f"{self.name}:bound",
                )
        elif kind == "advice.transition":
            t = int(event.get("t", -1))
            trusted = bool(event.get("trusted"))
            if self.transitions:
                prev_t, prev_state = self.transitions[-1]
                # Leaving a state requires a full streak inside it, so two
                # transitions can never be closer than the streak length
                # of the state being left.
                min_gap = self.trust_after if trusted else self.distrust_after
                if trusted == prev_state:
                    self.violations += 1
                    alerts.raise_alert(
                        "critical",
                        self.name,
                        f"repeated transition to trusted={trusted} at t={t}",
                        t=t,
                        key=f"{self.name}:transition-order",
                    )
                elif t - prev_t < min_gap:
                    self.violations += 1
                    alerts.raise_alert(
                        "critical",
                        self.name,
                        f"trust flapped: transitions at t={prev_t} and t={t} "
                        f"are {t - prev_t} slots apart (hysteresis requires "
                        f">= {min_gap})",
                        t=t,
                        key=f"{self.name}:flap",
                    )
            self.transitions.append((t, trusted))
            alerts.raise_alert(
                "info" if trusted else "warning",
                self.name,
                f"advice {'re-trusted' if trusted else 'distrusted'} at t={t}",
                t=t,
                key=f"{self.name}:transition",
            )
        elif kind == "advice.summary":
            self._summary = event

    def finalize(self, alerts: AlertChannel) -> None:
        summary = self._summary
        if summary is None:
            return
        reported = int(summary.get("advised_slots", -1)) + int(
            summary.get("fallback_slots", -1)
        )
        # The guard's totals cover the whole run; a stream that joined a
        # resumed run at slot k>0 has only seen the tail, so the totals
        # may exceed its decision count by up to k (the pre-resume slots).
        first_t = self._first_decision_t or 0
        if not self.decisions <= reported <= self.decisions + first_t:
            self.violations += 1
            alerts.raise_alert(
                "critical",
                self.name,
                f"advice.summary accounts for {reported} slot(s) but the "
                f"stream carried {self.decisions} decisions"
                + (f" from t={first_t}" if first_t else ""),
                key=f"{self.name}:summary-mismatch",
            )
        ratio = float(summary.get("cost_ratio", 1.0))
        lam = float(summary.get("lam", self.lam or 0.0))
        if ratio > 1.0 + lam + _RATIO_SLACK:
            self.violations += 1
            alerts.raise_alert(
                "critical",
                self.name,
                f"final cost ratio {ratio:.4f} exceeds 1+λ = {1.0 + lam:.4f}",
                key=f"{self.name}:final-bound",
            )

    # ------------------------------------------------------------------
    def detail(self) -> str:
        if self.checked == 0:
            return "no advice events (plain run)"
        if self.decisions == 0:
            return f"{self.frames} advice frame(s), no gated decisions"
        parts = [
            f"{self.advised}/{self.decisions} slots advised",
            f"{self.frames_advised}/{self.frames} frames with advice",
            f"worst ratio {self.worst_ratio:.4f}"
            + (f" (bound {1.0 + self.lam:.2f})" if self.lam is not None else ""),
        ]
        if self.transitions:
            parts.append(f"{len(self.transitions)} trust transition(s)")
        return ", ".join(parts)
