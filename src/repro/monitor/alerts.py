"""The alert channel: severities, deduplication, pluggable sinks.

Monitors do not print, raise, or log directly -- they raise *alerts*
through an :class:`AlertChannel`, which owns policy: which severities are
worth dispatching, how repeats of the same condition are collapsed, and
where alerts go.  Sinks are plain callables ``sink(alert)``; three are
provided (stderr, JSONL file, user callback) and any number can be
attached at once.

Deduplication is by *key*: a monitor that detects the same condition on
every slot (say, a dropped-load threshold crossed for a 40-hour stretch)
raises with the same key each time, and the channel dispatches only the
first occurrence while counting the rest on :attr:`Alert.count`.  The
deduplicated alert log -- first slot, last slot, occurrence count per
condition -- is what the dashboard renders.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

__all__ = [
    "SEVERITIES",
    "Alert",
    "AlertChannel",
    "stderr_sink",
    "JsonlAlertSink",
]

#: Severity ladder, least to most severe; index = rank.
SEVERITIES = ("info", "warning", "critical")


def _rank(severity: str) -> int:
    try:
        return SEVERITIES.index(severity)
    except ValueError:
        raise ValueError(
            f"unknown severity {severity!r}; expected one of {SEVERITIES}"
        ) from None


@dataclass
class Alert:
    """One deduplicated alert condition.

    Attributes
    ----------
    severity:
        ``info`` / ``warning`` / ``critical``.
    monitor:
        Name of the monitor that raised it.
    message:
        Human-readable description of the first occurrence.
    t:
        Slot index of the first occurrence (None for run-level alerts).
    key:
        Deduplication key; repeats with the same key fold into this alert.
    count:
        Number of occurrences observed.
    last_t:
        Slot index of the most recent occurrence.
    """

    severity: str
    monitor: str
    message: str
    t: int | None = None
    key: str = ""
    count: int = 1
    last_t: int | None = field(default=None)

    def __post_init__(self) -> None:
        _rank(self.severity)
        if not self.key:
            self.key = f"{self.monitor}:{self.message}"
        if self.last_t is None:
            self.last_t = self.t

    def as_dict(self) -> dict:
        """Flat JSON-friendly form (the JSONL sink's line format)."""
        return {
            "severity": self.severity,
            "monitor": self.monitor,
            "message": self.message,
            "t": self.t,
            "last_t": self.last_t,
            "count": self.count,
            "key": self.key,
        }


def stderr_sink(alert: Alert) -> None:
    """Print one line per (new) alert to stderr."""
    import sys

    where = "" if alert.t is None else f" at t={alert.t}"
    print(
        f"[{alert.severity.upper()}] {alert.monitor}{where}: {alert.message}",
        file=sys.stderr,
    )


class JsonlAlertSink:
    """Append alerts to ``path`` as JSON Lines; close when done."""

    def __init__(self, path: str) -> None:
        import json

        self._json = json
        self.path = str(path)
        self._fh = open(self.path, "w")

    def __call__(self, alert: Alert) -> None:
        from ..telemetry.tracer import sanitize_json_value

        self._fh.write(
            self._json.dumps(sanitize_json_value(alert.as_dict()), allow_nan=False)
        )
        self._fh.write("\n")

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()


class AlertChannel:
    """Collects, deduplicates, and dispatches alerts.

    Parameters
    ----------
    sinks:
        Callables invoked once per *new* alert key (repeats only bump the
        existing alert's count).
    min_severity:
        Alerts below this severity are counted but not dispatched to
        sinks; they still appear in :attr:`alerts`.
    dedup_window:
        Re-arming window in slots.  The default (``None``) keeps the
        historical batch behaviour: one dispatch per key, ever -- right
        for a finite run whose alert log is read at the end.  A
        forever-running service wants the condition *re-announced* when it
        persists or recurs: with a window of ``W``, a repeat whose slot is
        at least ``W`` past the last *dispatched* occurrence is sent to
        the sinks again (still folded into the same :class:`Alert`;
        :attr:`Alert.count` keeps the true occurrence total).
    """

    def __init__(
        self,
        sinks: Iterable[Callable[[Alert], None]] = (),
        *,
        min_severity: str = "info",
        dedup_window: int | None = None,
    ) -> None:
        _rank(min_severity)
        if dedup_window is not None and dedup_window < 1:
            raise ValueError("dedup_window must be >= 1 slot (or None)")
        self.sinks = list(sinks)
        self.min_severity = min_severity
        self.dedup_window = dedup_window
        self._by_key: dict[str, Alert] = {}
        #: key -> slot of the most recent sink dispatch (re-arming state).
        self._dispatched_at: dict[str, int | None] = {}

    # ------------------------------------------------------------------
    def raise_alert(
        self,
        severity: str,
        monitor: str,
        message: str,
        *,
        t: int | None = None,
        key: str | None = None,
    ) -> Alert:
        """Record one occurrence of a condition; returns the (folded) alert.

        ``key`` defaults to ``monitor:message``, so monitors that want
        per-condition (rather than per-slot) folding should pass a key that
        omits slot-varying detail.
        """
        alert = Alert(
            severity=severity, monitor=monitor, message=message, t=t,
            key=key if key is not None else "",
        )
        existing = self._by_key.get(alert.key)
        if existing is not None:
            existing.count += 1
            existing.last_t = t if t is not None else existing.last_t
            # Escalation wins: a condition that worsens keeps the worst
            # severity it ever reached.
            if _rank(alert.severity) > _rank(existing.severity):
                existing.severity = alert.severity
            if self._rearmed(existing.key, t) and self._dispatchable(existing):
                self._dispatch(existing, t)
            return existing
        self._by_key[alert.key] = alert
        if self._dispatchable(alert):
            self._dispatch(alert, t)
        return alert

    def _dispatchable(self, alert: Alert) -> bool:
        return _rank(alert.severity) >= _rank(self.min_severity)

    def _rearmed(self, key: str, t: int | None) -> bool:
        """Whether a repeat at slot ``t`` should be re-dispatched."""
        if self.dedup_window is None or t is None:
            return False
        last = self._dispatched_at.get(key)
        return last is None or t - last >= self.dedup_window

    def _dispatch(self, alert: Alert, t: int | None) -> None:
        self._dispatched_at[alert.key] = t
        for sink in self.sinks:
            sink(alert)

    # ------------------------------------------------------------------
    @property
    def alerts(self) -> list[Alert]:
        """Deduplicated alerts in first-raised order."""
        return list(self._by_key.values())

    def count(self, severity: str | None = None) -> int:
        """Number of distinct alert conditions (optionally of one severity)."""
        if severity is None:
            return len(self._by_key)
        _rank(severity)
        return sum(1 for a in self._by_key.values() if a.severity == severity)

    @property
    def worst_severity(self) -> str | None:
        """Most severe level raised so far, or None when quiet."""
        if not self._by_key:
            return None
        return max((a.severity for a in self._by_key.values()), key=_rank)

    def close(self) -> None:
        """Close any sinks that hold resources."""
        for sink in self.sinks:
            close = getattr(sink, "close", None)
            if close is not None:
                close()
