"""Monitor interface: stream consumers that check one invariant each.

A :class:`HealthMonitor` is fed the telemetry event stream -- live through
a :class:`~repro.monitor.suite.MonitoringTracer` tap, or offline by
replaying a JSONL trace -- and checks a single well-defined property of
the run.  It raises findings through the shared
:class:`~repro.monitor.alerts.AlertChannel` and summarizes itself as a
:class:`MonitorReport` row for the dashboard's invariant table.

Monitors self-calibrate from the ``run.start`` / ``controller.config``
events the instrumented engine and controllers emit (capacity, budget
constants, ``alpha``); explicit constructor arguments always win over
trace-derived values, so a monitor can also be armed with exact Theorem 2
constants from :mod:`repro.core.bounds`.
"""

from __future__ import annotations

from dataclasses import dataclass

from .alerts import AlertChannel

__all__ = ["MonitorReport", "HealthMonitor"]


@dataclass(frozen=True)
class MonitorReport:
    """One row of the invariant pass/fail table.

    Attributes
    ----------
    monitor:
        The monitor's name.
    description:
        One-line statement of the property checked.
    checked:
        Number of observations the monitor evaluated.
    violations:
        Number of observations that failed the check.
    passed:
        Overall verdict (no violations, and the monitor saw enough data to
        judge -- a monitor that checked nothing still passes vacuously).
    detail:
        Free-text summary (worst margin, thresholds used, ...).
    """

    monitor: str
    description: str
    checked: int
    violations: int
    passed: bool
    detail: str = ""


class HealthMonitor:
    """Base class: consume events, raise alerts, report a verdict.

    Subclasses set :attr:`name` and :attr:`description`, may restrict the
    event kinds they receive via :attr:`kinds` (empty = all events), and
    implement :meth:`observe`; end-of-stream checks go in :meth:`finalize`.
    The ``checked`` / ``violations`` counters drive the default report.
    """

    name: str = "monitor"
    description: str = ""
    #: Event kinds this monitor consumes; empty tuple means every event.
    kinds: tuple[str, ...] = ()

    def __init__(self) -> None:
        self.checked = 0
        self.violations = 0

    # ------------------------------------------------------------------
    def observe(self, event: dict, alerts: AlertChannel) -> None:
        """Consume one event (already filtered to :attr:`kinds`)."""

    def finalize(self, alerts: AlertChannel) -> None:
        """End-of-stream hook for run-level checks."""

    # ------------------------------------------------------------------
    def detail(self) -> str:
        """Free-text column of the report; override for specifics."""
        return ""

    def report(self) -> MonitorReport:
        return MonitorReport(
            monitor=self.name,
            description=self.description,
            checked=self.checked,
            violations=self.violations,
            passed=self.violations == 0,
            detail=self.detail(),
        )
