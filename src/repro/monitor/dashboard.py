"""The offline HTML dashboard: one self-contained report per trace.

``repro dashboard --trace run.jsonl -o report.html`` lands here.  The
renderer consumes a recorded event stream (schema in
``docs/OBSERVABILITY.md``), replays it through a
:class:`~repro.monitor.suite.MonitorSuite` (the caller may pass one
already fed live), and emits a single HTML file with **no external
resources**: styles are embedded, charts are inline SVG sparklines, and
hover values use native SVG ``<title>`` tooltips, so the report opens from
disk, in CI artifacts, or attached to an email.

Sections (each with a stable anchor the tests pin):

=====================  ==============================================
``#run``               header stat tiles (cost, brown, queue, alerts)
``#invariants``        monitor pass/fail table
``#alerts``            deduplicated alert log
``#faults``            injected-fault / degradation event log (chaos runs)
``#deficit-queue``     q(t) sparkline
``#energy-mix``        brown vs. renewable energy per slot
``#cost``              realized cost per slot
``#v-weighted-price``  V * electricity price per slot
``#gsd``               GSD solve times and chain acceptance
=====================  ==============================================

When one trace holds several simulations (e.g. ``repro quickstart``
records the carbon-unaware baseline *and* COCA), per-slot charts show the
most recent value recorded for each slot index.
"""

from __future__ import annotations

import html as _html
from typing import Sequence

import numpy as np

from .suite import MonitorSuite, replay

__all__ = ["render_dashboard", "write_dashboard", "DASHBOARD_SECTIONS"]

#: Anchor ids of every section the report renders, in page order.
DASHBOARD_SECTIONS = (
    "run",
    "invariants",
    "alerts",
    "faults",
    "advice",
    "deficit-queue",
    "energy-mix",
    "cost",
    "v-weighted-price",
    "gsd",
)

_CSS = """
:root {
  color-scheme: light;
  --surface-1: #fcfcfb; --page: #f9f9f7;
  --text-primary: #0b0b0b; --text-secondary: #52514e; --text-muted: #898781;
  --grid: #e1e0d9; --baseline: #c3c2b7; --border: rgba(11,11,11,0.10);
  --series-1: #2a78d6; --series-2: #eb6834;
  --status-good: #0ca30c; --status-warning: #fab219;
  --status-serious: #ec835a; --status-critical: #d03b3b;
  --good-text: #006300;
}
@media (prefers-color-scheme: dark) {
  :root {
    color-scheme: dark;
    --surface-1: #1a1a19; --page: #0d0d0d;
    --text-primary: #ffffff; --text-secondary: #c3c2b7; --text-muted: #898781;
    --grid: #2c2c2a; --baseline: #383835; --border: rgba(255,255,255,0.10);
    --series-1: #3987e5; --series-2: #d95926;
    --good-text: #0ca30c;
  }
}
* { box-sizing: border-box; }
body {
  margin: 0; padding: 24px; background: var(--page); color: var(--text-primary);
  font: 14px/1.5 system-ui, -apple-system, "Segoe UI", sans-serif;
}
main { max-width: 880px; margin: 0 auto; }
h1 { font-size: 20px; margin: 0 0 4px; }
h2 { font-size: 15px; margin: 0 0 8px; }
.subtitle { color: var(--text-secondary); margin: 0 0 20px; }
section {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 16px 20px; margin: 0 0 16px;
}
.tiles { display: flex; flex-wrap: wrap; gap: 12px; }
.tile { min-width: 120px; flex: 1; }
.tile .label { color: var(--text-secondary); font-size: 12px; }
.tile .value { font-size: 24px; font-weight: 600; }
.tile .note { color: var(--text-muted); font-size: 12px; }
table { border-collapse: collapse; width: 100%; font-size: 13px; }
th { text-align: left; color: var(--text-muted); font-weight: 500;
     border-bottom: 1px solid var(--grid); padding: 4px 10px 4px 0; }
td { border-bottom: 1px solid var(--grid); padding: 4px 10px 4px 0;
     vertical-align: top; }
td.num { font-variant-numeric: tabular-nums; text-align: right; }
tr:last-child td { border-bottom: none; }
.badge { font-weight: 600; white-space: nowrap; }
.badge.pass { color: var(--status-good); }
.badge.fail { color: var(--status-critical); }
.badge.info { color: var(--text-secondary); }
.badge.warning { color: var(--status-serious); }
.badge.critical { color: var(--status-critical); }
.empty { color: var(--text-muted); }
.legend { display: flex; gap: 16px; font-size: 12px;
          color: var(--text-secondary); margin: 0 0 4px; }
.legend .key { display: inline-flex; align-items: center; gap: 6px; }
.swatch { width: 12px; height: 3px; border-radius: 2px; display: inline-block; }
svg text { font: 11px system-ui, -apple-system, "Segoe UI", sans-serif;
           fill: var(--text-muted); }
footer { color: var(--text-muted); font-size: 12px; margin-top: 8px; }
"""


def _esc(value) -> str:
    return _html.escape(str(value))


def _fmt(value: float) -> str:
    """Compact human figure for tiles and labels."""
    if value != value:  # NaN
        return "–"
    mag = abs(value)
    if mag >= 1e6:
        return f"{value / 1e6:.3g}M"
    if mag >= 1e4:
        return f"{value / 1e3:.3g}K"
    if mag >= 100:
        return f"{value:,.0f}"
    return f"{value:.3g}"


# ------------------------------------------------------------------ charts
def _polyline_points(
    xs: np.ndarray, ys: np.ndarray, w: int, h: int, pad: int, lo: float, hi: float
) -> list[tuple[float, float]]:
    span_x = max(float(xs[-1] - xs[0]), 1e-12)
    span_y = max(hi - lo, 1e-12)
    px = pad + (xs - xs[0]) / span_x * (w - 2 * pad)
    py = (h - pad) - (ys - lo) / span_y * (h - 2 * pad)
    return list(zip(px.tolist(), py.tolist()))


def _sparkline_svg(
    series: Sequence[tuple[str, str, np.ndarray]],
    xs: np.ndarray,
    *,
    unit: str = "",
    width: int = 800,
    height: int = 120,
) -> str:
    """Inline-SVG line chart: 2px lines, 10% area wash for the first
    series, ringed end-dots, hairline baseline, native-tooltip hover dots.

    ``series`` is ``(label, css_color_var, values)`` per line; all share
    ``xs`` (slot or solve index).
    """
    pad = 10
    w, h = width, height
    values = np.concatenate([np.asarray(v, dtype=np.float64) for _, _, v in series])
    lo = float(min(values.min(), 0.0)) if values.size else 0.0
    hi = float(values.max()) if values.size else 1.0
    if hi <= lo:
        hi = lo + 1.0
    parts = [
        f'<svg viewBox="0 0 {w} {h}" width="100%" height="{h}" role="img" '
        f'preserveAspectRatio="none">'
    ]
    # Hairline baseline at the value floor (solid, recessive).
    base_y = (h - pad) - (0.0 - lo) / (hi - lo) * (h - 2 * pad)
    base_y = min(max(base_y, pad), h - pad)
    parts.append(
        f'<line x1="{pad}" y1="{base_y:.1f}" x2="{w - pad}" y2="{base_y:.1f}" '
        f'stroke="var(--baseline)" stroke-width="1"/>'
    )
    hover_stride = max(1, len(xs) // 400)
    for idx, (label, color, ys) in enumerate(series):
        ys = np.asarray(ys, dtype=np.float64)
        pts = _polyline_points(xs, ys, w, h, pad, lo, hi)
        path = " ".join(f"{x:.1f},{y:.1f}" for x, y in pts)
        if idx == 0:
            area = (
                f"{pad},{h - pad} " + path + f" {w - pad},{h - pad}"
            )
            parts.append(
                f'<polygon points="{area}" fill="var({color})" fill-opacity="0.1"/>'
            )
        parts.append(
            f'<polyline points="{path}" fill="none" stroke="var({color})" '
            f'stroke-width="2" stroke-linejoin="round" stroke-linecap="round"/>'
        )
        # End marker: >=8px dot with a 2px surface ring.
        ex, ey = pts[-1]
        parts.append(
            f'<circle cx="{ex:.1f}" cy="{ey:.1f}" r="4" fill="var({color})" '
            f'stroke="var(--surface-1)" stroke-width="2"/>'
        )
        # Hover layer: transparent targets with native tooltips.
        for i in range(0, len(pts), hover_stride):
            x, y = pts[i]
            parts.append(
                f'<circle cx="{x:.1f}" cy="{y:.1f}" r="6" fill="transparent">'
                f"<title>{_esc(label)} @ {int(xs[i])}: {ys[i]:.6g}{_esc(unit)}</title>"
                f"</circle>"
            )
    # Min/max ink in text tokens, never the series color.
    parts.append(f'<text x="{pad}" y="{pad + 2}">{_fmt(hi)}{_esc(unit)}</text>')
    parts.append(
        f'<text x="{pad}" y="{h - 2}">{_fmt(lo)}{_esc(unit)}</text>'
    )
    parts.append("</svg>")
    return "".join(parts)


def _chart_section(
    anchor: str,
    heading: str,
    blurb: str,
    series: Sequence[tuple[str, str, np.ndarray]],
    xs: np.ndarray | None,
    *,
    unit: str = "",
    empty: str = "no events of this kind in the trace",
) -> str:
    body: list[str] = [f'<section id="{anchor}">', f"<h2>{_esc(heading)}</h2>"]
    if blurb:
        body.append(f'<p class="subtitle">{_esc(blurb)}</p>')
    if xs is None or len(xs) < 2:
        body.append(f'<p class="empty">{_esc(empty)}</p>')
    else:
        if len(series) >= 2:
            keys = "".join(
                f'<span class="key"><span class="swatch" '
                f'style="background: var({color})"></span>{_esc(label)}</span>'
                for label, color, _ in series
            )
            body.append(f'<div class="legend">{keys}</div>')
        body.append(_sparkline_svg(series, xs, unit=unit))
    body.append("</section>")
    return "\n".join(body)


# ------------------------------------------------------------------ extract
def _latest_by_t(events: list[dict], kind: str, field: str) -> dict[int, float]:
    """Map slot -> most recent value of ``field`` among ``kind`` events."""
    out: dict[int, float] = {}
    for e in events:
        if e.get("kind") == kind and "t" in e and field in e:
            out[int(e["t"])] = float(e[field])
    return out


def _aligned(*maps: dict[int, float]) -> tuple[np.ndarray, list[np.ndarray]]:
    """Common sorted slot axis plus each map's values on it."""
    common = sorted(set.intersection(*(set(m) for m in maps))) if maps else []
    xs = np.asarray(common, dtype=np.float64)
    return xs, [np.asarray([m[t] for t in common]) for m in maps]


# ------------------------------------------------------------------ tables
def _invariant_table(suite: MonitorSuite) -> str:
    rows = []
    for r in suite.reports():
        badge = (
            '<span class="badge pass">✓ pass</span>'
            if r.passed
            else '<span class="badge fail">✗ fail</span>'
        )
        rows.append(
            "<tr>"
            f"<td>{_esc(r.monitor)}</td><td>{badge}</td>"
            f'<td class="num">{r.checked}</td><td class="num">{r.violations}</td>'
            f"<td>{_esc(r.description)}<br>"
            f'<span class="empty">{_esc(r.detail)}</span></td>'
            "</tr>"
        )
    return (
        "<table><thead><tr><th>monitor</th><th>status</th><th>checked</th>"
        "<th>violations</th><th>invariant</th></tr></thead>"
        f"<tbody>{''.join(rows)}</tbody></table>"
    )


_SEVERITY_ICONS = {"info": "ℹ", "warning": "⚠", "critical": "✖"}


def _alert_table(suite: MonitorSuite) -> str:
    alerts = suite.alerts
    if not alerts:
        return '<p class="empty">no alerts raised — every monitor stayed quiet</p>'
    rows = []
    for a in alerts:
        icon = _SEVERITY_ICONS.get(a.severity, "•")
        where = "–" if a.t is None else (
            str(a.t) if a.last_t in (None, a.t) else f"{a.t}–{a.last_t}"
        )
        rows.append(
            "<tr>"
            f'<td><span class="badge {a.severity}">{icon} {_esc(a.severity)}</span></td>'
            f"<td>{_esc(a.monitor)}</td><td class=\"num\">{_esc(where)}</td>"
            f'<td class="num">{a.count}</td><td>{_esc(a.message)}</td>'
            "</tr>"
        )
    return (
        "<table><thead><tr><th>severity</th><th>monitor</th><th>slots</th>"
        "<th>count</th><th>message</th></tr></thead>"
        f"<tbody>{''.join(rows)}</tbody></table>"
    )


def _fault_table(events: list[dict]) -> str:
    """Event log of the run's fault injections and degradation decisions."""
    rows = []
    for e in events:
        kind = e.get("kind", "")
        if kind == "fault.inject":
            what = str(e.get("fault", "?"))
            if what in ("group_fail", "group_repair"):
                detail = f"group {e.get('group')}"
            else:
                detail = (
                    f"{e.get('field')} {e.get('mode')} "
                    f"for {e.get('duration')} slot(s)"
                )
            down = e.get("failed_groups", [])
            if down:
                detail += f" — groups down: {down}"
        elif kind == "fault.suppressed":
            what = f"suppressed {e.get('fault', '?')}"
            detail = f"reason: {e.get('reason')}"
        elif kind == "fault.solve_retry":
            what = "solve retry"
            detail = f"attempt {e.get('attempt')}: {e.get('error')}"
        elif kind == "fault.fallback":
            what = "fallback"
            detail = f"{e.get('mode')} after {e.get('reason')}"
        else:
            continue
        rows.append(
            "<tr>"
            f'<td class="num">{_esc(e.get("t", "–"))}</td>'
            f"<td>{_esc(what)}</td><td>{_esc(detail)}</td>"
            "</tr>"
        )
    if not rows:
        return (
            '<p class="empty">no fault.* events — '
            "this run injected no faults</p>"
        )
    summary = next(
        (e for e in reversed(events) if e.get("kind") == "fault.summary"), None
    )
    caption = ""
    if summary is not None:
        deg = summary.get("degradation", {}) or {}
        caption = (
            f'<p class="subtitle">{summary.get("injected", 0)} injected, '
            f'{summary.get("suppressed", 0)} suppressed, '
            f"{deg.get('fallbacks', 0)} fallback slot(s), "
            f"{deg.get('solve_retries', 0)} solve retries</p>"
        )
    return (
        caption
        + "<table><thead><tr><th>slot</th><th>event</th><th>detail</th>"
        f"</tr></thead><tbody>{''.join(rows)}</tbody></table>"
    )


def _advice_section(events: list[dict]) -> str:
    """Trust story of an advised run: config, frames, transitions, ratio."""
    config = next((e for e in events if e.get("kind") == "advice.config"), None)
    if config is None:
        return (
            '<p class="empty">no advice.* events — '
            "this run used plain COCA</p>"
        )
    summary = next(
        (e for e in reversed(events) if e.get("kind") == "advice.summary"), None
    )
    lam = float(config.get("lam", 0.0))
    blurb = (
        f"λ = {lam:g} (bound {1.0 + lam:g}×), provider "
        f"{config.get('provider')}, frame {config.get('frame_length')} slots"
    )
    if summary is not None:
        blurb += (
            f" — final ratio {float(summary.get('cost_ratio', 1.0)):.4f}, "
            f"{summary.get('advised_slots', 0)} advised / "
            f"{summary.get('fallback_slots', 0)} fallback slot(s), "
            f"{summary.get('budget_blocks', 0)} budget block(s)"
        )
    rows = []
    for e in events:
        kind = e.get("kind", "")
        if kind == "advice.frame":
            if e.get("has_advice"):
                what = "frame advised"
                detail = (
                    f"mu {_fmt(float(e.get('mu') or 0.0))}"
                    + (", degraded forecast" if e.get("degraded") else "")
                )
            else:
                what = "frame without advice"
                detail = "forecast dropped" if e.get("degraded") else "no window"
        elif kind == "advice.transition":
            what = "re-trusted" if e.get("trusted") else "distrusted"
            detail = "trust hysteresis transition"
        else:
            continue
        rows.append(
            "<tr>"
            f'<td class="num">{_esc(e.get("t", "–"))}</td>'
            f"<td>{_esc(what)}</td><td>{_esc(detail)}</td>"
            "</tr>"
        )
    table = (
        "<table><thead><tr><th>slot</th><th>event</th><th>detail</th>"
        f"</tr></thead><tbody>{''.join(rows)}</tbody></table>"
        if rows
        else '<p class="empty">no advice frames or transitions recorded</p>'
    )
    return f'<p class="subtitle">{_esc(blurb)}</p>{table}'


# ------------------------------------------------------------------ render
def render_dashboard(
    events: list[dict],
    *,
    suite: MonitorSuite | None = None,
    title: str | None = None,
) -> str:
    """Render the full HTML report for a recorded trace.

    ``suite`` may be a suite already fed live (it is finalized here);
    by default the standard :func:`~repro.monitor.suite.default_suite`
    replays the events offline.
    """
    if suite is None:
        suite = replay(events)
    else:
        suite.finalize()

    queue = _latest_by_t(events, "queue.update", "after")
    brown = _latest_by_t(events, "slot.outcome", "brown_energy")
    onsite = _latest_by_t(events, "slot.decision", "onsite")
    offsite = _latest_by_t(events, "queue.update", "offsite")
    cost = _latest_by_t(events, "slot.outcome", "cost")
    dropped = _latest_by_t(events, "slot.outcome", "dropped")
    price = _latest_by_t(events, "slot.decision", "price")
    v_by_t = _latest_by_t(events, "queue.update", "v")
    gsd_times = [
        float(e["solve_time_s"])
        for e in events
        if e.get("kind") == "gsd.solve" and "solve_time_s" in e
    ]
    gsd_accept = [
        float(e["acceptance_rate"])
        for e in events
        if e.get("kind") == "gsd.solve" and "acceptance_rate" in e
    ]
    run_ids = sorted({str(e["run_id"]) for e in events if "run_id" in e})
    run_start = next((e for e in events if e.get("kind") == "run.start"), None)

    # Header tiles.
    worst = suite.channel.worst_severity or "quiet"
    tiles = [
        ("total cost", f"${_fmt(sum(cost.values()))}", f"{len(cost)} slots"),
        ("brown energy", f"{_fmt(sum(brown.values()))} MWh",
         f"renewable {_fmt(sum(onsite.values()) + sum(offsite.values()))} MWh"),
        ("final queue", f"{_fmt(list(queue.values())[-1] if queue else float('nan'))} MWh",
         f"peak {_fmt(max(queue.values()) if queue else float('nan'))} MWh"),
        ("dropped load", f"{_fmt(sum(dropped.values()))} req/s",
         "should be 0 under phi >= 1"),
        ("alerts", str(suite.channel.count()), f"worst: {worst}"),
        ("invariants",
         f"{sum(1 for r in suite.reports() if r.passed)}/{len(suite.reports())}",
         "monitors passing"),
    ]
    tile_html = "".join(
        '<div class="tile">'
        f'<div class="label">{_esc(label)}</div><div class="value">{_esc(value)}</div>'
        f'<div class="note">{_esc(note)}</div></div>'
        for label, value, note in tiles
    )

    meta_bits = []
    if run_start is not None:
        meta_bits.append(
            f"controller {run_start.get('controller', '?')}, "
            f"horizon {run_start.get('horizon', '?')} slots"
        )
    meta_bits.append(f"{len(events)} events")
    meta_bits.append(
        f"run {run_ids[0]}" if len(run_ids) == 1 else f"{len(run_ids)} run ids"
    )

    # Charts.
    xs_q, (ys_q,) = _aligned(queue) if queue else (np.empty(0), [np.empty(0)])
    renewable = {
        t: onsite.get(t, 0.0) + offsite.get(t, 0.0)
        for t in set(onsite) | set(offsite)
    }
    mix_xs, (mix_brown, mix_green) = (
        _aligned(brown, renewable) if brown and renewable else (np.empty(0), [np.empty(0)] * 2)
    )
    xs_c, (ys_c,) = _aligned(cost) if cost else (np.empty(0), [np.empty(0)])
    vprice = {t: v_by_t[t] * price[t] for t in set(v_by_t) & set(price)}
    xs_vp, (ys_vp,) = _aligned(vprice) if vprice else (np.empty(0), [np.empty(0)])
    xs_g = np.arange(len(gsd_times), dtype=np.float64)

    gsd_blurb = (
        "per-solve wall time across the run's GSD chains"
        + (
            f"; mean acceptance {float(np.mean(gsd_accept)):.3f}"
            if gsd_accept
            else ""
        )
    )

    sections = [
        f'<section id="run"><div class="tiles">{tile_html}</div></section>',
        f'<section id="invariants"><h2>Invariants</h2>{_invariant_table(suite)}</section>',
        f'<section id="alerts"><h2>Alert log</h2>{_alert_table(suite)}</section>',
        f'<section id="faults"><h2>Fault injections</h2>{_fault_table(events)}</section>',
        f'<section id="advice"><h2>Forecast advice</h2>{_advice_section(events)}</section>',
        _chart_section(
            "deficit-queue", "Carbon-deficit queue",
            "q(t) in MWh after each slot's update (Eq. 17)",
            [("queue", "--series-1", ys_q)], xs_q if queue else None, unit=" MWh",
            empty="no queue.update events — was a COCA controller traced?",
        ),
        _chart_section(
            "energy-mix", "Energy mix",
            "brown vs. renewable (on-site + off-site) energy per slot, MWh",
            [("brown", "--series-2", mix_brown), ("renewable", "--series-1", mix_green)],
            mix_xs if len(mix_xs) else None, unit=" MWh",
        ),
        _chart_section(
            "cost", "Operating cost",
            "realized cost per slot, $ (electricity + delay)",
            [("cost", "--series-1", ys_c)], xs_c if cost else None, unit=" $",
        ),
        _chart_section(
            "v-weighted-price", "V-weighted price",
            "V × electricity price per slot — the cost side of the P3 trade-off "
            "against queue pressure",
            [("V*price", "--series-1", ys_vp)], xs_vp if vprice else None,
        ),
        _chart_section(
            "gsd", "GSD solve times", gsd_blurb,
            [("solve time", "--series-1", np.asarray(gsd_times))],
            xs_g if len(gsd_times) >= 2 else None, unit=" s",
            empty="no gsd.solve events — the run did not use the GSD solver",
        ),
    ]

    page_title = _esc(title or "COCA run health report")
    return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>{page_title}</title>
<style>{_CSS}</style>
</head>
<body>
<main>
<h1>{page_title}</h1>
<p class="subtitle">{_esc(' · '.join(meta_bits))}</p>
{''.join(sections)}
<footer>generated by <code>repro dashboard</code> — schema and monitor catalog in
docs/MONITORING.md</footer>
</main>
</body>
</html>
"""


def write_dashboard(
    events: list[dict],
    path: str,
    *,
    suite: MonitorSuite | None = None,
    title: str | None = None,
) -> str:
    """Render and write the report; returns the path written."""
    html = render_dashboard(events, suite=suite, title=title)
    with open(path, "w") as fh:
        fh.write(html)
    return str(path)
