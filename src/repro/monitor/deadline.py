"""Watchdog over solve deadlines (``deadline.*`` events).

An expired deadline is not by itself a failure -- the anytime design is
*supposed* to cut the search and commit the best incumbent -- so expiries
surface as warnings that tell the operator the budget is tight (tune with
``--solve-deadline-ms``; see ``docs/OPERATIONS.md``).  What does count as a
violation is the deadline machinery failing at its one job: a slot whose
wall-clock solve time blew past the armed budget by more than
``overrun_factor``, meaning the solver sat inside a single candidate
evaluation (or ignored the budget entirely) long after expiry.
"""

from __future__ import annotations

from .alerts import AlertChannel
from .base import HealthMonitor

__all__ = ["DeadlineMonitor"]


class DeadlineMonitor(HealthMonitor):
    """Solve deadlines are honoured; overruns and expiries are visible."""

    name = "solve-deadline"
    description = "slot solves respect the wall-clock budget (anytime cuts OK)"
    kinds = ("deadline.expired", "deadline.slot_overrun")

    def __init__(self, *, overrun_factor: float = 2.0) -> None:
        super().__init__()
        if overrun_factor < 1.0:
            raise ValueError("overrun_factor must be >= 1")
        self.overrun_factor = overrun_factor
        self.expiries = 0
        self.infeasible_expiries = 0
        self.overruns = 0
        self.worst_overrun = 0.0

    # ------------------------------------------------------------------
    def observe(self, event: dict, alerts: AlertChannel) -> None:
        kind = event["kind"]
        self.checked += 1
        if kind == "deadline.expired":
            self.expiries += 1
            if not event.get("best_feasible", True):
                self.infeasible_expiries += 1
                alerts.raise_alert(
                    "warning",
                    self.name,
                    f"{event.get('solver', '?')} deadline expired with no "
                    "feasible incumbent; slot fell through to degradation",
                    t=event.get("t"),
                    key=f"{self.name}:infeasible",
                )
            else:
                alerts.raise_alert(
                    "info",
                    self.name,
                    f"{event.get('solver', '?')} cut at "
                    f"{event.get('completed')}/{event.get('planned')} after "
                    f"{float(event.get('elapsed_ms', 0.0)):.1f} ms "
                    f"(budget {float(event.get('budget_ms', 0.0)):.1f} ms)",
                    t=event.get("t"),
                    key=f"{self.name}:expired",
                )
        elif kind == "deadline.slot_overrun":
            budget = float(event.get("budget_ms", 0.0))
            elapsed = float(event.get("elapsed_ms", 0.0))
            ratio = elapsed / budget if budget > 0 else float("inf")
            self.worst_overrun = max(self.worst_overrun, ratio)
            if ratio > self.overrun_factor:
                self.overruns += 1
                self.violations += 1
                alerts.raise_alert(
                    "critical",
                    self.name,
                    f"slot {event.get('t')} solve took {elapsed:.1f} ms against "
                    f"a {budget:.1f} ms budget ({ratio:.1f}x) — the deadline "
                    "was not honoured",
                    t=event.get("t"),
                    key=f"{self.name}:overrun",
                )
            else:
                alerts.raise_alert(
                    "warning",
                    self.name,
                    f"slot {event.get('t')} solve overran the budget "
                    f"({elapsed:.1f} ms vs {budget:.1f} ms)",
                    t=event.get("t"),
                    key=f"{self.name}:overrun-soft",
                )

    # ------------------------------------------------------------------
    def detail(self) -> str:
        if self.checked == 0:
            return "no deadline events (unbounded or generous budget)"
        parts = [f"{self.expiries} anytime cuts"]
        if self.infeasible_expiries:
            parts.append(f"{self.infeasible_expiries} with no incumbent")
        if self.worst_overrun > 0:
            parts.append(f"worst slot overrun {self.worst_overrun:.2f}x budget")
        if self.overruns:
            parts.append(f"{self.overruns} hard overruns")
        return "; ".join(parts)
