"""Watchdog over the fault-injection stream (``fault.*`` events).

Chaos runs are healthy exactly when the *other* invariant monitors stay
green while this one documents the abuse: it counts injected faults,
degraded observations, protocol retries, and fallback slots, and raises
alerts so the dashboard's log tells the story of the run.  Fault activity
is not itself a violation — graceful degradation is the designed response
— so the monitor fails only on genuine inconsistencies:

* a ``fault.fallback`` slot in a run whose schedule carried no faults at
  all (the degradation machinery fired without a cause), or
* a ``fault.summary`` whose counters disagree with the events streamed
  before it (a telemetry-pipeline bug).
"""

from __future__ import annotations

from .alerts import AlertChannel
from .base import HealthMonitor

__all__ = ["FaultActivityMonitor"]


class FaultActivityMonitor(HealthMonitor):
    """Accounts for every injected fault and degradation decision."""

    name = "fault-activity"
    description = "fault injections and fallbacks are consistent and accounted"
    kinds = (
        "fault.inject",
        "fault.suppressed",
        "fault.ignored",
        "fault.signal",
        "fault.solve_retry",
        "fault.fallback",
        "fault.summary",
    )

    def __init__(self) -> None:
        super().__init__()
        self.injected = 0
        self.by_fault: dict[str, int] = {}
        self.suppressed = 0
        self.signals = 0
        self.retries = 0
        self.fallbacks = 0
        self._summary: dict | None = None

    # ------------------------------------------------------------------
    def observe(self, event: dict, alerts: AlertChannel) -> None:
        kind = event["kind"]
        self.checked += 1
        if kind == "fault.inject":
            self.injected += 1
            fault = str(event.get("fault", "?"))
            self.by_fault[fault] = self.by_fault.get(fault, 0) + 1
            if fault == "group_fail":
                alerts.raise_alert(
                    "info",
                    self.name,
                    f"server group {event.get('group')} failed",
                    t=event.get("t"),
                    key=f"{self.name}:group_fail",
                )
        elif kind == "fault.suppressed":
            self.suppressed += 1
            alerts.raise_alert(
                "warning",
                self.name,
                f"schedule event suppressed ({event.get('reason')}): "
                f"{event.get('fault')} @ t={event.get('t')}",
                t=event.get("t"),
                key=f"{self.name}:suppressed",
            )
        elif kind == "fault.signal":
            self.signals += 1
        elif kind == "fault.solve_retry":
            self.retries += 1
        elif kind == "fault.fallback":
            self.fallbacks += 1
            alerts.raise_alert(
                "warning",
                self.name,
                f"slot solve failed ({event.get('reason')}); committed "
                f"{event.get('mode')} fallback",
                t=event.get("t"),
                key=f"{self.name}:fallback",
            )
        elif kind == "fault.summary":
            self._summary = event

    def finalize(self, alerts: AlertChannel) -> None:
        if self.fallbacks and self.injected == 0 and self._summary is None:
            self.violations += 1
            alerts.raise_alert(
                "critical",
                self.name,
                f"{self.fallbacks} fallback slot(s) in a run with no "
                "injected faults — degradation fired without a cause",
                key=f"{self.name}:uncaused-fallback",
            )
        if self._summary is not None:
            reported = int(self._summary.get("injected", -1))
            if reported != self.injected:
                self.violations += 1
                alerts.raise_alert(
                    "critical",
                    self.name,
                    f"fault.summary reports {reported} injections but the "
                    f"stream carried {self.injected}",
                    key=f"{self.name}:summary-mismatch",
                )

    # ------------------------------------------------------------------
    def detail(self) -> str:
        if self.checked == 0:
            return "no fault events (clean run)"
        parts = [f"{self.injected} injected"]
        if self.by_fault:
            parts.append(
                ", ".join(f"{k}={v}" for k, v in sorted(self.by_fault.items()))
            )
        parts.append(f"{self.signals} degraded observations")
        parts.append(f"{self.retries} solve retries")
        parts.append(f"{self.fallbacks} fallback slots")
        if self.suppressed:
            parts.append(f"{self.suppressed} suppressed")
        return "; ".join(parts)
