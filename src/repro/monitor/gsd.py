"""GSD convergence diagnostics: is the Markov chain actually mixing?

Theorem 1 guarantees convergence of GSD's Gibbs chain *in the limit*; at
finite iteration budgets the chain can silently misbehave in three ways
these monitors catch from the existing ``gsd.iteration`` / ``gsd.solve``
event stream:

- **frozen or non-discriminating chains** (:class:`GSDAcceptanceMonitor`):
  a mean acceptance rate near 0 means the temperature ``delta`` is so high
  the chains reject everything (they degenerate to their initial
  configurations); near 1 means ``delta`` is so low the chains accept
  everything and random walk without concentrating.  The verdict is on the
  run-level mean, not individual chains: a single chain that starts at (or
  quickly reaches) the optimum accepts nothing for the rest of its budget,
  which is convergence, not pathology.
- **objective-improvement stalls** (:class:`GSDStallMonitor`): consecutive
  logging windows with zero accepted explorations and no improvement of
  the best objective -- the chain has stopped searching long before its
  iteration budget is spent.
- **cross-chain dispersion** (:class:`GSDDispersionMonitor`): across the
  run's many chains (one per P3 solve), wildly different acceptance rates
  or convergence points indicate the temperature schedule is not tracking
  the objective scale across slots (the ``auto_delta`` failure mode).
"""

from __future__ import annotations

import numpy as np

from .alerts import AlertChannel
from .base import HealthMonitor

__all__ = ["GSDAcceptanceMonitor", "GSDStallMonitor", "GSDDispersionMonitor"]


def _event_float(event: dict, field: str) -> float:
    """Read a float field, mapping absent *and* ``null`` to NaN.

    JSONL traces write non-finite floats as ``null`` (see
    :func:`repro.telemetry.tracer.sanitize_json_value`): a GSD chain that
    starts infeasible reports its objectives that way until the first
    feasible acceptance.
    """
    value = event.get(field)
    return np.nan if value is None else float(value)


class GSDAcceptanceMonitor(HealthMonitor):
    """Mean acceptance rate across chains must sit in ``(low, high)``.

    Judged on the run-level mean at :meth:`finalize`, not per chain: on
    homogeneous fleets many chains start at the optimum and accept nothing
    for their whole budget, which is immediate convergence rather than a
    frozen temperature schedule.  A mean outside the band, however, says
    ``delta`` is mis-scaled for the objective across the whole run.
    """

    name = "gsd-acceptance"
    description = "mean acceptance rate across chains within (low, high) working band"
    kinds = ("gsd.solve",)

    def __init__(self, *, low: float = 0.02, high: float = 0.98) -> None:
        super().__init__()
        if not 0.0 <= low < high <= 1.0:
            raise ValueError("need 0 <= low < high <= 1")
        self.low = low
        self.high = high
        self.rates: list[float] = []

    def observe(self, event: dict, alerts: AlertChannel) -> None:
        if "acceptance_rate" not in event:
            return
        self.rates.append(float(event["acceptance_rate"]))
        self.checked += 1

    def finalize(self, alerts: AlertChannel) -> None:
        if not self.rates:
            return
        mean = float(np.mean(self.rates))
        if mean < self.low:
            self.violations += 1
            alerts.raise_alert(
                "warning",
                self.name,
                f"mean acceptance rate {mean:.3f} over {len(self.rates)} chains "
                f"below {self.low:g} -- chains are frozen (temperature delta too "
                "high for the objective scale)",
                key=f"{self.name}:frozen",
            )
        elif mean > self.high:
            self.violations += 1
            alerts.raise_alert(
                "warning",
                self.name,
                f"mean acceptance rate {mean:.3f} over {len(self.rates)} chains "
                f"above {self.high:g} -- the sampler accepts everything (delta "
                "too low to discriminate)",
                key=f"{self.name}:undiscriminating",
            )

    def detail(self) -> str:
        if not self.rates:
            return "no gsd.solve events seen"
        return (
            f"{len(self.rates)} chains, acceptance "
            f"min {min(self.rates):.3f} / mean {float(np.mean(self.rates)):.3f} "
            f"/ max {max(self.rates):.3f}"
        )


class GSDStallMonitor(HealthMonitor):
    """Objective-improvement stall: ``patience`` consecutive logging windows
    with zero accepted explorations and an unchanged best objective."""

    name = "gsd-stall"
    description = "no window-long streaks of zero acceptance with a flat best objective"
    kinds = ("gsd.iteration", "gsd.solve")

    def __init__(self, *, patience: int = 3) -> None:
        super().__init__()
        if patience < 1:
            raise ValueError("patience must be >= 1")
        self.patience = patience
        self._chain: object = None
        self._streak = 0
        self._last_best: float | None = None
        self._last_iteration = -1
        self.longest_streak = 0

    def _reset_chain(self, chain: object) -> None:
        self._chain = chain
        self._streak = 0
        self._last_best = None
        self._last_iteration = -1

    def observe(self, event: dict, alerts: AlertChannel) -> None:
        if event["kind"] == "gsd.solve":
            # Chain finished; the next iteration event starts a new one.
            self._reset_chain(None)
            return
        iteration = int(event.get("iteration", 0))
        chain = event.get("solve_index", event.get("run_id"))
        # A new chain announces itself by a new solve_index (schema 2) or a
        # non-increasing iteration counter (older traces).
        if chain != self._chain or iteration <= self._last_iteration:
            self._reset_chain(chain)
        self._last_iteration = iteration
        best = _event_float(event, "best_objective")
        accepted = _event_float(event, "acceptance_rate")
        self.checked += 1
        flat = self._last_best is not None and best >= self._last_best - 1e-12
        if accepted == 0.0 and flat:
            self._streak += 1
        else:
            self._streak = 0
        self._last_best = best if np.isfinite(best) else self._last_best
        self.longest_streak = max(self.longest_streak, self._streak)
        if self._streak == self.patience:
            self.violations += 1
            window = int(event.get("window", 0))
            alerts.raise_alert(
                "warning",
                self.name,
                f"chain stalled: {self.patience} consecutive windows "
                f"({self.patience * window} iterations) with zero acceptance and "
                f"no best-objective improvement (best {best:.6g})",
                key=f"{self.name}:stall",
            )

    def detail(self) -> str:
        if not self.checked:
            return "no gsd.iteration events seen"
        return (
            f"{self.checked} windows, longest zero-progress streak "
            f"{self.longest_streak} (patience {self.patience})"
        )


class GSDDispersionMonitor(HealthMonitor):
    """Cross-chain dispersion of acceptance and convergence behaviour.

    Collects every chain's acceptance rate and its convergence point (the
    fraction of the iteration budget at which the best configuration last
    improved) from ``gsd.solve`` events.  At end of stream, a coefficient
    of variation of the acceptance rates above ``cv_threshold`` -- chains
    on some slots frozen while others random-walk -- means the temperature
    is not tracking the objective scale across slots.
    """

    name = "gsd-dispersion"
    description = "acceptance-rate dispersion across chains stays bounded"
    kinds = ("gsd.solve",)

    def __init__(self, *, cv_threshold: float = 1.0, min_chains: int = 3) -> None:
        super().__init__()
        if cv_threshold <= 0:
            raise ValueError("cv_threshold must be positive")
        self.cv_threshold = cv_threshold
        self.min_chains = min_chains
        self.rates: list[float] = []
        self.convergence_fractions: list[float] = []
        self.cv: float | None = None

    def observe(self, event: dict, alerts: AlertChannel) -> None:
        if "acceptance_rate" in event:
            self.rates.append(float(event["acceptance_rate"]))
        iters = float(event.get("iterations", 0.0))
        if iters > 0 and "iterations_to_convergence" in event:
            self.convergence_fractions.append(
                float(event["iterations_to_convergence"]) / iters
            )

    def finalize(self, alerts: AlertChannel) -> None:
        if len(self.rates) < self.min_chains:
            return
        self.checked += 1
        rates = np.asarray(self.rates, dtype=np.float64)
        mean = float(rates.mean())
        self.cv = float(rates.std() / mean) if mean > 0 else float("inf")
        if self.cv > self.cv_threshold:
            self.violations += 1
            alerts.raise_alert(
                "warning",
                self.name,
                f"acceptance-rate dispersion CV {self.cv:.2f} across "
                f"{len(self.rates)} chains exceeds {self.cv_threshold:g} -- "
                "temperature schedule is not tracking the objective scale",
                key=f"{self.name}:cv",
            )

    def detail(self) -> str:
        if len(self.rates) < self.min_chains:
            return f"only {len(self.rates)} chains seen (need {self.min_chains})"
        conv = (
            f", mean convergence at {100 * float(np.mean(self.convergence_fractions)):.0f}% "
            "of budget"
            if self.convergence_fractions
            else ""
        )
        return f"{len(self.rates)} chains, acceptance CV {self.cv:.2f}{conv}"
