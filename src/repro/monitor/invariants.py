"""Invariant monitors: the run-time checks of the paper's guarantees.

Each monitor watches one property a healthy COCA run must satisfy:

=========================  =============================================
:class:`QueueBoundMonitor`       deficit queue stays under the Lyapunov
                                 bound ``V w_max + y_max``
:class:`BudgetTrajectoryMonitor` cumulative brown energy tracks the
                                 ``alpha``-scaled renewable budget
:class:`LoadConservationMonitor` served + dropped = arrivals; served
                                 never exceeds capacity
:class:`DroppedLoadMonitor`      dropped load stays under thresholds
:class:`SlotSanityMonitor`       per-slot accounting identities hold
=========================  =============================================

All of them self-calibrate from the ``run.start`` / ``controller.config``
events the instrumented stack emits, so replaying a bare trace works; any
constant passed to the constructor (e.g. ``y_max`` from
:func:`repro.core.bounds.lyapunov_constants`) overrides the trace-derived
value.
"""

from __future__ import annotations

from .alerts import AlertChannel
from .base import HealthMonitor

__all__ = [
    "QueueBoundMonitor",
    "BudgetTrajectoryMonitor",
    "LoadConservationMonitor",
    "DroppedLoadMonitor",
    "SlotSanityMonitor",
]


class QueueBoundMonitor(HealthMonitor):
    """Deficit-queue boundedness: ``q(t) <= slack * (V w_max + y_max)``.

    The P3 objective is ``V g + q y``: once ``q`` exceeds ``V w_max`` (with
    ``w_max`` the peak electricity price in $/MWh), avoiding one MWh of
    brown energy is always worth its worst-case cost, so the queue can
    overshoot by at most one slot's worst-case draw ``y_max``.  A queue
    above this level means the controller is *not* tracking the Theorem 2
    budget recursion -- a broken queue update, an infeasible budget, or a
    mis-scaled ``V``.

    ``w_max`` / ``y_max`` default to the running maxima observed in the
    trace (peak price from ``slot.decision``, ``max_facility_power`` from
    ``run.start``, peak per-slot brown as a fallback), so the bound is
    conservative and self-calibrating.
    """

    name = "queue-bound"
    description = "deficit queue q(t) <= V*w_max + y_max (Theorem 2 recursion)"
    kinds = ("queue.update", "slot.decision", "run.start", "geo.dispatch")

    def __init__(
        self,
        *,
        w_max: float | None = None,
        y_max: float | None = None,
        slack: float = 1.05,
    ) -> None:
        super().__init__()
        if slack <= 0:
            raise ValueError("slack must be positive")
        self._w_max_given = w_max
        self._y_max_given = y_max
        self.slack = slack
        self._w_max_seen = 0.0
        self._y_max_seen = 0.0
        self._last_v: float | None = None
        self.worst_ratio = 0.0

    def _w_max(self) -> float:
        return self._w_max_given if self._w_max_given is not None else self._w_max_seen

    def _y_max(self) -> float:
        return self._y_max_given if self._y_max_given is not None else self._y_max_seen

    def observe(self, event: dict, alerts: AlertChannel) -> None:
        # Hot path (slot.decision + queue.update every slot): no helper
        # calls, one bound computation, alert text only on violation.
        kind = event["kind"]
        if kind == "slot.decision":
            price = float(event.get("price", 0.0))
            if price > self._w_max_seen:
                self._w_max_seen = price
            return
        if kind == "run.start":
            power = float(event.get("max_facility_power", 0.0))
            if power > self._y_max_seen:
                self._y_max_seen = power
            return
        if kind == "geo.dispatch":
            if "v" in event:
                self._last_v = float(event["v"])
            return
        # queue.update
        v = float(event["v"]) if "v" in event else self._last_v
        if v is not None:
            self._last_v = v
        brown = float(event.get("brown", 0.0))
        if brown > self._y_max_seen:
            self._y_max_seen = brown
        w_max = self._w_max_given
        if w_max is None:
            w_max = self._w_max_seen
        if v is None or w_max <= 0.0:
            return  # not enough context yet to judge
        y_max = self._y_max_given
        if y_max is None:
            y_max = self._y_max_seen
        q = float(event.get("after", 0.0))
        bound = self.slack * (v * w_max + y_max)
        self.checked += 1
        if bound > 0 and q / bound > self.worst_ratio:
            self.worst_ratio = q / bound
        if q > bound:
            self.violations += 1
            alerts.raise_alert(
                "critical",
                self.name,
                f"deficit queue {q:.4g} MWh exceeds Lyapunov bound {bound:.4g} "
                f"(V={v:.4g}, w_max={self._w_max():.4g}, y_max={self._y_max():.4g})",
                t=event.get("t"),
                key=f"{self.name}:over-bound",
            )

    def detail(self) -> str:
        if not self.checked:
            return "no queue updates with a usable V/w_max seen"
        return f"worst q/bound = {self.worst_ratio:.3f} (slack {self.slack:g})"


class BudgetTrajectoryMonitor(HealthMonitor):
    """Cumulative brown energy vs. the ``alpha``-scaled renewable budget.

    Tracks ``sum_t y(t)`` against ``alpha * sum_t f(t) + t*z`` (the budget
    released so far, off-site supply plus prorated RECs).  Transient
    excursions are what the deficit queue *exists* to absorb -- while the
    queue is short, brown energy is cheap in the P3 objective and the
    controller legitimately front-loads it -- so the trajectory check fires
    a **warning** only when cumulative brown exceeds ``(1 + tolerance)``
    times the released budget after a warm-up period (the generous default
    tolerance accommodates that front-loading); ending the run above
    ``(1 + final_tolerance)`` of the total budget -- carbon neutrality
    actually missed -- is **critical**.
    """

    name = "budget-trajectory"
    description = "cumulative brown energy tracks alpha * renewable budget"
    kinds = ("queue.update", "controller.config", "geo.config")

    def __init__(
        self,
        *,
        alpha: float | None = None,
        tolerance: float = 0.5,
        final_tolerance: float = 0.05,
        warmup_slots: int = 24,
    ) -> None:
        super().__init__()
        self._alpha_given = alpha
        self._alpha_seen: float | None = None
        self.tolerance = tolerance
        self.final_tolerance = final_tolerance
        self.warmup_slots = warmup_slots
        self.cum_brown = 0.0
        self.cum_budget = 0.0
        self.slots = 0
        self.worst_excess = 0.0

    @property
    def alpha(self) -> float:
        if self._alpha_given is not None:
            return self._alpha_given
        return self._alpha_seen if self._alpha_seen is not None else 1.0

    def observe(self, event: dict, alerts: AlertChannel) -> None:
        if event["kind"] in ("controller.config", "geo.config"):
            if "alpha" in event:
                self._alpha_seen = float(event["alpha"])
            return
        brown = float(event.get("brown", 0.0))
        offsite = float(event.get("offsite", 0.0))
        z = float(event.get("rec_per_slot", 0.0))
        self.cum_brown += brown
        # rec_per_slot is already alpha-scaled by the queue (z = alpha*Z/J).
        self.cum_budget += self.alpha * offsite + z
        self.slots += 1
        if self.cum_budget > 0:
            self.worst_excess = max(
                self.worst_excess, self.cum_brown / self.cum_budget - 1.0
            )
        if self.slots <= self.warmup_slots or self.cum_budget <= 0:
            return
        self.checked += 1
        if self.cum_brown > (1.0 + self.tolerance) * self.cum_budget:
            self.violations += 1
            alerts.raise_alert(
                "warning",
                self.name,
                f"cumulative brown {self.cum_brown:.4g} MWh is "
                f"{100 * (self.cum_brown / self.cum_budget - 1):.1f}% over the "
                f"released budget {self.cum_budget:.4g} MWh",
                t=event.get("t"),
                key=f"{self.name}:trajectory",
            )

    def finalize(self, alerts: AlertChannel) -> None:
        if self.slots == 0 or self.cum_budget <= 0:
            return
        self.checked += 1
        if self.cum_brown > (1.0 + self.final_tolerance) * self.cum_budget:
            self.violations += 1
            alerts.raise_alert(
                "critical",
                self.name,
                f"run ended {100 * (self.cum_brown / self.cum_budget - 1):.1f}% over "
                f"the carbon budget ({self.cum_brown:.4g} of {self.cum_budget:.4g} MWh)",
                key=f"{self.name}:final",
            )

    def detail(self) -> str:
        if self.slots == 0:
            return "no queue updates seen"
        return (
            f"brown {self.cum_brown:.4g} / budget {self.cum_budget:.4g} MWh "
            f"(worst excess {100 * self.worst_excess:+.1f}%, alpha {self.alpha:g})"
        )


class LoadConservationMonitor(HealthMonitor):
    """Per-slot load conservation and capacity feasibility.

    From ``slot.outcome``: served + dropped must equal the actual arrivals
    (no load silently created or destroyed), and served load must fit the
    fleet's capped capacity from ``run.start``.  From ``geo.dispatch``:
    the per-site shares must sum to the dispatched load.
    """

    name = "load-conservation"
    description = "served + dropped = arrivals; served <= capacity; shares sum to load"
    kinds = ("slot.outcome", "geo.dispatch", "run.start")

    def __init__(self, *, capacity: float | None = None, rtol: float = 1e-6) -> None:
        super().__init__()
        self._capacity_given = capacity
        self._capacity_seen: float | None = None
        self.rtol = rtol
        self.worst_gap = 0.0

    @property
    def capacity(self) -> float | None:
        if self._capacity_given is not None:
            return self._capacity_given
        return self._capacity_seen

    def observe(self, event: dict, alerts: AlertChannel) -> None:
        # Hot path (3 checks per slot): violation messages are formatted
        # only inside the failing branch.
        kind = event["kind"]
        if kind == "run.start":
            if "capacity" in event:
                self._capacity_seen = float(event["capacity"])
            return
        rtol = self.rtol
        if kind == "slot.outcome":
            arrival = float(event.get("arrival_actual", 0.0))
            served = float(event.get("served", 0.0))
            dropped = float(event.get("dropped", 0.0))
            gap = served + dropped - arrival
            if gap < 0.0:
                gap = -gap
            self.checked += 1
            if gap > self.worst_gap:
                self.worst_gap = gap
            if gap > rtol * max(arrival, 1.0):
                self.violations += 1
                alerts.raise_alert(
                    "critical",
                    self.name,
                    f"load not conserved: served {served:.6g} + dropped "
                    f"{dropped:.6g} != arrivals {arrival:.6g}",
                    t=event.get("t"),
                    key=f"{self.name}:conservation",
                )
            cap = self.capacity
            if cap is not None:
                self.checked += 1
                if served > cap * (1.0 + rtol):
                    self.violations += 1
                    alerts.raise_alert(
                        "critical",
                        self.name,
                        f"served load {served:.6g} exceeds fleet capacity {cap:.6g}",
                        t=event.get("t"),
                        key=f"{self.name}:capacity",
                    )
            return
        # geo.dispatch
        shares = event.get("shares")
        if shares is None:
            return
        total = float(sum(float(s) for s in shares))
        load = float(event.get("load", 0.0))
        gap = abs(total - load)
        self.checked += 1
        if gap > self.worst_gap:
            self.worst_gap = gap
        if gap > rtol * max(load, 1.0):
            self.violations += 1
            alerts.raise_alert(
                "critical",
                self.name,
                f"dispatch shares sum to {total:.6g} but slot load is {load:.6g}",
                t=event.get("t"),
                key=f"{self.name}:shares",
            )

    def detail(self) -> str:
        if not self.checked:
            return "no outcome events seen"
        return f"worst conservation gap {self.worst_gap:.3g} req/s (rtol {self.rtol:g})"


class DroppedLoadMonitor(HealthMonitor):
    """Dropped-load thresholds, fault-aware.

    Under the paper's overestimation regime (``phi >= 1``) no load is ever
    dropped, so *any* per-slot drop beyond ``slot_threshold`` (default: any
    drop at all) raises a warning; a run whose total dropped fraction
    exceeds ``run_threshold`` ends with a critical alert.

    Chaos runs are the exception: while ``fault.inject`` events report
    server groups down, the capacity to serve everything may simply not
    exist, so drops in those slots are *reported* (info alert) but excused
    from the violation count and the run threshold -- only load dropped at
    full capacity indicts the controller.
    """

    name = "dropped-load"
    description = "dropped load stays within per-slot and per-run thresholds"
    kinds = ("slot.outcome", "fault.inject")

    def __init__(
        self, *, slot_threshold: float = 0.0, run_threshold: float = 0.01
    ) -> None:
        super().__init__()
        self.slot_threshold = slot_threshold
        self.run_threshold = run_threshold
        self.total_dropped = 0.0
        self.total_arrival = 0.0
        self.degraded_dropped = 0.0
        self._groups_down = 0

    def observe(self, event: dict, alerts: AlertChannel) -> None:
        # Hot path (every slot.outcome): the common dropped == 0 case does
        # two adds and returns.
        if event["kind"] == "fault.inject":
            # Emitted at the top of each affected slot, before that slot's
            # outcome, carrying the post-event set of failed groups.
            self._groups_down = len(event.get("failed_groups", ()))
            return
        arrival = float(event.get("arrival_actual", 0.0))
        dropped = float(event.get("dropped", 0.0))
        self.total_dropped += dropped
        self.total_arrival += arrival
        self.checked += 1
        if dropped <= 0.0:
            return
        fraction = dropped / arrival if arrival > 0 else 1.0
        if self._groups_down > 0:
            self.degraded_dropped += dropped
            alerts.raise_alert(
                "info",
                self.name,
                f"dropped {dropped:.6g} req/s ({100 * fraction:.2f}%) with "
                f"{self._groups_down} server group(s) down",
                t=event.get("t"),
                key=f"{self.name}:degraded",
            )
            return
        if fraction > self.slot_threshold:
            self.violations += 1
            alerts.raise_alert(
                "warning",
                self.name,
                f"dropped {dropped:.6g} req/s ({100 * fraction:.2f}% of arrivals)",
                t=event.get("t"),
                key=f"{self.name}:slot",
            )

    def finalize(self, alerts: AlertChannel) -> None:
        if self.total_arrival <= 0:
            return
        blamed = self.total_dropped - self.degraded_dropped
        fraction = blamed / self.total_arrival
        if fraction > self.run_threshold:
            self.violations += 1
            alerts.raise_alert(
                "critical",
                self.name,
                f"run dropped {100 * fraction:.2f}% of all load at full "
                f"capacity (threshold {100 * self.run_threshold:.2f}%)",
                key=f"{self.name}:run",
            )

    def detail(self) -> str:
        if self.total_arrival <= 0:
            return "no arrivals seen"
        out = (
            f"dropped {self.total_dropped:.4g} of {self.total_arrival:.4g} req/s "
            f"({100 * self.total_dropped / self.total_arrival:.3f}%)"
        )
        if self.degraded_dropped > 0:
            out += f", {self.degraded_dropped:.4g} during group outages"
        return out


class SlotSanityMonitor(HealthMonitor):
    """Per-slot accounting identities.

    ``slot.outcome`` must satisfy ``cost = electricity_cost + delay_cost``
    and carry non-negative cost and energy components -- a violated
    identity means the evaluation pipeline (or a hand-edited trace) is
    corrupt, so everything downstream is untrustworthy.
    """

    name = "slot-sanity"
    description = "cost = electricity + delay; costs and energies non-negative"
    kinds = ("slot.outcome",)

    def __init__(self, *, rtol: float = 1e-6) -> None:
        super().__init__()
        self.rtol = rtol

    _SIGNED_FIELDS = (
        "cost",
        "electricity_cost",
        "delay_cost",
        "brown_energy",
        "switching_energy",
        "served",
    )

    def observe(self, event: dict, alerts: AlertChannel) -> None:
        # Hot path (every slot.outcome): one pass over the fields, alert
        # text built only when an identity actually breaks.
        cost = float(event.get("cost", 0.0))
        elec = float(event.get("electricity_cost", 0.0))
        delay = float(event.get("delay_cost", 0.0))
        self.checked += 2
        if abs(cost - (elec + delay)) > self.rtol * max(abs(cost), 1.0):
            self.violations += 1
            alerts.raise_alert(
                "critical",
                self.name,
                f"cost {cost:.6g} != electricity {elec:.6g} + delay {delay:.6g}",
                t=event.get("t"),
                key=f"{self.name}:decomposition",
            )
        if (
            cost < 0.0
            or elec < 0.0
            or delay < 0.0
            or float(event.get("brown_energy", 0.0)) < 0.0
            or float(event.get("switching_energy", 0.0)) < 0.0
            or float(event.get("served", 0.0)) < 0.0
        ):
            negatives = [
                field
                for field in self._SIGNED_FIELDS
                if float(event.get(field, 0.0)) < 0.0
            ]
            self.violations += 1
            alerts.raise_alert(
                "critical",
                self.name,
                f"negative outcome fields: {', '.join(negatives)}",
                t=event.get("t"),
                key=f"{self.name}:negative",
            )

    def detail(self) -> str:
        return f"{self.checked} identity checks (rtol {self.rtol:g})"
