"""Wiring monitors into a run: the tracer tap, offline replay, defaults.

Two consumption modes, one code path:

- **Live**: wrap the run's tracer in a :class:`MonitoringTracer` (or build
  the whole bundle with :func:`monitored_telemetry`) and pass it through
  the existing ``telemetry=`` parameter.  Every event is forwarded to the
  underlying sink *and* fed to the suite as it happens, so alerts fire
  mid-run; nothing else in the pipeline changes, and a run without the tap
  stays bit-identical.
- **Offline**: :func:`replay` feeds a recorded JSONL trace through the
  same suite, which is how ``repro dashboard`` audits finished runs.

:func:`default_suite` builds the standard monitor set -- every invariant
monitor plus the GSD diagnostics -- with self-calibrating defaults.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..telemetry.bundle import Telemetry
from ..telemetry.tracer import NULL_TRACER, SCHEMA_VERSION, Tracer, new_run_id
from .advice import AdviceTrustMonitor
from .alerts import Alert, AlertChannel
from .base import HealthMonitor, MonitorReport
from .deadline import DeadlineMonitor
from .faults import FaultActivityMonitor
from .gsd import GSDAcceptanceMonitor, GSDDispersionMonitor, GSDStallMonitor
from .invariants import (
    BudgetTrajectoryMonitor,
    DroppedLoadMonitor,
    LoadConservationMonitor,
    QueueBoundMonitor,
    SlotSanityMonitor,
)

__all__ = [
    "MonitorSuite",
    "MonitoringTracer",
    "default_suite",
    "monitored_telemetry",
    "replay",
]


class MonitorSuite:
    """A set of monitors sharing one alert channel.

    Feed events with :meth:`observe` (the tap and :func:`replay` both call
    it), close the stream with :meth:`finalize`, and read the verdicts from
    :meth:`reports` / :attr:`alerts`.
    """

    def __init__(
        self,
        monitors: Sequence[HealthMonitor],
        *,
        channel: AlertChannel | None = None,
    ) -> None:
        self.monitors = list(monitors)
        self.channel = channel if channel is not None else AlertChannel()
        self._finalized = False
        # kind -> interested monitors, built lazily per kind seen: the tap
        # sits on the per-slot hot path, so routing must be one dict hit,
        # not a scan of every monitor's subscription tuple.
        self._routes: dict[str | None, list[HealthMonitor]] = {}

    def observe(self, event: dict) -> None:
        """Route one event to every monitor subscribed to its kind."""
        kind = event.get("kind")
        route = self._routes.get(kind)
        if route is None:
            route = self._routes[kind] = [
                m for m in self.monitors if not m.kinds or kind in m.kinds
            ]
        channel = self.channel
        for monitor in route:
            monitor.observe(event, channel)

    def finalize(self) -> list[MonitorReport]:
        """Run end-of-stream checks (idempotent) and return the reports."""
        if not self._finalized:
            for monitor in self.monitors:
                monitor.finalize(self.channel)
            self._finalized = True
        return self.reports()

    def reports(self) -> list[MonitorReport]:
        return [monitor.report() for monitor in self.monitors]

    @property
    def alerts(self) -> list[Alert]:
        return self.channel.alerts

    @property
    def passed(self) -> bool:
        """True when every monitor's invariant held."""
        return all(report.passed for report in self.reports())


class MonitoringTracer(Tracer):
    """Tracer tap: stamp, feed the suite, forward to the inner sink.

    Stands wherever a tracer does, so monitoring threads through
    ``simulate`` / ``GeoCOCA`` / the solvers via the existing
    ``telemetry=`` bundle.  Events are stamped here (one ``run_id`` for
    the tapped stream), handed to the suite, then forwarded with their
    stamps so the inner sink writes identical lines.
    """

    def __init__(self, suite: MonitorSuite, inner: Tracer | None = None, *,
                 run_id: str | None = None) -> None:
        self.suite = suite
        self.inner = inner if inner is not None else NULL_TRACER
        self.run_id = run_id if run_id is not None else new_run_id()
        # Bound methods cached once: emit runs several times per slot.
        self._observe = suite.observe
        self._forward = self.inner.emit_event if self.inner.enabled else None

    def emit(self, kind: str, /, **fields) -> None:
        event = {"kind": kind, "schema_version": SCHEMA_VERSION, "run_id": self.run_id}
        event.update(fields)
        self._observe(event)
        if self._forward is not None:
            # Forward the already-built dict; the sink keeps our stamps.
            self._forward(event)

    def emit_event(self, event: dict) -> None:
        self._observe(event)
        if self._forward is not None:
            self._forward(event)

    def close(self) -> None:
        self.suite.finalize()
        self.inner.close()


def default_suite(
    *,
    channel: AlertChannel | None = None,
    extra: Iterable[HealthMonitor] = (),
    **overrides,
) -> MonitorSuite:
    """The standard health-monitor set.

    Keyword overrides are forwarded to the individual monitors by name:
    ``w_max`` / ``y_max`` / ``slack`` (queue bound), ``alpha`` (budget),
    ``capacity`` (load conservation).  Anything not supplied is
    self-calibrated from the trace's ``run.start`` / ``controller.config``
    events.
    """
    queue_kw = {k: overrides[k] for k in ("w_max", "y_max", "slack") if k in overrides}
    budget_kw = {k: overrides[k] for k in ("alpha",) if k in overrides}
    load_kw = {k: overrides[k] for k in ("capacity",) if k in overrides}
    known = set(queue_kw) | set(budget_kw) | set(load_kw)
    unknown = set(overrides) - known
    if unknown:
        raise TypeError(f"unknown default_suite overrides: {sorted(unknown)}")
    monitors: list[HealthMonitor] = [
        QueueBoundMonitor(**queue_kw),
        BudgetTrajectoryMonitor(**budget_kw),
        LoadConservationMonitor(**load_kw),
        DroppedLoadMonitor(),
        SlotSanityMonitor(),
        GSDAcceptanceMonitor(),
        GSDStallMonitor(),
        GSDDispersionMonitor(),
        FaultActivityMonitor(),
        DeadlineMonitor(),
        AdviceTrustMonitor(),
    ]
    monitors.extend(extra)
    return MonitorSuite(monitors, channel=channel)


def monitored_telemetry(
    suite: MonitorSuite | None = None,
    *,
    tracer: Tracer | None = None,
) -> tuple[Telemetry, MonitorSuite]:
    """A ``Telemetry`` bundle whose tracer feeds ``suite`` live.

    ``tracer`` is the optional downstream sink (e.g. a ``JsonlTracer``);
    returns ``(telemetry, suite)`` so callers keep a handle on the suite
    they can ``finalize()`` after the run.
    """
    suite = suite if suite is not None else default_suite()
    return Telemetry(tracer=MonitoringTracer(suite, tracer)), suite


def replay(events: Iterable[dict], suite: MonitorSuite | None = None) -> MonitorSuite:
    """Feed a recorded trace through ``suite`` (default: the standard set)
    and finalize it; returns the suite for reports and alerts."""
    suite = suite if suite is not None else default_suite()
    for event in events:
        suite.observe(event)
    suite.finalize()
    return suite
