"""`repro.profile`: where the wall-clock time actually goes.

Three tools with one purpose -- turning "the sweep takes 0.63 s" into an
actionable attribution (ROADMAP item 1 needs to know *which* lines of the
ν/μ bisection to vectorize first):

- :class:`~repro.profile.sampler.StackSampler`: a signal-free sampling
  profiler built on ``sys.setprofile``, keyed off the same
  ``time.perf_counter`` clock the telemetry spans use.  Samples collapse
  into folded-stack lines (``a;b;c 42``), optionally prefixed with the live
  span path so flamegraphs and span trees line up.
- :mod:`~repro.profile.flame`: renders folded stacks as a self-contained
  HTML flame (icicle) view -- no external assets, openable from CI
  artifacts directly.
- :mod:`~repro.profile.ledger`: the unified benchmark registry behind
  ``repro bench``.  Discovers ``benchmarks/bench_*.py``, runs selected
  suites, appends machine-readable rows (git rev, timestamp, wall times,
  every numeric metric a suite reports) to ``benchmarks/results/
  trend.jsonl``, and renders a regression verdict against the previous row
  (``repro bench --check``).

The profiler *observes* a run without participating in it: it never draws
from any RNG and never mutates profiled state, so a profiled run's outputs
are bit-identical to an unprofiled one.
"""

from .flame import flamegraph_html, write_flamegraph, write_folded
from .ledger import (
    BenchResult,
    BenchSuite,
    append_row,
    check_rows,
    discover_benches,
    flatten_metrics,
    git_revision,
    load_rows,
    make_row,
    run_suite,
)
from .sampler import StackSampler

__all__ = [
    "StackSampler",
    "flamegraph_html",
    "write_flamegraph",
    "write_folded",
    "BenchSuite",
    "BenchResult",
    "discover_benches",
    "run_suite",
    "flatten_metrics",
    "make_row",
    "append_row",
    "load_rows",
    "check_rows",
    "git_revision",
]
