"""Flamegraph export: folded stacks to files and a self-contained HTML view.

Two artifacts from one :meth:`StackSampler.folded` dict:

- ``write_folded`` -- the canonical collapsed-stack text format
  (``frame;frame;frame count`` per line), consumable by ``flamegraph.pl``,
  speedscope, and friends.
- ``write_flamegraph`` / ``flamegraph_html`` -- a dependency-free HTML
  icicle view (root on top, children below, width proportional to sample
  weight).  Pure inline HTML/CSS -- absolutely positioned ``div`` rows with
  ``title`` tooltips -- so the file opens anywhere, including straight from
  a CI artifacts tab, matching the self-contained-dashboard convention from
  ``repro dashboard``.
"""

from __future__ import annotations

import html
import zlib

__all__ = ["write_folded", "flamegraph_html", "write_flamegraph"]

_ROW_PX = 18
_MIN_WIDTH_PCT = 0.05  # cells narrower than this are noise at any zoom


def write_folded(folded: dict[str, int], path: str) -> None:
    """Write collapsed stacks, heaviest first (ties broken by name)."""
    lines = [
        f"{stack} {count}"
        for stack, count in sorted(folded.items(), key=lambda kv: (-kv[1], kv[0]))
    ]
    with open(path, "w") as fh:
        fh.write("\n".join(lines) + ("\n" if lines else ""))


def _build_tree(folded: dict[str, int]) -> dict:
    """Nest folded stacks into ``{"value": n, "children": {name: node}}``."""
    root = {"value": 0, "children": {}}
    for stack, count in folded.items():
        root["value"] += count
        node = root
        for frame in stack.split(";"):
            child = node["children"].get(frame)
            if child is None:
                child = {"value": 0, "children": {}}
                node["children"][frame] = child
            child["value"] += count
            node = child
    return root


def _color(name: str) -> str:
    """A stable warm color per frame name (flamegraph convention)."""
    h = zlib.crc32(name.encode("utf-8"))
    r = 205 + (h & 0x1F)  # 205-236
    g = 80 + ((h >> 5) & 0x7F)  # 80-207
    b = (h >> 12) & 0x37  # 0-55
    return f"rgb({r},{g},{b})"


def _render_node(
    name: str, node: dict, left: float, width: float, depth: int, total: int,
    cells: list[str],
) -> int:
    """Emit one cell and recurse; returns the deepest row index touched."""
    pct = 100.0 * node["value"] / total
    label = html.escape(name, quote=True)
    cells.append(
        f'<div class="f" style="left:{left:.4f}%;width:{width:.4f}%;'
        f"top:{depth * _ROW_PX}px;background:{_color(name)}\" "
        f'title="{label}&#10;{node["value"]} samples ({pct:.1f}%)">'
        f"{label}</div>"
    )
    deepest = depth
    child_left = left
    for child_name, child in sorted(
        node["children"].items(), key=lambda kv: (-kv[1]["value"], kv[0])
    ):
        child_width = width * child["value"] / node["value"] if node["value"] else 0.0
        if child_width >= _MIN_WIDTH_PCT:
            deepest = max(
                deepest,
                _render_node(
                    child_name, child, child_left, child_width, depth + 1, total,
                    cells,
                ),
            )
        child_left += child_width
    return deepest


def flamegraph_html(folded: dict[str, int], *, title: str = "repro profile") -> str:
    """Self-contained HTML icicle flamegraph of ``folded``."""
    safe_title = html.escape(title)
    tree = _build_tree(folded)
    total = tree["value"]
    cells: list[str] = []
    deepest = 0
    if total:
        left = 0.0
        for name, node in sorted(
            tree["children"].items(), key=lambda kv: (-kv[1]["value"], kv[0])
        ):
            width = 100.0 * node["value"] / total
            deepest = max(deepest, _render_node(name, node, left, width, 0, total, cells))
            left += width
    body = (
        "".join(cells)
        if cells
        else '<p class="empty">no samples collected</p>'
    )
    height = (deepest + 1) * _ROW_PX if cells else _ROW_PX
    return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>{safe_title}</title>
<style>
  body {{ font: 13px/1.4 system-ui, sans-serif; margin: 1.5rem; }}
  h1 {{ font-size: 1.1rem; }}
  .meta {{ color: #555; margin-bottom: .75rem; }}
  .flame {{ position: relative; height: {height}px; width: 100%;
            border: 1px solid #ccc; background: #fafafa; }}
  .f {{ position: absolute; height: {_ROW_PX - 2}px; overflow: hidden;
        white-space: nowrap; text-overflow: ellipsis; font-size: 10px;
        line-height: {_ROW_PX - 2}px; padding: 0 2px; box-sizing: border-box;
        border-right: 1px solid rgba(255,255,255,.6); cursor: default; }}
  .f:hover {{ outline: 1px solid #333; z-index: 1; }}
  .empty {{ color: #999; padding: .5rem; }}
</style>
</head>
<body>
<h1>{safe_title}</h1>
<p class="meta">{total} samples &middot; icicle layout (root on top, width
&prop; inclusive samples); hover a cell for exact counts.</p>
<div class="flame">{body}</div>
</body>
</html>
"""


def write_flamegraph(
    folded: dict[str, int], path: str, *, title: str = "repro profile"
) -> None:
    """Render :func:`flamegraph_html` to ``path``."""
    with open(path, "w") as fh:
        fh.write(flamegraph_html(folded, title=title))
