"""The unified benchmark registry and trend ledger behind ``repro bench``.

Before this module the repo's performance record was three disconnected
``BENCH_*.json`` snapshots, each written by hand from a different script
invocation.  The ledger unifies them:

- **Discovery.**  Every ``benchmarks/bench_*.py`` is a candidate suite; the
  *runnable* ones expose a standalone ``main(argv) -> int`` CLI with a
  ``-o FILE`` JSON report (the convention established by
  ``bench_solver_fastpath`` / ``bench_monitor_overhead`` /
  ``bench_checkpoint_overhead``; the ``bench_fig*`` scripts are
  figure-reproduction drivers and are listed but not runnable here).
- **Rows.**  One run of one suite appends one JSON line to
  ``benchmarks/results/trend.jsonl``: suite name, timestamp (caller
  provided), git revision, CLI args, exit code, wall time, and *every*
  numeric leaf of the suite's JSON report flattened to dotted keys.  The
  ledger is append-only history -- regressions become a diffable series
  instead of a single overwritten snapshot.
- **Verdict.**  ``check_rows`` compares each fresh row against the previous
  ledger row for the same suite: deterministic work counters (the
  ``GATE_METRICS`` patterns, e.g. GSD inner-solve counts, which are exact
  under fixed seeds) gate at a relative tolerance; wall-times ride along as
  advisory context (noisy CI runners cannot gate on them -- the same
  stance the ``monitoring-artifacts`` CI job takes).  A suite whose own
  ``main`` exits non-zero always fails the verdict, so each suite's
  internal contracts (bit-identical cache, warm-start tolerance, overhead
  budget) stay enforced.
"""

from __future__ import annotations

import importlib.util
import json
import os
import subprocess
import time
from dataclasses import dataclass
from glob import glob

__all__ = [
    "BenchSuite",
    "BenchResult",
    "DEFAULT_LEDGER",
    "GATE_METRICS",
    "SUITE_ARGS",
    "discover_benches",
    "run_suite",
    "flatten_metrics",
    "make_row",
    "append_row",
    "load_rows",
    "check_rows",
    "git_revision",
]

#: Default ledger location, relative to the repo root.
DEFAULT_LEDGER = os.path.join("benchmarks", "results", "trend.jsonl")

#: Default argv per runnable suite (quick-but-meaningful configurations;
#: suites not listed here run with their own defaults).
SUITE_ARGS: dict[str, tuple[str, ...]] = {
    # solver_fastpath self-checks against its committed full-run reference:
    # the >20% inner-solve tolerance plus the hard in-run wall-speedup
    # floor (nofast / cache_warm >= 3x on the GSD case).  A floor breach
    # exits non-zero, which fails the ledger verdict even without a prior
    # trend row.
    "solver_fastpath": (
        "--quick",
        "--check",
        os.path.join("benchmarks", "results", "BENCH_solver_fastpath.json"),
    ),
    "checkpoint_overhead": ("--horizon", "48", "--repeats", "2", "--warmup", "1"),
    "monitor_overhead": ("--horizon", "96", "--repeats", "3", "--warmup", "1"),
    "span_overhead": ("--horizon", "96", "--repeats", "3", "--warmup", "1"),
    # scale self-gates sharded >= single-process throughput on the largest
    # fleet (an in-run paired comparison, safe on shared runners); the
    # week-wall-clock acceptance runs in the dedicated scale-smoke CI job
    # with the full 168-slot horizon, so the ledger run skips it.
    "scale": ("--repeats", "2", "--skip-week", "--check"),
    # advice self-gates the learning-augmented robustness contract: any
    # (1+λ) bound violation or never-trusted bit-identity failure exits
    # non-zero, which fails the ledger verdict even without a prior row.
    "advice": ("--horizon", "120", "--check"),
}

#: Per-suite metric-name substrings that gate the --check verdict.  Only
#: deterministic counters belong here: they are exact under fixed seeds, so
#: any increase beyond tolerance is a real regression, not runner noise.
GATE_METRICS: dict[str, tuple[str, ...]] = {
    "solver_fastpath": ("inner_solves", "cold_solves", "evaluations"),
    # The chain's evaluation count is a pure function of the seed, so any
    # growth is a real algorithmic regression, not runner noise.
    "scale": ("evaluations",),
    # Advice gating decisions are a pure function of the seeded traces
    # and the guard's thresholds, so these counters are exact: more
    # advised slots, budget blocks, or trust transitions than the prior
    # row means the gating behavior itself changed.
    "advice": ("advised_slots", "budget_blocks", "transition_count"),
}

#: Default relative tolerance for gated counters (matches the existing
#: bench_solver_fastpath REGRESSION_TOLERANCE).
DEFAULT_TOLERANCE = 0.20


@dataclass(frozen=True)
class BenchSuite:
    """One discovered ``benchmarks/bench_*.py`` script."""

    name: str  # "solver_fastpath" for bench_solver_fastpath.py
    path: str
    runnable: bool  # exposes main(argv) (the standalone-CLI convention)

    @property
    def default_args(self) -> tuple[str, ...]:
        return SUITE_ARGS.get(self.name, ())


@dataclass(frozen=True)
class BenchResult:
    """Outcome of one suite run."""

    suite: BenchSuite
    args: tuple[str, ...]
    exit_code: int
    wall_s: float
    report: dict


def discover_benches(bench_dir: str) -> dict[str, BenchSuite]:
    """Map suite name -> :class:`BenchSuite` for every ``bench_*.py``."""
    suites: dict[str, BenchSuite] = {}
    for path in sorted(glob(os.path.join(bench_dir, "bench_*.py"))):
        stem = os.path.splitext(os.path.basename(path))[0]
        name = stem[len("bench_"):]
        with open(path) as fh:
            source = fh.read()
        suites[name] = BenchSuite(
            name=name, path=path, runnable="def main(" in source
        )
    return suites


def run_suite(
    suite: BenchSuite,
    *,
    out_dir: str,
    extra_args: tuple[str, ...] = (),
) -> BenchResult:
    """Run one suite in-process and collect its JSON report.

    The suite module is imported by path (so ``repro bench`` works from any
    checkout layout) and its ``main`` is called with the suite's default
    args plus ``extra_args`` plus ``-o <tmp>``; the report is whatever JSON
    the suite wrote there.  ``SystemExit`` is treated as a return code.
    """
    if not suite.runnable:
        raise ValueError(f"suite {suite.name!r} has no standalone main(argv) CLI")
    os.makedirs(out_dir, exist_ok=True)
    out_json = os.path.join(out_dir, f"BENCH_{suite.name}.json")
    spec = importlib.util.spec_from_file_location(
        f"repro_bench_{suite.name}", suite.path
    )
    module = importlib.util.module_from_spec(spec)
    args = (*suite.default_args, *extra_args, "-o", out_json)
    started = time.perf_counter()
    try:
        spec.loader.exec_module(module)
        code = module.main(list(args))
    except SystemExit as exc:  # argparse errors, explicit sys.exit
        code = int(exc.code or 0)
    wall = time.perf_counter() - started
    report: dict = {}
    if os.path.exists(out_json):
        with open(out_json) as fh:
            report = json.load(fh)
    return BenchResult(
        suite=suite,
        args=args,
        exit_code=int(code or 0),
        wall_s=wall,
        report=report,
    )


def flatten_metrics(obj, prefix: str = "") -> dict[str, float]:
    """Numeric leaves of a nested report, dotted-keyed; bools become 0/1."""
    flat: dict[str, float] = {}
    if isinstance(obj, dict):
        for key, value in obj.items():
            sub = f"{prefix}.{key}" if prefix else str(key)
            flat.update(flatten_metrics(value, sub))
    elif isinstance(obj, list):
        for i, value in enumerate(obj):
            flat.update(flatten_metrics(value, f"{prefix}.{i}" if prefix else str(i)))
    elif isinstance(obj, bool):
        flat[prefix] = 1.0 if obj else 0.0
    elif isinstance(obj, (int, float)):
        flat[prefix] = float(obj)
    return flat


def git_revision(repo_dir: str | None = None) -> str:
    """Short git revision of the working tree, or ``"unknown"``."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=repo_dir,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 and out.stdout.strip() else "unknown"


def make_row(result: BenchResult, *, git_rev: str, timestamp: str) -> dict:
    """One ledger line for one suite run."""
    return {
        "schema": 1,
        "suite": result.suite.name,
        "timestamp": timestamp,
        "git_rev": git_rev,
        "args": list(result.args),
        "exit_code": result.exit_code,
        "wall_s": result.wall_s,
        "metrics": flatten_metrics(result.report),
    }


def append_row(path: str, row: dict) -> None:
    """Append one JSON line to the ledger, creating directories as needed."""
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "a") as fh:
        fh.write(json.dumps(row, sort_keys=True) + "\n")


def load_rows(path: str) -> list[dict]:
    """All ledger rows in file order; missing file -> empty history."""
    if not os.path.exists(path):
        return []
    rows: list[dict] = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                rows.append(json.loads(line))
    return rows


def check_rows(
    history: list[dict],
    fresh: list[dict],
    *,
    tolerance: float = DEFAULT_TOLERANCE,
) -> tuple[bool, list[str]]:
    """Regression verdict for ``fresh`` rows against prior ``history``.

    Returns ``(ok, messages)``.  For each fresh row: a non-zero suite exit
    code fails outright; each gated counter (see :data:`GATE_METRICS`) is
    compared against the *most recent* prior row for the same suite and
    fails when it grew by more than ``tolerance`` relative.  Suites with no
    prior row pass (first entry seeds the trend) with a note.
    """
    ok = True
    messages: list[str] = []
    for row in fresh:
        suite = row.get("suite", "?")
        if row.get("exit_code", 0) != 0:
            ok = False
            messages.append(
                f"{suite}: suite main() exited {row['exit_code']} "
                "(internal contract violation)"
            )
            continue
        prior = None
        for candidate in reversed(history):
            if candidate.get("suite") == suite:
                prior = candidate
                break
        if prior is None:
            messages.append(f"{suite}: no prior ledger row; seeding trend")
            continue
        patterns = GATE_METRICS.get(suite, ())
        metrics = row.get("metrics", {})
        prior_metrics = prior.get("metrics", {})
        gated = 0
        for key, value in sorted(metrics.items()):
            if not any(pat in key for pat in patterns):
                continue
            base = prior_metrics.get(key)
            if base is None or base <= 0:
                continue
            gated += 1
            ratio = value / base
            if ratio > 1.0 + tolerance:
                ok = False
                messages.append(
                    f"{suite}: {key} regressed {base:g} -> {value:g} "
                    f"({100 * (ratio - 1):+.1f}% > {100 * tolerance:.0f}% tolerance)"
                )
        messages.append(
            f"{suite}: {gated} gated counters vs {prior.get('git_rev', '?')}"
            f"@{prior.get('timestamp', '?')}, wall {row.get('wall_s', 0.0):.2f}s "
            f"(prior {prior.get('wall_s', 0.0):.2f}s, advisory)"
        )
    return ok, messages
