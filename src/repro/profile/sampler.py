"""A deterministic (signal-free) sampling profiler.

Classic sampling profilers interrupt the process with ``SIGPROF``; that is
cheap but non-portable, thread-hostile, and impossible to drive from a fake
clock in tests.  :class:`StackSampler` instead hooks ``sys.setprofile``:
the interpreter calls the hook at every function call/return boundary, and
the hook captures one stack sample whenever the *span clock*
(``time.perf_counter``, the same clock the telemetry spans read) has
crossed the next sampling deadline -- including a catch-up multiplier when
one long-running call spans several sampling periods, so folded weights
stay proportional to wall time.

Properties that matter here:

- **Non-perturbing.**  The hook reads the clock and a few frame attributes;
  it never touches any RNG, never mutates profiled objects, and never
  reenters profiled code, so a profiled run's *outputs* are bit-identical
  to an unprofiled one (asserted in tests).  Wall time does grow -- the
  tradeoff of profiling at the call boundary -- which is why the sampler is
  a ``repro profile`` tool, not an always-on tap.
- **Deterministic mechanics.**  Given the same workload and the same clock
  readings, the samples are the same; tests inject a synthetic clock and
  pin the folded output exactly.
- **Span-aware.**  When built with ``telemetry=``, each sample is prefixed
  with the currently open span path (``span:slot;span:gsd.solve;...``), so
  the flamegraph nests inside the same tree the span events describe.

Samples aggregate as folded stacks -- the ``root;child;leaf count`` format
understood by every flamegraph tool -- via :meth:`StackSampler.folded`.
"""

from __future__ import annotations

import sys
import time

__all__ = ["StackSampler"]


class StackSampler:
    """Sample the Python stack every ``interval_ms`` of profiled wall time.

    Use as a context manager around the workload::

        with StackSampler(interval_ms=2.0) as sampler:
            run_the_scenario()
        folded = sampler.folded()   # {"a;b;c": 42, ...}

    Parameters
    ----------
    interval_ms:
        Sampling period on the profile clock.  Smaller = finer attribution,
        more samples.
    clock:
        The time source (seconds, monotonic); defaults to
        ``time.perf_counter``.  Tests inject a synthetic clock to make the
        sample sequence fully deterministic.
    max_depth:
        Stack frames retained per sample, innermost out.
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry`; when given, samples
        are prefixed with the open span path at capture time.
    """

    def __init__(
        self,
        interval_ms: float = 2.0,
        *,
        clock=time.perf_counter,
        max_depth: int = 64,
        telemetry=None,
    ) -> None:
        if interval_ms <= 0:
            raise ValueError("interval_ms must be positive")
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        self.interval_s = interval_ms / 1e3
        self.max_depth = max_depth
        self._clock = clock
        self._spans = getattr(telemetry, "spans", None)
        self._samples: dict[tuple[str, ...], int] = {}
        self._next = 0.0
        self._started = 0.0
        self.duration_s = 0.0
        self._active = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._active:
            raise RuntimeError("sampler already running")
        self._active = True
        self._started = self._clock()
        self._next = self._started + self.interval_s
        sys.setprofile(self._hook)

    def stop(self) -> None:
        if not self._active:
            return
        sys.setprofile(None)
        self._active = False
        self.duration_s += self._clock() - self._started

    def __enter__(self) -> "StackSampler":
        self.start()
        return self

    def __exit__(self, *exc) -> bool:
        self.stop()
        return False

    # ------------------------------------------------------------------
    def _hook(self, frame, event: str, arg) -> None:
        now = self._clock()
        if now < self._next:
            return
        # One long call can cross several periods; weight the sample by the
        # number of deadlines passed so folded counts track wall time.
        missed = int((now - self._next) / self.interval_s) + 1
        stack = self._capture(frame)
        self._samples[stack] = self._samples.get(stack, 0) + missed
        self._next += missed * self.interval_s

    def _capture(self, frame) -> tuple[str, ...]:
        frames: list[str] = []
        depth = 0
        while frame is not None and depth < self.max_depth:
            code = frame.f_code
            module = frame.f_globals.get("__name__", code.co_filename)
            frames.append(f"{module}.{code.co_name}")
            frame = frame.f_back
            depth += 1
        frames.reverse()
        if self._spans is not None:
            prefix = [f"span:{name}" for name in self._spans.path()]
            frames = prefix + frames
        return tuple(frames)

    # ------------------------------------------------------------------
    @property
    def total_samples(self) -> int:
        """Total sample weight collected so far."""
        return sum(self._samples.values())

    def folded(self) -> dict[str, int]:
        """Collapsed stacks: ``"root;child;leaf" -> sample count``."""
        return {";".join(stack): count for stack, count in self._samples.items()}

    def hotspots(self, top: int = 10) -> list[tuple[str, int]]:
        """The ``top`` leaf frames by sample weight (self time)."""
        leaves: dict[str, int] = {}
        for stack, count in self._samples.items():
            leaf = stack[-1] if stack else "?"
            leaves[leaf] = leaves.get(leaf, 0) + count
        return sorted(leaves.items(), key=lambda kv: (-kv[1], kv[0]))[:top]
