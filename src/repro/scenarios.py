"""Prebuilt experiment scenarios matching the paper's section 5.1 setup.

:func:`paper_scenario` assembles the full evaluation environment:

* a 50 MW-peak data center of Opteron-2380 servers in 200 groups (~216 K
  servers);
* the FIU-style (default) or MSR-style workload trace scaled so its peak is
  ~50% of full-speed capacity;
* hourly CAISO-style electricity prices;
* on-site renewables scaled to ~20% of the carbon-unaware facility energy;
* a carbon budget equal to ``budget_fraction`` (default 92%) of the brown
  energy the carbon-unaware policy would draw, split 40% off-site
  renewables / 60% RECs;
* ``beta = 10`` and the library's delay-to-dollar calibration.

Budget calibration needs two sweeps (the paper does the same implicitly by
normalizing budgets to the carbon-unaware algorithm's 1.55e5 MWh): first the
unaware *facility* energy with no renewables fixes the on-site scale, then
the unaware *brown* energy with on-site supply in place fixes the budget.

:func:`small_scenario` is a scaled-down variant for tests and quick demos.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from .cluster.fleet import Fleet, ServerGroup, default_fleet
from .cluster.switching import SwitchingCostModel
from .core.config import DataCenterModel
from .energy.renewables import RenewablePortfolio, onsite_mix
from .solvers.batch import batch_enumerate
from .sim.environment import Environment
from .traces.base import HOURS_PER_YEAR, Trace
from .traces.price import price_trace
from .traces.workload_fiu import fiu_workload
from .traces.workload_msr import msr_workload

__all__ = ["Scenario", "paper_scenario", "small_scenario"]


@dataclass(frozen=True)
class Scenario:
    """A ready-to-run experiment bundle."""

    model: DataCenterModel
    environment: Environment
    alpha: float
    unaware_brown: float  # MWh the carbon-unaware policy would draw
    unaware_cost: float  # its average hourly cost, $
    budget: float  # allowed brown energy, MWh

    @property
    def horizon(self) -> int:
        """Number of slots."""
        return self.environment.horizon

    @property
    def budget_fraction(self) -> float:
        """Budget relative to the unaware brown energy."""
        return self.budget / self.unaware_brown if self.unaware_brown else np.inf

    def with_budget_fraction(
        self, fraction: float, *, offsite_fraction: float | None = None
    ) -> "Scenario":
        """Rescale the carbon budget (Fig. 5(a,b) sweeps)."""
        if fraction <= 0:
            raise ValueError("budget fraction must be positive")
        current = self.environment.portfolio
        split = (
            current.offsite_fraction if offsite_fraction is None else offsite_fraction
        )
        budget = fraction * self.unaware_brown
        portfolio = current.with_budget_split(budget / self.alpha, split)
        return replace(
            self,
            environment=self.environment.with_portfolio(portfolio),
            budget=budget,
        )

    def with_switching(self, fraction: float, **kwargs) -> "Scenario":
        """Attach a switching-cost model (Fig. 5(d) sweep)."""
        model = replace(
            self.model, switching=SwitchingCostModel.from_fraction(fraction, **kwargs)
        )
        return replace(self, model=model)


def _build(
    model: DataCenterModel,
    workload: Trace,
    price: Trace,
    *,
    horizon: int,
    seed: int,
    alpha: float,
    budget_fraction: float,
    onsite_fraction: float,
    offsite_fraction: float,
) -> Scenario:
    rng = np.random.default_rng(seed)
    onsite_shape = onsite_mix(horizon, solar_fraction=0.6, rng=rng)
    offsite_shape = Trace(
        onsite_mix(horizon, solar_fraction=0.45, rng=rng).values,
        name="offsite-renewables",
        unit="MW",
    )

    # Pass 1: unaware facility energy with no renewables -> on-site scale.
    zeros = np.zeros(horizon)
    sweep0 = batch_enumerate(
        model, workload.values, zeros, price.values, q=0.0, V=1.0
    )
    total_energy = float(
        (model.power_model.pue * sweep0.it_power).sum()
    )
    onsite = onsite_shape.scale_to_total(onsite_fraction * total_energy)

    # Pass 2: unaware brown energy with on-site supply -> the budget.
    sweep1 = batch_enumerate(
        model, workload.values, onsite.values, price.values, q=0.0, V=1.0
    )
    unaware_brown = sweep1.total_brown
    budget = budget_fraction * unaware_brown

    portfolio = RenewablePortfolio(
        onsite=onsite, offsite=offsite_shape, recs=0.0
    ).with_budget_split(budget / alpha, offsite_fraction)

    environment = Environment(workload=workload, portfolio=portfolio, price=price)
    return Scenario(
        model=model,
        environment=environment,
        alpha=alpha,
        unaware_brown=unaware_brown,
        unaware_cost=sweep1.average_cost,
        budget=budget,
    )


def paper_scenario(
    *,
    horizon: int = HOURS_PER_YEAR,
    workload: str = "fiu",
    seed: int = 2012,
    num_groups: int = 200,
    servers_per_group: int = 1080,
    alpha: float = 1.0,
    budget_fraction: float = 0.92,
    onsite_fraction: float = 0.20,
    offsite_fraction: float = 0.40,
    beta: float = 10.0,
    gamma: float = 0.95,
) -> Scenario:
    """The paper's default evaluation setup (section 5.1).

    Parameters mirror the paper's stated defaults; ``workload`` selects the
    FIU-style (``"fiu"``) or MSR-style (``"msr"``) trace.
    """
    fleet = default_fleet(num_groups=num_groups, servers_per_group=servers_per_group)
    model = DataCenterModel(fleet=fleet, beta=beta, gamma=gamma)
    peak = 0.5 * fleet.max_capacity  # paper: ~50% of full-speed capacity
    if workload == "fiu":
        trace = fiu_workload(horizon, peak=peak, seed=seed)
    elif workload == "msr":
        trace = msr_workload(horizon, peak=peak, seed=seed)
    else:
        raise ValueError(f"unknown workload {workload!r} (use 'fiu' or 'msr')")
    price = price_trace(horizon, seed=seed + 1)
    return _build(
        model,
        trace,
        price,
        horizon=horizon,
        seed=seed + 2,
        alpha=alpha,
        budget_fraction=budget_fraction,
        onsite_fraction=onsite_fraction,
        offsite_fraction=offsite_fraction,
    )


def small_scenario(
    *,
    horizon: int = 24 * 14,
    num_groups: int = 8,
    servers_per_group: int = 50,
    seed: int = 42,
    budget_fraction: float = 0.92,
    **kwargs,
) -> Scenario:
    """A laptop-friendly scenario for tests and quick examples: two weeks,
    a few hundred servers, same structure as :func:`paper_scenario`."""
    return paper_scenario(
        horizon=horizon,
        num_groups=num_groups,
        servers_per_group=servers_per_group,
        seed=seed,
        budget_fraction=budget_fraction,
        **kwargs,
    )
