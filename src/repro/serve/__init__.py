"""Long-running online control: COCA as a service, not a batch job.

COCA is an online algorithm -- it needs only currently-available
information -- yet everything before this package ran it over traces known
up front.  :mod:`repro.serve` closes that gap: a slot-driven control loop
(:class:`~repro.serve.loop.ControlService`) pulls each slot's
price/renewables/arrival observations from a pluggable
:class:`~repro.serve.signals.SignalSource`, resolves feed imperfections
through an explicit staleness policy
(:class:`~repro.serve.staleness.StalenessResolver`, degrading through the
:mod:`repro.faults` path), and executes the slot through the same
:class:`~repro.sim.engine.SlotRunner` the batch engine uses -- so
``repro serve --source replay`` is bit-identical to ``repro run``.

Operational trimmings: live :mod:`repro.monitor` alerts, periodic
dashboard re-renders, cadenced :mod:`repro.state` checkpoints plus a frame
journal (SIGTERM -> ``repro resume`` completes bit-identically), and a
stdlib HTTP status endpoint (:class:`~repro.serve.status.StatusServer`).
See ``docs/SERVING.md`` for the architecture and runbook.
"""

from .config import SOURCE_KINDS, ServeConfig
from .environment import JOURNAL_NAME, FrameJournal, LiveEnvironment
from .loop import ControlService, ServiceResult
from .signals import (
    FileTailSignalSource,
    ReplaySignalSource,
    SignalFrame,
    SignalSource,
    SyntheticSignalSource,
    frames_from_environment,
    write_feed,
)
from .staleness import RESOLUTIONS, StalenessResolver
from .status import StatusBoard, StatusServer

__all__ = [
    "SOURCE_KINDS",
    "ServeConfig",
    "JOURNAL_NAME",
    "FrameJournal",
    "LiveEnvironment",
    "ControlService",
    "ServiceResult",
    "SignalFrame",
    "SignalSource",
    "ReplaySignalSource",
    "FileTailSignalSource",
    "SyntheticSignalSource",
    "frames_from_environment",
    "write_feed",
    "RESOLUTIONS",
    "StalenessResolver",
    "StatusBoard",
    "StatusServer",
]
