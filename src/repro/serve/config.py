"""Service configuration and its validation (``repro serve --dry-run``).

A long-running service should fail at *startup*, loudly and completely,
rather than hours in: :meth:`ServeConfig.problems` collects every
misconfiguration it can detect statically -- unknown source kind, a file
source with no readable feed, nonsensical periods/deadlines/cadences, an
unwritable checkpoint directory -- and returns them all at once, which is
what ``--dry-run`` prints before exiting 0 (clean) or 1 (problems).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

__all__ = ["ServeConfig", "SOURCE_KINDS"]

#: Signal-source kinds ``repro serve --source`` accepts.
SOURCE_KINDS = ("replay", "file", "synthetic")


@dataclass
class ServeConfig:
    """Everything ``repro serve`` needs beyond the scenario itself."""

    source: str = "replay"
    feed: str | None = None  # JSONL feed path (file source)
    slot_period_s: float = 0.0  # wall-clock pacing; 0 = free-running
    signal_timeout_s: float = 0.0  # staleness budget per slot; 0 = one poll
    poll_interval_s: float = 0.05
    solve_deadline_ms: float | None = None
    checkpoint_dir: str | None = None
    checkpoint_every: int = 1
    checkpoint_keep: int = 3
    status_port: int | None = None  # None = endpoint disabled; 0 = ephemeral
    status_port_file: str | None = None
    dashboard_out: str | None = None
    dashboard_every: int = 0  # slots between re-renders; 0 = disabled
    alert_rearm: int | None = None  # AlertChannel dedup window, in slots
    max_slots: int | None = None  # stop early after N slots (smoke tests)
    source_seed: int = 0  # synthetic-source delivery seed
    fallback: str = "last_action"  # degraded action when a slot solve fails
    retries: int = 1  # slot-solve retries before falling back
    synthetic: dict = field(default_factory=dict)  # p_drop/p_late/... overrides

    # ------------------------------------------------------------------
    def problems(self) -> list[str]:
        """Every detectable misconfiguration, as printable one-liners."""
        out: list[str] = []
        if self.source not in SOURCE_KINDS:
            out.append(
                f"unknown source {self.source!r} (choose from {', '.join(SOURCE_KINDS)})"
            )
        if self.source == "file":
            if not self.feed:
                out.append("--source file requires --feed FILE")
            elif not os.path.exists(self.feed):
                out.append(f"feed file not found: {self.feed}")
            elif not os.access(self.feed, os.R_OK):
                out.append(f"feed file not readable: {self.feed}")
        elif self.feed:
            out.append(f"--feed only applies to --source file (source is {self.source})")
        if self.slot_period_s < 0:
            out.append(f"--slot-period-s must be >= 0, got {self.slot_period_s}")
        if self.signal_timeout_s < 0:
            out.append(f"--signal-timeout-s must be >= 0, got {self.signal_timeout_s}")
        if self.poll_interval_s <= 0:
            out.append(f"--poll-interval-s must be > 0, got {self.poll_interval_s}")
        if self.solve_deadline_ms is not None and self.solve_deadline_ms <= 0:
            out.append(
                f"--solve-deadline-ms must be > 0, got {self.solve_deadline_ms}"
            )
        if self.checkpoint_every < 1:
            out.append(f"--checkpoint-every must be >= 1, got {self.checkpoint_every}")
        if self.checkpoint_keep < 1:
            out.append(f"--checkpoint-keep must be >= 1, got {self.checkpoint_keep}")
        if self.checkpoint_dir is not None:
            parent = os.path.dirname(os.path.abspath(self.checkpoint_dir))
            if os.path.exists(self.checkpoint_dir):
                if not os.path.isdir(self.checkpoint_dir):
                    out.append(f"checkpoint dir is not a directory: {self.checkpoint_dir}")
                elif not os.access(self.checkpoint_dir, os.W_OK):
                    out.append(f"checkpoint dir not writable: {self.checkpoint_dir}")
            elif not os.path.isdir(parent) or not os.access(parent, os.W_OK):
                out.append(
                    f"cannot create checkpoint dir {self.checkpoint_dir} "
                    f"(parent {parent} missing or unwritable)"
                )
        if self.status_port is not None and not (0 <= self.status_port <= 65535):
            out.append(f"--status-port must be in [0, 65535], got {self.status_port}")
        if self.status_port_file and self.status_port is None:
            out.append("--status-port-file requires --status-port")
        if self.dashboard_every < 0:
            out.append(f"--dashboard-every must be >= 0, got {self.dashboard_every}")
        if self.dashboard_every > 0 and not self.dashboard_out:
            out.append("--dashboard-every requires --dashboard-out FILE")
        if self.alert_rearm is not None and self.alert_rearm < 1:
            out.append(f"--alert-rearm must be >= 1 slot, got {self.alert_rearm}")
        if self.max_slots is not None and self.max_slots < 1:
            out.append(f"--max-slots must be >= 1, got {self.max_slots}")
        if self.fallback not in ("last_action", "proportional"):
            out.append(
                f"--fallback must be last_action or proportional, got {self.fallback!r}"
            )
        if self.retries < 0:
            out.append(f"--retries must be >= 0, got {self.retries}")
        for name, p in self.synthetic.items():
            if not 0.0 <= float(p) <= 1.0:
                out.append(f"synthetic probability {name} must be in [0, 1], got {p}")
        return out

    def describe(self) -> str:
        """One-line summary for startup logs and ``--dry-run``."""
        bits = [f"source={self.source}"]
        if self.feed:
            bits.append(f"feed={self.feed}")
        bits.append(f"slot_period={self.slot_period_s:g}s")
        if self.signal_timeout_s:
            bits.append(f"signal_timeout={self.signal_timeout_s:g}s")
        if self.solve_deadline_ms is not None:
            bits.append(f"solve_deadline={self.solve_deadline_ms:g}ms")
        if self.checkpoint_dir:
            bits.append(
                f"checkpoints={self.checkpoint_dir} "
                f"(every {self.checkpoint_every}, keep {self.checkpoint_keep})"
            )
        if self.status_port is not None:
            bits.append(f"status_port={self.status_port}")
        if self.dashboard_every:
            bits.append(f"dashboard={self.dashboard_out} every {self.dashboard_every}")
        if self.alert_rearm is not None:
            bits.append(f"alert_rearm={self.alert_rearm}")
        if self.max_slots is not None:
            bits.append(f"max_slots={self.max_slots}")
        return " ".join(bits)
