"""A mutable, append-only environment fed by resolved signal frames.

The batch :class:`~repro.sim.environment.Environment` owns its whole
horizon as immutable traces; a service learns its slots one at a time.
:class:`LiveEnvironment` presents the same read API the
:class:`~repro.sim.engine.SlotRunner` consumes -- ``observation(t)`` /
``actual_arrival(t)`` / ``offsite(t)`` / ``horizon`` -- over a growing
prefix of resolved frames, refusing reads past what has been fed
(programming errors, not data errors, so they raise).

Two extra contracts make serve runs crash-safe and auditable:

- :meth:`fingerprint` gives :func:`repro.state.serialize.environment_fingerprint`
  something exact to validate resumes against.  With a ``base`` environment
  (replay mode) it delegates to the full trace fingerprint, so checkpoints
  written by a replay serve are *interchangeable* with batch ``repro run``
  checkpoints.  Without one, it CRCs the resolved prefix, so a resumed
  service refuses a journal that diverged from what the checkpoint saw.
- :class:`FrameJournal` persists every resolved frame (JSONL, flushed per
  append), so a killed service can refill the exact prefix -- including
  values that were synthesized by the staleness policy and exist nowhere
  else -- before resuming.
"""

from __future__ import annotations

import json
import os
import zlib

import numpy as np

from ..core.controller import SlotObservation
from ..energy.renewables import RenewablePortfolio
from ..sim.environment import Environment
from ..traces.base import Trace
from .signals import SignalFrame

__all__ = ["LiveEnvironment", "FrameJournal", "JOURNAL_NAME"]

#: Journal filename inside a serve checkpoint directory.
JOURNAL_NAME = "frames.jsonl"


class LiveEnvironment:
    """Environment view over an append-only prefix of resolved frames."""

    def __init__(self, horizon: int, *, base: Environment | None = None) -> None:
        if horizon < 1:
            raise ValueError("horizon must be positive")
        if base is not None and base.horizon != horizon:
            raise ValueError(
                f"base environment horizon {base.horizon} != {horizon}"
            )
        self._horizon = int(horizon)
        self.base = base
        self.frames: list[SignalFrame] = []

    # ------------------------------------------------------- feed side
    def append(self, frame: SignalFrame) -> None:
        """Accept the next slot's resolved frame (slots must be contiguous;
        the staleness resolver guarantees every slot resolves to *some*
        frame, degraded or not)."""
        expected = len(self.frames)
        if frame.slot != expected:
            raise ValueError(
                f"frame for slot {frame.slot} appended out of order "
                f"(expected {expected}); the slot clock never moves backwards"
            )
        if expected >= self._horizon:
            raise ValueError(f"horizon {self._horizon} already fully resolved")
        if frame.missing_fields:
            raise ValueError(
                f"unresolved frame appended (missing {frame.missing_fields}); "
                "resolve staleness before feeding the environment"
            )
        self.frames.append(frame)

    @property
    def resolved(self) -> int:
        """Number of slots with a resolved frame."""
        return len(self.frames)

    # ------------------------------------------------------- runner side
    @property
    def horizon(self) -> int:
        return self._horizon

    def _frame(self, t: int) -> SignalFrame:
        if not (0 <= t < len(self.frames)):
            raise IndexError(
                f"slot {t} is not resolved yet ({len(self.frames)} frames fed)"
            )
        return self.frames[t]

    def observation(self, t: int) -> SlotObservation:
        f = self._frame(t)
        return SlotObservation(
            t=t,
            arrival_rate=float(f.arrival),
            onsite=float(f.onsite),
            price=float(f.price),
            network_delay=float(f.network_delay),
            pue=None if f.pue is None else float(f.pue),
        )

    def actual_arrival(self, t: int) -> float:
        return float(self._frame(t).arrival_actual)

    def offsite(self, t: int) -> float:
        return float(self._frame(t).offsite)

    # ------------------------------------------------------- record side
    def _trace(self, field: str, name: str, unit: str) -> Trace:
        if not self.frames:
            raise ValueError("no frames resolved; nothing to assemble")
        values = np.asarray(
            [float(getattr(f, field)) for f in self.frames], dtype=np.float64
        )
        return Trace(values, name=name, unit=unit)

    @property
    def price(self) -> Trace:
        if self.base is not None:
            return self.base.price
        return self._trace("price", "served-price", "$/MWh")

    @property
    def portfolio(self) -> RenewablePortfolio:
        """The renewable supply actually observed (record assembly)."""
        if self.base is not None:
            return self.base.portfolio
        return RenewablePortfolio(
            onsite=self._trace("onsite", "served-onsite", "MW"),
            offsite=self._trace("offsite", "served-offsite", "MW"),
            recs=0.0,
        )

    # ------------------------------------------------------- identity
    def fingerprint(self) -> int:
        """CRC32 the resume contract validates against.

        Replay mode delegates to the wrapped environment's full-trace
        fingerprint (checkpoint interchangeability with ``repro run``);
        live mode CRCs the resolved prefix, so the fingerprint at slot
        ``k`` is a pure function of the first ``k`` resolved frames.
        """
        if self.base is not None:
            from ..state.serialize import environment_fingerprint

            return environment_fingerprint(self.base)
        crc = zlib.crc32(str(self._horizon).encode())
        for f in self.frames:
            row = json.dumps(f.to_dict(), sort_keys=True, separators=(",", ":"))
            crc = zlib.crc32(row.encode(), crc)
        return crc & 0xFFFFFFFF


class FrameJournal:
    """Append-only JSONL persistence of resolved frames.

    One line per resolved frame, flushed per append: after a SIGKILL the
    journal holds every frame the service committed to (a torn final line
    is tolerated on read), which is exactly what a resume needs to refill
    the :class:`LiveEnvironment` prefix bit-identically.
    """

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self._fh = open(self.path, "a")

    def append(self, frame: SignalFrame) -> None:
        self._fh.write(json.dumps(frame.to_dict(), sort_keys=True))
        self._fh.write("\n")
        self._fh.flush()

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    @staticmethod
    def load(path: str, *, upto: int | None = None) -> list[SignalFrame]:
        """Read resolved frames back, tolerating a torn final line.

        ``upto`` truncates to the first ``upto`` frames (the checkpoint's
        slot): frames journaled after the checkpoint was written are
        re-resolved from the source on resume, not replayed.
        """
        frames: list[SignalFrame] = []
        if not os.path.exists(path):
            return frames
        with open(path) as fh:
            for line in fh:
                if not line.endswith("\n"):
                    break  # torn tail from a mid-append kill
                line = line.strip()
                if not line:
                    continue
                frames.append(SignalFrame.from_dict(json.loads(line)))
                if upto is not None and len(frames) >= upto:
                    break
        return frames

    @staticmethod
    def truncate(path: str, frames: list[SignalFrame]) -> None:
        """Rewrite the journal to exactly ``frames`` (resume housekeeping,
        dropping post-checkpoint lines so journal and checkpoint agree)."""
        from ..state.atomic import atomic_write_text

        atomic_write_text(
            path,
            "".join(
                json.dumps(f.to_dict(), sort_keys=True) + "\n" for f in frames
            ),
        )
