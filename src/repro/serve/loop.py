"""The serving loop: one :class:`~repro.sim.engine.SlotRunner` step per slot,
forever (or until the horizon, a stop signal, or ``--max-slots``).

:class:`ControlService` composes the pieces the previous subsystems built:

- the **runner** executes each slot through the *same* code as batch
  ``repro run`` (bit-identity by construction);
- the **resolver** turns the signal feed into exactly one complete frame
  per slot, degrading losses through the fault injector;
- the **journal** persists each resolved frame before the slot executes,
  so a SIGKILL loses at most the in-flight slot;
- the **board** (and its HTTP view) is refreshed once per slot;
- the **dashboard** re-renders every N slots from a bounded ring of recent
  events, so operators get a live HTML health report without unbounded
  memory;
- **alerts** stream to their sinks the moment monitors raise them (the
  suite taps the telemetry chain; nothing here is replay-after-the-fact).

Stopping is cooperative: the loop checks ``stop_event`` between slots and
while pacing, writes a *forced* checkpoint at the exact slot boundary, and
reports where it stopped -- which is what makes SIGTERM + ``repro resume``
(or ``repro serve --resume``) complete the horizon bit-identically.
"""

from __future__ import annotations

import threading
import time as _time
from dataclasses import dataclass
from typing import Callable

from ..sim.engine import SlotRunner
from ..sim.metrics import SimulationRecord
from .environment import FrameJournal, LiveEnvironment
from .staleness import StalenessResolver
from .status import StatusBoard

__all__ = ["ControlService", "ServiceResult"]


@dataclass(frozen=True)
class ServiceResult:
    """How a service run ended.

    ``status`` is ``"completed"`` (horizon finished; ``record`` holds the
    assembled :class:`SimulationRecord`) or ``"stopped"`` (stop signal or
    ``max_slots``; ``stopped_at`` is the first unexecuted slot, which is
    exactly the slot the forced checkpoint resumes into).
    """

    status: str
    stopped_at: int | None = None
    record: SimulationRecord | None = None
    checkpoint_path: str | None = None


class ControlService:
    """Drives a :class:`SlotRunner` from a resolved signal feed."""

    def __init__(
        self,
        runner: SlotRunner,
        resolver: StalenessResolver,
        *,
        board: StatusBoard | None = None,
        suite=None,
        journal: FrameJournal | None = None,
        budget_mwh: float | None = None,
        slot_period_s: float = 0.0,
        max_slots: int | None = None,
        dashboard_out: str | None = None,
        dashboard_every: int = 0,
        recent_events=None,
        clock: Callable[[], float] | None = None,
    ) -> None:
        self.runner = runner
        self.resolver = resolver
        self.board = board if board is not None else StatusBoard()
        self.suite = suite
        self.journal = journal
        self.budget_mwh = budget_mwh
        self.slot_period_s = float(slot_period_s)
        self.max_slots = max_slots
        self.dashboard_out = dashboard_out
        self.dashboard_every = int(dashboard_every)
        #: Bounded buffer of recent events backing the dashboard renders
        #: (anything with a ``.events`` list; see RingBufferTracer).
        self.recent_events = recent_events
        self._clock = clock if clock is not None else _time.monotonic
        self.slots_run = 0

    # ------------------------------------------------------------------
    def _render_dashboard(self) -> None:
        if not self.dashboard_out or self.recent_events is None:
            return
        from ..monitor.dashboard import write_dashboard

        write_dashboard(
            list(self.recent_events.events),
            self.dashboard_out,
            suite=self.suite,
            title=f"repro serve (slot {self.runner.start_slot + self.slots_run})",
        )

    def _update_board(self, slot: int, state: str) -> None:
        runner = self.runner
        brown = float(sum(runner.cols["brown_energy"]))
        cost = float(sum(runner.cols["cost"]))
        latency = {}
        hist = runner.tele.metrics.histogram("sim.solve_time_s")
        if hist.count:
            latency = {
                "count": hist.count,
                "p50_ms": hist.percentile(50) * 1000.0,
                "p90_ms": hist.percentile(90) * 1000.0,
                "p99_ms": hist.percentile(99) * 1000.0,
                "max_ms": hist.max * 1000.0,
            }
        alerts: dict = {"total": 0}
        if self.suite is not None:
            channel = self.suite.channel
            alerts = {
                "total": channel.count(),
                "info": channel.count("info"),
                "warning": channel.count("warning"),
                "critical": channel.count("critical"),
                "worst": channel.worst_severity,
            }
        checkpointing = {}
        if runner.checkpoint is not None:
            checkpointing = {
                "dir": runner.checkpoint.directory,
                "every": runner.checkpoint.every,
                "written": runner.checkpoint.written,
            }
        self.board.update(
            state=state,
            slot=slot,
            horizon=runner.horizon,
            controller=runner.controller.status_dict(),
            carbon={
                "brown_mwh": brown,
                "budget_mwh": self.budget_mwh,
                "headroom_mwh": (
                    None if self.budget_mwh is None else self.budget_mwh - brown
                ),
            },
            cost_dollars=cost,
            alerts=alerts,
            solver_latency=latency,
            signals=self.resolver.stats(),
            checkpoint=checkpointing,
        )

    # ------------------------------------------------------------------
    def _stop(self, slot: int, reason: str) -> ServiceResult:
        """Forced checkpoint at the slot boundary, then report."""
        path = self.runner.checkpoint_now(slot)
        tele = self.runner.tele
        if tele.enabled:
            tele.emit("serve.stop", slot=slot, reason=reason, checkpoint=path)
        self._update_board(slot, "stopped")
        self._render_dashboard()
        return ServiceResult(status="stopped", stopped_at=slot, checkpoint_path=path)

    def run(self, stop_event: threading.Event | None = None) -> ServiceResult:
        """Serve slots until the horizon, a stop, or ``max_slots``."""
        stop_event = stop_event if stop_event is not None else threading.Event()
        runner = self.runner
        tele = runner.tele
        if tele.enabled:
            tele.emit(
                "serve.start",
                slot=runner.start_slot,
                horizon=runner.horizon,
                source=self.resolver.source.describe(),
                slot_period_s=self.slot_period_s,
            )
        self._update_board(runner.start_slot, "running")
        period = self.slot_period_s
        epoch = self._clock() if period > 0 else 0.0

        for t in range(runner.start_slot, runner.horizon):
            if stop_event.is_set():
                return self._stop(t, "signal")
            if self.max_slots is not None and self.slots_run >= self.max_slots:
                return self._stop(t, "max_slots")

            frame = self.resolver.resolve(t)
            # Journal before executing: after a kill mid-step the frame is
            # on disk and the resumed run re-executes the slot from it.
            if isinstance(runner.environment, LiveEnvironment):
                runner.environment.append(frame)
            if self.journal is not None:
                self.journal.append(frame)
            # Advice-aware controllers consume the frame's optional
            # forecast payload; a frame without one degrades to fallback.
            ingest = getattr(runner.controller, "ingest_frame", None)
            if ingest is not None:
                ingest(frame)

            runner.step(t)
            self.slots_run += 1
            self._update_board(t + 1, "running")
            if self.dashboard_every and (t + 1) % self.dashboard_every == 0:
                self._render_dashboard()

            if period > 0:
                # Pace against the epoch (not per-slot sleeps), so slow
                # solves borrow from the idle time instead of drifting.
                deadline = epoch + (self.slots_run) * period
                remaining = deadline - self._clock()
                if remaining > 0 and stop_event.wait(remaining):
                    return self._stop(t + 1, "signal")

        record = runner.finish()
        if tele.enabled:
            tele.emit("serve.complete", slots=runner.horizon)
        self._update_board(runner.horizon, "completed")
        self._render_dashboard()
        return ServiceResult(status="completed", record=record)
