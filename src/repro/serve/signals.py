"""Signal sources: where the serving loop's per-slot observations come from.

A batch run owns its whole horizon up front; a *service* learns each slot's
electricity price, on-site renewable supply, and workload arrivals only as
they happen.  :class:`SignalFrame` is one slot's worth of observations, and
:class:`SignalSource` is the pluggable feed interface the control loop
polls:

==============================  =======================================
:class:`ReplaySignalSource`     wraps an existing :class:`Environment`;
                                every frame arrives on time and complete
                                (the deterministic mode the bit-identity
                                contract is stated for)
:class:`FileTailSignalSource`   tails an appended JSONL feed file (one
                                frame object per line) -- the integration
                                point for real price/carbon/arrival feeds
:class:`SyntheticSignalSource`  seeded load generator that misdelivers on
                                purpose (late, missing fields, dropped
                                and swapped frames) for staleness testing
==============================  =======================================

``poll()`` is non-blocking by design: it returns the next available frame
or ``None`` ("nothing new yet"), and the
:class:`~repro.serve.staleness.StalenessResolver` owns all timing policy.
Sources never sleep and never read wall clocks, which keeps every mode
unit-testable with fake clocks and keeps replay runs clock-free.
"""

from __future__ import annotations

import json
import pathlib
from abc import ABC, abstractmethod
from dataclasses import asdict, dataclass

import numpy as np

from ..sim.environment import Environment

__all__ = [
    "SignalFrame",
    "SignalSource",
    "ReplaySignalSource",
    "FileTailSignalSource",
    "SyntheticSignalSource",
    "frames_from_environment",
    "write_feed",
]

#: Frame fields a feed may omit (``None`` = field missing; the staleness
#: resolver degrades it through the fault injector instead of crashing).
OPTIONAL_FIELDS = ("arrival", "onsite", "price", "arrival_actual", "offsite")


@dataclass(frozen=True)
class SignalFrame:
    """One slot's observations as delivered by a feed.

    ``arrival`` is the *predicted* arrival rate the controller plans
    against; ``arrival_actual`` is the realized rate billed after the
    decision; ``offsite`` is the off-site renewable supply realized at the
    end of the slot.  Any of the optional fields may be ``None`` when the
    feed lost that signal -- the resolver substitutes a degraded value and
    routes the loss through :class:`~repro.faults.FaultInjector`.
    """

    slot: int
    arrival: float | None = None
    onsite: float | None = None
    price: float | None = None
    arrival_actual: float | None = None
    offsite: float | None = None
    network_delay: float = 0.0
    pue: float | None = None
    #: Optional forecast-window payload (``ForecastWindow.to_dict()``) for
    #: the advice layer; feeds attach it on advice-frame boundary slots.
    #: Never required: a lost payload degrades advice to plain COCA.
    forecast: dict | None = None

    def to_dict(self) -> dict:
        """JSON-ready form (the feed-file line format)."""
        return {k: v for k, v in asdict(self).items() if v is not None or k == "slot"}

    @classmethod
    def from_dict(cls, obj: dict) -> "SignalFrame":
        """Inverse of :meth:`to_dict`; unknown keys are ignored so feeds
        can carry extra metadata."""
        known = {f for f in cls.__dataclass_fields__}
        fields = {k: v for k, v in obj.items() if k in known}
        fields["slot"] = int(fields["slot"])
        return cls(**fields)

    @property
    def missing_fields(self) -> tuple[str, ...]:
        """Core observation fields this frame did not deliver."""
        return tuple(f for f in OPTIONAL_FIELDS if getattr(self, f) is None)


class SignalSource(ABC):
    """A feed of :class:`SignalFrame` objects, polled by the serving loop."""

    @abstractmethod
    def poll(self) -> SignalFrame | None:
        """The next available frame, or ``None`` when nothing new has
        arrived.  Frames are not guaranteed to be in slot order and slots
        may be skipped entirely -- the resolver handles both."""

    def seek(self, slot: int) -> None:
        """Position the source so the next deliveries are for ``slot``
        onward (resume support).  Sources that cannot seek raise."""
        raise NotImplementedError(f"{type(self).__name__} cannot seek")

    @property
    def horizon(self) -> int | None:
        """Number of slots the source can ever deliver (None = unbounded)."""
        return None

    def close(self) -> None:
        """Release any underlying resource; idempotent."""

    def describe(self) -> str:
        """One-line human-readable identity for logs and ``--dry-run``."""
        return type(self).__name__


def _forecast_payload(
    environment: Environment, slot: int, length: int
) -> dict | None:
    """The advice window payload a feed attaches at a frame-boundary slot."""
    from ..advice.forecast import TraceForecastProvider

    window = TraceForecastProvider(environment).window(slot, length)
    return None if window is None else window.to_dict()


def frames_from_environment(
    environment: Environment, *, start: int = 0, advice_frame: int | None = None
):
    """Yield the fully-populated frame for each slot of ``environment``.

    ``advice_frame`` attaches a forecast-window payload (for the
    :mod:`repro.advice` layer) on every slot that starts an advice frame
    of that length; ``None`` keeps frames payload-free.
    """
    for t in range(start, environment.horizon):
        obs = environment.observation(t)
        forecast = None
        if advice_frame is not None and t % advice_frame == 0:
            forecast = _forecast_payload(environment, t, advice_frame)
        yield SignalFrame(
            slot=t,
            arrival=obs.arrival_rate,
            onsite=obs.onsite,
            price=obs.price,
            arrival_actual=environment.actual_arrival(t),
            offsite=environment.offsite(t),
            network_delay=obs.network_delay,
            pue=obs.pue,
            forecast=forecast,
        )


def write_feed(environment: Environment, path: str | pathlib.Path, *,
               start: int = 0, stop: int | None = None,
               advice_frame: int | None = None) -> int:
    """Export an environment as a JSONL feed file (one frame per line).

    The bridge between the trace world and the serving world: generate a
    feed from any scenario, then serve it back with ``--source file``.
    ``advice_frame`` attaches forecast-window payloads on frame-boundary
    slots (see :func:`frames_from_environment`).  Returns the number of
    frames written.
    """
    from ..traces.io import append_jsonl_rows

    stop = environment.horizon if stop is None else min(stop, environment.horizon)
    rows = [
        f.to_dict()
        for f in frames_from_environment(
            environment, start=start, advice_frame=advice_frame
        )
        if f.slot < stop
    ]
    append_jsonl_rows(path, rows, truncate=True)
    return len(rows)


class ReplaySignalSource(SignalSource):
    """Replays an :class:`Environment` frame by frame, always on time.

    The deterministic serving mode: every ``poll`` delivers the next slot's
    complete frame immediately, with values read from the *same* trace
    arrays the batch engine would read, so the control loop's arithmetic is
    bit-identical to ``repro run``.
    """

    def __init__(
        self, environment: Environment, *, advice_frame: int | None = None
    ) -> None:
        self.environment = environment
        self.advice_frame = advice_frame
        self._next = 0

    def poll(self) -> SignalFrame | None:
        if self._next >= self.environment.horizon:
            return None
        t = self._next
        obs = self.environment.observation(t)
        forecast = None
        if self.advice_frame is not None and t % self.advice_frame == 0:
            forecast = _forecast_payload(self.environment, t, self.advice_frame)
        frame = SignalFrame(
            slot=t,
            arrival=obs.arrival_rate,
            onsite=obs.onsite,
            price=obs.price,
            arrival_actual=self.environment.actual_arrival(t),
            offsite=self.environment.offsite(t),
            network_delay=obs.network_delay,
            pue=obs.pue,
            forecast=forecast,
        )
        self._next += 1
        return frame

    def seek(self, slot: int) -> None:
        if not (0 <= slot <= self.environment.horizon):
            raise ValueError(f"cannot seek to slot {slot}")
        self._next = int(slot)

    @property
    def horizon(self) -> int:
        return self.environment.horizon

    def describe(self) -> str:
        return f"replay({self.environment.horizon} slots)"


class FileTailSignalSource(SignalSource):
    """Tails a JSONL feed file, delivering each complete appended line.

    The file is read incrementally: a partial final line (a writer mid-
    append) is buffered until its newline arrives, so a torn write is never
    parsed.  Malformed *complete* lines are counted (:attr:`malformed`) and
    skipped -- a bad producer line must not take the service down.
    """

    def __init__(self, path: str | pathlib.Path) -> None:
        self.path = str(path)
        self._fh = open(self.path)
        self._buffer = ""
        self.delivered = 0
        self.malformed = 0

    def poll(self) -> SignalFrame | None:
        while True:
            chunk = self._fh.readline()
            if not chunk:
                return None
            self._buffer += chunk
            if not self._buffer.endswith("\n"):
                # Torn tail: the producer has not finished this line yet.
                return None
            line, self._buffer = self._buffer.strip(), ""
            if not line:
                continue
            try:
                obj = json.loads(line)
                if not isinstance(obj, dict) or "slot" not in obj:
                    raise ValueError("frame must be an object with a 'slot'")
                frame = SignalFrame.from_dict(obj)
            except (ValueError, TypeError, KeyError):
                self.malformed += 1
                continue
            self.delivered += 1
            return frame

    def seek(self, slot: int) -> None:
        """Rewind and skip frames below ``slot`` (feed files are append-
        only, so earlier frames are prefix lines)."""
        self._fh.seek(0)
        self._buffer = ""
        while True:
            pos = self._fh.tell()
            line = self._fh.readline()
            if not line or not line.endswith("\n"):
                self._fh.seek(pos)
                return
            try:
                obj = json.loads(line)
                if int(obj.get("slot", -1)) >= slot:
                    self._fh.seek(pos)
                    return
            except (ValueError, TypeError):
                continue

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def describe(self) -> str:
        return f"file({self.path})"


class SyntheticSignalSource(SignalSource):
    """Seeded load generator with deliberately imperfect delivery.

    Wraps an environment (the ground truth signals) and perturbs *delivery*
    -- never values -- according to a seeded schedule drawn once at
    construction:

    - ``p_drop``: the slot's frame is never delivered (a gap);
    - ``p_late``: the frame needs one extra poll to arrive;
    - ``p_field_loss``: each optional field is independently omitted;
    - ``p_swap``: the frame swaps delivery order with its successor
      (out-of-order arrival).

    Because the whole delivery schedule is a pure function of the seed,
    a synthetic serve run is deterministic end to end and :meth:`seek`
    restores mid-stream bit-identically.
    """

    def __init__(
        self,
        environment: Environment,
        *,
        seed: int,
        p_drop: float = 0.02,
        p_late: float = 0.1,
        p_field_loss: float = 0.02,
        p_swap: float = 0.05,
        advice_frame: int | None = None,
    ) -> None:
        for name, p in (("p_drop", p_drop), ("p_late", p_late),
                        ("p_field_loss", p_field_loss), ("p_swap", p_swap)):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p}")
        self.environment = environment
        self.seed = int(seed)
        rng = np.random.default_rng(self.seed)
        J = environment.horizon
        # Forecast payloads ride the same imperfect delivery: a dropped or
        # late boundary frame loses or delays its advice window too.
        frames = list(
            frames_from_environment(environment, advice_frame=advice_frame)
        )

        # Draw the whole delivery schedule up front: (deliveries, lateness).
        drop = rng.random(J) < p_drop
        late = rng.random(J) < p_late
        swap = rng.random(J) < p_swap
        schedule: list[SignalFrame] = []
        for frame in frames:
            missing = [
                f for f in OPTIONAL_FIELDS if rng.random() < p_field_loss
            ]
            if missing:
                frame = SignalFrame.from_dict(
                    {k: v for k, v in frame.to_dict().items() if k not in missing}
                )
            schedule.append(frame)
        order = list(range(J))
        t = 0
        while t < J - 1:
            if swap[t]:
                order[t], order[t + 1] = order[t + 1], order[t]
                t += 2
            else:
                t += 1
        #: Delivery plan: (frame, extra empty polls before it arrives);
        #: dropped slots never appear.
        self._plan: list[tuple[SignalFrame, int]] = [
            (schedule[i], 1 if late[i] else 0) for i in order if not drop[i]
        ]
        self.dropped = int(drop.sum())
        self._cursor = 0
        self._wait = self._plan[0][1] if self._plan else 0

    def poll(self) -> SignalFrame | None:
        if self._cursor >= len(self._plan):
            return None
        if self._wait > 0:
            self._wait -= 1
            return None
        frame, _ = self._plan[self._cursor]
        self._cursor += 1
        if self._cursor < len(self._plan):
            self._wait = self._plan[self._cursor][1]
        return frame

    def seek(self, slot: int) -> None:
        """Skip plan entries whose frame is below ``slot``; out-of-order
        neighbors straddling the boundary are delivered (and discarded by
        the resolver), exactly as they would be in an uninterrupted run."""
        self._cursor = 0
        while (
            self._cursor < len(self._plan)
            and self._plan[self._cursor][0].slot < slot
        ):
            self._cursor += 1
        self._wait = (
            self._plan[self._cursor][1] if self._cursor < len(self._plan) else 0
        )

    @property
    def horizon(self) -> int:
        return self.environment.horizon

    def describe(self) -> str:
        return (
            f"synthetic(seed={self.seed}, {self.environment.horizon} slots, "
            f"{self.dropped} dropped)"
        )
