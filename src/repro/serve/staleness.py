"""Staleness policy: turning an unreliable feed into one frame per slot.

The slot clock only moves forward.  Whatever the feed does -- deliver on
time, deliver late, skip a slot, deliver slots out of order, omit fields --
the resolver produces exactly one *complete* frame for the current slot and
accounts for how it got it:

===============  =====================================================
``ok``           the slot's frame arrived complete on the first poll
``late``         the frame arrived after at least one empty poll (still
                 within the timeout; used as-is)
``missing``      no frame by the timeout; every field is synthesized
``gap``          a *future* slot's frame arrived instead; it is buffered
                 for its own slot and the current slot goes missing
``out_of_order`` a frame for an already-resolved slot arrived; discarded
                 (the clock never goes backwards)
``degraded``     the frame arrived but lost fields; the holes are filled
===============  =====================================================

Synthesized values degrade through the existing fault layer rather than
inventing a parallel path: each lost field is registered on the run's
:class:`~repro.faults.FaultInjector` via :meth:`~repro.faults.FaultInjector.inject_signal`,
so the controller's observation is degraded by the *same* code, telemetry
(``fault.signal``) and monitors (:class:`~repro.monitor.faults.FaultActivityMonitor`)
that scheduled chaos uses.  The resolver additionally emits ``signal.*``
events and counters so feed health is observable independently of chaos.

Timing is injected (``clock`` / ``sleep``), so tests drive the resolver
with fake time and the replay path never reads a clock at all.
"""

from __future__ import annotations

import time as _time
from typing import Callable

from ..faults import FaultInjector
from ..telemetry import Telemetry, coerce
from .signals import OPTIONAL_FIELDS, SignalFrame, SignalSource

__all__ = ["StalenessResolver", "RESOLUTIONS"]

#: Resolution outcomes, in the order :meth:`StalenessResolver.stats` reports.
RESOLUTIONS = ("ok", "late", "missing", "gap", "out_of_order", "degraded_fields")

#: Fields whose loss is routed through the fault injector (the injector's
#: SIGNAL_FIELDS vocabulary; frame field -> injector field).
_INJECTED_FIELDS = {"arrival": "arrival", "onsite": "onsite", "price": "price"}


class StalenessResolver:
    """Resolves one complete :class:`SignalFrame` per slot from a source.

    Parameters
    ----------
    source:
        The feed to poll.
    injector:
        The run's fault injector; lost signals are registered here so the
        observation degrades through the standard path.  ``None`` (replay
        mode) asserts the feed is perfect -- a missing or degraded frame
        then raises instead of degrading, because replay promised
        determinism.
    telemetry:
        ``signal.*`` events and counters.
    timeout_s:
        Wall-clock budget to wait for the slot's frame; 0 gives up after
        the first empty poll (the deterministic setting -- no clock reads).
    poll_interval_s:
        Sleep between polls while waiting (ignored with ``timeout_s=0``).
    clock / sleep:
        Injectable time functions (tests use fakes; defaults are
        ``time.monotonic`` / ``time.sleep``).
    """

    def __init__(
        self,
        source: SignalSource,
        *,
        injector: FaultInjector | None = None,
        telemetry: Telemetry | None = None,
        timeout_s: float = 0.0,
        poll_interval_s: float = 0.05,
        clock: Callable[[], float] | None = None,
        sleep: Callable[[float], None] | None = None,
    ) -> None:
        if timeout_s < 0:
            raise ValueError("timeout_s must be non-negative")
        if poll_interval_s <= 0:
            raise ValueError("poll_interval_s must be positive")
        self.source = source
        self.injector = injector
        self.tele = coerce(telemetry)
        self.timeout_s = float(timeout_s)
        self.poll_interval_s = float(poll_interval_s)
        self._clock = clock if clock is not None else _time.monotonic
        self._sleep = sleep if sleep is not None else _time.sleep
        #: Future frames that arrived early, keyed by slot.
        self.pending: dict[int, SignalFrame] = {}
        #: Whether the frame most recently acquired needed empty polls.
        self._was_late = False
        self._empty_polls = 0
        #: Last fully-resolved frame (the value donor for synthesis).
        self.last: SignalFrame | None = None
        self.counts: dict[str, int] = {k: 0 for k in RESOLUTIONS}

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Resolution counters (the ``signals`` block of ``/status``)."""
        return dict(self.counts)

    def _count(self, what: str, t: int, **fields) -> None:
        self.counts[what] += 1
        if self.tele.enabled:
            self.tele.emit(f"signal.{what}", t=t, **fields)
            self.tele.metrics.counter(f"signal.{what}").inc()

    # ------------------------------------------------------------------
    def _acquire(self, t: int) -> SignalFrame | None:
        """The raw frame for slot ``t``, or None when it never arrives."""
        self._was_late = False
        self._empty_polls = 0
        if t in self.pending:
            return self.pending.pop(t)
        deadline = None if self.timeout_s == 0.0 else self._clock() + self.timeout_s
        while True:
            frame = self.source.poll()
            if frame is None:
                if deadline is None or self._clock() >= deadline:
                    return None
                self._empty_polls += 1
                self._sleep(self.poll_interval_s)
                continue
            if frame.slot < t:
                # The slot clock never moves backwards: a frame for an
                # already-resolved slot is dropped, not applied.
                self._count("out_of_order", t, frame_slot=frame.slot)
                continue
            if frame.slot > t:
                # Early delivery of a future slot: keep it for its turn,
                # report the hole at t.
                self.pending[frame.slot] = frame
                return None
            self._was_late = self._empty_polls > 0
            return frame

    def _inject(self, t: int, fields: tuple[str, ...], mode: str) -> None:
        """Register lost signals with the fault injector (standard path)."""
        if self.injector is None:
            raise RuntimeError(
                f"slot {t}: feed degraded ({mode}: {', '.join(fields)}) but no "
                "fault injector is attached; replay sources promise perfect "
                "delivery, so attach an injector for live sources"
            )
        for field in fields:
            mapped = _INJECTED_FIELDS.get(field)
            if mapped is not None:
                self.injector.inject_signal(
                    mapped, "stale", t=t, duration=1, origin="signal_feed"
                )

    def _synthesize(self, t: int, frame: SignalFrame | None) -> SignalFrame:
        """Fill every hole in ``frame`` (or a wholly absent frame) from the
        last resolved values, registering each loss with the injector."""
        last = self.last
        donor = {
            "arrival": last.arrival if last is not None else 0.0,
            "onsite": last.onsite if last is not None else 0.0,
            "price": last.price if last is not None else 0.0,
            "arrival_actual": last.arrival_actual if last is not None else 0.0,
            "offsite": last.offsite if last is not None else 0.0,
        }
        if frame is None:
            self._inject(t, tuple(_INJECTED_FIELDS), "missing_frame")
            # No forecast payload: stale advice is never resurrected from
            # the donor -- the advice layer degrades to plain COCA instead.
            return SignalFrame(
                slot=t,
                network_delay=last.network_delay if last is not None else 0.0,
                pue=last.pue if last is not None else None,
                **donor,
            )
        holes = frame.missing_fields
        self._inject(t, holes, "missing_fields")
        self._count("degraded_fields", t, fields=list(holes))
        merged = {f: getattr(frame, f) for f in OPTIONAL_FIELDS}
        # A frame that lost its realized arrival falls back to its own
        # prediction first (the least-stale estimate available).
        if merged["arrival_actual"] is None and merged["arrival"] is not None:
            merged["arrival_actual"] = merged["arrival"]
        for field, value in merged.items():
            if value is None:
                merged[field] = donor[field]
        # A frame that arrived with holes still carries its advice payload.
        return SignalFrame(
            slot=t,
            network_delay=frame.network_delay,
            pue=frame.pue,
            forecast=frame.forecast,
            **merged,
        )

    # ------------------------------------------------------------------
    def resolve(self, t: int) -> SignalFrame:
        """One complete frame for slot ``t``, whatever the feed did.

        Each slot lands in exactly one primary resolution -- ``ok``,
        ``late``, ``missing``, ``gap``, or ``degraded_fields`` (a
        late-and-holed frame counts as degraded: the worse condition
        wins) -- so the five counters partition the horizon;
        ``out_of_order`` counts *discarded frames*, not slots.
        """
        frame = self._acquire(t)
        if frame is None:
            kind = "gap" if self.pending else "missing"
            self._count(kind, t, pending=sorted(self.pending))
            resolved = self._synthesize(t, None)
        elif frame.missing_fields:
            resolved = self._synthesize(t, frame)
        elif self._was_late:
            self._count("late", t, empty_polls=self._empty_polls)
            resolved = frame
        else:
            self._count("ok", t)
            resolved = frame
        self.last = resolved
        return resolved

    # ------------------------------------------------------------------
    def restore(self, last: SignalFrame | None) -> None:
        """Reposition after a resume: the donor for synthesis is the last
        *journaled* frame, so degraded values reproduce bit-identically."""
        self.pending.clear()
        self.last = last
