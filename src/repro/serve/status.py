"""The service's status endpoint: a thread-safe board plus an HTTP view.

:class:`StatusBoard` is the single source of truth the control loop updates
once per slot (cheap: one dict swap under a lock).  :class:`StatusServer`
is a stdlib ``ThreadingHTTPServer`` on a daemon thread serving the board as
JSON -- ``GET /status`` for the full snapshot, ``GET /healthz`` for
liveness probes, and (when a :class:`~repro.telemetry.MetricsRegistry` is
attached) ``GET /metrics`` in Prometheus text exposition format -- so an
operator or a scraper can watch a long-running ``repro serve`` without
touching its stdout or its trace file.

The HTTP thread only ever *reads* the board; nothing in the serving loop
blocks on a slow client, and a service run with the endpoint disabled has
no thread at all.  Schema documented in ``docs/SERVING.md``.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..telemetry.metrics import MetricsRegistry
from ..telemetry.prometheus import PROMETHEUS_CONTENT_TYPE, render_prometheus
from ..telemetry.tracer import sanitize_json_value

__all__ = ["StatusBoard", "StatusServer"]


class StatusBoard:
    """Mutable snapshot of a running service, safe to read from any thread."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._data: dict = {"state": "starting", "slot": 0}

    def update(self, **fields) -> None:
        """Merge ``fields`` into the snapshot."""
        with self._lock:
            self._data.update(fields)

    def snapshot(self) -> dict:
        """A consistent copy of the current snapshot."""
        with self._lock:
            return dict(self._data)


class _Handler(BaseHTTPRequestHandler):
    """Serves the board; silent (no per-request stderr lines)."""

    board: StatusBoard  # injected by StatusServer via a subclass attribute
    registry: MetricsRegistry | None  # likewise; None disables /metrics

    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        path = self.path.split("?", 1)[0]
        if path in ("/status", "/"):
            body = json.dumps(
                sanitize_json_value(self.board.snapshot()), indent=2
            ).encode()
            self._respond(200, body)
        elif path == "/healthz":
            state = self.board.snapshot().get("state", "unknown")
            code = 200 if state in ("starting", "running", "stopping") else 503
            self._respond(code, json.dumps({"state": state}).encode())
        elif path == "/metrics" and self.registry is not None:
            # The loop thread writes instruments while we render; values may
            # be one slot apart but each read is of a plain float/list, so
            # no lock is needed for a consistent-enough scrape.
            body = render_prometheus(self.registry).encode("utf-8")
            self._respond(200, body, content_type=PROMETHEUS_CONTENT_TYPE)
        else:
            self._respond(404, b'{"error": "not found"}')

    def _respond(
        self, code: int, body: bytes, *, content_type: str = "application/json"
    ) -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # probes every few seconds would otherwise spam stderr


class StatusServer:
    """Background HTTP server exposing a :class:`StatusBoard`.

    ``port=0`` binds an ephemeral port; read :attr:`port` after
    construction (and write it somewhere discoverable, e.g. the CLI's
    ``--status-port-file``) to find it.
    """

    def __init__(self, board: StatusBoard, *, host: str = "127.0.0.1",
                 port: int = 0, registry: MetricsRegistry | None = None) -> None:
        handler = type(
            "BoundHandler", (_Handler,), {"board": board, "registry": registry}
        )
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self.host = host
        self.port = int(self._httpd.server_address[1])
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-serve-status",
            daemon=True,
        )
        self._thread.start()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def close(self) -> None:
        """Stop serving and join the thread; idempotent."""
        if self._thread.is_alive():
            self._httpd.shutdown()
            self._thread.join(timeout=5.0)
        self._httpd.server_close()
