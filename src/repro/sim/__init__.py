"""Simulation layer: environment, slot engine, metrics, event substrate."""

from .engine import realize_action, simulate
from .environment import Environment
from .events import PSQueueStats, empirical_delay_sum, simulate_ps_queue
from .metrics import RunSummary, SimulationRecord

__all__ = [
    "Environment",
    "simulate",
    "realize_action",
    "SimulationRecord",
    "RunSummary",
    "PSQueueStats",
    "simulate_ps_queue",
    "empirical_delay_sum",
]
