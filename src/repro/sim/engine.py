"""The slot-driven simulator.

Runs a :class:`~repro.core.controller.Controller` over an
:class:`~repro.sim.environment.Environment` one slot at a time, exactly
mirroring the paper's information structure:

1. at the start of slot ``t`` the controller sees (predicted workload,
   on-site renewables, price) and commits a fleet action;
2. the *actual* workload arrives and is served by the committed
   configuration -- when prediction and reality differ, per-server loads are
   rescaled proportionally onto the committed speeds, clipped at the
   utilization cap (any residual is recorded as dropped load, which never
   occurs under the paper's overestimation regime ``phi >= 1``);
3. realized power, costs, brown energy, and switching energy are billed;
4. the controller observes the outcome, including the off-site supply
   ``f(t)`` realized only now (COCA updates its deficit queue here).

The per-slot arithmetic lives in :class:`SlotRunner` so two drivers can
share it verbatim: :func:`simulate` (the offline batch loop, which owns the
whole horizon up front) and the :mod:`repro.serve` control service (which
feeds slots one at a time as live signals arrive).  Anything the batch path
computes, the serving path computes through the *same* code, which is what
makes ``repro serve --source replay`` bit-identical to ``repro run`` by
construction rather than by testing alone.
"""

from __future__ import annotations

import time

import numpy as np

from ..cluster.fleet import FleetAction
from ..core.config import DataCenterModel
from ..core.controller import Controller, SlotOutcome
from ..solvers.deadline import DeadlineExceededError
from ..solvers.messaging import BusTimeoutError
from ..solvers.problem import InfeasibleError
from ..state.checkpoint import Checkpoint, CheckpointError, CheckpointWriter
from ..state.serialize import (
    decode_action,
    decode_array,
    encode_action,
    encode_array,
    environment_fingerprint,
)
from ..telemetry import Telemetry, coerce
from .environment import Environment
from .metrics import SimulationRecord

__all__ = ["simulate", "realize_action", "SlotRunner"]

#: Per-slot record columns every run accumulates (checkpoint layout).
RECORD_COLUMNS = (
    "it_power",
    "facility_power",
    "brown_energy",
    "electricity_cost",
    "delay_cost",
    "cost",
    "switching_energy",
    "arrival_predicted",
    "arrival_actual",
    "served",
    "dropped",
    "active_servers",
)


def realize_action(
    model: DataCenterModel,
    action: FleetAction,
    actual_arrival: float,
    planned_arrival: float,
    *,
    failed_groups: "frozenset[int] | set[int] | None" = None,
) -> tuple[FleetAction, float]:
    """Map a planned action onto the realized arrival rate.

    Returns ``(realized_action, dropped_load)``.  Loads scale by
    ``actual / planned`` on the committed speeds; scaling *up* is capped at
    ``gamma * speed`` per server, and load that cannot be placed is dropped
    (recorded, so experiments can verify it stays zero).

    ``failed_groups`` enforces physical reality under fault injection:
    servers in failed groups cannot run whatever the plan said, so their
    levels are forced off and their load joins the redistribution (placed
    on healthy headroom pro rata, dropped past capacity).  ``None`` keeps
    the historical path untouched.
    """
    fleet = model.fleet
    if failed_groups:
        mask = np.isin(np.arange(fleet.num_groups), sorted(failed_groups))
        action = FleetAction(
            levels=np.where(mask, -1, action.levels).astype(np.int64),
            per_server_load=np.where(mask, 0.0, action.per_server_load),
        )
    on = action.levels >= 0
    if actual_arrival <= 0.0:
        return FleetAction(action.levels, np.zeros(fleet.num_groups)), 0.0

    speeds = fleet.group_speeds(action.levels)
    caps = np.where(on, model.gamma * speeds, 0.0)
    if planned_arrival > 0.0 and action.served_load(fleet) > 0.0:
        scaled = action.per_server_load * (actual_arrival / planned_arrival)
    else:
        # Nothing was planned; spread over whatever is on, pro rata to capacity.
        total_cap = float(np.sum(fleet.counts * caps))
        if total_cap <= 0.0:
            return FleetAction(action.levels, np.zeros(fleet.num_groups)), actual_arrival
        scaled = caps * min(actual_arrival / total_cap, 1.0)

    clipped = np.minimum(scaled, caps)
    served = float(np.sum(fleet.counts * clipped))
    shortfall = actual_arrival - served
    if shortfall > 1e-9 * max(actual_arrival, 1.0):
        # Push the excess onto servers with headroom, pro rata.
        headroom = fleet.counts * (caps - clipped)
        total_head = float(headroom.sum())
        take = min(shortfall, total_head)
        if total_head > 0.0:
            clipped = clipped + np.where(
                fleet.counts > 0, take * (headroom / max(total_head, 1e-300)) / np.maximum(fleet.counts, 1.0), 0.0
            )
            served += take
            shortfall -= take
    # Shortfalls below solver tolerance are floating-point residue of the
    # load-balance bisection, not real drops.
    dropped = shortfall if shortfall > 1e-9 * max(actual_arrival, 1.0) else 0.0
    return FleetAction(action.levels, clipped), dropped


def _decide_degraded(
    model: DataCenterModel,
    controller: Controller,
    obs,
    policy,
    injector,
    last_action: FleetAction | None,
    tele: Telemetry,
):
    """One slot's decide under a degradation policy.

    Retries ``controller.decide`` on :class:`BusTimeoutError` (a lost
    protocol round is transient: the next attempt sees fresh message-fault
    draws) up to ``policy.retries`` extra times; :class:`InfeasibleError`
    is deterministic and goes straight to fallback.  When the budget is
    exhausted the policy's fallback action is committed and the controller
    is told via ``on_fallback`` so its bookkeeping stays aligned.
    """
    reason = None
    for attempt in range(policy.retries + 1):
        try:
            return controller.decide(obs), None
        except BusTimeoutError as err:
            reason = "bus_timeout"
            if attempt < policy.retries:
                policy.record(reason, fallback=False)
                if tele.enabled:
                    tele.emit(
                        "fault.solve_retry", t=obs.t, attempt=attempt + 1, error=str(err)
                    )
        except DeadlineExceededError:
            # The wall-clock budget ran out with no feasible incumbent;
            # retrying would blow the budget again, so fall back directly.
            reason = "deadline"
            break
        except InfeasibleError:
            reason = "infeasible"
            break
    failed = frozenset(injector.failed_groups)
    solution = policy.fallback(model, obs, last_action, failed)
    policy.record(reason, fallback=True)
    if tele.enabled:
        tele.emit(
            "fault.fallback",
            t=obs.t,
            reason=reason,
            mode=solution.info.get("fallback"),
            failed_groups=sorted(failed),
        )
        tele.metrics.counter("fault.fallbacks").inc()
    controller.on_fallback(obs, solution)
    return solution, reason


class SlotRunner:
    """The per-slot execution core, one slot per :meth:`step` call.

    Owns everything :func:`simulate` used to hold in local variables: the
    record columns, the previous on-set, the last realized action, the
    injector/degradation wiring, and the checkpoint capture.  Drivers differ
    only in *when* they call :meth:`step` -- the batch loop sweeps the whole
    horizon as fast as it can, the control service paces real time and may
    stop early on a shutdown signal -- so both produce identical arithmetic
    for identical inputs.

    Construction binds telemetry and the solve deadline, :meth:`start` emits
    the run-level context and calls ``controller.start``, then an optional
    :meth:`restore` positions the runner mid-horizon from a checkpoint.
    After the final slot, :meth:`finish` emits the end-of-run events and
    assembles the :class:`SimulationRecord`.
    """

    def __init__(
        self,
        model: DataCenterModel,
        controller: Controller,
        environment: Environment,
        *,
        telemetry: Telemetry | None = None,
        faults=None,
        degradation=None,
        checkpoint: CheckpointWriter | None = None,
        solve_deadline_ms: float | None = None,
    ) -> None:
        self.model = model
        self.controller = controller
        self.environment = environment
        self.horizon = environment.horizon
        self.tele = coerce(telemetry)
        bind = getattr(controller, "bind_telemetry", None)
        if bind is not None:
            bind(self.tele)
        if solve_deadline_ms is not None:
            controller.set_solve_deadline(solve_deadline_ms)
        self.solve_deadline_ms = solve_deadline_ms
        self.checkpoint = checkpoint
        if checkpoint is not None:
            checkpoint.bind_telemetry(self.tele)

        self.injector = None
        self.policy = None
        if faults is not None:
            from ..faults import DegradationPolicy, FaultInjector, FaultSchedule

            if isinstance(faults, FaultSchedule):
                self.injector = FaultInjector(
                    faults, num_groups=model.fleet.num_groups
                )
            else:
                self.injector = faults
                if self.injector.num_groups is None:
                    self.injector.num_groups = model.fleet.num_groups
            self.injector.bind_telemetry(self.tele)
            self.injector.install(controller)
            # Advice-aware controllers route their forecast windows
            # through the injector's forecast degradation.
            attach = getattr(controller, "attach_injector", None)
            if attach is not None:
                attach(self.injector)
            self.policy = (
                degradation if degradation is not None else DegradationPolicy()
            )

        self.cols: dict[str, list[float]] = {name: [] for name in RECORD_COLUMNS}
        self.prev_on: np.ndarray | None = None
        self.last_realized: FleetAction | None = None
        self.start_slot = 0

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Emit the run-level context and let the controller initialize."""
        if self.tele.enabled:
            # Run-level context: monitors calibrate their bounds (capacity,
            # worst-case facility draw) from this event instead of guessing.
            self.tele.emit(
                "run.start",
                controller=self.controller.name(),
                horizon=self.horizon,
                num_servers=self.model.fleet.num_servers,
                capacity=self.model.fleet.capacity(self.model.gamma),
                max_facility_power=self.model.max_facility_power,
            )
        self.controller.start(self.environment)

    # ------------------------------------------------------------------
    def restore(self, resume_from: Checkpoint) -> int:
        """Position the runner at a checkpoint; returns the resume slot.

        Validates the checkpoint against this runner's environment
        (fingerprint), horizon, and controller identity before restoring
        anything, raising :class:`CheckpointError` on any mismatch.
        """
        state = resume_from.state
        env_crc = environment_fingerprint(self.environment)
        if int(state.get("env_crc", -1)) != env_crc:
            raise CheckpointError(
                "checkpoint was taken against a different environment "
                "(input-trace fingerprint mismatch); resuming would "
                "silently break bit-identity"
            )
        if int(state["horizon"]) != self.horizon:
            raise CheckpointError(
                f"checkpoint horizon {state['horizon']} != environment "
                f"horizon {self.horizon}"
            )
        if state["controller"]["name"] != self.controller.name():
            raise CheckpointError(
                f"checkpoint belongs to controller "
                f"{state['controller']['name']!r}, not {self.controller.name()!r}"
            )
        self.start_slot = int(resume_from.slot)
        for name, values in state["cols"].items():
            self.cols[name] = [float(x) for x in values]
        if any(len(v) != self.start_slot for v in self.cols.values()):
            raise CheckpointError("checkpoint column lengths disagree with slot")
        self.prev_on = decode_array(state["prev_on"])
        self.last_realized = decode_action(state["last_realized"])
        self.controller.load_state_dict(state["controller"]["state"])
        if self.injector is not None and state.get("injector") is not None:
            self.injector.load_state_dict(state["injector"])
        if self.policy is not None and state.get("degradation") is not None:
            self.policy.load_state_dict(state["degradation"])
        if self.tele.enabled:
            self.tele.emit(
                "state.resume",
                slot=self.start_slot,
                horizon=self.horizon,
                path=resume_from.path,
                controller=self.controller.name(),
            )
            self.tele.metrics.counter("state.resumes").inc()
        return self.start_slot

    # ------------------------------------------------------------------
    def capture(self, slot: int) -> dict:
        """A complete, JSON-ready snapshot of the run after ``slot`` slots."""
        return {
            "slot": slot,
            "horizon": self.horizon,
            "env_crc": environment_fingerprint(self.environment),
            "controller": {
                "name": self.controller.name(),
                "state": self.controller.state_dict(),
            },
            "cols": {k: [float(x) for x in v] for k, v in self.cols.items()},
            "prev_on": encode_array(self.prev_on),
            "last_realized": encode_action(self.last_realized),
            "injector": None if self.injector is None else self.injector.state_dict(),
            "degradation": None if self.policy is None else self.policy.state_dict(),
            "run_id": getattr(getattr(self.tele, "tracer", None), "run_id", None),
        }

    def checkpoint_now(self, slot: int) -> str | None:
        """Force a checkpoint at ``slot`` regardless of cadence (shutdown)."""
        if self.checkpoint is None:
            return None
        return self.checkpoint.write(slot, self.capture(slot))

    # ------------------------------------------------------------------
    def step(self, t: int) -> None:
        """Execute slot ``t``: decide, realize, bill, observe, record.

        The slot is the root of the attribution tree: the solve timer below
        (and through it the solver's ``gsd.solve``/``enum.solve`` spans)
        nests under a ``slot`` span when a tracer is listening.  With
        telemetry off the span is the shared no-op and the arithmetic is
        untouched.
        """
        with self.tele.span("slot", t=t):
            self._step(t)

    def _step(self, t: int) -> None:
        model = self.model
        controller = self.controller
        environment = self.environment
        tele = self.tele
        injector = self.injector

        obs = environment.observation(t)
        if injector is not None:
            injector.begin_slot(t)
            obs = injector.degrade_observation(obs)
            controller.set_failed_groups(frozenset(injector.failed_groups))
        with tele.timer("sim.solve_time_s") as solve_timer:
            if injector is None:
                solution = controller.decide(obs)
            else:
                solution, _ = _decide_degraded(
                    model, controller, obs, self.policy, injector,
                    self.last_realized, tele,
                )
        actual = environment.actual_arrival(t)
        realized, dropped = realize_action(
            model,
            solution.action,
            actual,
            obs.arrival_rate,
            failed_groups=None if injector is None else injector.failed_groups,
        )
        if injector is not None:
            self.last_realized = realized
        realized_problem = model.slot_problem(
            arrival_rate=actual,
            onsite=obs.onsite,
            price=obs.price,
            q=0.0,
            V=1.0,
            prev_on_counts=self.prev_on,
            network_delay=obs.network_delay,
            pue_override=obs.pue,
        )
        evaluation = realized_problem.evaluate(realized)
        self.prev_on = realized.on_counts(model.fleet)

        controller.observe(
            SlotOutcome(t=t, evaluation=evaluation, offsite=environment.offsite(t))
        )

        if tele.enabled:
            if (
                self.solve_deadline_ms is not None
                and solve_timer.elapsed * 1000.0 > self.solve_deadline_ms
            ):
                tele.emit(
                    "deadline.slot_overrun",
                    t=t,
                    budget_ms=float(self.solve_deadline_ms),
                    elapsed_ms=solve_timer.elapsed * 1000.0,
                )
                tele.metrics.counter("deadline.slot_overruns").inc()
            tele.emit(
                "slot.decision",
                t=t,
                arrival_predicted=obs.arrival_rate,
                onsite=obs.onsite,
                price=obs.price,
                objective=solution.objective,
                planned_cost=solution.cost,
                active_servers=solution.action.active_servers(model.fleet),
                solve_time_s=solve_timer.elapsed,
            )
            tele.emit(
                "slot.outcome",
                t=t,
                cost=evaluation.cost,
                electricity_cost=evaluation.electricity_cost,
                delay_cost=evaluation.delay_cost,
                brown_energy=evaluation.brown_energy,
                switching_energy=evaluation.switching_energy,
                arrival_actual=actual,
                served=realized.served_load(model.fleet),
                dropped=dropped,
            )
            if dropped > 0.0:
                tele.emit("slot.dropped", t=t, dropped=dropped)
                tele.metrics.counter("sim.dropped_load").inc(dropped)
            metrics = tele.metrics
            metrics.counter("sim.slots").inc()
            metrics.counter("sim.cost_dollars").inc(evaluation.cost)
            metrics.counter("sim.brown_energy_mwh").inc(evaluation.brown_energy)
            metrics.gauge("sim.brown_energy_rate").set(evaluation.brown_energy)
            # Per-slot attribution gauges: a /metrics scrape shows what the
            # *latest* slot spent and why (cost split, carbon draw, load
            # fate), alongside the cumulative counters above and the
            # deficit-queue gauge set by the controller.
            metrics.gauge("sim.slot").set(t)
            metrics.gauge("sim.slot_cost_dollars").set(evaluation.cost)
            metrics.gauge("sim.slot_electricity_cost_dollars").set(
                evaluation.electricity_cost
            )
            metrics.gauge("sim.slot_delay_cost_dollars").set(evaluation.delay_cost)
            metrics.gauge("sim.slot_brown_energy_mwh").set(evaluation.brown_energy)
            metrics.gauge("sim.slot_switching_energy_mwh").set(
                evaluation.switching_energy
            )
            metrics.gauge("sim.slot_served_load").set(realized.served_load(model.fleet))
            metrics.gauge("sim.slot_dropped_load").set(dropped)
            metrics.gauge("sim.slot_solve_time_s").set(solve_timer.elapsed)

        cols = self.cols
        cols["it_power"].append(evaluation.it_power)
        cols["facility_power"].append(evaluation.facility_power)
        cols["brown_energy"].append(evaluation.brown_energy)
        cols["electricity_cost"].append(evaluation.electricity_cost)
        cols["delay_cost"].append(evaluation.delay_cost)
        cols["cost"].append(evaluation.cost)
        cols["switching_energy"].append(evaluation.switching_energy)
        cols["arrival_predicted"].append(obs.arrival_rate)
        cols["arrival_actual"].append(actual)
        cols["served"].append(realized.served_load(model.fleet))
        cols["dropped"].append(dropped)
        cols["active_servers"].append(realized.active_servers(model.fleet))

        if self.checkpoint is not None:
            self.checkpoint.maybe_write(t + 1, lambda: self.capture(t + 1))

    # ------------------------------------------------------------------
    def finish(self) -> SimulationRecord:
        """Emit end-of-run events and assemble the record."""
        injector, policy, tele = self.injector, self.policy, self.tele
        cols = self.cols
        if injector is not None and tele.enabled:
            tele.emit(
                "fault.summary",
                **injector.summary(),
                degradation=policy.stats(),
            )
        if tele.enabled:
            tele.emit(
                "run.end",
                controller=self.controller.name(),
                slots=self.horizon,
                cost=float(sum(cols["cost"])),
                brown_energy=float(sum(cols["brown_energy"])),
                dropped=float(sum(cols["dropped"])),
            )

        arrays = {k: np.asarray(v, dtype=np.float64) for k, v in cols.items()}
        controller = self.controller
        environment = self.environment
        queue = np.asarray(
            getattr(controller, "queue_at_decision", []), dtype=np.float64
        )
        v_applied = np.asarray(getattr(controller, "v_history", []), dtype=np.float64)
        return SimulationRecord(
            controller=controller.name(),
            onsite=environment.portfolio.onsite.values.copy(),
            offsite=environment.portfolio.offsite.values.copy(),
            price=environment.price.values.copy(),
            queue=queue,
            v_applied=v_applied,
            **arrays,
        )


def simulate(
    model: DataCenterModel,
    controller: Controller,
    environment: Environment,
    *,
    telemetry: Telemetry | None = None,
    faults=None,
    degradation=None,
    checkpoint: CheckpointWriter | None = None,
    resume_from: Checkpoint | None = None,
    solve_deadline_ms: float | None = None,
    slot_sleep_s: float = 0.0,
) -> SimulationRecord:
    """Run ``controller`` over the full budgeting period.

    Returns the :class:`SimulationRecord` with every per-slot outcome; the
    controller's own diagnostics (deficit queue, applied ``V``) are attached
    when the controller exposes ``queue_at_decision`` / ``v_history``.

    ``telemetry`` attaches the run's observability: ``slot.decision`` /
    ``slot.outcome`` / ``slot.dropped`` events, a ``sim.solve_time_s``
    histogram around each decision, and run counters.  The handle is also
    bound onto the controller (which propagates it to its P3 solver), so one
    argument instruments the whole stack.  The default is a no-op and leaves
    results bit-identical.

    ``faults`` opts into chaos: a :class:`~repro.faults.FaultSchedule` (or a
    pre-built :class:`~repro.faults.FaultInjector`) whose timed events and
    message faults are injected as the run progresses, with ``degradation``
    (a :class:`~repro.faults.DegradationPolicy`, default constructed when
    omitted) governing what runs when a slot solve cannot complete.  An
    empty schedule — and the default ``faults=None`` — leaves every result
    bit-identical to the uninstrumented run.

    ``checkpoint`` attaches a :class:`~repro.state.CheckpointWriter`: at
    the writer's cadence the complete run state (per-slot columns so far,
    controller/solver state incl. RNG streams -- for the process-sharded
    solver that includes the worker-held per-group substream positions,
    fault cursor, switching memory) is written crash-safely, so a killed
    process can continue from ``resume_from`` -- a
    :class:`~repro.state.Checkpoint` -- and the remaining slots replay
    **bit-identically** to an uninterrupted run, SIGKILL of the
    coordinator or any shard worker included.
    The checkpoint is validated against this call's environment
    (fingerprint), horizon, and controller before anything is restored.

    ``solve_deadline_ms`` arms a per-slot wall-clock solve budget on the
    controller (see :class:`~repro.solvers.SolveDeadline`): on expiry the
    iterative engines return their best feasible incumbent, and a slot
    whose solve still overran the budget is flagged with a
    ``deadline.slot_overrun`` event.  Deadline expiry depends on wall-clock
    speed, so it intentionally breaks the bit-replay contract.

    ``slot_sleep_s`` sleeps after each slot -- a testing aid that slows a
    run down (so a crash harness can kill it mid-horizon) without touching
    any arithmetic or RNG; results stay bit-identical.
    """
    runner = SlotRunner(
        model,
        controller,
        environment,
        telemetry=telemetry,
        faults=faults,
        degradation=degradation,
        checkpoint=checkpoint,
        solve_deadline_ms=solve_deadline_ms,
    )
    runner.start()
    if resume_from is not None:
        runner.restore(resume_from)
    for t in range(runner.start_slot, runner.horizon):
        runner.step(t)
        if slot_sleep_s > 0.0:
            time.sleep(slot_sleep_s)
    return runner.finish()
