"""The environment: everything exogenous to the controller.

The paper uses *environment* to collectively refer to the electricity price,
on-site/off-site renewable supplies, and workloads (section 2).
:class:`Environment` bundles those traces -- with separate *predicted* and
*actual* workload views so overestimation/prediction-error studies can feed
each side its own series -- plus the renewable portfolio carrying the REC
total.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.controller import SlotObservation
from ..energy.renewables import RenewablePortfolio
from ..traces.base import Trace
from ..traces.noise import PredictionModel

__all__ = ["Environment"]


@dataclass(frozen=True)
class Environment:
    """Exogenous inputs for one budgeting period.

    Parameters
    ----------
    workload:
        Either a plain :class:`Trace` (perfect hour-ahead knowledge, the
        paper's base assumption) or a :class:`PredictionModel` pairing the
        controller's belief with the realized arrivals.
    portfolio:
        On-site/off-site renewable traces and the REC total.
    price:
        Hourly electricity price in $/MWh.
    network_delay:
        Optional time-varying user-to-data-center network delay (section
        2.3); added to the delay cost per served request.
    pue:
        Optional hourly PUE trace (footnote 1's "(time-varying)" factor;
        see :mod:`repro.cluster.thermal` for a weather-driven generator).
    """

    workload: Trace | PredictionModel
    portfolio: RenewablePortfolio
    price: Trace
    network_delay: Trace | None = None
    pue: Trace | None = None

    def __post_init__(self) -> None:
        horizons = {
            self._predicted.horizon,
            self._actual.horizon,
            self.portfolio.horizon,
            len(self.price),
        }
        if self.network_delay is not None:
            horizons.add(len(self.network_delay))
        if self.pue is not None:
            horizons.add(len(self.pue))
            if self.pue.values.min() < 1.0:
                raise ValueError("PUE trace values must be >= 1")
        if len(horizons) != 1:
            raise ValueError(f"inconsistent trace horizons: {sorted(horizons)}")

    # ------------------------------------------------------------------
    @property
    def _predicted(self) -> Trace:
        if isinstance(self.workload, PredictionModel):
            return self.workload.predicted
        return self.workload

    @property
    def _actual(self) -> Trace:
        if isinstance(self.workload, PredictionModel):
            return self.workload.actual
        return self.workload

    @property
    def horizon(self) -> int:
        """Number of slots ``J``."""
        return len(self.price)

    @property
    def predicted_workload(self) -> Trace:
        """The controller's view of arrivals."""
        return self._predicted

    @property
    def actual_workload(self) -> Trace:
        """The realized arrivals."""
        return self._actual

    # ------------------------------------------------------------------
    def observation(self, t: int) -> SlotObservation:
        """What the controller sees at the start of slot ``t``."""
        return SlotObservation(
            t=t,
            arrival_rate=self._predicted[t],
            onsite=self.portfolio.onsite[t],
            price=self.price[t],
            network_delay=(
                self.network_delay[t] if self.network_delay is not None else 0.0
            ),
            pue=self.pue[t] if self.pue is not None else None,
        )

    def actual_arrival(self, t: int) -> float:
        """Realized arrival rate for slot ``t`` (req/s)."""
        return self._actual[t]

    def offsite(self, t: int) -> float:
        """Realized off-site renewable supply for slot ``t`` (MWh)."""
        return self.portfolio.offsite[t]

    def with_workload(self, workload: Trace | PredictionModel) -> "Environment":
        """Copy with a different workload (overestimation sweeps)."""
        return Environment(
            workload=workload,
            portfolio=self.portfolio,
            price=self.price,
            network_delay=self.network_delay,
            pue=self.pue,
        )

    def with_portfolio(self, portfolio: RenewablePortfolio) -> "Environment":
        """Copy with a different renewable portfolio (budget sweeps)."""
        return Environment(
            workload=self.workload,
            portfolio=portfolio,
            price=self.price,
            network_delay=self.network_delay,
            pue=self.pue,
        )
