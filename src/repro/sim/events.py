"""Discrete-event M/G/1/PS queue simulator.

The paper's evaluation is an "event-based simulation" whose delay metric is
the M/G/1/PS mean-number-in-system formula (Eq. (4)); this module provides
the request-level substrate that *validates* that formula: jobs arrive
Poisson, bring i.i.d. service requirements, and share the server capacity
equally (processor sharing).  For M/G/1/PS the mean number in system is
``rho / (1 - rho)`` regardless of the service-time distribution
(insensitivity), which is exactly Eq. (4) with ``rho = lambda / x`` --
the property tests exercise this with exponential, deterministic, and
heavy-tailed service laws.

The simulator uses the *virtual-time* construction: under PS, each in-system
job accrues service at rate ``x / n(t)``; defining virtual time ``V`` with
``dV/dt = x / n(t)``, a job arriving at wall time ``a`` with requirement
``S`` (seconds of dedicated service times speed, i.e. "work") departs when
``V`` reaches ``V(a) + S``.  Completions therefore pop from a min-heap of
virtual departure thresholds, and between events ``V`` advances linearly --
an O((#jobs) log(#jobs)) exact simulation.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = ["PSQueueStats", "simulate_ps_queue", "empirical_delay_sum"]


@dataclass(frozen=True)
class PSQueueStats:
    """Outcome of a processor-sharing simulation.

    Attributes
    ----------
    mean_jobs:
        Time-averaged number of jobs in system (the Eq. (4) quantity).
    mean_response_time:
        Average sojourn time of *completed* jobs (seconds).
    utilization:
        Busy fraction of the server.
    completed:
        Number of jobs that finished within the simulated window.
    duration:
        Simulated wall-clock seconds.
    """

    mean_jobs: float
    mean_response_time: float
    utilization: float
    completed: int
    duration: float


def simulate_ps_queue(
    arrival_rate: float,
    service_rate: float,
    *,
    duration: float,
    rng: np.random.Generator,
    service_sampler: Callable[[np.random.Generator, int], np.ndarray] | None = None,
    warmup_fraction: float = 0.1,
) -> PSQueueStats:
    """Simulate an M/G/1/PS queue for ``duration`` seconds.

    Parameters
    ----------
    arrival_rate:
        Poisson arrival intensity ``lambda`` (req/s); must be below
        ``service_rate`` for stability.
    service_rate:
        Server speed ``x`` (req/s): work is measured so that a job's mean
        requirement is one unit and the server clears ``x`` units/second.
    duration:
        Wall-clock seconds to simulate (after warmup discard).
    rng:
        Randomness source.
    service_sampler:
        Draws job work requirements with mean 1; default exponential
        (M/M/1-PS).  PS mean metrics are insensitive to this choice.
    warmup_fraction:
        Leading fraction of the window excluded from the time averages.
    """
    if arrival_rate < 0 or service_rate <= 0:
        raise ValueError("need arrival_rate >= 0 and service_rate > 0")
    if arrival_rate >= service_rate:
        raise ValueError("queue unstable: arrival rate must be below service rate")
    if duration <= 0:
        raise ValueError("duration must be positive")
    if service_sampler is None:
        service_sampler = lambda g, n: g.exponential(1.0, size=n)

    horizon = duration * (1.0 + warmup_fraction)
    warmup = duration * warmup_fraction

    # Pre-draw arrivals over the horizon.
    n_expect = int(arrival_rate * horizon * 1.3) + 16
    gaps = rng.exponential(1.0 / arrival_rate, size=n_expect) if arrival_rate > 0 else np.empty(0)
    arrivals = np.cumsum(gaps)
    while arrivals.size and arrivals[-1] < horizon:
        more = np.cumsum(rng.exponential(1.0 / arrival_rate, size=n_expect)) + arrivals[-1]
        arrivals = np.concatenate([arrivals, more])
    arrivals = arrivals[arrivals < horizon]
    works = service_sampler(rng, arrivals.size)
    if np.any(works <= 0):
        raise ValueError("service sampler must draw positive work")

    # Virtual-time sweep.
    heap: list[tuple[float, int]] = []  # (virtual departure threshold, job id)
    vnow = 0.0  # virtual time
    tnow = 0.0  # wall time
    area_jobs = 0.0  # integral of n(t) dt over [warmup, horizon]
    busy_time = 0.0
    response_sum = 0.0
    completed = 0
    arrival_wall: dict[int, float] = {}
    next_arrival = 0
    n_jobs = arrivals.size

    def advance(to_time: float) -> None:
        """Advance wall clock to ``to_time``, accruing integrals."""
        nonlocal tnow, vnow, area_jobs, busy_time
        dt = to_time - tnow
        n = len(heap)
        if n > 0:
            vnow += dt * service_rate / n
            lo = max(tnow, warmup)
            if to_time > lo:
                area_jobs += n * (to_time - lo)
            busy_time += dt
        tnow = to_time

    while True:
        t_arr = arrivals[next_arrival] if next_arrival < n_jobs else np.inf
        if heap:
            v_dep = heap[0][0]
            n = len(heap)
            t_dep = tnow + (v_dep - vnow) * n / service_rate
        else:
            t_dep = np.inf
        t_next = min(t_arr, t_dep, horizon)
        advance(t_next)
        if t_next >= horizon:
            break
        if t_dep <= t_arr:
            _, job = heapq.heappop(heap)
            response_sum += tnow - arrival_wall.pop(job)
            completed += 1
        else:
            heapq.heappush(heap, (vnow + works[next_arrival], next_arrival))
            arrival_wall[next_arrival] = tnow
            next_arrival += 1

    measured = horizon - warmup
    return PSQueueStats(
        mean_jobs=area_jobs / measured,
        mean_response_time=response_sum / completed if completed else 0.0,
        utilization=busy_time / horizon,
        completed=completed,
        duration=measured,
    )


def empirical_delay_sum(
    fleet,
    levels: np.ndarray,
    per_server_load: np.ndarray,
    *,
    duration: float = 2000.0,
    rng: np.random.Generator | None = None,
) -> float:
    """Event-driven estimate of the Eq. (4) delay sum for a fleet action.

    Servers within a group are stochastically identical, so one server per
    *on* group is simulated and its mean jobs-in-system is multiplied by the
    group count -- the event-based counterpart of
    :meth:`Fleet.action_delay_sum`, used to validate the analytic model.
    """
    gen = rng if rng is not None else np.random.default_rng(13)
    levels = np.asarray(levels)
    total = 0.0
    for g in np.nonzero(levels >= 0)[0]:
        lam = float(per_server_load[g])
        if lam <= 0:
            continue
        x = float(fleet.speed_table[g, levels[g]])
        stats = simulate_ps_queue(lam, x, duration=duration, rng=gen)
        total += fleet.counts[g] * stats.mean_jobs
    return total
