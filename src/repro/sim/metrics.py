"""Per-run records and summaries.

:class:`SimulationRecord` holds every per-slot quantity a figure in the
paper needs -- costs split into electricity and delay, brown energy, served
and dropped load, switching energy, the deficit queue, and the applied ``V``
-- plus the derived series used by the plots: running averages (Fig. 3's
"summing up all the values from time 0 to time t and dividing by t + 1")
and 45-day trailing moving averages (Fig. 2(c,d)).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..energy.carbon import CarbonLedger
from ..energy.renewables import RenewablePortfolio

__all__ = ["SimulationRecord", "RunSummary"]


@dataclass(frozen=True)
class RunSummary:
    """Headline numbers of one run (all per-slot values are hourly)."""

    controller: str
    horizon: int
    average_cost: float
    average_electricity_cost: float
    average_delay_cost: float
    total_brown: float
    average_deficit: float
    is_neutral: bool
    dropped_load: float
    average_active_servers: float
    total_switching_energy: float

    def as_row(self) -> dict:
        """Flat dict for table rendering."""
        return {
            "controller": self.controller,
            "avg cost [$/h]": self.average_cost,
            "avg elec [$/h]": self.average_electricity_cost,
            "avg delay [$/h]": self.average_delay_cost,
            "brown [MWh]": self.total_brown,
            "avg deficit [MWh/h]": self.average_deficit,
            "neutral": self.is_neutral,
        }


@dataclass
class SimulationRecord:
    """Arrays of per-slot outcomes for one controller run.

    All arrays share the horizon length.  Monetary values are $ per slot,
    energies MWh per slot, rates req/s.
    """

    controller: str
    it_power: np.ndarray
    facility_power: np.ndarray
    brown_energy: np.ndarray
    electricity_cost: np.ndarray
    delay_cost: np.ndarray
    cost: np.ndarray
    switching_energy: np.ndarray
    arrival_predicted: np.ndarray
    arrival_actual: np.ndarray
    served: np.ndarray
    dropped: np.ndarray
    active_servers: np.ndarray
    onsite: np.ndarray
    offsite: np.ndarray
    price: np.ndarray
    queue: np.ndarray = field(default_factory=lambda: np.empty(0))
    v_applied: np.ndarray = field(default_factory=lambda: np.empty(0))

    def __post_init__(self) -> None:
        n = self.horizon
        for name in (
            "facility_power",
            "brown_energy",
            "electricity_cost",
            "delay_cost",
            "cost",
            "switching_energy",
            "arrival_predicted",
            "arrival_actual",
            "served",
            "dropped",
            "active_servers",
            "onsite",
            "offsite",
            "price",
        ):
            if len(getattr(self, name)) != n:
                raise ValueError(f"array {name!r} length mismatch")

    # ------------------------------------------------------------------
    @property
    def horizon(self) -> int:
        """Number of slots recorded."""
        return len(self.it_power)

    @property
    def average_cost(self) -> float:
        """The paper's objective ``g_bar``: mean hourly operational cost."""
        return float(self.cost.mean())

    @property
    def total_brown(self) -> float:
        """Total brown energy drawn (MWh)."""
        return float(self.brown_energy.sum())

    def deficit_series(self, portfolio: RenewablePortfolio, alpha: float = 1.0) -> np.ndarray:
        """Per-slot carbon deficit ``y(t) - alpha f(t) - z`` (MWh); negative
        when the budget out-supplies usage that slot."""
        z = alpha * portfolio.recs / portfolio.horizon
        return self.brown_energy - alpha * portfolio.offsite.values - z

    def average_deficit(self, portfolio: RenewablePortfolio, alpha: float = 1.0) -> float:
        """Mean hourly carbon deficit (Fig. 2(b) / Fig. 3(b) y-axis)."""
        return float(self.deficit_series(portfolio, alpha).mean())

    def ledger(self, portfolio: RenewablePortfolio, alpha: float = 1.0) -> CarbonLedger:
        """A fully-populated :class:`CarbonLedger` for the run."""
        ledger = CarbonLedger(portfolio=portfolio, alpha=alpha)
        for y in self.brown_energy:
            ledger.record(float(y))
        return ledger

    # ------------------------------------------------------------------
    @staticmethod
    def _running_average(series: np.ndarray) -> np.ndarray:
        return np.cumsum(series) / np.arange(1, series.size + 1)

    @staticmethod
    def _moving_average(series: np.ndarray, window: int) -> np.ndarray:
        csum = np.concatenate(([0.0], np.cumsum(series)))
        t = np.arange(series.size)
        lo = np.maximum(t - window + 1, 0)
        return (csum[t + 1] - csum[lo]) / (t - lo + 1)

    def running_average_cost(self) -> np.ndarray:
        """Fig. 3(a) series: running average of hourly cost."""
        return self._running_average(self.cost)

    def running_average_deficit(
        self, portfolio: RenewablePortfolio, alpha: float = 1.0
    ) -> np.ndarray:
        """Fig. 3(b) series: running average of the hourly carbon deficit."""
        return self._running_average(self.deficit_series(portfolio, alpha))

    def moving_average_cost(self, window: int = 45 * 24) -> np.ndarray:
        """Fig. 2(c) series: 45-day trailing moving average of hourly cost."""
        return self._moving_average(self.cost, window)

    def moving_average_deficit(
        self, portfolio: RenewablePortfolio, alpha: float = 1.0, window: int = 45 * 24
    ) -> np.ndarray:
        """Fig. 2(d) series: 45-day trailing moving average of the deficit."""
        return self._moving_average(self.deficit_series(portfolio, alpha), window)

    # ------------------------------------------------------------------
    def summary(self, portfolio: RenewablePortfolio, alpha: float = 1.0) -> RunSummary:
        """Headline numbers for tables."""
        ledger = self.ledger(portfolio, alpha)
        return RunSummary(
            controller=self.controller,
            horizon=self.horizon,
            average_cost=self.average_cost,
            average_electricity_cost=float(self.electricity_cost.mean()),
            average_delay_cost=float(self.delay_cost.mean()),
            total_brown=self.total_brown,
            average_deficit=self.average_deficit(portfolio, alpha),
            is_neutral=ledger.is_neutral(),
            dropped_load=float(self.dropped.sum()),
            average_active_servers=float(self.active_servers.mean()),
            total_switching_energy=float(self.switching_energy.sum()),
        )
