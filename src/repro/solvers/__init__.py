"""P3 solver engines: problem definition, load distribution, and search."""

from .base import SlotSolution, SlotSolver
from .batched import distribute_load_batch, objective_batch, tariff_cost_batch
from .brute_force import BruteForceSolver
from .convex import CoordinateDescentSolver, initial_levels
from .deadline import DeadlineExceededError, SolveDeadline
from .degraded import solve_with_failed_groups
from .enumeration import HomogeneousEnumerationSolver
from .fastpath import EvaluationCache, FastPathStats
from .gsd import GSDSolver, GSDTrace, geometric_temperature
from .load_distribution import LoadDistribution, distribute_load, solve_fixed_levels
from .messaging import (
    BusAgent,
    BusTimeoutError,
    DistributedGSD,
    DualLoadCoordinator,
    Message,
    MessageBus,
    ServerAgent,
    exchange,
)
from .problem import InfeasibleError, SlotEvaluation, SlotProblem
from .sharded import ShardAgent, ShardedGSDSolver, ShardPlan, problem_fingerprint

__all__ = [
    "SlotProblem",
    "SlotEvaluation",
    "InfeasibleError",
    "SlotSolution",
    "SlotSolver",
    "LoadDistribution",
    "distribute_load",
    "distribute_load_batch",
    "objective_batch",
    "tariff_cost_batch",
    "solve_fixed_levels",
    "EvaluationCache",
    "FastPathStats",
    "HomogeneousEnumerationSolver",
    "CoordinateDescentSolver",
    "initial_levels",
    "GSDSolver",
    "GSDTrace",
    "geometric_temperature",
    "BruteForceSolver",
    "SolveDeadline",
    "DeadlineExceededError",
    "DistributedGSD",
    "DualLoadCoordinator",
    "MessageBus",
    "Message",
    "ServerAgent",
    "BusAgent",
    "BusTimeoutError",
    "exchange",
    "solve_with_failed_groups",
    "ShardedGSDSolver",
    "ShardAgent",
    "ShardPlan",
    "problem_fingerprint",
]
