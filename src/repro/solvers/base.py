"""Solver interface for the one-slot problem P3.

COCA is agnostic to how P3 is solved each slot ("solving P3 is *not*
restricted to using the presented GSD. Instead, other alternative algorithms
can also be applied" -- section 4.2).  All engines implement
:class:`SlotSolver` and return a :class:`SlotSolution`; the controller, the
baselines, and the benchmarks pick whichever engine fits the fleet:

===========================  =======================================================
Engine                       Use case
===========================  =======================================================
HomogeneousEnumerationSolver exact & fast for single-profile fleets (year-long runs)
CoordinateDescentSolver      deterministic local search for heterogeneous fleets
GSDSolver                    the paper's distributed Gibbs sampler (Algorithm 2)
BruteForceSolver             exhaustive oracle for small instances (tests)
===========================  =======================================================

The iterative engines (GSD, coordinate descent, brute force) share a common
fast path -- a per-solve evaluation cache, an O(1) delta feasibility screen,
and opt-in warm-started inner solves -- in :mod:`repro.solvers.fastpath`;
see ``docs/PERFORMANCE.md`` for the design and its exactness contracts.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any

from ..cluster.fleet import FleetAction
from ..telemetry import NULL_TELEMETRY, Telemetry
from .problem import SlotEvaluation, SlotProblem

__all__ = ["SlotSolution", "SlotSolver"]


@dataclass(frozen=True)
class SlotSolution:
    """An action together with its evaluation and solver diagnostics."""

    action: FleetAction
    evaluation: SlotEvaluation
    info: dict[str, Any] = field(default_factory=dict)

    @property
    def objective(self) -> float:
        """P3 objective value ``V g + q y`` of the chosen action."""
        return self.evaluation.objective

    @property
    def cost(self) -> float:
        """Operational cost ``g`` of the chosen action."""
        return self.evaluation.cost


class SlotSolver(ABC):
    """Strategy interface: minimize Eq. (16) subject to (7)-(9)."""

    #: Observability handle; a no-op unless a controller or caller rebinds
    #: it.  Instrumented engines guard with ``self.telemetry.enabled`` so
    #: the default costs nothing on the hot path.
    telemetry: Telemetry = NULL_TELEMETRY

    def bind_telemetry(self, telemetry: Telemetry) -> None:
        """Attach a run's telemetry (propagated by the owning controller)."""
        self.telemetry = telemetry

    @abstractmethod
    def solve(self, problem: SlotProblem) -> SlotSolution:
        """Return a (near-)minimizer of the slot problem.

        Implementations must raise
        :class:`~repro.solvers.problem.InfeasibleError` when no feasible
        action exists (workload above capped capacity).
        """

    def name(self) -> str:
        """Short identifier for reports."""
        return type(self).__name__

    # -------------------------------------------------------- checkpointing
    def state_dict(self) -> dict:
        """Mutable solver state a checkpoint must carry to resume exactly.

        Stateless engines (enumeration, brute force) inherit this empty
        default; engines with RNG streams or counters override it.
        """
        return {}

    def load_state_dict(self, state: dict) -> None:
        """Restore state captured by :meth:`state_dict` (no-op by default)."""
