"""Whole-horizon vectorized P3 sweeps for homogeneous fleets.

The offline baselines (OPT's dual bisection, PerfectHP's per-hour capped
subproblems, the T-step lookahead benchmark) repeatedly need "solve every
slot of the horizon for a given brown-energy penalty".  Doing that slot by
slot costs a Python loop per sweep; for homogeneous fleets with a linear
tariff the (servers-on, shared-speed) candidate grid of
:class:`~repro.solvers.enumeration.HomogeneousEnumerationSolver` can instead
be scored for *all slots at once* -- a ``(slots, G+1, K)`` tensor reduced
along the candidate axes, processed in chunks to bound memory.  A year
(8760 slots, 200 groups, 4 speeds) sweeps in well under a second.

The sweep intentionally ignores switching charges (the baselines plan
without them; realized transitions are still billed by the simulator) and
the optional section-3.1 operational caps (pass an explicit per-slot solver
to a baseline when caps matter).  The per-slot deficit weight ``q`` may be
a scalar or a per-slot array -- the latter is what PerfectHP's per-hour
multiplier search needs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cluster.power import LinearTariff
from .problem import InfeasibleError

__all__ = ["BatchResult", "batch_enumerate", "supports_batch"]

_CHUNK = 1024


@dataclass(frozen=True)
class BatchResult:
    """Per-slot optima of a vectorized sweep (see module docstring)."""

    servers_on: np.ndarray  # number of servers on per slot
    speed_level: np.ndarray  # shared speed level per slot (-1 when all off)
    it_power: np.ndarray  # MW
    brown_energy: np.ndarray  # MWh
    electricity_cost: np.ndarray  # $
    delay_cost: np.ndarray  # $
    cost: np.ndarray  # $ (g = e + beta kappa D)
    objective: np.ndarray  # V g + q y

    @property
    def total_brown(self) -> float:
        """Total brown energy over the sweep (MWh)."""
        return float(self.brown_energy.sum())

    @property
    def average_cost(self) -> float:
        """Mean hourly cost over the sweep ($)."""
        return float(self.cost.mean())


def supports_batch(model) -> bool:
    """Whether the fast sweep applies: homogeneous fleet + linear tariff."""
    return model.fleet.is_homogeneous and isinstance(model.tariff, LinearTariff)


def batch_enumerate(
    model,
    arrival: np.ndarray,
    onsite: np.ndarray,
    price: np.ndarray,
    *,
    q: np.ndarray | float = 0.0,
    V: float = 1.0,
    pue: np.ndarray | float | None = None,
) -> BatchResult:
    """Solve every slot's P3 (without switching terms) in vectorized chunks.

    Parameters
    ----------
    model:
        A :class:`~repro.core.config.DataCenterModel` with a homogeneous
        fleet and linear tariff (checked via :func:`supports_batch`).
    arrival, onsite, price:
        Per-slot inputs (req/s, MW, $/MWh).
    q:
        Brown-energy penalty: scalar, or one value per slot.
    V:
        Cost weight (Eq. (16)).
    pue:
        Optional PUE override: scalar or per-slot array (defaults to the
        model's constant).
    """
    if not supports_batch(model):
        raise ValueError("batch sweep needs a homogeneous fleet and linear tariff")
    arrival = np.asarray(arrival, dtype=np.float64)
    onsite = np.asarray(onsite, dtype=np.float64)
    price = np.asarray(price, dtype=np.float64)
    n = arrival.size
    if onsite.size != n or price.size != n:
        raise ValueError("per-slot inputs must share a length")
    q_arr = np.broadcast_to(np.asarray(q, dtype=np.float64), (n,))
    pue_arr = np.broadcast_to(
        np.asarray(
            model.power_model.pue if pue is None else pue, dtype=np.float64
        ),
        (n,),
    )

    fleet = model.fleet
    profile = fleet.groups[0].profile
    speeds = profile.speeds  # (K,)
    coeff = profile.energy_per_request  # (K,)
    prefix = np.concatenate(([0.0], np.cumsum(fleet.counts)))  # (G+1,)
    kappa = model.beta * model.delay_unit_cost
    gamma = model.gamma
    # MW -> MWh per slot; delay cost likewise accrues over the slot length.
    slot_h = getattr(model, "slot_hours", 1.0)

    cap_per_server = gamma * speeds  # (K,)
    max_capacity = prefix[-1] * cap_per_server[-1]
    if np.any(arrival > max_capacity * (1.0 + 1e-12)):
        raise InfeasibleError("some slot's workload exceeds capped capacity")

    out = {
        name: np.empty(n)
        for name in (
            "servers_on",
            "it_power",
            "brown_energy",
            "electricity_cost",
            "delay_cost",
            "cost",
            "objective",
        )
    }
    out_level = np.empty(n, dtype=np.int64)

    M = prefix[None, :, None]  # (1, G+1, 1)
    for lo in range(0, n, _CHUNK):
        hi = min(lo + _CHUNK, n)
        lam = arrival[lo:hi, None, None]  # (c, 1, 1)
        with np.errstate(divide="ignore", invalid="ignore"):
            load = np.where(M > 0, lam / M, np.inf)  # (c, G+1, 1)
        feasible = load <= cap_per_server[None, None, :]  # (c, G+1, K)
        zero_lam = arrival[lo:hi] <= 0.0
        if zero_lam.any():
            feasible[zero_lam, 0, :] = True

        with np.errstate(invalid="ignore"):
            load_k = np.where(feasible, np.minimum(load, cap_per_server), 0.0)
            it_power = M * (profile.static_power + coeff[None, None, :] * load_k)
            it_power = np.where(feasible, it_power, np.inf)
            brown = (
                np.maximum(
                    pue_arr[lo:hi, None, None] * it_power - onsite[lo:hi, None, None],
                    0.0,
                )
                * slot_h
            )
            e_cost = price[lo:hi, None, None] * brown
            delay = M * model.delay_model.cost(load_k, speeds[None, None, :]) * slot_h
            delay = np.where(M > 0, delay, 0.0)
            g = e_cost + kappa * delay
            objective = V * g + q_arr[lo:hi, None, None] * brown
            objective = np.where(feasible, objective, np.inf)

        flat = objective.reshape(hi - lo, -1)
        best = np.argmin(flat, axis=1)
        j, k = np.unravel_index(best, objective.shape[1:])
        rows = np.arange(hi - lo)
        out["servers_on"][lo:hi] = prefix[j]
        out_level[lo:hi] = np.where(j > 0, k, -1)
        out["it_power"][lo:hi] = np.where(j > 0, it_power[rows, j, k], 0.0)
        out["brown_energy"][lo:hi] = np.where(
            j > 0, brown[rows, j, k], np.maximum(-onsite[lo:hi], 0.0)
        )
        out["electricity_cost"][lo:hi] = np.where(j > 0, e_cost[rows, j, k], 0.0)
        out["delay_cost"][lo:hi] = kappa * np.where(j > 0, delay[rows, j, k], 0.0)
        out["cost"][lo:hi] = np.where(j > 0, g[rows, j, k], 0.0)
        out["objective"][lo:hi] = np.where(j > 0, flat[rows, best], 0.0)

    return BatchResult(speed_level=out_level, **out)
