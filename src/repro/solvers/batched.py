"""Batched water-filling: the P3 inner solve over a *matrix* of candidates.

Every iterative engine (GSD, coordinate descent, brute force) scores
candidate level vectors one at a time through
:func:`~repro.solvers.load_distribution.distribute_load`, and on fleets of
a few hundred groups the cost is pure Python overhead: each ν-bisection
step is ~10 numpy calls on (G,) arrays, each call microseconds of setup
around nanoseconds of arithmetic.  Warm starts cut the *solve count*
(BENCH_solver_fastpath: 406 → 1 cold solves on the 200-group GSD case) but
left the wall time flat, because the surviving bisections still ran one
scalar candidate at a time.

This module runs the whole pipeline -- on-set compaction, feasibility
check, ν-bisection, regime classification (billed/free/boundary), μ-
bisection, residual closure, and the objective evaluation -- as array ops
over a ``(K, G)`` batch: one vectorized bisection advances K brackets in
lockstep instead of K scalar solves.  The same ~10 numpy calls per
bisection step now serve every candidate at once.

Bit-exactness contract
----------------------
The cold batched path is **bit-identical per candidate** to the scalar
engine (pinned by ``tests/test_batched_engine.py`` against
:func:`distribute_load` as the oracle).  Three structural rules make that
possible:

- **Partition by on-count.**  The scalar solver compacts arrays to the
  on-set before summing; summing a full-length row with zeros interleaved
  changes numpy's pairwise-summation grouping and therefore the bits.
  But the pairwise blocking depends only on the *length* of the reduced
  axis, not on which columns were gathered -- so rows whose on-sets merely
  have the same size can share a partition.  Each row carries its own
  column-index vector (ascending, as ``np.nonzero`` yields, matching the
  scalar compaction order); within a partition ``np.sum(A, axis=1)`` on
  the C-contiguous gathered block reduces each row with the same pairwise
  blocking as the scalar 1-D sum.  This is what keeps a GSD speculation
  block (the base configuration's flips, whose on-masks all differ) in
  one or two partitions instead of one per row.
- **Preserve elementwise op order.**  Every scalar expression is
  replicated with the same association (``we * pue * c`` becomes
  ``(we_vec * pue)[:, None] * c``, never ``we_vec[:, None] * (pue * c)``).
- **Lockstep brackets with per-row masks.**  Each bisection step computes
  the midpoint for all rows and applies bracket updates only to rows that
  have not collapsed yet, reproducing the scalar per-candidate bracket
  trace (and the ``inner_iters`` diagnostics) exactly.

Warm-started batches (a shared ``hint``) carry the scalar warm contract:
<= 1e-9 relative objective error against the cold solve.  Warm rows run
the same safeguarded regula falsi (Illinois) refinement as the scalar
warm path, in lockstep, with the identical per-row arithmetic -- so a
warm batched row still matches the warm scalar solve bit for bit.

Rows whose configuration cannot serve the load come back as ``None`` --
the batch analogue of :class:`InfeasibleError`.  Degenerate instances the
vectorization does not cover (``Wd == 0``'s greedy fill, non-linear
tariffs' per-row fixed point) fall back to the scalar solver row by row,
so the API is total and trivially bit-identical there.
"""

from __future__ import annotations

import numpy as np

from ..cluster.power import LinearTariff, Tariff
from ..cluster.queueing import MG1PSDelay
from . import load_distribution as ld
from .load_distribution import LoadDistribution, distribute_load
from .problem import InfeasibleError, SlotProblem

__all__ = ["distribute_load_batch", "objective_batch", "tariff_cost_batch"]


def tariff_cost_batch(
    tariff: Tariff, brown: np.ndarray, price: float
) -> np.ndarray:
    """Tariff cost over an array of brown-energy draws.

    ``LinearTariff`` (the common case) is one multiply, bit-identical to
    the scalar ``cost`` per element; other tariffs fall back to elementwise
    scalar calls (their ``cost`` is scalar Python), skipping non-finite
    entries.  Shared by the batched evaluator and the homogeneous
    enumeration engine's candidate grid.
    """
    brown = np.asarray(brown, dtype=np.float64)
    if isinstance(tariff, LinearTariff):
        # Candidate grids carry inf/nan placeholders (infeasible rows);
        # 0 * inf raises "invalid value" without changing any entry.
        with np.errstate(invalid="ignore"):
            return price * brown
    out = np.full(brown.shape, np.inf)
    finite = np.isfinite(brown)
    flat = brown[finite]
    out[finite] = [tariff.cost(float(b), price) for b in flat]
    return out


# ---------------------------------------------------------------------------
# Batched water-filling over one on-count partition
# ---------------------------------------------------------------------------
#: ``np.sum(a, axis=1)`` delegates to ``np.add.reduce`` after a dispatch
#: wrapper that costs several microseconds per call -- real money at this
#: module's call rates.  Calling the ufunc method directly is bit-identical
#: (same pairwise reduction); likewise ``logical_and/or.reduce`` for
#: ``np.all``/``np.any``.
_rowsum = np.add.reduce
_rowall = np.logical_and.reduce
_rowany = np.logical_or.reduce


def _take(arr: np.ndarray, idx: np.ndarray) -> np.ndarray:
    """``np.take_along_axis(arr, idx, axis=1)`` without the index-grid
    wrapper: one fancy gather, identical element selection."""
    return arr[np.arange(idx.shape[0])[:, None], idx]


def _close_residual_rows(
    lam: float, loads: np.ndarray, caps: np.ndarray, n: np.ndarray
) -> np.ndarray:
    """Row-wise :func:`load_distribution._close_residual`.

    The overwhelmingly common case -- every group strictly interior, one
    uniform correction, nothing clips -- is one vectorized pass: with an
    all-true interior mask the scalar's boolean gather is the full
    contiguous row, so the sums share pairwise blocking and the fast rows
    are bit-identical.  Rows whose interior mask compacts (some load sits
    exactly on its cap or floor after the water-fill's clip) but where the
    correction still lands inside every interior box take a second
    vectorized tier: grouped by interior *count*, a per-row gather of
    equal-length interior sets reduces with the same pairwise blocking as
    the scalar boolean gather, so these rows are bit-identical too.  Only
    rows where the clip actually binds -- the redistribution loop -- fall
    back to the scalar routine.
    """
    res = lam - _rowsum(n * loads, axis=1)
    int_strict = (loads > 0.0) & (loads < caps)
    int_below = loads < caps
    neg = res < 0.0
    all_int = np.where(neg, _rowall(int_strict, axis=1), _rowall(int_below, axis=1))
    weight = _rowsum(n, axis=1)
    with np.errstate(divide="ignore", invalid="ignore"):
        proposed = loads + (res / weight)[:, None]
    clipped = np.minimum(np.maximum(proposed, 0.0), caps)
    fast = all_int & (weight > 0.0) & ~_rowany(clipped != proposed, axis=1)
    out = np.where(fast[:, None], clipped, loads)
    slow = np.nonzero(~fast)[0]
    if slow.size == 0:
        return out

    interior = np.where(neg[slow, None], int_strict[slow], int_below[slow])
    icount = interior.sum(axis=1)
    groups: dict[int, list[int]] = {}
    for j in range(slow.size):
        groups.setdefault(int(icount[j]), []).append(j)
    for cnt, members in groups.items():
        if cnt == 0:
            continue  # weight <= 0: the scalar loop breaks, loads unchanged
        sub = np.asarray(members)
        rows = slow[sub]
        icols = np.nonzero(interior[sub])[1].reshape(sub.size, cnt)
        n_i = _take(n[rows], icols)
        w_i = _rowsum(n_i, axis=1)
        l_i = _take(loads[rows], icols)
        cap_i = _take(caps[rows], icols)
        with np.errstate(divide="ignore", invalid="ignore"):
            prop = l_i + (res[rows] / w_i)[:, None]
        clip_i = np.minimum(np.maximum(prop, 0.0), cap_i)
        done = (w_i > 0.0) & ~_rowany(clip_i != prop, axis=1)
        d_loc = np.nonzero(done)[0]
        if d_loc.size:
            filled = out[rows[d_loc]]
            np.put_along_axis(filled, icols[d_loc], clip_i[d_loc], axis=1)
            out[rows[d_loc]] = filled
        for j in np.nonzero(~done)[0]:
            k = rows[j]
            out[k] = ld._close_residual(lam, loads[k], caps[k], n[k])
    return out


def _waterfill_rows(
    problem: SlotProblem,
    lam: float,
    we: np.ndarray,
    x: np.ndarray,
    c: np.ndarray,
    n: np.ndarray,
    nu_hint: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized :func:`load_distribution._waterfill` over B rows.

    ``we`` is per-row; ``x``/``c``/``n`` are per-row ``(B, Gon)`` gathers
    of the speed, dynamic-power, and server-count columns of each row's
    own on-set; ``nu_hint`` is a per-row dual hint (NaN = no hint).
    Returns ``(loads, nu, iters, warm, dead)`` where ``dead`` marks rows
    whose doubling bracket diverged (the scalar path's
    :class:`InfeasibleError`).  Requires ``Wd > 0`` (callers route the
    delay-free degenerate case through the scalar fill).

    Cold rows run the scalar lockstep bisection; warm-validated rows run
    the scalar warm path's Illinois refinement, both with per-row
    arithmetic identical to :func:`load_distribution._waterfill`.  Each
    phase gathers its rows' sub-arrays once and then runs a dense masked
    loop over the subset -- per-row values are unchanged either way, so
    any subset evaluates bit-identically.  For the M/G/1/PS delay model
    (the common case) the served-load evaluation inlines
    ``clip(x - sqrt(x/m), 0, x)`` -- the exact expression
    :meth:`MG1PSDelay.load_at_marginal` computes -- skipping its asarray
    and ufunc-wrapper overhead without changing a bit.
    """
    dm = problem.delay_model
    wd = problem.V * problem.delay_weight
    pue = problem.pue
    caps = problem.gamma * x
    elec = (we * pue)[:, None] * c  # scalar path: (we * pue) * c

    B = x.shape[0]
    mg1ps = isinstance(dm, MG1PSDelay)

    def make_served(rows):
        e_s, x_s, caps_s, n_s = elec[rows], x[rows], caps[rows], n[rows]

        def loads_at(nu: np.ndarray) -> np.ndarray:
            m = (nu[:, None] - e_s) / wd
            ms = np.maximum(m, 1e-300)
            if mg1ps:
                v = x_s - np.sqrt(x_s / ms)
                v = np.minimum(np.maximum(v, 0.0), x_s)
            else:
                v = dm.load_at_marginal(ms, x_s)
            lam_g = np.where(m > 0, v, 0.0)
            return np.minimum(np.maximum(lam_g, 0.0), caps_s)

        def srv(nu: np.ndarray) -> np.ndarray:
            return _rowsum(n_s * loads_at(nu), axis=1)

        return loads_at, srv

    if mg1ps:
        # Inline MG1PSDelay.marginal -- where(load < speed,
        # speed / (speed - load)**2, inf) -- with the same literal
        # expressions, skipping the asarray/errstate wrapper.
        with np.errstate(divide="ignore", invalid="ignore"):
            m0 = np.where(0.0 < x, x / (x - 0.0) ** 2, np.inf)
            mc = np.where(caps < x, x / (x - caps) ** 2, np.inf)
    else:
        m0 = dm.marginal(np.zeros_like(x), x)
        mc = dm.marginal(caps, x)
    lo = np.min(elec + wd * m0, axis=1)
    hi = np.maximum(lo, np.max(elec + wd * mc, axis=1)) + 1.0
    dead = np.zeros(B, dtype=bool)
    warm = np.zeros(B, dtype=bool)
    f_lo = np.zeros(B)
    f_hi = np.zeros(B)

    # Warm validation before the doubling probe (mirrors the scalar order:
    # doubling only raises ``hi``, so a hint bracket under the initial
    # ``hi`` validates identically either way, and a validated bracket
    # proves the probe would not have fired).  In the hot path -- every
    # row warm -- the probe evaluation is skipped entirely.
    if nu_hint is not None:
        hint_ok = np.isfinite(nu_hint)
        w = ld._WARM_RTOL_WIDE * np.maximum(np.abs(nu_hint), 1e-300)
        wlo = np.maximum(lo, nu_hint - w)
        whi = nu_hint + w
        early = hint_ok & (wlo < whi) & (whi <= hi)
        e_rows = np.nonzero(early)[0]
        if e_rows.size:
            _, srv_e = make_served(e_rows)
            s_lo = srv_e(wlo[e_rows])
            s_hi = srv_e(whi[e_rows])
            ok = (s_lo < lam) & (lam <= s_hi)
            okr = e_rows[ok]
            lo[okr] = wlo[okr]
            hi[okr] = whi[okr]
            f_lo[okr] = s_lo[ok] - lam
            f_hi[okr] = s_hi[ok] - lam
            warm[okr] = True

    pending = np.nonzero(~warm)[0]
    if pending.size:
        _, srv_p = make_served(pending)
        need = pending[srv_p(hi[pending]) < lam]
        while need.size:
            hi[need] = 2.0 * hi[need] + 1.0
            died = hi[need] > 1e300
            dead[need[died]] = True
            need = need[~died]
            if need.size:
                _, srv_n = make_served(need)
                need = need[srv_n(hi[need]) < lam]
        # Hint rows whose wide bracket poked above the initial ``hi`` had
        # to wait for the doubled bracket (rows that *tried* the early
        # window and failed would fail again -- their clamps are
        # unchanged -- so they go straight to the cold bisection).
        if nu_hint is not None:
            late = np.nonzero(hint_ok & ~early & ~dead & ~warm)[0]
            if late.size:
                whi2 = np.minimum(hi[late], whi[late])
                v_ok = wlo[late] < whi2
                vrows = late[v_ok]
                if vrows.size:
                    _, srv_v = make_served(vrows)
                    s_lo = srv_v(wlo[vrows])
                    s_hi = srv_v(whi2[v_ok])
                    ok = (s_lo < lam) & (lam <= s_hi)
                    okr = vrows[ok]
                    lo[okr] = wlo[okr]
                    hi[okr] = whi2[v_ok][ok]
                    f_lo[okr] = s_lo[ok] - lam
                    f_hi[okr] = s_hi[ok] - lam
                    warm[okr] = True

    iters = np.zeros(B, dtype=np.int64)

    # Cold rows: the scalar cold path's lockstep bisection (bit-identical).
    crows = np.nonzero(~dead & ~warm)[0]
    if crows.size:
        _, srv = make_served(crows)
        lo_s, hi_s = lo[crows], hi[crows]
        it_s = np.zeros(crows.size, dtype=np.int64)
        act = np.ones(crows.size, dtype=bool)
        for _ in range(ld._NU_ITERS):
            mid = 0.5 * (lo_s + hi_s)
            collapsed = (mid == lo_s) | (mid == hi_s)
            cross = srv(mid) < lam
            upd_lo = act & cross
            upd_hi = act ^ upd_lo
            lo_s = np.where(upd_lo, mid, lo_s)
            hi_s = np.where(upd_hi, mid, hi_s)
            it_s += act
            if ld._EARLY_EXIT:
                act &= ~collapsed
                if not act.any():
                    break
        lo[crows], hi[crows] = lo_s, hi_s
        iters[crows] = it_s

    # Warm rows: the scalar warm path's Illinois refinement in lockstep
    # (the secant, safeguard, halving, and ``_WARM_XTOL`` stop match the
    # scalar code per element, so warm batched rows equal warm scalar
    # solves bit for bit).  ``f_hi - f_lo > 0`` always (the signs are
    # strict invariants), but a collapsing ``f`` can overflow the secant
    # quotient; the safeguard then takes the midpoint, and errstate keeps
    # the spurious warning quiet (the scalar path works in Python floats,
    # which never warn).
    wrows = np.nonzero(warm)[0]
    if wrows.size:
        _, srv = make_served(wrows)
        lo_s, hi_s = lo[wrows], hi[wrows]
        fl, fh = f_lo[wrows], f_hi[wrows]
        it_s = np.zeros(wrows.size, dtype=np.int64)
        side = np.zeros(wrows.size, dtype=np.int64)
        act = np.ones(wrows.size, dtype=bool)
        xtol = ld._WARM_XTOL
        with np.errstate(over="ignore", divide="ignore", invalid="ignore"):
            for _ in range(ld._NU_ITERS):
                mid = hi_s - fh * ((hi_s - lo_s) / (fh - fl))
                use_mid = ((it_s & 3) == 3) | ~((lo_s < mid) & (mid < hi_s))
                mid = np.where(use_mid, 0.5 * (lo_s + hi_s), mid)
                act &= ~((mid == lo_s) | (mid == hi_s))
                if not act.any():
                    break
                fm = srv(mid) - lam
                neg = fm < 0.0
                upd_lo = act & neg
                upd_hi = act ^ upd_lo
                fh = np.where(upd_lo & (side == -1), 0.5 * fh, fh)
                lo_s = np.where(upd_lo, mid, lo_s)
                fl = np.where(upd_lo, fm, fl)
                fl = np.where(upd_hi & (side == 1), 0.5 * fl, fl)
                hi_s = np.where(upd_hi, mid, hi_s)
                fh = np.where(upd_hi, fm, fh)
                side = np.where(upd_lo, -1, np.where(upd_hi, 1, side))
                it_s += act
                act &= ~(
                    hi_s - lo_s <= xtol * np.maximum(np.abs(lo_s), np.abs(hi_s))
                )
        lo[wrows], hi[wrows] = lo_s, hi_s
        iters[wrows] = it_s

    loads = np.zeros_like(x)
    alive = np.nonzero(~dead)[0]
    if alive.size:
        loads_a, _ = make_served(alive)
        loads[alive] = _close_residual_rows(
            lam, loads_a(hi[alive]), caps[alive], n[alive]
        )
    return loads, hi, iters, warm, dead


def _facility_rows(
    pue: float,
    static_it: np.ndarray,
    n: np.ndarray,
    c: np.ndarray,
    loads: np.ndarray,
) -> np.ndarray:
    """Per-row facility power, scalar op order: ``pue * (static + Σ n·c·l)``.

    ``static_it`` is the per-row static-power sum over each row's on-set.
    """
    return pue * (static_it + _rowsum(n * c * loads, axis=1))


def _solve_partition(
    problem: SlotProblem,
    levels: np.ndarray,
    cols: np.ndarray,
    hint: LoadDistribution | None,
) -> list[LoadDistribution | None]:
    """Batched :func:`distribute_load` for rows sharing one on-count.

    ``cols`` is the ``(B, Gon)`` per-row on-set column-index matrix
    (ascending per row, the order ``np.nonzero`` and the scalar compaction
    both use); rows may have entirely different on-masks as long as they
    have the same size.
    """
    fleet = problem.fleet
    lam = problem.arrival_rate
    B = levels.shape[0]
    G = fleet.num_groups

    lv_on = _take(levels, cols)
    x = fleet.speed_table[cols, lv_on]
    c = fleet.dyn_coeff[cols, lv_on]
    n = fleet.counts[cols]

    results: list[LoadDistribution | None] = [None] * B
    feasible = ~(
        lam > problem.gamma * _rowsum(n * x, axis=1) * (1.0 + 1e-12)
    )
    if not feasible.any():
        return results

    pue = problem.pue
    static_it = _rowsum(n * fleet.static_power[cols], axis=1)
    onsite = problem.onsite

    idx = np.nonzero(feasible)[0]
    xs, cs, ns = x[idx], c[idx], n[idx]
    st = static_it[idx]
    colf = cols[idx]
    Bf = idx.size
    total_iters = np.zeros(Bf, dtype=np.int64)
    warm_any = np.zeros(Bf, dtype=bool)

    def finish(k_local: int, loads_on, nu, regime, weight) -> None:
        full = np.zeros(G)
        full[colf[k_local]] = loads_on
        results[int(idx[k_local])] = LoadDistribution(
            full,
            float(nu),
            regime,
            float(weight),
            bool(warm_any[k_local]),
            int(total_iters[k_local]),
        )

    # Regime "billed": full electricity weight.  The LinearTariff marginal
    # is draw-independent, so the scalar fixed point converges in its
    # single pass with the same ``we`` for every row.
    we = problem.V * problem.tariff.marginal(0.0, problem.price) + problem.q
    billed_hint = None
    if hint is not None and hint.regime == "billed" and np.isfinite(hint.nu):
        billed_hint = np.full(Bf, hint.nu)
    loads_a, nu_a, it_a, warm_a, dead_a = _waterfill_rows(
        problem, lam, np.full(Bf, we), xs, cs, ns, nu_hint=billed_hint
    )
    total_iters += it_a
    warm_any |= warm_a
    fac_a = _facility_rows(pue, st, ns, cs, loads_a)
    billed = ~dead_a & (fac_a >= onsite * (1.0 - 1e-12))
    for k in np.nonzero(billed)[0]:
        finish(k, loads_a[k], nu_a[k], "billed", we)
    todo = np.nonzero(~dead_a & ~billed)[0]
    if todo.size == 0:
        return results

    # Regime "free": renewables may cover everything -> zero weight.
    free_hint = None
    if hint is not None and hint.regime == "free" and np.isfinite(hint.nu):
        free_hint = np.full(todo.size, hint.nu)
    loads_b, nu_b, it_b, warm_b, dead_b = _waterfill_rows(
        problem, lam, np.zeros(todo.size), xs[todo], cs[todo], ns[todo],
        nu_hint=free_hint,
    )
    total_iters[todo] += it_b
    warm_any[todo] |= warm_b
    fac_b = _facility_rows(pue, st[todo], ns[todo], cs[todo], loads_b)
    free = ~dead_b & (fac_b <= onsite * (1.0 + 1e-12))
    for j in np.nonzero(free)[0]:
        finish(todo[j], loads_b[j], nu_b[j], "free", 0.0)
    bnd = np.nonzero(~dead_b & ~free)[0]  # indices into ``todo``
    if bnd.size == 0:
        return results

    # Regime "boundary": bisect mu in (0, we) so facility == onsite, every
    # mu step a fresh batched water-fill over the still-active rows.
    rows = todo[bnd]  # indices into the feasible set
    Bb = rows.size
    xb, cb, nb = xs[rows], cs[rows], ns[rows]
    stb = st[rows]
    lo_mu = np.zeros(Bb)
    hi_mu = np.full(Bb, we)
    nu_chain = np.full(Bb, np.nan)
    if (
        hint is not None
        and hint.regime == "boundary"
        and 0.0 < hint.electricity_weight < we
    ):
        mu_h = hint.electricity_weight
        pending = np.ones(Bb, dtype=bool)
        for rtol in (ld._WARM_RTOL, ld._WARM_RTOL_WIDE):
            if not np.any(pending):
                break
            w = rtol * max(mu_h, 1e-300)
            cand_lo, cand_hi = max(0.0, mu_h - w), min(we, mu_h + w)
            if cand_lo >= cand_hi:
                continue
            p_idx = np.nonzero(pending)[0]
            hint_vec = np.full(p_idx.size, hint.nu)
            loads_lo, _, it_lo, _, dlo = _waterfill_rows(
                problem, lam, np.full(p_idx.size, cand_lo), xb[p_idx], cb[p_idx],
                nb[p_idx], nu_hint=hint_vec,
            )
            loads_hi, _, it_hi, _, dhi = _waterfill_rows(
                problem, lam, np.full(p_idx.size, cand_hi), xb[p_idx], cb[p_idx],
                nb[p_idx], nu_hint=hint_vec,
            )
            total_iters[rows[p_idx]] += it_lo + it_hi
            ok = (
                ~dlo
                & ~dhi
                & (
                    _facility_rows(pue, stb[p_idx], nb[p_idx], cb[p_idx], loads_lo)
                    > onsite
                )
                & (
                    _facility_rows(pue, stb[p_idx], nb[p_idx], cb[p_idx], loads_hi)
                    <= onsite
                )
            )
            lo_mu[p_idx[ok]] = cand_lo
            hi_mu[p_idx[ok]] = cand_hi
            warm_any[rows[p_idx[ok]]] = True
            nu_chain[p_idx[ok]] = hint.nu
            pending[p_idx[ok]] = False

    loads_m = loads_b[bnd].copy()
    nu_m = nu_b[bnd].copy()
    mu_used = 0.5 * (lo_mu + hi_mu)
    dead_m = np.zeros(Bb, dtype=bool)
    active = np.ones(Bb, dtype=bool)
    for _ in range(ld._MU_ITERS):
        if not np.any(active):
            break
        a_idx = np.nonzero(active)[0]
        mu = 0.5 * (lo_mu[a_idx] + hi_mu[a_idx])
        collapsed = (mu == lo_mu[a_idx]) | (mu == hi_mu[a_idx])
        sub_hint = nu_chain[a_idx] if np.any(np.isfinite(nu_chain[a_idx])) else None
        sl, snu, sit, _, sdead = _waterfill_rows(
            problem, lam, mu, xb[a_idx], cb[a_idx], nb[a_idx], nu_hint=sub_hint
        )
        loads_m[a_idx] = sl
        nu_m[a_idx] = snu
        mu_used[a_idx] = mu
        total_iters[rows[a_idx]] += sit
        dead_m[a_idx[sdead]] = True
        chained = np.isfinite(nu_chain[a_idx])
        nu_chain[a_idx[chained]] = snu[chained]
        fac = _facility_rows(pue, stb[a_idx], nb[a_idx], cb[a_idx], sl)
        cross = fac > onsite
        lo_mu[a_idx[cross]] = mu[cross]
        hi_mu[a_idx[~cross]] = mu[~cross]
        active[a_idx[sdead]] = False
        if ld._EARLY_EXIT:
            active[a_idx[collapsed]] = False
    for k in np.nonzero(~dead_m)[0]:
        finish(rows[k], loads_m[k], nu_m[k], "boundary", mu_used[k])
    return results


# ---------------------------------------------------------------------------
# Public batch API
# ---------------------------------------------------------------------------
def _needs_scalar_fallback(problem: SlotProblem) -> bool:
    """Degenerate instances routed through the scalar solver row by row."""
    if problem.V * problem.delay_weight <= 0.0:
        return True  # Wd == 0: greedy delay-free fill
    if not isinstance(problem.tariff, LinearTariff):
        return True  # per-row fixed point on the tariff marginal
    return False


def distribute_load_batch(
    problem: SlotProblem,
    levels_batch: np.ndarray,
    *,
    hint: LoadDistribution | None = None,
) -> list[LoadDistribution | None]:
    """Solve the load-distribution subproblem for K candidate level vectors.

    Parameters
    ----------
    problem:
        The slot's P3 instance (shared by every row).
    levels_batch:
        ``(K, G)`` integer matrix of candidate level vectors (``-1`` = off).
    hint:
        Optional warm-start hint applied to *every* row (the typical batch
        is all neighbor flips of one base configuration, so one neighbor's
        solution brackets them all).  ``None`` runs the cold path, whose
        rows are bit-identical to per-row :func:`distribute_load` calls.

    Returns
    -------
    One :class:`LoadDistribution` per row, or ``None`` where the scalar
    path would raise :class:`InfeasibleError`.
    """
    levels_batch = np.asarray(levels_batch, dtype=np.int64)
    if levels_batch.ndim != 2:
        raise ValueError("levels_batch must be a (K, G) matrix")
    K, G = levels_batch.shape
    fleet = problem.fleet
    if G != fleet.num_groups:
        raise ValueError("levels_batch must have one column per group")
    lam = problem.arrival_rate

    if lam <= 0.0:
        zero = np.zeros(G)
        return [LoadDistribution(zero.copy(), 0.0, "free", 0.0) for _ in range(K)]

    if _needs_scalar_fallback(problem):
        out: list[LoadDistribution | None] = []
        for k in range(K):
            try:
                out.append(
                    distribute_load(problem, levels_batch[k], hint=hint)
                )
            except InfeasibleError:
                out.append(None)
        return out

    results: list[LoadDistribution | None] = [None] * K
    masks = levels_batch >= 0
    on_counts = masks.sum(axis=1)
    partitions: dict[int, list[int]] = {}
    for k in range(K):
        partitions.setdefault(int(on_counts[k]), []).append(k)
    for gon, row_ids in partitions.items():
        if gon == 0:
            continue  # positive workload, every group off -> infeasible
        rows = np.asarray(row_ids)
        cols = np.nonzero(masks[rows])[1].reshape(rows.size, gon)
        part = _solve_partition(
            problem, np.ascontiguousarray(levels_batch[rows]), cols, hint
        )
        for local, k in enumerate(rows):
            results[int(k)] = part[local]
    return results


def _evaluate_partition(
    problem: SlotProblem,
    levels: np.ndarray,
    loads_full: np.ndarray,
    cols: np.ndarray,
) -> np.ndarray:
    """Vectorized ``SlotProblem.evaluate(...).objective`` with the cap
    checks folded in (``inf`` where :meth:`violates_caps` trips).

    ``cols`` is the per-row ``(B, Gon)`` on-set column-index matrix (rows
    share an on-count, not necessarily an on-mask)."""
    fleet = problem.fleet
    B = levels.shape[0]

    if cols.shape[1]:
        lv_on = _take(levels, cols)
        x = fleet.speed_table[cols, lv_on]
        coeff = fleet.dyn_coeff[cols, lv_on]
        lam_on = _take(loads_full, cols)
        counts_on = fleet.counts[cols]
        per_server = fleet.static_power[cols] + coeff * lam_on
        it_power = _rowsum(counts_on * per_server, axis=1)
        delay_sum = _rowsum(
            counts_on * problem.delay_model.cost(lam_on, x), axis=1
        )
    else:
        it_power = np.zeros(B)
        delay_sum = np.zeros(B)
    if problem.network_delay > 0.0:
        served = _rowsum(fleet.counts * loads_full, axis=1)
        delay_sum = delay_sum + problem.network_delay * served

    switching_energy = np.zeros(B)
    if problem.switching is not None and problem.prev_on_counts is not None:
        sw = problem.switching
        if sw.enabled:
            on_counts = np.where(levels >= 0, fleet.counts, 0.0)
            delta = on_counts - problem.prev_on_counts
            count = np.sum(np.maximum(delta, 0.0), axis=1)
            if sw.charge_off:
                count += np.sum(np.maximum(-delta, 0.0), axis=1)
            switching_energy = sw.energy_per_toggle * count

    pue = problem.pue
    slot_h = problem.slot_hours
    facility = pue * it_power + switching_energy / slot_h
    brown = np.maximum(facility - problem.onsite, 0.0) * slot_h
    e_cost = tariff_cost_batch(problem.tariff, brown, problem.price)
    d_cost = problem.delay_weight * delay_sum * slot_h
    objective = problem.V * (e_cost + d_cost) + problem.q * brown

    violates = np.zeros(B, dtype=bool)
    if problem.peak_power_cap is not None:
        violates |= facility > problem.peak_power_cap * (1 + 1e-12)
    if problem.max_delay_cost is not None:
        violates |= d_cost > problem.max_delay_cost * (1 + 1e-12)
    return np.where(violates, np.inf, objective)


def objective_batch(
    problem: SlotProblem,
    levels_batch: np.ndarray,
    *,
    hint: LoadDistribution | None = None,
) -> tuple[np.ndarray, list[LoadDistribution | None]]:
    """P3 objectives for K candidate level vectors in one batched pass.

    Returns ``(objectives, dists)``: ``objectives[k]`` is what the scalar
    scoring path (inner solve + evaluate + cap check) returns for row ``k``
    -- bit-identical cold, ``inf`` for infeasible or cap-violating rows --
    and ``dists[k]`` is the row's :class:`LoadDistribution` (``None`` when
    infeasible).
    """
    levels_batch = np.asarray(levels_batch, dtype=np.int64)
    dists = distribute_load_batch(problem, levels_batch, hint=hint)
    K, G = levels_batch.shape
    objectives = np.full(K, np.inf)
    solved = [k for k in range(K) if dists[k] is not None]
    if not solved:
        return objectives, dists
    loads_full = np.ascontiguousarray(
        np.stack([dists[k].per_server_load for k in solved])
    )
    lv = np.ascontiguousarray(levels_batch[solved])
    masks = lv >= 0
    on_counts = masks.sum(axis=1)
    partitions: dict[int, list[int]] = {}
    for j in range(len(solved)):
        partitions.setdefault(int(on_counts[j]), []).append(j)
    for gon, row_ids in partitions.items():
        rows = np.asarray(row_ids)
        cols = np.nonzero(masks[rows])[1].reshape(rows.size, gon)
        vals = _evaluate_partition(
            problem,
            np.ascontiguousarray(lv[rows]),
            np.ascontiguousarray(loads_full[rows]),
            cols,
        )
        for local, j in enumerate(rows):
            objectives[solved[int(j)]] = vals[local]
    return objectives, dists
