"""Exhaustive P3 oracle for small instances.

Enumerates every speed configuration in ``prod_g (K_g + 1)`` (each group may
be off or at any of its levels), solves the convex load-distribution
subproblem exactly for each, and returns the global minimizer.  This is the
test oracle against which GSD (Theorem 1 says it converges here as
``delta -> infinity``), coordinate descent, and the homogeneous enumeration
engine are validated; the configuration count is guarded so it cannot be
unleashed on the 200-group fleet by accident.
"""

from __future__ import annotations

from itertools import product

import numpy as np

from ..cluster.fleet import FleetAction
from .base import SlotSolution, SlotSolver
from .fastpath import EvaluationCache
from .load_distribution import distribute_load
from .problem import InfeasibleError, SlotProblem

__all__ = ["BruteForceSolver"]


class BruteForceSolver(SlotSolver):
    """Exact exhaustive search (test oracle).

    Parameters
    ----------
    max_configs:
        Safety cap on the number of configurations enumerated.
    use_cache:
        Route scoring through the shared
        :class:`~repro.solvers.fastpath.EvaluationCache`.  Every combo is
        distinct so the memo cache never hits, but the O(1) delta screen
        rejects under-capacity on-sets without entering the inner solve --
        the enumeration order flips one trailing group at a time, exactly
        the access pattern the screen is built for.  Results are identical
        either way.
    warm_start:
        Seed consecutive inner solves from each other (requires
        ``use_cache``; <= 1e-9 relative objective contract).  Off by
        default -- the oracle stays bit-exact.
    """

    def __init__(
        self,
        *,
        max_configs: int = 200_000,
        use_cache: bool = True,
        warm_start: bool = False,
    ):
        if max_configs < 1:
            raise ValueError("max_configs must be positive")
        if warm_start and not use_cache:
            raise ValueError("warm_start requires use_cache")
        self.max_configs = max_configs
        self.use_cache = use_cache
        self.warm_start = warm_start

    def config_count(self, problem: SlotProblem) -> int:
        """Size of the configuration space ``prod_g (K_g + 1)``."""
        return int(np.prod(problem.fleet.num_levels + 1))

    def solve(self, problem: SlotProblem) -> SlotSolution:
        problem.check_feasible()
        fleet = problem.fleet
        total = self.config_count(problem)
        if total > self.max_configs:
            raise ValueError(
                f"{total} configurations exceed the brute-force cap "
                f"{self.max_configs}; use another solver"
            )

        best_obj = np.inf
        best_levels: np.ndarray | None = None
        best_loads: np.ndarray | None = None
        evaluated = 0
        ranges = [range(-1, int(k)) for k in fleet.num_levels]

        if self.use_cache:
            cache = EvaluationCache(problem, warm_start=self.warm_start)
            levels = np.empty(fleet.num_groups, dtype=np.int64)
            prev: tuple[int, ...] | None = None
            for combo in product(*ranges):
                if prev is None:
                    levels[:] = combo
                    cache.note_all()
                else:
                    for g, cand in enumerate(combo):
                        if cand != prev[g]:
                            levels[g] = cand
                            cache.note_changed(g)
                prev = combo
                obj = cache.objective_of(levels)
                if obj < best_obj:
                    best_obj = obj
                    best_levels = levels.copy()
            if best_levels is None:
                raise InfeasibleError(
                    "no feasible configuration exists for this slot"
                )
            # Combos whose inner solve ran to completion; screened-out
            # combos (provably infeasible or cap-breaking) are excluded.
            evaluated = cache.stats.inner_solves
            action, evaluation = cache.solution_for(best_levels)
            return SlotSolution(
                action=action,
                evaluation=evaluation,
                info={
                    "configs_total": total,
                    "configs_feasible": evaluated,
                    "fastpath": cache.stats.as_dict(),
                },
            )

        for combo in product(*ranges):
            levels = np.asarray(combo, dtype=np.int64)
            try:
                dist = distribute_load(problem, levels)
            except InfeasibleError:
                continue
            evaluated += 1
            action = FleetAction(levels=levels, per_server_load=dist.per_server_load)
            evaluation = problem.evaluate(action)
            if problem.violates_caps(evaluation):
                continue
            obj = evaluation.objective
            if obj < best_obj:
                best_obj = obj
                best_levels = levels
                best_loads = dist.per_server_load

        if best_levels is None:
            raise InfeasibleError("no feasible configuration exists for this slot")
        action = FleetAction(levels=best_levels, per_server_load=best_loads)
        return SlotSolution(
            action=action,
            evaluation=problem.evaluate(action),
            info={"configs_total": total, "configs_feasible": evaluated},
        )
