"""Exhaustive P3 oracle for small instances.

Enumerates every speed configuration in ``prod_g (K_g + 1)`` (each group may
be off or at any of its levels), solves the convex load-distribution
subproblem exactly for each, and returns the global minimizer.  This is the
test oracle against which GSD (Theorem 1 says it converges here as
``delta -> infinity``), coordinate descent, and the homogeneous enumeration
engine are validated; the configuration count is guarded so it cannot be
unleashed on the 200-group fleet by accident.
"""

from __future__ import annotations

from itertools import islice, product

import numpy as np

from ..cluster.fleet import FleetAction
from .base import SlotSolution, SlotSolver
from .deadline import DeadlineExceededError, SolveDeadline
from .fastpath import EvaluationCache
from .load_distribution import distribute_load
from .problem import InfeasibleError, SlotProblem

__all__ = ["BruteForceSolver"]

#: Combos between deadline polls: amortizes the clock read against the much
#: costlier inner solves without letting an overrun stretch past ~a screenful
#: of candidates.
_DEADLINE_STRIDE = 64


class BruteForceSolver(SlotSolver):
    """Exact exhaustive search (test oracle).

    Parameters
    ----------
    max_configs:
        Safety cap on the number of configurations enumerated.
    use_cache:
        Route scoring through the shared
        :class:`~repro.solvers.fastpath.EvaluationCache`.  Every combo is
        distinct so the memo cache never hits, but the O(1) delta screen
        rejects under-capacity on-sets without entering the inner solve --
        the enumeration order flips one trailing group at a time, exactly
        the access pattern the screen is built for.  Results are identical
        either way.
    warm_start:
        Seed consecutive inner solves from each other (requires
        ``use_cache``; <= 1e-9 relative objective contract).  Off by
        default -- the oracle stays bit-exact.
    deadline_ms:
        Wall-clock budget; the enumeration polls it every
        ``_DEADLINE_STRIDE`` combos and stops early on expiry, returning
        the best configuration enumerated so far (no longer the *global*
        optimum -- ``info["deadline"]["expired"]`` says so) or raising
        :class:`~repro.solvers.deadline.DeadlineExceededError` when
        nothing feasible was seen.  ``None`` never expires.
    batched:
        Enumerate in chunks of ``_DEADLINE_STRIDE`` combos, each chunk one
        vectorized solve through :mod:`repro.solvers.batched`; the strict
        ``obj < best`` first-wins replay keeps the returned minimizer
        bit-identical to the sequential scan.  Requires ``use_cache``;
        silently falls back to the sequential scan when the cache is off
        or a ``deadline_ms`` is set.  Default on.
    """

    def __init__(
        self,
        *,
        max_configs: int = 200_000,
        use_cache: bool = True,
        warm_start: bool = False,
        deadline_ms: float | None = None,
        batched: bool = True,
    ):
        if max_configs < 1:
            raise ValueError("max_configs must be positive")
        if warm_start and not use_cache:
            raise ValueError("warm_start requires use_cache")
        self.max_configs = max_configs
        self.use_cache = use_cache
        self.warm_start = warm_start
        self.deadline_ms = deadline_ms
        self.batched = batched

    def config_count(self, problem: SlotProblem) -> int:
        """Size of the configuration space ``prod_g (K_g + 1)``."""
        return int(np.prod(problem.fleet.num_levels + 1))

    def _on_expiry(
        self, deadline: SolveDeadline, seen: int, total: int, feasible: bool
    ) -> None:
        tele = self.telemetry
        if tele.enabled:
            tele.emit(
                "deadline.expired",
                solver=self.name(),
                budget_ms=float(self.deadline_ms),
                elapsed_ms=deadline.elapsed_ms(),
                completed=seen,
                planned=total,
                best_feasible=feasible,
            )
            tele.metrics.counter("deadline.expirations").inc()
        if not feasible:
            raise DeadlineExceededError(
                f"enumeration deadline ({self.deadline_ms} ms) expired after "
                f"{seen}/{total} configurations with no feasible incumbent"
            )

    def _deadline_info(
        self, deadline: SolveDeadline, truncated: bool, seen: int, total: int
    ) -> dict:
        return {
            "budget_ms": float(self.deadline_ms),
            "elapsed_ms": deadline.elapsed_ms(),
            "expired": truncated,
            "completed": seen,
            "planned": total,
        }

    def solve(self, problem: SlotProblem) -> SlotSolution:
        deadline = SolveDeadline(self.deadline_ms)
        problem.check_feasible()
        fleet = problem.fleet
        total = self.config_count(problem)
        if total > self.max_configs:
            raise ValueError(
                f"{total} configurations exceed the brute-force cap "
                f"{self.max_configs}; use another solver"
            )

        best_obj = np.inf
        best_levels: np.ndarray | None = None
        best_loads: np.ndarray | None = None
        evaluated = 0
        seen = 0
        truncated = False
        ranges = [range(-1, int(k)) for k in fleet.num_levels]

        if self.use_cache:
            cache = EvaluationCache(problem, warm_start=self.warm_start)
            if self.batched and self.deadline_ms is None:
                combos = product(*ranges)
                while True:
                    chunk = list(islice(combos, _DEADLINE_STRIDE))
                    if not chunk:
                        break
                    seen += len(chunk)
                    batch = np.asarray(chunk, dtype=np.int64)
                    objs = cache.objective_of_batch(batch)
                    for j in range(len(chunk)):
                        if objs[j] < best_obj:
                            best_obj = float(objs[j])
                            best_levels = batch[j].copy()
            else:
                levels = np.empty(fleet.num_groups, dtype=np.int64)
                prev: tuple[int, ...] | None = None
                for combo in product(*ranges):
                    if seen % _DEADLINE_STRIDE == 0 and seen and deadline.expired():
                        truncated = True
                        break
                    seen += 1
                    if prev is None:
                        levels[:] = combo
                        cache.note_all()
                    else:
                        for g, cand in enumerate(combo):
                            if cand != prev[g]:
                                levels[g] = cand
                                cache.note_changed(g)
                    prev = combo
                    obj = cache.objective_of(levels)
                    if obj < best_obj:
                        best_obj = obj
                        best_levels = levels.copy()
            if truncated:
                self._on_expiry(deadline, seen, total, best_levels is not None)
            if best_levels is None:
                raise InfeasibleError(
                    "no feasible configuration exists for this slot"
                )
            # Combos whose inner solve ran to completion; screened-out
            # combos (provably infeasible or cap-breaking) are excluded.
            evaluated = cache.stats.inner_solves
            action, evaluation = cache.solution_for(best_levels)
            info: dict = {
                "configs_total": total,
                "configs_feasible": evaluated,
                "fastpath": cache.stats.as_dict(),
            }
            if self.deadline_ms is not None:
                info["deadline"] = self._deadline_info(deadline, truncated, seen, total)
            return SlotSolution(action=action, evaluation=evaluation, info=info)

        for combo in product(*ranges):
            if seen % _DEADLINE_STRIDE == 0 and seen and deadline.expired():
                truncated = True
                break
            seen += 1
            levels = np.asarray(combo, dtype=np.int64)
            try:
                dist = distribute_load(problem, levels)
            except InfeasibleError:
                continue
            evaluated += 1
            action = FleetAction(levels=levels, per_server_load=dist.per_server_load)
            evaluation = problem.evaluate(action)
            if problem.violates_caps(evaluation):
                continue
            obj = evaluation.objective
            if obj < best_obj:
                best_obj = obj
                best_levels = levels
                best_loads = dist.per_server_load

        if truncated:
            self._on_expiry(deadline, seen, total, best_levels is not None)
        if best_levels is None:
            raise InfeasibleError("no feasible configuration exists for this slot")
        action = FleetAction(levels=best_levels, per_server_load=best_loads)
        info = {"configs_total": total, "configs_feasible": evaluated}
        if self.deadline_ms is not None:
            info["deadline"] = self._deadline_info(deadline, truncated, seen, total)
        return SlotSolution(
            action=action,
            evaluation=problem.evaluate(action),
            info=info,
        )
