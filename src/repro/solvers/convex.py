"""Deterministic local-search P3 engine for heterogeneous fleets.

For fleets mixing server profiles, the slot problem no longer collapses to a
(servers-on, shared-speed) pair.  :class:`CoordinateDescentSolver` performs
best-response sweeps over group speed levels: one group at a time, it tries
every level in ``{off} ∪ S_g`` while holding the rest fixed, re-solving the
*convex* load-distribution subproblem exactly for each candidate (see
:mod:`repro.solvers.load_distribution`), and keeps the best.  Sweeps repeat
until a full pass yields no improvement.

This is the deterministic counterpart of GSD's stochastic search: both walk
the same discrete configuration lattice with the same exact inner solve, but
coordinate descent is greedy (it can stop in a local optimum -- precisely
the failure mode the paper motivates Gibbs sampling with, section 4.2).
Multiple restarts from distinct initial points trade time for robustness.
"""

from __future__ import annotations

import numpy as np

from ..cluster.fleet import FleetAction
from .base import SlotSolution, SlotSolver
from .load_distribution import distribute_load
from .problem import InfeasibleError, SlotProblem

__all__ = ["CoordinateDescentSolver", "initial_levels"]


def initial_levels(problem: SlotProblem, kind: str = "max") -> np.ndarray:
    """Feasible starting configurations for iterative engines.

    ``"max"`` puts every group at its top speed (always feasible when the
    slot is feasible at all); ``"min-capacity"`` turns groups on at top
    speed in index order only until the capped capacity covers the load.
    """
    fleet = problem.fleet
    top = fleet.num_levels - 1
    if kind == "max":
        return top.astype(np.int64)
    if kind == "min-capacity":
        caps = problem.gamma * fleet.counts * fleet.speed_table[
            np.arange(fleet.num_groups), top
        ]
        cum = np.cumsum(caps)
        need = int(np.searchsorted(cum, problem.arrival_rate * (1 + 1e-12))) + 1
        levels = np.full(fleet.num_groups, -1, dtype=np.int64)
        levels[: min(need, fleet.num_groups)] = top[: min(need, fleet.num_groups)]
        return levels
    raise ValueError(f"unknown initial-levels kind: {kind!r}")


class CoordinateDescentSolver(SlotSolver):
    """Best-response sweeps over per-group speed levels.

    Parameters
    ----------
    max_sweeps:
        Upper bound on full passes over the groups.
    restarts:
        Number of initial points tried: the first is ``"max"`` (all groups
        at top speed -- the good basin when delay dominates), the second is
        ``"min-capacity"`` (just enough groups on -- the good basin when
        the electricity/deficit weight dominates), and any further restarts
        are random feasible configurations drawn from ``rng``.  The default
        of 2 covers both objective regimes.
    rng:
        Randomness source for restarts; defaults to a fixed-seed generator
        so results are reproducible.
    """

    def __init__(
        self,
        *,
        max_sweeps: int = 8,
        restarts: int = 2,
        rng: np.random.Generator | None = None,
    ):
        if max_sweeps < 1 or restarts < 1:
            raise ValueError("max_sweeps and restarts must be >= 1")
        self.max_sweeps = max_sweeps
        self.restarts = restarts
        self.rng = rng if rng is not None else np.random.default_rng(0)

    # ------------------------------------------------------------------
    def _objective(self, problem: SlotProblem, levels: np.ndarray) -> float:
        try:
            dist = distribute_load(problem, levels)
        except InfeasibleError:
            return np.inf
        action = FleetAction(levels=levels, per_server_load=dist.per_server_load)
        evaluation = problem.evaluate(action)
        if problem.violates_caps(evaluation):
            return np.inf
        return evaluation.objective

    def _descend(
        self, problem: SlotProblem, levels: np.ndarray
    ) -> tuple[np.ndarray, float, int]:
        fleet = problem.fleet
        best = self._objective(problem, levels)
        sweeps = 0
        for _ in range(self.max_sweeps):
            sweeps += 1
            improved = False
            for g in range(fleet.num_groups):
                current = levels[g]
                for cand in range(-1, int(fleet.num_levels[g])):
                    if cand == current:
                        continue
                    levels[g] = cand
                    val = self._objective(problem, levels)
                    if val < best - 1e-12 * max(abs(best), 1.0):
                        best = val
                        current = cand
                        improved = True
                    else:
                        levels[g] = current
            if not improved:
                break
        return levels, best, sweeps

    def solve(self, problem: SlotProblem) -> SlotSolution:
        problem.check_feasible()
        fleet = problem.fleet
        best_levels: np.ndarray | None = None
        best_val = np.inf
        total_sweeps = 0

        for attempt in range(self.restarts):
            if attempt == 0:
                levels = initial_levels(problem, "max")
            elif attempt == 1:
                levels = initial_levels(problem, "min-capacity")
            else:
                levels = np.array(
                    [
                        int(self.rng.integers(-1, fleet.num_levels[g]))
                        for g in range(fleet.num_groups)
                    ],
                    dtype=np.int64,
                )
                if not np.isfinite(self._objective(problem, levels)):
                    levels = initial_levels(problem, "max")
            levels, val, sweeps = self._descend(problem, levels.copy())
            total_sweeps += sweeps
            if val < best_val:
                best_val = val
                best_levels = levels.copy()

        assert best_levels is not None
        dist = distribute_load(problem, best_levels)
        action = FleetAction(
            levels=best_levels, per_server_load=dist.per_server_load
        )
        return SlotSolution(
            action=action,
            evaluation=problem.evaluate(action),
            info={"sweeps": total_sweeps, "restarts": self.restarts},
        )
