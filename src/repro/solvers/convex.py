"""Deterministic local-search P3 engine for heterogeneous fleets.

For fleets mixing server profiles, the slot problem no longer collapses to a
(servers-on, shared-speed) pair.  :class:`CoordinateDescentSolver` performs
best-response sweeps over group speed levels: one group at a time, it tries
every level in ``{off} ∪ S_g`` while holding the rest fixed, re-solving the
*convex* load-distribution subproblem exactly for each candidate (see
:mod:`repro.solvers.load_distribution`), and keeps the best.  Sweeps repeat
until a full pass yields no improvement.

This is the deterministic counterpart of GSD's stochastic search: both walk
the same discrete configuration lattice with the same exact inner solve, but
coordinate descent is greedy (it can stop in a local optimum -- precisely
the failure mode the paper motivates Gibbs sampling with, section 4.2).
Multiple restarts from distinct initial points trade time for robustness.
"""

from __future__ import annotations

import time

import numpy as np

from ..cluster.fleet import FleetAction
from .base import SlotSolution, SlotSolver
from .deadline import DeadlineExceededError, SolveDeadline
from .fastpath import EvaluationCache
from .load_distribution import distribute_load
from .problem import InfeasibleError, SlotProblem

__all__ = ["CoordinateDescentSolver", "initial_levels"]


def initial_levels(problem: SlotProblem, kind: str = "max") -> np.ndarray:
    """Feasible starting configurations for iterative engines.

    ``"max"`` puts every group at its top speed (always feasible when the
    slot is feasible at all); ``"min-capacity"`` turns groups on at top
    speed in index order only until the capped capacity covers the load.
    """
    fleet = problem.fleet
    top = fleet.num_levels - 1
    if kind == "max":
        return top.astype(np.int64)
    if kind == "min-capacity":
        caps = problem.gamma * fleet.counts * fleet.speed_table[
            np.arange(fleet.num_groups), top
        ]
        cum = np.cumsum(caps)
        need = int(np.searchsorted(cum, problem.arrival_rate * (1 + 1e-12))) + 1
        levels = np.full(fleet.num_groups, -1, dtype=np.int64)
        levels[: min(need, fleet.num_groups)] = top[: min(need, fleet.num_groups)]
        return levels
    raise ValueError(f"unknown initial-levels kind: {kind!r}")


class CoordinateDescentSolver(SlotSolver):
    """Best-response sweeps over per-group speed levels.

    Parameters
    ----------
    max_sweeps:
        Upper bound on full passes over the groups.
    restarts:
        Number of initial points tried: the first is ``"max"`` (all groups
        at top speed -- the good basin when delay dominates), the second is
        ``"min-capacity"`` (just enough groups on -- the good basin when
        the electricity/deficit weight dominates), and any further restarts
        are random feasible configurations drawn from ``rng``.  The default
        of 2 covers both objective regimes.
    rng:
        Randomness source for restarts; defaults to a fixed-seed generator
        so results are reproducible.
    use_cache:
        Route candidate scoring through the per-solve
        :class:`~repro.solvers.fastpath.EvaluationCache`.  Sweeps re-score
        the same configurations constantly (every non-improving candidate
        is revisited on the next pass), so hits dominate after the first
        sweep; results are bit-identical with the cache on or off.
    warm_start:
        Seed each inner solve's bisection brackets from the previous
        candidate's solution (requires ``use_cache``; <= 1e-9 relative
        objective contract, see the fastpath docs).  Off by default.
    deadline_ms:
        Wall-clock budget per solve; on expiry the sweep stops and the best
        incumbent so far is returned (``info["deadline"]``), or
        :class:`~repro.solvers.deadline.DeadlineExceededError` is raised if
        nothing feasible was reached yet.  ``None`` never expires.
    batched:
        Evaluate each group's whole candidate scan as one ``(K, G)``
        vectorized solve (:mod:`repro.solvers.batched`) instead of K
        scalar inner solves.  Every candidate in a scan is a single-
        coordinate flip of the same base configuration -- acceptance only
        rewrites the group being scanned -- so the batch sees exactly the
        configurations the scalar scan would, and the serial accept replay
        makes results (and fast-path counters) bit-identical.  Requires
        ``use_cache``; silently falls back to the scalar scan when the
        cache is off or a ``deadline_ms`` is set (the scalar scan polls
        the deadline between candidates).  Default on.
    """

    def __init__(
        self,
        *,
        max_sweeps: int = 8,
        restarts: int = 2,
        rng: np.random.Generator | None = None,
        use_cache: bool = True,
        warm_start: bool = False,
        deadline_ms: float | None = None,
        batched: bool = True,
    ):
        if max_sweeps < 1 or restarts < 1:
            raise ValueError("max_sweeps and restarts must be >= 1")
        if warm_start and not use_cache:
            raise ValueError("warm_start requires use_cache")
        self.max_sweeps = max_sweeps
        self.restarts = restarts
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.use_cache = use_cache
        self.warm_start = warm_start
        self.deadline_ms = deadline_ms
        self.batched = batched

    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Checkpointable solver state (restart RNG position)."""
        from ..state.serialize import encode_rng

        return {"rng": encode_rng(self.rng)}

    def load_state_dict(self, state: dict) -> None:
        """Restore the restart RNG from a checkpoint."""
        from ..state.serialize import decode_rng

        self.rng = decode_rng(state["rng"])

    # ------------------------------------------------------------------
    def _objective(self, problem: SlotProblem, levels: np.ndarray) -> float:
        try:
            dist = distribute_load(problem, levels)
        except InfeasibleError:
            return np.inf
        action = FleetAction(levels=levels, per_server_load=dist.per_server_load)
        evaluation = problem.evaluate(action)
        if problem.violates_caps(evaluation):
            return np.inf
        return evaluation.objective

    def _descend(
        self,
        problem: SlotProblem,
        levels: np.ndarray,
        cache: EvaluationCache | None,
        deadline: SolveDeadline,
    ) -> tuple[np.ndarray, float, int]:
        fleet = problem.fleet

        if cache is not None:
            cache.note_all()

            def score(lv: np.ndarray) -> float:
                return cache.objective_of(lv)

        else:

            def score(lv: np.ndarray) -> float:
                return self._objective(problem, lv)

        best = score(levels)
        use_batched = (
            cache is not None and self.batched and self.deadline_ms is None
        )
        sweeps = 0
        for _ in range(self.max_sweeps):
            sweeps += 1
            improved = False
            for g in range(fleet.num_groups):
                current = levels[g]
                if use_batched:
                    # One vectorized solve for the whole scan; the accept
                    # replay below is the scalar scan's exact arithmetic.
                    cands = [
                        c
                        for c in range(-1, int(fleet.num_levels[g]))
                        if c != current
                    ]
                    if not cands:
                        continue
                    batch = np.repeat(levels[None, :], len(cands), axis=0)
                    batch[:, g] = cands
                    vals = cache.objective_of_batch(batch)
                    for cand, val in zip(cands, vals):
                        val = float(val)
                        if val < best - 1e-12 * max(abs(best), 1.0):
                            best = val
                            current = cand
                            improved = True
                    if levels[g] != current:
                        levels[g] = current
                        cache.note_changed(g)
                    continue
                for cand in range(-1, int(fleet.num_levels[g])):
                    if cand == current:
                        continue
                    if deadline.expired():
                        # `levels` holds the best accepted configuration of
                        # this restart, so it is a valid anytime incumbent.
                        return levels, best, sweeps
                    levels[g] = cand
                    if cache is not None:
                        cache.note_changed(g)
                    val = score(levels)
                    if val < best - 1e-12 * max(abs(best), 1.0):
                        best = val
                        current = cand
                        improved = True
                    else:
                        levels[g] = current
                        if cache is not None:
                            cache.note_changed(g)
            if not improved:
                break
        return levels, best, sweeps

    def solve(self, problem: SlotProblem) -> SlotSolution:
        deadline = SolveDeadline(self.deadline_ms)
        tele = self.telemetry
        started = time.perf_counter() if tele.enabled else 0.0
        problem.check_feasible()
        fleet = problem.fleet
        cache = (
            EvaluationCache(problem, warm_start=self.warm_start)
            if self.use_cache
            else None
        )
        best_levels: np.ndarray | None = None
        best_val = np.inf
        total_sweeps = 0
        attempts = 0

        for attempt in range(self.restarts):
            if attempt > 0 and deadline.expired():
                break
            attempts += 1
            if attempt == 0:
                levels = initial_levels(problem, "max")
            elif attempt == 1:
                levels = initial_levels(problem, "min-capacity")
            else:
                levels = np.array(
                    [
                        int(self.rng.integers(-1, fleet.num_levels[g]))
                        for g in range(fleet.num_groups)
                    ],
                    dtype=np.int64,
                )
                if cache is not None:
                    cache.note_all()
                    feasible_start = np.isfinite(cache.objective_of(levels))
                else:
                    feasible_start = np.isfinite(self._objective(problem, levels))
                if not feasible_start:
                    levels = initial_levels(problem, "max")
            levels, val, sweeps = self._descend(problem, levels.copy(), cache, deadline)
            total_sweeps += sweeps
            if val < best_val:
                best_val = val
                best_levels = levels.copy()

        truncated = deadline.expired()
        if truncated and tele.enabled:
            tele.emit(
                "deadline.expired",
                solver=self.name(),
                budget_ms=float(self.deadline_ms),
                elapsed_ms=deadline.elapsed_ms(),
                completed=attempts,
                planned=self.restarts,
                best_feasible=best_levels is not None and bool(np.isfinite(best_val)),
            )
            tele.metrics.counter("deadline.expirations").inc()
        if best_levels is None or not np.isfinite(best_val):
            if truncated:
                raise DeadlineExceededError(
                    f"coordinate-descent deadline ({self.deadline_ms} ms) expired "
                    "with no feasible incumbent"
                )
            # Every restart descended to +inf: no configuration reachable by
            # single-coordinate moves satisfies the operational caps.
            raise InfeasibleError(
                "coordinate descent found no configuration satisfying the "
                "operational caps; try more restarts or another engine"
            )
        if cache is not None:
            action, evaluation = cache.solution_for(best_levels)
        else:
            dist = distribute_load(problem, best_levels)
            action = FleetAction(
                levels=best_levels, per_server_load=dist.per_server_load
            )
            evaluation = problem.evaluate(action)

        info: dict = {"sweeps": total_sweeps, "restarts": self.restarts}
        if self.deadline_ms is not None:
            info["deadline"] = {
                "budget_ms": float(self.deadline_ms),
                "elapsed_ms": deadline.elapsed_ms(),
                "expired": truncated,
                "completed": attempts,
                "planned": self.restarts,
            }
        if cache is not None:
            info["fastpath"] = cache.stats.as_dict()
            info["inner_solves"] = cache.stats.inner_solves
            info["evaluations"] = cache.stats.evaluations

        if tele.enabled:
            elapsed = time.perf_counter() - started
            tele.metrics.histogram("cd.solve_time_s").observe(elapsed)
            tele.metrics.counter("cd.solves").inc()
            if cache is not None:
                stats = cache.stats
                tele.metrics.counter("cd.inner_solves").inc(stats.inner_solves)
                tele.metrics.counter("cd.evaluations").inc(stats.evaluations)
                tele.metrics.counter("cd.cache_hits").inc(stats.cache_hits)
                tele.metrics.counter("cd.warm_starts").inc(stats.warm_solves)
                tele.metrics.counter("cd.screened_infeasible").inc(
                    stats.screened_infeasible
                )

        return SlotSolution(action=action, evaluation=evaluation, info=info)
