"""Wall-clock solve budgets and anytime behaviour.

A slot in the paper's setting is an *hour*, but production slot solves run
inside real-time control loops where a solver that silently stretches the
slot is worse than a slightly suboptimal action.  :class:`SolveDeadline`
is a monotonic wall-clock budget the iterative engines (GSD, coordinate
descent, brute force) poll between candidate evaluations.  On expiry an
engine stops searching and returns its **best feasible incumbent** -- the
anytime contract: every iteration only improves the incumbent, so cutting
the search short yields a valid (cap-feasible) action, just possibly a
costlier one.  Expiry is reported via ``info["deadline"]`` on the
:class:`~repro.solvers.base.SlotSolution` and ``deadline.*`` telemetry,
surfaced on the dashboard by :class:`~repro.monitor.deadline.DeadlineMonitor`.

When the budget expires before *any* feasible configuration was seen, the
engine raises :class:`DeadlineExceededError`.  It subclasses
:class:`~repro.solvers.problem.InfeasibleError` deliberately: the engine
loop's degradation path treats infeasibility as non-retryable (retrying an
expired budget would blow the budget again), so an exhausted deadline with
no incumbent flows straight to the PR 4 ``DegradationPolicy`` fallback.

Note that deadline expiry depends on wall-clock speed, so a run using
deadlines is **not** bit-replayable across machines (or against a resumed
run on the same machine); ``repro resume --verify-replay`` refuses the
combination.  Checkpointing and deadlines compose fine otherwise.
"""

from __future__ import annotations

import time

from .problem import InfeasibleError

__all__ = ["DeadlineExceededError", "SolveDeadline"]


class DeadlineExceededError(InfeasibleError):
    """The solve budget expired before any feasible incumbent was found.

    Subclasses ``InfeasibleError`` so the engine's degradation path applies
    its fallback action immediately instead of retrying the solve.
    """


class SolveDeadline:
    """A monotonic wall-clock budget for one slot solve.

    The clock starts at construction; solvers arm a fresh instance per
    ``solve()`` call.  ``budget_ms=None`` never expires, so callers can
    thread a deadline unconditionally.
    """

    __slots__ = ("budget_ms", "_started", "_deadline")

    def __init__(self, budget_ms: float | None):
        if budget_ms is not None and budget_ms < 0:
            raise ValueError("deadline budget must be >= 0 ms")
        self.budget_ms = budget_ms
        self._started = time.perf_counter()
        self._deadline = (
            None if budget_ms is None else self._started + budget_ms / 1000.0
        )

    def elapsed_ms(self) -> float:
        """Milliseconds since the deadline was armed."""
        return (time.perf_counter() - self._started) * 1000.0

    def remaining_ms(self) -> float:
        """Milliseconds left (``inf`` for an unbounded deadline, floored at 0)."""
        if self._deadline is None:
            return float("inf")
        return max(0.0, (self._deadline - time.perf_counter()) * 1000.0)

    def expired(self) -> bool:
        """Whether the budget has run out (never, when unbounded)."""
        return self._deadline is not None and time.perf_counter() >= self._deadline
