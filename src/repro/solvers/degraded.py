"""Solving P3 when part of the fleet is down.

The paper's section 4.2 remark — server failures just shrink the feasible
set — has a direct computational reading: solve the slot problem on the
*surviving* sub-fleet and re-expand the answer.  This works with **any**
:class:`~repro.solvers.base.SlotSolver` (enumeration, coordinate descent,
GSD, the distributed protocol) because the sub-problem is an ordinary
:class:`~repro.solvers.problem.SlotProblem` over a smaller
:class:`~repro.cluster.fleet.Fleet`; the failed groups come back as level
``-1`` (off) with zero load in the expanded action.

:class:`~repro.solvers.gsd.GSDSolver` also accepts a native static
``failed_groups`` argument; this module is the solver-agnostic path used by
the fault-injection layer, where the failed set changes slot to slot.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Iterable

import numpy as np

from ..cluster.fleet import Fleet, FleetAction
from .base import SlotSolution, SlotSolver
from .problem import InfeasibleError, SlotProblem

__all__ = ["solve_with_failed_groups"]


def solve_with_failed_groups(
    solver: SlotSolver,
    problem: SlotProblem,
    failed: Iterable[int],
) -> SlotSolution:
    """Solve ``problem`` with the given groups forced off.

    Builds the sub-fleet of healthy groups, solves the restricted problem
    with ``solver``, and expands the solution back to full-fleet shape
    (failed groups at level ``-1``, zero load).  Raises
    :class:`InfeasibleError` when every group is down or the survivors
    cannot serve the workload within the utilization cap.
    """
    fleet = problem.fleet
    failed_set = {int(g) for g in failed}
    for g in failed_set:
        if not 0 <= g < fleet.num_groups:
            raise ValueError(f"failed group index {g} out of range")
    if not failed_set:
        return solver.solve(problem)

    healthy = [g for g in range(fleet.num_groups) if g not in failed_set]
    if not healthy:
        raise InfeasibleError("every server group has failed")

    sub_fleet = Fleet([fleet.groups[g] for g in healthy])
    prev = problem.prev_on_counts
    sub_prev = None if prev is None else np.asarray(prev)[healthy]
    sub_problem = replace(problem, fleet=sub_fleet, prev_on_counts=sub_prev)
    sub_problem.check_feasible()  # clear error before the engine runs
    sub_solution = solver.solve(sub_problem)

    levels = np.full(fleet.num_groups, -1, dtype=np.int64)
    loads = np.zeros(fleet.num_groups)
    levels[healthy] = sub_solution.action.levels
    loads[healthy] = sub_solution.action.per_server_load
    action = FleetAction(levels=levels, per_server_load=loads)
    info = dict(sub_solution.info)
    info["failed_groups"] = sorted(failed_set)
    return SlotSolution(
        action=action,
        evaluation=problem.evaluate(action),
        info=info,
    )
