"""Exact vectorized P3 engine for homogeneous fleets.

The paper's simulated data center is homogeneous (216 K Opteron 2380s in 200
groups), and for a homogeneous fleet the slot problem collapses: at an
optimum every *on* server runs at the same speed and carries the same load
(the objective is convex and permutation-symmetric in per-server loads), so
a candidate solution is fully described by the pair

    (M, k)  =  (number of servers on, shared speed level),

with the shared per-server load forced to ``lambda / M``.  On-sets are taken
in group-prefix order, so ``M`` ranges over the ``G`` prefix sums of the
group counts; with equal group sizes this is every multiple of the group
size, i.e. the paper's own group-batching granularity.  All ``(G+1) x K``
candidates are scored in one vectorized pass -- including the ``[.]^+``
kink, switching charges, and arbitrary tariffs, since each candidate's cost
is written in closed form -- and the argmin is exact within the
single-shared-speed family.  This is the engine used for year-long sweeps
(8760 slots run in seconds).

The one restriction relative to GSD's search space is mixed-speed
configurations (different groups at different positive speeds in the same
slot).  The ablation benchmark ``bench_ablation_solvers`` quantifies the
gap, which is negligible for the paper's server profile (the Opteron curve
makes one speed dominate at any given load).
"""

from __future__ import annotations

import time

import numpy as np

from ..cluster.fleet import FleetAction
from .base import SlotSolution, SlotSolver
from .batched import tariff_cost_batch
from .problem import InfeasibleError, SlotProblem

__all__ = ["HomogeneousEnumerationSolver"]


class HomogeneousEnumerationSolver(SlotSolver):
    """Vectorized exact search over (servers-on, shared-speed) candidates.

    Parameters
    ----------
    switching_aware:
        When True and the problem carries a switching model plus previous
        on-counts, transition energy is charged *inside* the objective so
        the solver avoids thrashing; otherwise transitions are only charged
        ex post by the simulator.
    """

    def __init__(self, *, switching_aware: bool = True):
        self.switching_aware = switching_aware

    def solve(self, problem: SlotProblem) -> SlotSolution:
        tele = self.telemetry
        started = time.perf_counter() if tele.enabled else 0.0
        sp = tele.span("enum.solve")
        with sp:
            solution = self._solve(problem, sp)
        if tele.enabled:
            elapsed = time.perf_counter() - started
            tele.metrics.histogram("enum.solve_time_s").observe(elapsed)
            tele.metrics.counter("enum.solves").inc()
        return solution

    def _solve(self, problem: SlotProblem, sp=None) -> SlotSolution:
        fleet = problem.fleet
        if not fleet.is_homogeneous:
            raise ValueError(
                "HomogeneousEnumerationSolver requires a single-profile fleet; "
                "use CoordinateDescentSolver or GSDSolver instead"
            )
        problem.check_feasible()
        t_phase = time.perf_counter() if sp else 0.0

        profile = fleet.groups[0].profile
        speeds = profile.speeds  # (K,)
        dyn_coeff = profile.energy_per_request  # (K,) MW per req/s
        counts = fleet.counts  # (G,)
        G, K = fleet.num_groups, speeds.size
        lam = problem.arrival_rate
        pue = problem.pue

        # Candidate on-set sizes: prefix sums, j groups on (j = 0..G).
        prefix = np.concatenate(([0.0], np.cumsum(counts)))  # (G+1,)
        M = prefix[:, None]  # (G+1, 1) servers on
        with np.errstate(divide="ignore", invalid="ignore"):
            load = np.where(M > 0, lam / M, np.inf)  # per-server load
        load = np.broadcast_to(load, (G + 1, K)).copy()

        feasible = load <= problem.gamma * speeds[None, :]
        if lam <= 0.0:
            feasible[0, :] = True
            load[0, :] = 0.0
        if not feasible.any():
            raise InfeasibleError("no (servers-on, speed) candidate can serve the load")
        if sp:
            now = time.perf_counter()
            sp.add("enum.candidates", now - t_phase)
            t_phase = now

        with np.errstate(invalid="ignore"):
            it_power = M * (profile.static_power + dyn_coeff[None, :] * load)
        it_power = np.where(feasible, it_power, np.inf)

        # Switching energy per candidate (depends only on the prefix size).
        sw_energy = np.zeros(G + 1)
        if (
            self.switching_aware
            and problem.switching is not None
            and problem.switching.enabled
            and problem.prev_on_counts is not None
        ):
            prev = problem.prev_on_counts
            turned_on = np.concatenate(
                ([0.0], np.cumsum(np.maximum(counts - prev, 0.0)))
            )
            sw_energy = problem.switching.energy_per_toggle * turned_on
            if problem.switching.charge_off:
                off_tail = np.concatenate(([0.0], np.cumsum(prev[::-1])))[::-1]
                sw_energy = sw_energy + problem.switching.energy_per_toggle * off_tail

        # MW/MWh conversion mirrors SlotProblem.evaluate: switching energy
        # enters the power balance divided by the slot length, brown energy
        # is the shortfall times the slot length.
        slot_h = problem.slot_hours
        facility = pue * it_power + sw_energy[:, None] / slot_h
        brown = np.maximum(facility - problem.onsite, 0.0) * slot_h
        e_cost = tariff_cost_batch(problem.tariff, brown, problem.price)
        with np.errstate(invalid="ignore"):
            delay_sum = M * problem.delay_model.cost(load, speeds[None, :])
            delay_sum = np.where(M > 0, delay_sum, 0.0)
            if problem.network_delay > 0.0:
                # Every feasible candidate serves the full arrival rate.
                delay_sum = delay_sum + problem.network_delay * lam
            delay_cost = problem.delay_weight * delay_sum * slot_h
            g_cost = e_cost + delay_cost
            # Optional operational caps (section 3.1).
            if problem.peak_power_cap is not None:
                feasible &= facility <= problem.peak_power_cap * (1 + 1e-12)
            if problem.max_delay_cost is not None:
                feasible &= delay_cost <= problem.max_delay_cost * (1 + 1e-12)
            if not feasible.any():
                raise InfeasibleError(
                    "no candidate satisfies the peak-power/max-delay caps"
                )
            objective = np.where(
                feasible, problem.V * g_cost + problem.q * brown, np.inf
            )
        if sp:
            now = time.perf_counter()
            sp.add("enum.cost_model", now - t_phase)
            t_phase = now

        j, k = np.unravel_index(int(np.argmin(objective)), objective.shape)
        levels = np.where(np.arange(G) < j, k, -1).astype(np.int64)
        per_server = np.where(np.arange(G) < j, load[j, k], 0.0)
        action = FleetAction(levels=levels, per_server_load=per_server)
        evaluation = problem.evaluate(action)
        if sp:
            sp.add("enum.finalize", time.perf_counter() - t_phase)
        return SlotSolution(
            action=action,
            evaluation=evaluation,
            info={
                "servers_on": float(M[j, 0]),
                "speed_level": int(k) if j > 0 else -1,
                "candidates": int(feasible.sum()),
            },
        )
