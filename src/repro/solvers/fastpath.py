"""Shared solver fast path: memo cache, delta screen, warm-started solves.

Every candidate configuration a P3 engine touches -- a GSD proposal
(Algorithm 2 line 2), a coordinate-descent best response, a brute-force
combo -- pays for the same three things: a feasibility check, an exact
convex inner solve (Eq. (18), :func:`~repro.solvers.load_distribution
.distribute_load`), and an evaluation of the resulting action.  Chains
revisit the same level vectors constantly and consecutive candidates differ
in a single group, so most of that work is redundant.  This module factors
the redundancy out once, for all engines:

- **Per-solve memo cache** (:meth:`EvaluationCache.objective_of`): keyed on
  ``levels.tobytes()``.  A hit returns the float computed the first time
  the vector was seen; since the inner solve is deterministic, the cached
  value equals what a recompute would produce bit for bit, so cache-on and
  cache-off runs yield bit-identical solutions *by construction*.
- **O(1) delta feasibility screen**: the on-set's capped capacity, static
  IT power, and on-group count are maintained incrementally as callers
  report which group they toggled (:meth:`EvaluationCache.note_changed`).
  Candidates that provably cannot serve the workload -- or whose static
  draw alone already breaks the peak-power cap -- are rejected without
  touching the O(G)-per-bisection-step inner solve.  The screen margin
  (``_SCREEN_RTOL``) exceeds the worst-case float drift of the incremental
  sums, so a screened-out candidate is *provably* one the full solve would
  also reject: verdicts never change, only their cost.
- **Warm starts** (opt-in): the most recent successful inner solve is
  handed to :func:`distribute_load` as a bracket hint for the next
  candidate.  Warm-started solves match cold ones to <= 1e-9 relative
  objective error (see :mod:`~repro.solvers.load_distribution`); engines
  default to cold solves so results stay bit-exact, and flip
  ``warm_start=True`` where the tolerance is acceptable (benchmarks,
  long sweeps).

The cache is *per solve*: engines construct one :class:`EvaluationCache`
per ``solve(problem)`` call, so nothing leaks across slots or problems.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cluster.fleet import FleetAction
from .load_distribution import LoadDistribution, distribute_load
from .problem import InfeasibleError, SlotEvaluation, SlotProblem

__all__ = ["EvaluationCache", "FastPathStats"]

#: Conservative relative margin of the delta screen.  Incremental float
#: drift of the running sums is bounded by ~iterations * eps (~1e-13 for
#: any realistic chain between refreshes); the margin is six orders of
#: magnitude above that, and borderline candidates inside the margin fall
#: through to the exact check in ``distribute_load``.
_SCREEN_RTOL = 1e-9

#: Rebuild the incremental sums from scratch this often, bounding drift.
_REFRESH_EVERY = 256


@dataclass
class FastPathStats:
    """Work counters of one :class:`EvaluationCache` (one engine solve).

    ``evaluations`` is the number of candidate configurations the engine
    asked about; without the fast path, every one of them would have been a
    cold inner solve.
    """

    cold_solves: int = 0
    warm_solves: int = 0
    cache_hits: int = 0
    screened_infeasible: int = 0
    infeasible: int = 0
    inner_iters: int = 0

    @property
    def evaluations(self) -> int:
        """Total candidate queries answered."""
        return (
            self.cold_solves
            + self.warm_solves
            + self.cache_hits
            + self.screened_infeasible
            + self.infeasible
        )

    @property
    def inner_solves(self) -> int:
        """Inner solves actually executed to completion (cold + warm).

        Queries rejected before the bisections run -- cache hits, screened
        candidates, and on-set-capacity ``InfeasibleError`` short-circuits
        inside :func:`distribute_load` -- are excluded.
        """
        return self.cold_solves + self.warm_solves

    def as_dict(self) -> dict[str, int]:
        """Flat counter dict for telemetry events and ``info`` payloads."""
        return {
            "evaluations": self.evaluations,
            "inner_solves": self.inner_solves,
            "cold_solves": self.cold_solves,
            "warm_starts": self.warm_solves,
            "cache_hits": self.cache_hits,
            "screened_infeasible": self.screened_infeasible,
            "infeasible": self.infeasible,
            "inner_iters": self.inner_iters,
        }


class EvaluationCache:
    """Per-solve fast path shared by the iterative P3 engines.

    Parameters
    ----------
    problem:
        The slot problem every queried configuration is evaluated against.
    warm_start:
        When True, each computed inner solve seeds the next one's bisection
        brackets (<= 1e-9 relative objective contract).  Default False:
        cold solves only, bit-identical to the historical path.

    Usage: the engine mutates its level vector in place, calls
    :meth:`note_changed` for every entry it writes, and asks
    :meth:`objective_of` for the P3 objective (``inf`` for infeasible or
    cap-violating configurations, exactly like the historical inline code).
    :meth:`solution_for` turns any previously scored vector back into a
    full ``(FleetAction, SlotEvaluation)`` pair without re-solving.
    """

    def __init__(self, problem: SlotProblem, *, warm_start: bool = False):
        self.problem = problem
        self.warm_start = warm_start
        self.stats = FastPathStats()
        self._objectives: dict[bytes, float] = {}
        self._dists: dict[bytes, LoadDistribution] = {}
        self._hint: LoadDistribution | None = None
        # Delta-screen state: running on-set aggregates vs a private copy
        # of the last-synced level vector.
        fleet = problem.fleet
        self._fleet = fleet
        self._screen_levels: np.ndarray | None = None
        self._dirty: set[int] = set()
        self._cap_sum = 0.0  # sum_g n_g x_g over the on-set (req/s)
        self._static_sum = 0.0  # sum_g n_g static_g over the on-set (MW, IT)
        self._on_count = 0
        self._updates = 0

    # ------------------------------------------------------------------
    # Delta screen
    # ------------------------------------------------------------------
    def note_changed(self, group: int) -> None:
        """Record that the caller wrote ``levels[group]`` since the last
        :meth:`objective_of` call (proposals *and* reverts)."""
        self._dirty.add(int(group))

    def note_all(self) -> None:
        """Invalidate the delta-screen state (the caller replaced or bulk
        rewrote its level vector, e.g. a restart); the next query rebuilds
        the running sums from scratch."""
        self._screen_levels = None
        self._dirty.clear()

    def _rebuild_screen(self, levels: np.ndarray) -> None:
        fleet = self._fleet
        on = levels >= 0
        idx = np.nonzero(on)[0]
        x = fleet.speed_table[idx, levels[idx]]
        self._cap_sum = float(np.sum(fleet.counts[idx] * x))
        self._static_sum = float(np.sum(fleet.counts[idx] * fleet.static_power[idx]))
        self._on_count = int(idx.size)
        self._screen_levels = levels.astype(np.int64, copy=True)
        self._dirty.clear()
        self._updates = 0

    def _sync_screen(self, levels: np.ndarray) -> None:
        if self._screen_levels is None or self._updates >= _REFRESH_EVERY:
            self._rebuild_screen(levels)
            return
        if not self._dirty:
            return
        fleet = self._fleet
        for g in self._dirty:
            old = int(self._screen_levels[g])
            new = int(levels[g])
            if old == new:
                continue
            n = fleet.counts[g]
            if old >= 0:
                self._cap_sum -= n * fleet.speed_table[g, old]
                self._static_sum -= n * fleet.static_power[g]
                self._on_count -= 1
            if new >= 0:
                self._cap_sum += n * fleet.speed_table[g, new]
                self._static_sum += n * fleet.static_power[g]
                self._on_count += 1
            self._screen_levels[g] = new
            self._updates += 1
        self._dirty.clear()

    def _screened_infeasible(self) -> bool:
        """Conservative O(1) verdict: True only when the exact path would
        certainly reject this configuration."""
        p = self.problem
        lam = p.arrival_rate
        if lam <= 0.0:
            return False
        if self._on_count == 0:
            return True
        if lam > p.gamma * self._cap_sum * (1.0 + _SCREEN_RTOL):
            return True
        if p.peak_power_cap is not None:
            # Static draw alone is a lower bound on facility power.
            if p.pue * self._static_sum > p.peak_power_cap * (1.0 + _SCREEN_RTOL):
                return True
        return False

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def objective_of(self, levels: np.ndarray) -> float:
        """P3 objective of ``levels`` with exact inner solve; ``+inf`` when
        the on-set cannot serve the workload or the solved action violates
        the operational caps (Algorithm 2 line 2)."""
        key = levels.tobytes()
        cached = self._objectives.get(key)
        if cached is not None:
            self.stats.cache_hits += 1
            return cached

        self._sync_screen(levels)
        if self._screened_infeasible():
            self.stats.screened_infeasible += 1
            self._objectives[key] = np.inf
            return np.inf

        try:
            dist = distribute_load(
                self.problem,
                levels,
                hint=self._hint if self.warm_start else None,
            )
        except InfeasibleError:
            self.stats.infeasible += 1
            self._objectives[key] = np.inf
            return np.inf

        if dist.warm_started:
            self.stats.warm_solves += 1
        else:
            self.stats.cold_solves += 1
        self.stats.inner_iters += dist.inner_iters
        if self.warm_start:
            self._hint = dist

        action = FleetAction(levels=levels, per_server_load=dist.per_server_load)
        evaluation = self.problem.evaluate(action)
        obj = (
            np.inf
            if self.problem.violates_caps(evaluation)
            else float(evaluation.objective)
        )
        self._objectives[key] = obj
        self._dists[key] = dist
        return obj

    def objective_of_batch(self, levels_batch: np.ndarray) -> np.ndarray:
        """P3 objectives for a ``(K, G)`` matrix of candidate level vectors.

        Engine-facing batch analogue of :meth:`objective_of`: per-row memo
        lookup and feasibility screen, then one call into the batched
        water-filling engine (:func:`~repro.solvers.batched
        .objective_batch`) for the rows that actually need solving.  Each
        row's returned value, memo entry, and counter attribution match
        what K sequential :meth:`objective_of` calls would produce, with
        two deliberate exceptions: duplicate unseen rows inside one batch
        are each solved (and counted) rather than the second hitting the
        memo, and the speculative rows do **not** advance the incremental
        delta-screen state -- their verdicts come from exact from-scratch
        sums, so :meth:`note_changed` bookkeeping stays tied to the
        engine's *real* level vector.

        With ``warm_start`` enabled every row shares the block-entry hint
        (the batch is neighbor flips of one base configuration), and the
        last solved row becomes the next hint.
        """
        from .batched import objective_batch

        levels_batch = np.asarray(levels_batch, dtype=np.int64)
        K = levels_batch.shape[0]
        out = np.empty(K)
        keys = [levels_batch[k].tobytes() for k in range(K)]
        todo: list[int] = []
        for k, key in enumerate(keys):
            cached = self._objectives.get(key)
            if cached is not None:
                self.stats.cache_hits += 1
                out[k] = cached
            else:
                todo.append(k)
        if not todo:
            return out

        # Exact from-scratch screen over the unseen rows (vectorized; the
        # incremental state is left untouched).
        p = self.problem
        fleet = self._fleet
        lam = p.arrival_rate
        sub = levels_batch[todo]
        if lam > 0.0:
            mask = sub >= 0
            safe = np.maximum(sub, 0)
            gidx = np.arange(fleet.num_groups)
            cap = np.sum(
                np.where(mask, fleet.counts * fleet.speed_table[gidx, safe], 0.0),
                axis=1,
            )
            on_count = np.sum(mask, axis=1)
            screened = (on_count == 0) | (
                lam > p.gamma * cap * (1.0 + _SCREEN_RTOL)
            )
            if p.peak_power_cap is not None:
                static = np.sum(
                    np.where(mask, fleet.counts * fleet.static_power, 0.0), axis=1
                )
                screened |= p.pue * static > p.peak_power_cap * (1.0 + _SCREEN_RTOL)
        else:
            screened = np.zeros(len(todo), dtype=bool)

        solve_rows = []
        for j, k in enumerate(todo):
            if screened[j]:
                self.stats.screened_infeasible += 1
                self._objectives[keys[k]] = np.inf
                out[k] = np.inf
            else:
                solve_rows.append(k)
        if not solve_rows:
            return out

        objectives, dists = objective_batch(
            p,
            np.ascontiguousarray(levels_batch[solve_rows]),
            hint=self._hint if self.warm_start else None,
        )
        last_dist: LoadDistribution | None = None
        for j, k in enumerate(solve_rows):
            dist = dists[j]
            if dist is None:
                self.stats.infeasible += 1
                self._objectives[keys[k]] = np.inf
                out[k] = np.inf
                continue
            if dist.warm_started:
                self.stats.warm_solves += 1
            else:
                self.stats.cold_solves += 1
            self.stats.inner_iters += dist.inner_iters
            obj = float(objectives[j])
            self._objectives[keys[k]] = obj
            self._dists[keys[k]] = dist
            out[k] = obj
            last_dist = dist
        if self.warm_start and last_dist is not None:
            self._hint = last_dist
        return out

    def solution_for(
        self, levels: np.ndarray
    ) -> tuple[FleetAction, SlotEvaluation]:
        """Exact ``(action, evaluation)`` for a level vector, reusing the
        cached inner solve when the vector was scored before."""
        dist = self._dists.get(levels.tobytes())
        if dist is None:
            dist = distribute_load(self.problem, levels)
        action = FleetAction(levels=levels, per_server_load=dist.per_server_load)
        return action, self.problem.evaluate(action)
