"""GSD: Gibbs-Sampling-based Distributed optimization (paper Algorithm 2).

GSD solves the mixed-integer slot problem P3 by a Markov-chain search over
speed configurations.  Each iteration, one randomly selected server (group)
explores a random speed from its set ``S_i ∪ {0}``; the optimal load
distribution for the explored configuration is computed exactly (the convex
subproblem of Eq. (18), solved by dual decomposition in
:mod:`repro.solvers.load_distribution`); the explored configuration is then
kept with probability

    u = exp(delta / g~^e) / ( exp(delta / g~^e) + exp(delta / g~^*) ),

a two-point Gibbs sample between the current and explored objectives.  The
stationary distribution is ``Omega(x) ∝ exp(delta / g~(x))`` (Theorem 1), so
as the temperature ``delta`` grows the chain concentrates on the global
minimizer; Theorem 1's proof (Appendix A) shows convergence with probability
1 as ``delta -> infinity``.

Per the paper's practical advice, the solver supports (a) *group-batched*
updates -- configurations are per-group, which is how the paper reaches 200
decision variables for 216 K servers -- and (b) an *adaptive* temperature
that increases over iterations, "initially ... explore all possible
decisions, whereas delta is increased over the iterations such that the
servers progressively concentrate on better solutions".

The solver returns the best configuration visited (the chain state itself is
in ``info``) and can record the full iteration trace used to reproduce
Fig. 4.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..cluster.fleet import FleetAction
from .base import SlotSolution, SlotSolver
from .deadline import DeadlineExceededError, SolveDeadline
from .fastpath import EvaluationCache, FastPathStats
from .load_distribution import distribute_load
from .problem import InfeasibleError, SlotProblem

__all__ = ["GSDSolver", "GSDTrace", "geometric_temperature"]

#: Floor keeping ``delta / g`` finite when a configuration has ~zero cost.
_OBJECTIVE_FLOOR = 1e-12

#: Speculative-block sizing: start small (acceptances are common early in
#: a chain, and every acceptance discards the rest of the block), double on
#: each fully consumed block (late chains are rejection-dominated), reset
#: on divergence.
_BLOCK_MIN = 8
_BLOCK_MAX = 64


def geometric_temperature(
    delta0: float, growth: float = 1.01
) -> Callable[[int], float]:
    """Adaptive schedule ``delta_t = delta0 * growth**t`` (paper section 4.2:
    start small to explore, increase to concentrate)."""
    if delta0 <= 0 or growth < 1.0:
        raise ValueError("need delta0 > 0 and growth >= 1")
    return lambda t: delta0 * growth**t


@dataclass(frozen=True)
class GSDTrace:
    """Per-iteration history of a GSD run (Fig. 4 raw material).

    Attributes
    ----------
    chain_objective:
        Objective ``g~`` of the chain's current configuration after each
        iteration.
    best_objective:
        Best objective visited up to each iteration.
    accepted:
        Whether the explored configuration was kept.
    temperature:
        The ``delta`` used at each iteration.
    """

    chain_objective: np.ndarray
    best_objective: np.ndarray
    accepted: np.ndarray
    temperature: np.ndarray

    def __len__(self) -> int:
        return int(self.chain_objective.size)

    @property
    def acceptance_rate(self) -> float:
        """Fraction of iterations whose exploration was accepted."""
        return float(self.accepted.mean()) if len(self) else 0.0


class GSDSolver(SlotSolver):
    """Algorithm 2 with group-batched updates.

    Parameters
    ----------
    iterations:
        Markov-chain length (the paper runs 500 iterations for 200 groups
        in under a second).
    delta:
        Temperature: a positive float for the paper's fixed-``delta``
        variant, or a callable ``iteration -> delta`` for adaptive schedules
        (see :func:`geometric_temperature`).
    rng:
        Randomness source; defaults to a fixed seed for reproducibility.
    initial_levels:
        Optional starting configuration (per-group levels, ``-1`` = off);
        defaults to all groups at top speed, which is feasible whenever the
        slot is.
    record_history:
        When True, attach a :class:`GSDTrace` to ``info["trace"]``.
    failed_groups:
        Indices of groups currently down.  Per the paper, "in the event of
        server failures, only functioning servers need to participate in
        GSD, while those failed servers do not intervene the execution":
        failed groups are pinned to the zero speed, never selected for
        exploration, and carry no load.
    log_interval:
        When telemetry is bound, a ``gsd.iteration`` summary event (chain
        and best objective, temperature, windowed acceptance rate) is
        emitted every ``log_interval`` iterations.  Without telemetry the
        interval is ignored and the chain runs exactly as before.
    use_cache:
        Route candidate scoring through the per-solve
        :class:`~repro.solvers.fastpath.EvaluationCache`: revisited level
        vectors cost a dict hit, and clearly infeasible proposals are
        screened in O(1) instead of a full inner solve.  Results are
        bit-identical with the cache on or off (see fastpath docs); the
        default is on.
    warm_start:
        Seed each inner solve's bisection brackets from the previous
        candidate's solution (requires ``use_cache``).  Warm-started solves
        match cold ones to <= 1e-9 relative objective error, so this knob
        is off by default and flipped where that tolerance is acceptable
        (benchmarks, long sweeps).
    deadline_ms:
        Wall-clock budget per solve.  When it expires mid-chain the solver
        stops and returns the best feasible incumbent (anytime behaviour,
        flagged in ``info["deadline"]`` and ``deadline.expired`` telemetry);
        if no feasible configuration was seen yet it raises
        :class:`~repro.solvers.deadline.DeadlineExceededError`.  ``None``
        (the default) never expires.
    batched:
        Score proposals in speculative blocks through the batched
        water-filling engine (:mod:`repro.solvers.batched`): the solver
        snapshots the RNG, optimistically draws a block of proposals as if
        every one were finite and rejected (the overwhelmingly common case
        once the chain settles), evaluates all the non-self flips of the
        current configuration in one ``(K, G)`` vectorized solve, then
        replays the Gibbs decisions serially.  The first acceptance or
        infeasible proposal ends the block: the iteration is completed
        with its batched value, the RNG is rewound to the snapshot and
        re-advanced with the *true* consumption pattern, and the chain
        continues from the next iteration -- so the visited states, the
        accept/reject decisions, and the RNG stream are **bit-identical**
        to the scalar chain (cold solves; warm starts keep their usual
        <= 1e-9 per-solve contract).  Requires ``use_cache``; silently
        falls back to the scalar loop when the cache is off or a
        ``deadline_ms`` is set (the scalar loop polls the deadline between
        iterations, a granularity block evaluation would coarsen).

        Default **off**: speculation pays for itself only when acceptances
        are rare (a cool, settled chain rejecting long runs of proposals
        in one vectorized block).  Every acceptance discards the rest of
        its block and forces a resync, so on an accept-heavy chain (the
        paper-scale bench accepts ~28% of steps) the wasted block tails
        plus the per-block batch setup cost more than the lockstep solve
        saves, and the scalar warm path wins.  Flip it on for long
        low-temperature chains or rejection-dominated annealing tails.
    """

    def __init__(
        self,
        *,
        iterations: int = 500,
        delta: float | Callable[[int], float] = 1e6,
        rng: np.random.Generator | None = None,
        initial_levels: Sequence[int] | np.ndarray | None = None,
        record_history: bool = False,
        failed_groups: Sequence[int] | None = None,
        log_interval: int = 100,
        use_cache: bool = True,
        warm_start: bool = False,
        deadline_ms: float | None = None,
        batched: bool = False,
    ):
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        if not callable(delta) and delta <= 0:
            raise ValueError("temperature delta must be positive")
        if log_interval < 1:
            raise ValueError("log_interval must be >= 1")
        self.iterations = iterations
        self.delta = delta
        self.rng = rng if rng is not None else np.random.default_rng(1)
        self.initial_levels = (
            None
            if initial_levels is None
            else np.asarray(initial_levels, dtype=np.int64).copy()
        )
        if warm_start and not use_cache:
            raise ValueError("warm_start requires use_cache")
        self.record_history = record_history
        self.log_interval = log_interval
        self.use_cache = use_cache
        self.warm_start = warm_start
        self.deadline_ms = deadline_ms
        self.batched = batched
        # Chain counter: stamps telemetry events with a per-solver
        # solve_index so the convergence diagnostics can group the
        # gsd.iteration stream by chain.  Only advanced when telemetry is
        # enabled, so uninstrumented solver state is untouched.
        self._solve_count = 0
        self.failed_groups = (
            np.unique(np.asarray(failed_groups, dtype=np.int64))
            if failed_groups is not None
            else np.empty(0, dtype=np.int64)
        )

    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Everything a checkpoint needs to resume this chain exactly."""
        from ..state.serialize import encode_rng

        return {"rng": encode_rng(self.rng), "solve_count": self._solve_count}

    def load_state_dict(self, state: dict) -> None:
        """Restore RNG position and chain counter from a checkpoint."""
        from ..state.serialize import decode_rng

        self.rng = decode_rng(state["rng"])
        self._solve_count = int(state["solve_count"])

    # ------------------------------------------------------------------
    @staticmethod
    def auto_delta(problem: SlotProblem, *, greediness: float = 10.0) -> float:
        """A temperature matched to the problem's objective scale.

        The acceptance exponent is ``delta * (1/g~^e - 1/g~^*)``; for the
        chain to discriminate between configurations differing by a ~10%
        objective gap, ``delta`` must be on the order of the objective
        itself.  This helper evaluates the all-top-speed configuration and
        returns ``greediness`` times its objective: ``greediness ~ 1`` is
        exploratory, ``>> 1`` nearly greedy (the paper's Fig. 4 sweeps this
        knob as its different-``delta`` curves).
        """
        if greediness <= 0:
            raise ValueError("greediness must be positive")
        fleet = problem.fleet
        levels = (fleet.num_levels - 1).astype(np.int64)
        dist = distribute_load(problem, levels)
        action = FleetAction(levels=levels, per_server_load=dist.per_server_load)
        return greediness * max(problem.objective(action), _OBJECTIVE_FLOOR)

    def _temperature(self, iteration: int) -> float:
        return self.delta(iteration) if callable(self.delta) else float(self.delta)

    def _objective_of(self, problem: SlotProblem, levels: np.ndarray) -> float:
        """Objective of a configuration with exact inner load solve; +inf
        when the on-set cannot serve the workload (Algorithm 2 line 2)."""
        try:
            dist = distribute_load(problem, levels)
        except InfeasibleError:
            return np.inf
        action = FleetAction(levels=levels, per_server_load=dist.per_server_load)
        evaluation = problem.evaluate(action)
        if problem.violates_caps(evaluation):
            return np.inf
        return evaluation.objective

    def solve(self, problem: SlotProblem) -> SlotSolution:
        # The span wraps the whole solve; ``sp`` is the no-op NULL_SPAN on
        # uninstrumented runs, so the chain arithmetic below is untouched.
        sp = self.telemetry.span("gsd.solve")
        with sp:
            return self._solve(problem, sp)

    def _solve(self, problem: SlotProblem, sp) -> SlotSolution:
        deadline = SolveDeadline(self.deadline_ms)
        problem.check_feasible()
        fleet = problem.fleet
        rng = self.rng
        G = fleet.num_groups
        if self.failed_groups.size and (
            self.failed_groups.min() < 0 or self.failed_groups.max() >= G
        ):
            raise ValueError("failed group index out of range")
        healthy = np.setdiff1d(np.arange(G), self.failed_groups)
        if healthy.size == 0:
            raise ValueError("every group has failed")

        cache = (
            EvaluationCache(problem, warm_start=self.warm_start)
            if self.use_cache
            else None
        )

        if sp:
            # Attribution build of the scorer: classify each candidate
            # evaluation by what the fast path actually did (stats deltas)
            # and accumulate its wall time into an aggregated child bucket
            # -- one summarized span event per bucket at solve exit, never
            # one per iteration.
            fp_stats = cache.stats if cache is not None else None

            def score(lv: np.ndarray) -> float:
                t0 = time.perf_counter()
                if cache is None:
                    value = self._objective_of(problem, lv)
                    bucket = "gsd.inner_bisection"
                else:
                    hits0 = fp_stats.cache_hits
                    screened0 = fp_stats.screened_infeasible
                    value = cache.objective_of(lv)
                    if fp_stats.cache_hits > hits0:
                        bucket = "gsd.cache_lookup"
                    elif fp_stats.screened_infeasible > screened0:
                        bucket = "gsd.feasibility_screen"
                    else:
                        bucket = "gsd.inner_bisection"
                sp.add(bucket, time.perf_counter() - t0)
                return value

        else:

            def score(lv: np.ndarray) -> float:
                if cache is not None:
                    return cache.objective_of(lv)
                return self._objective_of(problem, lv)

        if self.initial_levels is not None:
            levels = self.initial_levels.copy()
            if levels.shape != (G,):
                raise ValueError("initial_levels must have one entry per group")
        else:
            levels = (fleet.num_levels - 1).astype(np.int64)
        levels[self.failed_groups] = -1  # failed machines are dark
        current = score(levels)
        if not np.isfinite(current):
            levels = (fleet.num_levels - 1).astype(np.int64)
            levels[self.failed_groups] = -1
            if cache is not None:
                cache.note_all()
            current = score(levels)
        best_levels, best = levels.copy(), current

        hist_chain = np.empty(self.iterations)
        hist_best = np.empty(self.iterations)
        hist_acc = np.zeros(self.iterations, dtype=bool)
        hist_temp = np.empty(self.iterations)
        n_solves = 0
        last_improve = 0

        tele = self.telemetry
        started = time.perf_counter() if tele.enabled else 0.0
        solve_index = -1
        if tele.enabled:
            solve_index = self._solve_count
            self._solve_count += 1

        def _log_window(it: int) -> None:
            """Iteration-summary event at the end of each logging interval."""
            if not tele.enabled or (it + 1) % self.log_interval != 0:
                return
            lo = it + 1 - self.log_interval
            tele.emit(
                "gsd.iteration",
                solve_index=solve_index,
                iteration=it + 1,
                chain_objective=float(hist_chain[it]),
                best_objective=float(hist_best[it]),
                temperature=float(hist_temp[it]),
                acceptance_rate=float(hist_acc[lo : it + 1].mean()),
                window=self.log_interval,
            )

        completed = 0
        use_batched = (
            self.batched and cache is not None and self.deadline_ms is None
        )
        spec_blocks = spec_full = spec_resyncs = spec_wasted = 0
        if use_batched:
            # Speculative block batching.  Invariant entering each block:
            # the RNG, ``levels``, ``current`` and the history arrays are
            # exactly what the scalar loop would hold at iteration ``it``.
            # A block optimistically draws (group, proposal, uniform) as if
            # every proposal were finite and rejected; the serial replay
            # below preserves the invariant (see the resync comment).
            it = 0
            block = _BLOCK_MIN
            while it < self.iterations:
                B = min(block, self.iterations - it)
                spec_blocks += 1
                snapshot = rng.bit_generator.state
                specs: list[tuple[int, int, float | None]] = []
                for _ in range(B):
                    g = int(healthy[rng.integers(0, healthy.size)])
                    proposal = int(rng.integers(-1, fleet.num_levels[g]))
                    if proposal == levels[g]:
                        specs.append((g, proposal, None))  # no eval, no uniform
                    else:
                        specs.append((g, proposal, float(rng.random())))
                cand = [bi for bi in range(B) if specs[bi][2] is not None]
                objs = None
                if cand:
                    batch = np.repeat(levels[None, :], len(cand), axis=0)
                    for r, bi in enumerate(cand):
                        batch[r, specs[bi][0]] = specs[bi][1]
                    t0 = time.perf_counter() if sp else 0.0
                    objs = cache.objective_of_batch(batch)
                    if sp:
                        sp.add("gsd.batched_solve", time.perf_counter() - t0)
                row_of = {bi: r for r, bi in enumerate(cand)}
                finite: dict[int, bool] = {}
                consumed = 0
                diverged = False
                for bi in range(B):
                    i = it + bi
                    delta = self._temperature(i)
                    hist_temp[i] = delta
                    g, proposal, u = specs[bi]
                    if u is None:
                        hist_chain[i], hist_best[i] = current, best
                        _log_window(i)
                        consumed += 1
                        continue
                    explored = float(objs[row_of[bi]])
                    n_solves += 1
                    is_finite = bool(np.isfinite(explored))
                    finite[bi] = is_finite
                    if is_finite:
                        # Line 4: identical arithmetic to the scalar loop;
                        # ``u`` is the uniform the scalar loop would have
                        # drawn at exactly this point of the stream.
                        ge = max(explored, _OBJECTIVE_FLOOR)
                        gs = max(current, _OBJECTIVE_FLOOR)
                        exponent = np.clip(
                            delta * (1.0 / ge - 1.0 / gs), -700.0, 700.0
                        )
                        accept = u < 1.0 / (1.0 + np.exp(-exponent))
                    else:
                        accept = False
                        diverged = True  # scalar draws no uniform here
                    if accept:
                        levels[g] = proposal
                        cache.note_changed(g)
                        current = explored
                        hist_acc[i] = True
                        if explored < best:
                            best = explored
                            best_levels = levels.copy()
                            last_improve = i + 1
                        diverged = True  # later rows scored a stale base
                    hist_chain[i], hist_best[i] = current, best
                    _log_window(i)
                    consumed += 1
                    if diverged:
                        break
                if diverged:
                    # Rewind to the snapshot and re-advance the stream with
                    # the *true* consumption pattern of the consumed
                    # iterations: the speculative draws assumed a uniform
                    # for every non-self proposal, but an infeasible
                    # exploration consumes none.  The prefix re-draws the
                    # same values (same generator, same call sequence), so
                    # the decisions above stand and the RNG lands exactly
                    # where the scalar loop's would.
                    spec_resyncs += 1
                    spec_wasted += len(cand) - sum(
                        1 for bi in cand if bi < consumed
                    )
                    rng.bit_generator.state = snapshot
                    for k in range(consumed):
                        g2 = int(healthy[rng.integers(0, healthy.size)])
                        rng.integers(-1, fleet.num_levels[g2])
                        if specs[k][2] is not None and finite.get(k, False):
                            rng.random()
                    block = _BLOCK_MIN
                else:
                    # Fully consumed: every non-self row was finite and
                    # rejected, so the speculative pattern *was* the true
                    # pattern and the RNG needs no correction.
                    spec_full += 1
                    block = min(2 * block, _BLOCK_MAX)
                it += consumed
            completed = self.iterations
        else:
            for it in range(self.iterations):
                if deadline.expired():
                    break
                completed = it + 1
                delta = self._temperature(it)
                hist_temp[it] = delta

                # Line 7: a random *functioning* group explores a random
                # speed (incl. off); failed groups never hold the update
                # token.
                g = int(healthy[rng.integers(0, healthy.size)])
                proposal = int(rng.integers(-1, fleet.num_levels[g]))
                old_level = levels[g]
                if proposal == old_level:
                    hist_chain[it], hist_best[it] = current, best
                    _log_window(it)
                    continue
                levels[g] = proposal
                if cache is not None:
                    cache.note_changed(g)
                explored = score(levels)
                n_solves += 1

                if np.isfinite(explored):
                    # Line 4: two-point Gibbs acceptance, computed stably as
                    # a sigmoid of delta * (1/g~^e - 1/g~^*).
                    ge = max(explored, _OBJECTIVE_FLOOR)
                    gs = max(current, _OBJECTIVE_FLOOR)
                    exponent = np.clip(delta * (1.0 / ge - 1.0 / gs), -700.0, 700.0)
                    u = 1.0 / (1.0 + np.exp(-exponent))
                    accept = rng.random() < u
                else:
                    accept = False  # line 2 guard: infeasible explorations die

                if accept:
                    current = explored
                    hist_acc[it] = True
                    if explored < best:
                        best = explored
                        best_levels = levels.copy()
                        last_improve = it + 1
                else:
                    levels[g] = old_level
                    if cache is not None:
                        cache.note_changed(g)
                hist_chain[it], hist_best[it] = current, best
                _log_window(it)

        truncated = completed < self.iterations
        if truncated:
            # Anytime cut: keep only the iterations that actually ran.
            hist_chain = hist_chain[:completed]
            hist_best = hist_best[:completed]
            hist_acc = hist_acc[:completed]
            hist_temp = hist_temp[:completed]
            if tele.enabled:
                tele.emit(
                    "deadline.expired",
                    solver=self.name(),
                    budget_ms=float(self.deadline_ms),
                    elapsed_ms=deadline.elapsed_ms(),
                    completed=completed,
                    planned=self.iterations,
                    best_feasible=bool(np.isfinite(best)),
                )
                tele.metrics.counter("deadline.expirations").inc()
            if not np.isfinite(best):
                raise DeadlineExceededError(
                    f"GSD solve deadline ({self.deadline_ms} ms) expired after "
                    f"{completed}/{self.iterations} iterations with no feasible "
                    "incumbent"
                )

        stats = cache.stats if cache is not None else FastPathStats(cold_solves=n_solves)
        if tele.enabled:
            elapsed = time.perf_counter() - started
            acceptance = float(hist_acc.mean()) if completed else 0.0
            metrics = tele.metrics
            metrics.counter("gsd.solves").inc()
            metrics.counter("gsd.inner_solves").inc(stats.inner_solves)
            metrics.counter("gsd.evaluations").inc(n_solves)
            metrics.counter("gsd.cache_hits").inc(stats.cache_hits)
            metrics.counter("gsd.warm_starts").inc(stats.warm_solves)
            metrics.counter("gsd.screened_infeasible").inc(stats.screened_infeasible)
            metrics.histogram("gsd.solve_time_s").observe(elapsed)
            metrics.histogram("gsd.iterations_to_convergence").observe(last_improve)
            metrics.histogram("gsd.acceptance_rate").observe(acceptance)
            tele.emit(
                "gsd.solve",
                solve_index=solve_index,
                iterations=completed,
                inner_solves=stats.inner_solves,
                evaluations=n_solves,
                cache_hits=stats.cache_hits,
                warm_starts=stats.warm_solves,
                screened_infeasible=stats.screened_infeasible,
                best_objective=float(best),
                acceptance_rate=acceptance,
                iterations_to_convergence=last_improve,
                solve_time_s=elapsed,
            )

        if not np.isfinite(best):
            # The chain observed no configuration satisfying the operational
            # caps; returning the (cap-violating) chain state would silently
            # hand the controller an infeasible action.
            raise InfeasibleError(
                "GSD chain never reached a configuration satisfying the "
                "operational caps; increase iterations or relax the caps"
            )
        t_final = time.perf_counter() if sp else 0.0
        if cache is not None:
            action, final_evaluation = cache.solution_for(best_levels)
        else:
            dist = distribute_load(problem, best_levels)
            action = FleetAction(
                levels=best_levels, per_server_load=dist.per_server_load
            )
            final_evaluation = problem.evaluate(action)
        if sp:
            sp.add("gsd.finalize", time.perf_counter() - t_final)
        info: dict = {
            "chain_levels": levels.copy(),
            "inner_solves": stats.inner_solves,
            "evaluations": n_solves,
            "fastpath": stats.as_dict(),
            "final_objective": best,
            "speculation": {
                "enabled": use_batched,
                "blocks": spec_blocks,
                "full_blocks": spec_full,
                "resyncs": spec_resyncs,
                "wasted_evaluations": spec_wasted,
            },
        }
        if self.deadline_ms is not None:
            info["deadline"] = {
                "budget_ms": float(self.deadline_ms),
                "elapsed_ms": deadline.elapsed_ms(),
                "expired": truncated,
                "completed": completed,
                "planned": self.iterations,
            }
        if self.record_history:
            info["trace"] = GSDTrace(
                chain_objective=hist_chain,
                best_objective=hist_best,
                accepted=hist_acc,
                temperature=hist_temp,
            )
        return SlotSolution(action=action, evaluation=final_evaluation, info=info)
