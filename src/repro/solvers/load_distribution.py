"""Optimal load distribution for fixed speeds (GSD line 3, Eq. (18)).

With the speed vector fixed, P3 reduces to a *convex* program in the load
distribution: minimize

    We * [ P_static + sum_g n_g c_g l_g  (x PUE) - r ]^+  +  Wd * sum_g n_g d(l_g, x_g)

over per-server loads ``l_g`` with ``sum_g n_g l_g = lambda`` and
``0 <= l_g <= gamma x_g``, where ``We = V w + q`` prices brown energy, ``Wd
= V beta kappa`` prices delay, ``c_g`` is the dynamic-power coefficient and
``d`` the per-server delay-cost model.  The paper solves this distributedly
by dual decomposition (references [5, 27]); the KKT conditions give a
water-filling characterization:

    l_g(nu) = clip( d^{-1}'( (nu - We PUE c_g) / Wd ), 0, gamma x_g )

with the dual variable ``nu`` (price per unit of served load) set by
bisection so the loads sum to ``lambda``.  The ``[.]^+`` kink is resolved by
regime analysis: solve with the full electricity weight (regime *billed*),
with zero weight (regime *free*, when renewables cover everything), and,
when the two disagree, bisect the weight so facility power meets the
renewable supply exactly (regime *boundary*) -- the KKT multiplier of the
constraint ``P <= r``.

Everything is vectorized across groups; the per-slot cost is ~100 bisection
steps of O(G) array work.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cluster.fleet import Fleet, FleetAction
from ..cluster.power import LinearTariff
from .problem import InfeasibleError, SlotProblem

__all__ = ["LoadDistribution", "distribute_load", "solve_fixed_levels"]

#: Relative bisection tolerance on the served-load balance.
_BALANCE_RTOL = 1e-12
_NU_ITERS = 100
_MU_ITERS = 60


@dataclass(frozen=True)
class LoadDistribution:
    """Result of a fixed-speed load-distribution solve.

    Attributes
    ----------
    per_server_load:
        Length-``G`` array (zeros for off groups).
    nu:
        Final dual variable (marginal objective per unit of served load).
    regime:
        ``"billed"`` (power exceeds renewables, full electricity weight),
        ``"free"`` (renewables cover everything), or ``"boundary"``
        (facility power pinned at the renewable supply).
    electricity_weight:
        The effective $/MWh weight the solution was computed with.
    """

    per_server_load: np.ndarray
    nu: float
    regime: str
    electricity_weight: float


def _fill_when_delay_free(
    lam: float, weights: np.ndarray, caps: np.ndarray, counts: np.ndarray
) -> np.ndarray:
    """Degenerate case ``Wd == 0``: objective is linear in loads, so fill
    groups to their caps in ascending order of per-request electricity
    weight (ties broken by index)."""
    order = np.argsort(weights, kind="stable")
    loads = np.zeros_like(caps)
    remaining = lam
    for g in order:
        take = min(remaining, caps[g] * counts[g])
        loads[g] = take / counts[g]
        remaining -= take
        if remaining <= 0:
            break
    if remaining > 1e-9 * max(lam, 1.0):
        raise InfeasibleError("load exceeds capped capacity of the on-set")
    return loads


def _waterfill(
    problem: SlotProblem,
    lam: float,
    we: float,
    x: np.ndarray,
    c: np.ndarray,
    n: np.ndarray,
) -> tuple[np.ndarray, float]:
    """Water-filling for a fixed electricity weight ``we`` ($/MWh brown).

    Returns (per-server loads over the on-set, dual variable nu).
    """
    dm = problem.delay_model
    wd = problem.V * problem.delay_weight
    pue = problem.pue
    caps = problem.gamma * x
    elec_marginal = we * pue * c  # $ per (req/s) routed to each group

    if wd <= 0.0:
        return _fill_when_delay_free(lam, elec_marginal, caps, n), float(
            elec_marginal.min(initial=0.0)
        )

    def loads_at(nu: float) -> np.ndarray:
        m = (nu - elec_marginal) / wd
        lam_g = np.where(m > 0, dm.load_at_marginal(np.maximum(m, 1e-300), x), 0.0)
        return np.clip(lam_g, 0.0, caps)

    def served(nu: float) -> float:
        return float(np.sum(n * loads_at(nu)))

    lo = float(np.min(elec_marginal + wd * dm.marginal(np.zeros_like(x), x)))
    hi = max(lo, float(np.max(elec_marginal + wd * dm.marginal(caps, x)))) + 1.0
    while served(hi) < lam:
        hi = 2.0 * hi + 1.0
        if hi > 1e300:
            raise InfeasibleError("load exceeds capped capacity of the on-set")

    for _ in range(_NU_ITERS):
        mid = 0.5 * (lo + hi)
        if served(mid) < lam:
            lo = mid
        else:
            hi = mid
    loads = loads_at(hi)

    # Close the residual balance exactly on groups strictly inside their box.
    residual = lam - float(np.sum(n * loads))
    interior = (loads > 0.0) & (loads < caps) if residual < 0 else (loads < caps)
    weight = float(np.sum(n[interior]))
    if weight > 0.0:
        loads = loads.copy()
        loads[interior] = np.clip(loads[interior] + residual / weight, 0.0, caps[interior])
    return loads, hi


def distribute_load(problem: SlotProblem, levels: np.ndarray) -> LoadDistribution:
    """Solve the load-distribution subproblem for a fixed level vector.

    Parameters
    ----------
    problem:
        The slot's P3 instance.
    levels:
        Per-group speed levels (``-1`` = off).

    Raises
    ------
    InfeasibleError
        If the on-set cannot serve ``lambda`` within the utilization cap.
    """
    fleet = problem.fleet
    levels = np.asarray(levels, dtype=np.int64)
    lam = problem.arrival_rate
    on = np.nonzero(levels >= 0)[0]
    full = np.zeros(fleet.num_groups)

    if lam <= 0.0:
        return LoadDistribution(full, 0.0, "free", 0.0)
    if on.size == 0:
        raise InfeasibleError("positive workload but every group is off")

    x = fleet.speed_table[on, levels[on]]
    c = fleet.dyn_coeff[on, levels[on]]
    n = fleet.counts[on]
    if lam > problem.gamma * float(np.sum(n * x)) * (1.0 + 1e-12):
        raise InfeasibleError("load exceeds capped capacity of the on-set")

    pue = problem.pue
    static_it = float(np.sum(n * fleet.static_power[on]))

    def facility(loads: np.ndarray) -> float:
        return pue * (static_it + float(np.sum(n * c * loads)))

    def weight_full(brown_guess: float) -> float:
        return problem.V * problem.tariff.marginal(brown_guess, problem.price) + problem.q

    # Regime "billed": full electricity weight (fixed-point on the tariff
    # marginal for nonlinear tariffs; exact in one pass for LinearTariff).
    we = weight_full(0.0)
    for _ in range(1 if isinstance(problem.tariff, LinearTariff) else 3):
        loads_a, nu_a = _waterfill(problem, lam, we, x, c, n)
        brown = max(facility(loads_a) - problem.onsite, 0.0)
        new_we = weight_full(brown)
        if abs(new_we - we) <= 1e-12 * max(we, 1.0):
            break
        we = new_we
    if facility(loads_a) >= problem.onsite * (1.0 - 1e-12):
        full[on] = loads_a
        return LoadDistribution(full, nu_a, "billed", we)

    # Regime "free": renewables may cover everything -> zero weight.
    loads_b, nu_b = _waterfill(problem, lam, 0.0, x, c, n)
    if facility(loads_b) <= problem.onsite * (1.0 + 1e-12):
        full[on] = loads_b
        return LoadDistribution(full, nu_b, "free", 0.0)

    # Regime "boundary": power pinned at the renewable supply; bisect the
    # multiplier mu in (0, we) so that facility power == onsite supply.
    lo_mu, hi_mu = 0.0, we
    loads_m, nu_m = loads_b, nu_b
    for _ in range(_MU_ITERS):
        mu = 0.5 * (lo_mu + hi_mu)
        loads_m, nu_m = _waterfill(problem, lam, mu, x, c, n)
        if facility(loads_m) > problem.onsite:
            lo_mu = mu
        else:
            hi_mu = mu
    full[on] = loads_m
    return LoadDistribution(full, nu_m, "boundary", 0.5 * (lo_mu + hi_mu))


def solve_fixed_levels(problem: SlotProblem, levels: np.ndarray):
    """Convenience: distribute load for ``levels`` and return the resulting
    ``(FleetAction, SlotEvaluation)`` pair."""
    dist = distribute_load(problem, levels)
    action = FleetAction(
        levels=np.asarray(levels, dtype=np.int64),
        per_server_load=dist.per_server_load,
    )
    return action, problem.evaluate(action)
