"""Optimal load distribution for fixed speeds (GSD line 3, Eq. (18)).

With the speed vector fixed, P3 reduces to a *convex* program in the load
distribution: minimize

    We * [ P_static + sum_g n_g c_g l_g  (x PUE) - r ]^+  +  Wd * sum_g n_g d(l_g, x_g)

over per-server loads ``l_g`` with ``sum_g n_g l_g = lambda`` and
``0 <= l_g <= gamma x_g``, where ``We = V w + q`` prices brown energy, ``Wd
= V beta kappa`` prices delay, ``c_g`` is the dynamic-power coefficient and
``d`` the per-server delay-cost model.  The paper solves this distributedly
by dual decomposition (references [5, 27]); the KKT conditions give a
water-filling characterization:

    l_g(nu) = clip( d^{-1}'( (nu - We PUE c_g) / Wd ), 0, gamma x_g )

with the dual variable ``nu`` (price per unit of served load) set by
bisection so the loads sum to ``lambda``.  The ``[.]^+`` kink is resolved by
regime analysis: solve with the full electricity weight (regime *billed*),
with zero weight (regime *free*, when renewables cover everything), and,
when the two disagree, bisect the weight so facility power meets the
renewable supply exactly (regime *boundary*) -- the KKT multiplier of the
constraint ``P <= r``.

Everything is vectorized across groups; the per-slot cost is bounded by
``_NU_ITERS`` bisection steps of O(G) array work.

Fast path
---------
Two orthogonal accelerations keep the hot loop short (see
docs/PERFORMANCE.md):

- **Exact early exit**: every bisection stops as soon as its bracket can no
  longer shrink in floating point (the midpoint rounds onto an endpoint).
  From that state, running the remaining fixed-count iterations provably
  cannot change the returned endpoint, so the early-exited result is
  *bit-identical* to the historical fixed-count loop.  The module flag
  ``_EARLY_EXIT`` exists so tests can re-run the fixed-count path and
  assert exact equality.
- **Warm starts**: :func:`distribute_load` accepts the
  :class:`LoadDistribution` of a *neighboring* configuration (one group's
  level changed) as a ``hint``.  The hint's dual variable seeds a tight
  bracket around the previous crossing (validated before use -- if the
  crossing moved outside the tight bracket, the cold bracket is used and
  nothing is lost but two O(G) evaluations).  A validated bracket is then
  refined by safeguarded regula falsi (Illinois) instead of bisection:
  secant proposals on the monotone served-load curve collapse the bracket
  in a handful of steps where bisection needs ~log2(width/ulp), stopping
  at ``_WARM_XTOL`` relative bracket width.  Warm-started solves agree
  with cold solves to <= 1e-9 relative objective error (the closed
  balance restores feasibility exactly, so the objective error is
  second-order in the remaining dual error); callers that need bit-exact
  cold results simply pass no hint.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cluster.fleet import Fleet, FleetAction
from ..cluster.power import LinearTariff
from .problem import InfeasibleError, SlotProblem

__all__ = ["LoadDistribution", "distribute_load", "solve_fixed_levels"]

#: Relative bisection tolerance on the served-load balance.
_BALANCE_RTOL = 1e-12
_NU_ITERS = 100
_MU_ITERS = 60

#: When False, bisections burn their full iteration budget even after the
#: bracket has collapsed (the historical behavior); tests flip this to
#: assert the early exit is exact.
_EARLY_EXIT = True

#: Relative half-widths of the brackets tried around a warm-start hint:
#: the tight one wins when the crossing barely moved (mu-chained boundary
#: solves), the wide one when the candidate differs from the hint's
#: configuration by a group flip or two (the typical GSD/coordinate-
#: descent step: measured dual shifts on a 200-group fleet stay below
#: ~3% per flipped group).  The nu water-fill validates only the wide
#: bracket -- the tight one is contained in it, so it validates exactly
#: when the wide one does, and the Illinois refinement erases the width
#: difference in a couple of steps; the mu bisection (no superlinear
#: refinement) still tries both.  A failed tier costs two O(G)
#: evaluations.
_WARM_RTOL = 1e-6
_WARM_RTOL_WIDE = 5e-2

#: Warm refinements stop once the bracket is this tight (relative to the
#: dual's magnitude).  The residual closure restores the served-load
#: balance exactly, so the solution is a feasible point within ~1e-10 of
#: the optimizer and the objective gap is *second order* (~1e-20 relative)
#: -- far inside the 1e-9 warm contract.  Cold bisections still run to fp
#: bracket collapse; their bit-exactness contract is untouched.
_WARM_XTOL = 1e-10


@dataclass(frozen=True)
class LoadDistribution:
    """Result of a fixed-speed load-distribution solve.

    Attributes
    ----------
    per_server_load:
        Length-``G`` array (zeros for off groups).
    nu:
        Final dual variable (marginal objective per unit of served load).
    regime:
        ``"billed"`` (power exceeds renewables, full electricity weight),
        ``"free"`` (renewables cover everything), or ``"boundary"``
        (facility power pinned at the renewable supply).
    electricity_weight:
        The effective $/MWh weight the solution was computed with.
    warm_started:
        Whether a caller-supplied hint successfully tightened at least one
        bisection bracket (diagnostic; cold solves report False).
    inner_iters:
        Total bisection iterations spent across all water-filling calls of
        this solve (diagnostic for the fast-path benchmarks).
    """

    per_server_load: np.ndarray
    nu: float
    regime: str
    electricity_weight: float
    warm_started: bool = False
    inner_iters: int = 0


def _fill_when_delay_free(
    lam: float, weights: np.ndarray, caps: np.ndarray, counts: np.ndarray
) -> np.ndarray:
    """Degenerate case ``Wd == 0``: objective is linear in loads, so fill
    groups to their caps in ascending order of per-request electricity
    weight (ties broken by index)."""
    order = np.argsort(weights, kind="stable")
    loads = np.zeros_like(caps)
    remaining = lam
    for g in order:
        if counts[g] <= 0.0:
            # A zero-server group (e.g. failures emptied it) offers no
            # capacity; skipping it keeps the 0/0 below from poisoning the
            # fill with NaNs.
            continue
        take = min(remaining, caps[g] * counts[g])
        loads[g] = take / counts[g]
        remaining -= take
        if remaining <= 0:
            break
    if remaining > 1e-9 * max(lam, 1.0):
        raise InfeasibleError("load exceeds capped capacity of the on-set")
    return loads


def _close_residual(
    lam: float, loads: np.ndarray, caps: np.ndarray, n: np.ndarray
) -> np.ndarray:
    """Force ``sum(n * loads) == lam`` by spreading the bisection residual
    over groups strictly inside their box ``[0, cap]``.

    The first pass applies one uniform correction and clips -- the
    historical behavior, bit-identical whenever the correction lands
    strictly inside every box (the overwhelmingly common case: the residual
    is a few ulps of ``lam``).  When clipping *does* bind -- some interior
    group saturates at its cap (or floor) while absorbing the correction --
    the clipped mass is redistributed over the still-interior set until the
    balance closes; each extra pass saturates at least one group, so the
    loop is bounded by the group count.
    """
    residual = lam - float(np.sum(n * loads))
    for _ in range(loads.size + 1):
        interior = (loads > 0.0) & (loads < caps) if residual < 0 else (loads < caps)
        weight = float(np.sum(n[interior]))
        if weight <= 0.0:
            break
        proposed = loads[interior] + residual / weight
        clipped = np.clip(proposed, 0.0, caps[interior])
        loads = loads.copy()
        loads[interior] = clipped
        if not np.any(clipped != proposed):
            break  # nothing bound: the correction closed the balance
        residual = lam - float(np.sum(n * loads))
    return loads


def _waterfill(
    problem: SlotProblem,
    lam: float,
    we: float,
    x: np.ndarray,
    c: np.ndarray,
    n: np.ndarray,
    nu_hint: float | None = None,
) -> tuple[np.ndarray, float, int, bool]:
    """Water-filling for a fixed electricity weight ``we`` ($/MWh brown).

    Returns ``(per-server loads over the on-set, dual variable nu,
    bisection iterations, warm-start used)``.  ``nu_hint`` is a previous
    solve's dual variable; when the balance crossing still lies inside a
    tight bracket around it, bisection starts from that bracket instead of
    the cold one.
    """
    dm = problem.delay_model
    wd = problem.V * problem.delay_weight
    pue = problem.pue
    caps = problem.gamma * x
    elec_marginal = we * pue * c  # $ per (req/s) routed to each group

    if wd <= 0.0:
        return (
            _fill_when_delay_free(lam, elec_marginal, caps, n),
            float(elec_marginal.min(initial=0.0)),
            0,
            False,
        )

    def loads_at(nu: float) -> np.ndarray:
        m = (nu - elec_marginal) / wd
        lam_g = np.where(m > 0, dm.load_at_marginal(np.maximum(m, 1e-300), x), 0.0)
        return np.clip(lam_g, 0.0, caps)

    def served(nu: float) -> float:
        return float(np.sum(n * loads_at(nu)))

    lo = float(np.min(elec_marginal + wd * dm.marginal(np.zeros_like(x), x)))
    hi = max(lo, float(np.max(elec_marginal + wd * dm.marginal(caps, x)))) + 1.0

    # Warm validation runs *before* the cold doubling probe: the doubling
    # loop only ever raises ``hi``, so a hint bracket that fits under the
    # initial ``hi`` sees exactly the same clamps either way -- and once
    # it validates (``served(whi) >= lam``), monotonicity guarantees the
    # probe would not have fired, letting a validated hint skip that O(G)
    # evaluation entirely.  Only hint brackets poking above the initial
    # ``hi`` have to wait for the doubled bracket.
    warm = False
    f_lo = f_hi = 0.0
    hint_ok = nu_hint is not None and np.isfinite(nu_hint)
    tried_early = False
    if hint_ok:
        w = _WARM_RTOL_WIDE * max(abs(nu_hint), 1e-300)
        wlo, whi = max(lo, nu_hint - w), nu_hint + w
        if wlo < whi <= hi:
            tried_early = True
            s_lo = served(wlo)
            if s_lo < lam:
                s_hi = served(whi)
                if lam <= s_hi:
                    lo, hi = wlo, whi
                    f_lo, f_hi = s_lo - lam, s_hi - lam
                    warm = True
    if not warm:
        while served(hi) < lam:
            hi = 2.0 * hi + 1.0
            if hi > 1e300:
                raise InfeasibleError("load exceeds capped capacity of the on-set")
        if hint_ok and not tried_early:
            w = _WARM_RTOL_WIDE * max(abs(nu_hint), 1e-300)
            wlo, whi = max(lo, nu_hint - w), min(hi, nu_hint + w)
            if wlo < whi:
                s_lo = served(wlo)
                if s_lo < lam:
                    s_hi = served(whi)
                    if lam <= s_hi:
                        lo, hi = wlo, whi
                        f_lo, f_hi = s_lo - lam, s_hi - lam
                        warm = True

    iters = 0
    if warm:
        # Warm refinement: safeguarded regula falsi (Illinois).  The
        # validated bracket already holds ``served(lo) < lam <= served(hi)``
        # with residuals in hand, and ``served`` is monotone, so secant
        # proposals converge superlinearly where bisection would spend
        # ~log2(width/ulp) steps.  Every 4th step takes the plain midpoint,
        # bounding the interval by width * 2^(-iters/4) regardless of how
        # the secant behaves; the loop stops once the bracket shrinks to
        # ``_WARM_XTOL`` relative width (see that constant for why the
        # 1e-9 objective contract still holds with orders of magnitude to
        # spare) or on fp bracket collapse, whichever comes first.
        side = 0
        for _ in range(_NU_ITERS):
            if iters & 3 == 3:
                mid = 0.5 * (lo + hi)
            else:
                mid = hi - f_hi * ((hi - lo) / (f_hi - f_lo))
                if not (lo < mid < hi):
                    mid = 0.5 * (lo + hi)
            if mid == lo or mid == hi:
                break
            fm = served(mid) - lam
            iters += 1
            if fm < 0:
                if side < 0:
                    f_hi = 0.5 * f_hi
                lo, f_lo = mid, fm
                side = -1
            else:
                if side > 0:
                    f_lo = 0.5 * f_lo
                hi, f_hi = mid, fm
                side = 1
            if hi - lo <= _WARM_XTOL * max(abs(lo), abs(hi)):
                break
    else:
        for _ in range(_NU_ITERS):
            mid = 0.5 * (lo + hi)
            collapsed = mid == lo or mid == hi
            if served(mid) < lam:
                lo = mid
            else:
                hi = mid
            iters += 1
            if collapsed and _EARLY_EXIT:
                break
    loads = loads_at(hi)

    # Close the residual balance exactly on groups strictly inside their box.
    loads = _close_residual(lam, loads, caps, n)
    return loads, hi, iters, warm


def distribute_load(
    problem: SlotProblem,
    levels: np.ndarray,
    *,
    hint: LoadDistribution | None = None,
) -> LoadDistribution:
    """Solve the load-distribution subproblem for a fixed level vector.

    Parameters
    ----------
    problem:
        The slot's P3 instance.
    levels:
        Per-group speed levels (``-1`` = off).
    hint:
        Optional :class:`LoadDistribution` of a neighboring configuration
        (typically the previous candidate of a GSD chain or coordinate
        sweep).  Its dual variable and regime seed the bisection brackets;
        the warm-started solution matches the cold one to <= 1e-9 relative
        objective error.  ``None`` (the default) runs the cold path, whose
        result is bit-identical with or without the fast path.

    Raises
    ------
    InfeasibleError
        If the on-set cannot serve ``lambda`` within the utilization cap.
    """
    fleet = problem.fleet
    levels = np.asarray(levels, dtype=np.int64)
    lam = problem.arrival_rate
    on = np.nonzero(levels >= 0)[0]
    full = np.zeros(fleet.num_groups)

    if lam <= 0.0:
        return LoadDistribution(full, 0.0, "free", 0.0)
    if on.size == 0:
        raise InfeasibleError("positive workload but every group is off")

    x = fleet.speed_table[on, levels[on]]
    c = fleet.dyn_coeff[on, levels[on]]
    n = fleet.counts[on]
    if lam > problem.gamma * float(np.sum(n * x)) * (1.0 + 1e-12):
        raise InfeasibleError("load exceeds capped capacity of the on-set")

    pue = problem.pue
    slot_h = problem.slot_hours
    static_it = float(np.sum(n * fleet.static_power[on]))
    total_iters = 0
    warm_any = False

    def facility(loads: np.ndarray) -> float:
        return pue * (static_it + float(np.sum(n * c * loads)))

    def weight_full(brown_guess: float) -> float:
        return problem.V * problem.tariff.marginal(brown_guess, problem.price) + problem.q

    # Regime "billed": full electricity weight (fixed-point on the tariff
    # marginal for nonlinear tariffs; exact in one pass for LinearTariff).
    billed_hint = hint.nu if hint is not None and hint.regime == "billed" else None
    we = weight_full(0.0)
    for _ in range(1 if isinstance(problem.tariff, LinearTariff) else 3):
        loads_a, nu_a, it_a, warm_a = _waterfill(
            problem, lam, we, x, c, n, nu_hint=billed_hint
        )
        total_iters += it_a
        warm_any |= warm_a
        brown = max(facility(loads_a) - problem.onsite, 0.0) * slot_h
        new_we = weight_full(brown)
        if abs(new_we - we) <= 1e-12 * max(we, 1.0):
            break
        we = new_we
    if facility(loads_a) >= problem.onsite * (1.0 - 1e-12):
        full[on] = loads_a
        return LoadDistribution(full, nu_a, "billed", we, warm_any, total_iters)

    # Regime "free": renewables may cover everything -> zero weight.
    free_hint = hint.nu if hint is not None and hint.regime == "free" else None
    loads_b, nu_b, it_b, warm_b = _waterfill(
        problem, lam, 0.0, x, c, n, nu_hint=free_hint
    )
    total_iters += it_b
    warm_any |= warm_b
    if facility(loads_b) <= problem.onsite * (1.0 + 1e-12):
        full[on] = loads_b
        return LoadDistribution(full, nu_b, "free", 0.0, warm_any, total_iters)

    # Regime "boundary": power pinned at the renewable supply; bisect the
    # multiplier mu in (0, we) so that facility power == onsite supply.
    # A boundary hint seeds a tight mu bracket (verified before use), and
    # each inner water-fill reuses the previous iteration's dual variable
    # as its own hint -- consecutive mu values are close, so the chained
    # hints cut the inner bracket down to the warm width.  The chaining is
    # active only on warm-started solves so cold solves stay bit-exact.
    lo_mu, hi_mu = 0.0, we
    if (
        hint is not None
        and hint.regime == "boundary"
        and 0.0 < hint.electricity_weight < we
    ):
        mu_h = hint.electricity_weight
        for rtol in (_WARM_RTOL, _WARM_RTOL_WIDE):
            w = rtol * max(mu_h, 1e-300)
            cand_lo, cand_hi = max(0.0, mu_h - w), min(we, mu_h + w)
            if cand_lo >= cand_hi:
                continue
            loads_lo, _, it_lo, _ = _waterfill(
                problem, lam, cand_lo, x, c, n, nu_hint=hint.nu
            )
            loads_hi, _, it_hi, _ = _waterfill(
                problem, lam, cand_hi, x, c, n, nu_hint=hint.nu
            )
            total_iters += it_lo + it_hi
            if (
                facility(loads_lo) > problem.onsite
                and facility(loads_hi) <= problem.onsite
            ):
                lo_mu, hi_mu = cand_lo, cand_hi
                warm_any = True
                break
    loads_m, nu_m = loads_b, nu_b
    mu = 0.5 * (lo_mu + hi_mu)
    nu_chain = hint.nu if warm_any and hint is not None else None
    for _ in range(_MU_ITERS):
        mu = 0.5 * (lo_mu + hi_mu)
        collapsed = mu == lo_mu or mu == hi_mu
        loads_m, nu_m, it_m, _ = _waterfill(
            problem, lam, mu, x, c, n, nu_hint=nu_chain
        )
        total_iters += it_m
        if warm_any:
            nu_chain = nu_m
        if facility(loads_m) > problem.onsite:
            lo_mu = mu
        else:
            hi_mu = mu
        if collapsed and _EARLY_EXIT:
            break
    full[on] = loads_m
    # Report the weight the returned loads were actually computed at: the
    # last midpoint ``mu``, not the final bracket's center.  Warm-start
    # hints seed their mu bracket from ``hint.electricity_weight``, so the
    # mismatch would hand every boundary-regime warm solve a bracket around
    # a weight no water-fill ever used.
    return LoadDistribution(full, nu_m, "boundary", mu, warm_any, total_iters)


def solve_fixed_levels(problem: SlotProblem, levels: np.ndarray):
    """Convenience: distribute load for ``levels`` and return the resulting
    ``(FleetAction, SlotEvaluation)`` pair."""
    dist = distribute_load(problem, levels)
    action = FleetAction(
        levels=np.asarray(levels, dtype=np.int64),
        per_server_load=dist.per_server_load,
    )
    return action, problem.evaluate(action)
