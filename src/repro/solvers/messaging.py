"""Simulated message-passing substrate for distributed execution.

The paper's headline feature is *distributed* server-level resource
management: "each server autonomously adjusts its processing speed and
optimally decides the amount of workloads to process", with servers
communicating decisions to each other (or through a coordinating node, the
"semi-distributed" variant, section 4.2).  The vectorized solvers elsewhere
in this package compute the same mathematics centrally for speed; this
module makes the distributed protocol itself concrete:

* :class:`MessageBus` -- an in-process, instrumented message fabric
  (deliveries, per-kind counters) standing in for the data center network.
* :class:`ServerAgent` -- one autonomous group of homogeneous servers.  An
  agent knows *only its own* profile (speed set, power curve) plus whatever
  the coordinator broadcasts; its replies are computed purely from local
  state, mirroring what would run on each machine.
* :class:`DualLoadCoordinator` -- the dual-decomposition load-distribution
  protocol of GSD line 3 (paper references [5, 27]): the coordinator
  broadcasts a price ``nu`` (and an electricity weight for the ``[.]^+``
  regime), each agent answers with its best-response load and power, and
  the coordinator bisects until supply meets demand.
* :class:`DistributedGSD` -- Algorithm 2 end to end over the bus: a random
  agent explores a speed, the coordinator prices the explored configuration
  via the dual protocol, and the accept/revert outcome is broadcast.

Tests verify the protocol reproduces the centralized water-filling solution
to numerical tolerance, and the message counters document the communication
complexity (O(G) messages per bisection round).

The protocol tolerates an unreliable fabric (see
:mod:`repro.faults.bus`): every side-effect handler acknowledges, the
coordinator retries unanswered queries per agent (:func:`exchange`), and a
query still unanswered after the retry budget raises
:class:`BusTimeoutError` -- callers treat a lost round as a failed
exploration and the simulation layer falls back gracefully.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Callable, Protocol, runtime_checkable

import numpy as np

from ..cluster.fleet import Fleet, FleetAction
from .base import SlotSolution, SlotSolver
from .problem import InfeasibleError, SlotProblem

__all__ = [
    "BusAgent",
    "Message",
    "MessageBus",
    "ServerAgent",
    "DualLoadCoordinator",
    "DistributedGSD",
    "BusTimeoutError",
    "exchange",
]

#: Bisection rounds used by the coordinator (matches the centralized solver).
_NU_ROUNDS = 100
_MU_ROUNDS = 60


class BusTimeoutError(RuntimeError):
    """A protocol round could not complete: some agent's reply was never
    received within the retry budget (lost request, or a reply that missed
    the timeout window)."""


def exchange(
    bus: "MessageBus",
    sender: str,
    recipient: str,
    kind: str,
    payload: dict[str, Any],
    *,
    retries: int = 0,
) -> Message:
    """Send and wait for the reply, retrying on a silent bus.

    Every protocol message is acknowledged by its handler, so a ``None``
    return from :meth:`MessageBus.send` means the fabric ate the request or
    the reply; the message is re-sent up to ``retries`` extra times before
    :class:`BusTimeoutError` is raised.  On a reliable bus with
    ``retries=0`` this is exactly one ``send``.
    """
    attempts = retries + 1
    for _ in range(attempts):
        reply = bus.send(Message(sender, recipient, kind, payload))
        if reply is not None:
            return reply
    raise BusTimeoutError(
        f"no reply from {recipient!r} to {kind!r} after {attempts} attempt(s)"
    )


@dataclass(frozen=True)
class Message:
    """One message on the fabric."""

    sender: str
    recipient: str
    kind: str
    payload: dict[str, Any] = field(default_factory=dict)


@runtime_checkable
class BusAgent(Protocol):
    """What the bus requires of a registered endpoint.

    Anything with a unique ``name`` and a ``handle`` method can sit on the
    fabric: the in-process :class:`ServerAgent`, or a proxy forwarding the
    message across a process boundary (:class:`repro.solvers.sharded
    .ShardAgent`).  ``handle`` returns the reply, or ``None`` for "no
    reply arrived" -- the fabric itself models loss/delay separately in
    :class:`repro.faults.bus.FaultyMessageBus`.
    """

    name: str

    def handle(self, message: Message) -> Message | None: ...


class MessageBus:
    """Instrumented point-to-point + broadcast fabric."""

    def __init__(self) -> None:
        self.delivered: int = 0
        self.by_kind: Counter[str] = Counter()
        self._agents: dict[str, BusAgent] = {}

    def register(self, agent: BusAgent) -> None:
        """Attach an agent under its unique name."""
        if agent.name in self._agents:
            raise ValueError(f"duplicate agent name {agent.name!r}")
        self._agents[agent.name] = agent

    @property
    def agent_names(self) -> list[str]:
        """Names of registered agents, in registration order."""
        return list(self._agents)

    def send(self, message: Message) -> Message | None:
        """Deliver one message; returns the recipient's reply, if any."""
        agent = self._agents.get(message.recipient)
        if agent is None:
            raise KeyError(f"unknown recipient {message.recipient!r}")
        self.delivered += 1
        self.by_kind[message.kind] += 1
        return agent.handle(message)

    def broadcast(self, sender: str, kind: str, payload: dict[str, Any]) -> list[Message]:
        """Deliver to every agent; returns the non-None replies."""
        replies = []
        for name in self._agents:
            reply = self.send(Message(sender, name, kind, payload))
            if reply is not None:
                replies.append(reply)
        return replies


class ServerAgent:
    """One autonomous server group.

    The agent's knowledge is local: its own speed set, power curve, server
    count, and utilization cap.  Broadcast parameters (delay weight, PUE)
    arrive via ``configure``.
    """

    def __init__(self, name: str, fleet: Fleet, group_index: int):
        self.name = name
        g = fleet.groups[group_index]
        self.group_index = group_index
        self.count = float(g.count)
        self.speeds = g.profile.speeds
        self.dyn_coeff = g.profile.energy_per_request
        self.static_power = g.profile.static_power
        self.num_levels = g.profile.num_speeds
        # Mutable local state
        self.level: int = self.num_levels - 1
        self.explored_level: int = self.level
        self.load: float = 0.0
        self._gamma = 0.95
        self._delay_weight = 0.0
        self._pue = 1.0
        self._delay_model = None

    # ------------------------------------------------------------------
    def handle(self, msg: Message) -> Message | None:
        """Dispatch on message kind; see module docstring for the protocol."""
        handler = getattr(self, f"_on_{msg.kind.replace('-', '_')}", None)
        if handler is None:
            raise ValueError(f"{self.name}: unknown message kind {msg.kind!r}")
        return handler(msg)

    def _reply(self, msg: Message, kind: str, **payload: Any) -> Message:
        return Message(self.name, msg.sender, kind, payload)

    # -- protocol handlers ---------------------------------------------
    # Side-effect handlers acknowledge so a sender on an unreliable bus can
    # distinguish "delivered" from "lost" and retry; every handler is
    # overwrite-idempotent, so duplicated deliveries are harmless.
    def _on_configure(self, msg: Message) -> Message:
        p = msg.payload
        self._gamma = p["gamma"]
        self._delay_weight = p["delay_weight"]  # V * beta * kappa
        self._pue = p["pue"]
        self._delay_model = p["delay_model"]
        return self._reply(msg, "ack")

    def _on_set_level(self, msg: Message) -> Message:
        self.level = int(msg.payload["level"])
        self.explored_level = self.level
        return self._reply(msg, "ack")

    def _on_explore(self, msg: Message) -> Message:
        """The update token (Algorithm 2 line 7): draw a random speed."""
        rng: np.random.Generator = msg.payload["rng"]
        self.explored_level = int(rng.integers(-1, self.num_levels))
        return self._reply(msg, "explored", level=self.explored_level)

    def _on_decide(self, msg: Message) -> Message:
        """Accept/revert broadcast (Algorithm 2 line 5)."""
        if msg.payload["accept"]:
            self.level = self.explored_level
        else:
            self.explored_level = self.level
        return self._reply(msg, "ack")

    def _price_response(self, nu: float, we: float, level: int) -> tuple[float, float]:
        """Local best-response load (aggregate req/s) and dynamic IT power
        (MW) at dual price ``nu`` with electricity weight ``we`` ($/MWh)."""
        if level < 0:
            return 0.0, 0.0
        x = float(self.speeds[level])
        c = float(self.dyn_coeff[level])
        cap = self._gamma * x
        wd = self._delay_weight
        marginal_room = nu - we * self._pue * c
        if wd <= 0.0:
            lam = cap if marginal_room > 0 else 0.0
        elif marginal_room <= 0.0:
            lam = 0.0
        else:
            lam = float(
                np.clip(
                    self._delay_model.load_at_marginal(marginal_room / wd, x),
                    0.0,
                    cap,
                )
            )
        return self.count * lam, self.count * c * lam

    def _on_price(self, msg: Message) -> Message:
        served, dyn_power = self._price_response(
            msg.payload["nu"], msg.payload["we"], self._active_level(msg)
        )
        static = self.count * self.static_power if self._active_level(msg) >= 0 else 0.0
        return self._reply(msg, "response", served=served, power=dyn_power + static)

    def _on_commit(self, msg: Message) -> Message:
        served, _ = self._price_response(
            msg.payload["nu"], msg.payload["we"], self._active_level(msg)
        )
        self.load = served / self.count
        return self._reply(msg, "ack")

    def _active_level(self, msg: Message) -> int:
        return self.explored_level if msg.payload.get("explored", False) else self.level


class DualLoadCoordinator:
    """Semi-distributed dual-decomposition load distribution (GSD line 3).

    The coordinator knows the slot's aggregate quantities (total workload,
    renewable supply, price, deficit weight) but not any server's power
    curve; all per-group information arrives through price responses.

    ``retries`` is the per-message retry budget on an unreliable bus: a
    query unanswered after ``retries + 1`` attempts raises
    :class:`BusTimeoutError` (``retries_used`` counts the re-sends).  On a
    reliable bus the retry path is never taken and the message pattern is
    byte-for-byte the historical one.
    """

    def __init__(self, bus: MessageBus, name: str = "coordinator", *, retries: int = 0):
        if retries < 0:
            raise ValueError("retries must be non-negative")
        self.bus = bus
        self.name = name
        self.retries = retries
        self.retries_used = 0

    # ------------------------------------------------------------------
    def _exchange(self, recipient: str, kind: str, payload: dict[str, Any]) -> Message:
        for attempt in range(self.retries + 1):
            reply = self.bus.send(Message(self.name, recipient, kind, payload))
            if reply is not None:
                if attempt:
                    self.retries_used += attempt
                return reply
        self.retries_used += self.retries
        raise BusTimeoutError(
            f"no reply from {recipient!r} to {kind!r} after {self.retries + 1} attempt(s)"
        )

    def _bcast(self, kind: str, payload: dict[str, Any]) -> None:
        """Deliver to every agent, retrying each until acknowledged."""
        for name in self.bus.agent_names:
            self._exchange(name, kind, payload)

    def configure(self, problem: SlotProblem) -> None:
        """Broadcast the slot's shared parameters."""
        self._bcast(
            "configure",
            {
                "gamma": problem.gamma,
                "delay_weight": problem.V * problem.delay_weight,
                "pue": problem.pue,
                "delay_model": problem.delay_model,
            },
        )

    def _round(self, nu: float, we: float, explored: bool) -> tuple[float, float]:
        payload = {"nu": nu, "we": we, "explored": explored}
        served = 0.0
        power = 0.0
        for name in self.bus.agent_names:
            reply = self._exchange(name, "price", payload)
            served += reply.payload["served"]
            power += reply.payload["power"]
        return served, power

    def _bisect_nu(
        self, lam: float, we: float, explored: bool
    ) -> tuple[float, float]:
        """Find nu with aggregate served load = lam; returns (nu, facility
        dynamic+static IT power in MW, pre-PUE)."""
        lo, hi = 0.0, 1.0
        while self._round(hi, we, explored)[0] < lam:
            hi *= 2.0
            if hi > 1e300:
                raise InfeasibleError("explored on-set cannot serve the workload")
        for _ in range(_NU_ROUNDS):
            mid = 0.5 * (lo + hi)
            if self._round(mid, we, explored)[0] < lam:
                lo = mid
            else:
                hi = mid
        served, power = self._round(hi, we, explored)
        return hi, power

    def solve(self, problem: SlotProblem, *, explored: bool = False) -> float:
        """Run the full kink-aware protocol; agents end holding their loads
        (via ``commit``).  Returns the final dual price ``nu``."""
        lam = problem.arrival_rate
        pue = problem.pue
        if lam <= 0.0:
            self._bcast("commit", {"nu": 0.0, "we": 0.0, "explored": explored})
            return 0.0

        we_full = problem.electricity_weight
        nu, power = self._bisect_nu(lam, we_full, explored)
        if pue * power >= problem.onsite * (1.0 - 1e-12):
            self._bcast("commit", {"nu": nu, "we": we_full, "explored": explored})
            return nu

        nu_free, power_free = self._bisect_nu(lam, 0.0, explored)
        if pue * power_free <= problem.onsite * (1.0 + 1e-12):
            self._bcast("commit", {"nu": nu_free, "we": 0.0, "explored": explored})
            return nu_free

        lo_mu, hi_mu = 0.0, we_full
        for _ in range(_MU_ROUNDS):
            mu = 0.5 * (lo_mu + hi_mu)
            nu, power = self._bisect_nu(lam, mu, explored)
            if pue * power > problem.onsite:
                lo_mu = mu
            else:
                hi_mu = mu
        self._bcast("commit", {"nu": nu, "we": 0.5 * (lo_mu + hi_mu), "explored": explored})
        return nu


class DistributedGSD(SlotSolver):
    """Algorithm 2 executed over the message fabric.

    Functionally equivalent to :class:`~repro.solvers.gsd.GSDSolver` but
    every quantity crosses the bus; use it to demonstrate and measure the
    distributed protocol, not for year-long sweeps.

    ``bus_factory`` lets a fault injector substitute an unreliable fabric
    (e.g. :class:`repro.faults.bus.FaultyMessageBus`) per solve; ``retries``
    is the per-message retry budget handed to the coordinator and used for
    the driver's own explore/decide/set_level traffic.  A lost pricing round
    inside an exploration just marks that exploration infeasible (the Gibbs
    chain moves on); a decide/commit that stays silent past the budget
    escapes as :class:`BusTimeoutError` so the simulation layer can fall
    back to a degraded action.
    """

    def __init__(
        self,
        *,
        iterations: int = 200,
        delta: float = 1e6,
        rng: np.random.Generator | None = None,
        bus_factory: Callable[[], MessageBus] | None = None,
        retries: int = 0,
    ):
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        if delta <= 0:
            raise ValueError("delta must be positive")
        if retries < 0:
            raise ValueError("retries must be non-negative")
        self.iterations = iterations
        self.delta = delta
        self.rng = rng if rng is not None else np.random.default_rng(2)
        self.bus_factory = bus_factory
        self.retries = retries
        self.last_bus: MessageBus | None = None

    def state_dict(self) -> dict:
        """Chain RNG position (the bus RNG lives in the fault injector)."""
        from ..state.serialize import encode_rng

        return {"rng": encode_rng(self.rng)}

    def load_state_dict(self, state: dict) -> None:
        """Restore the chain RNG from a checkpoint."""
        from ..state.serialize import decode_rng

        self.rng = decode_rng(state["rng"])

    def _objective(self, problem: SlotProblem, agents: list[ServerAgent], coord: DualLoadCoordinator, explored: bool) -> float:
        try:
            coord.solve(problem, explored=explored)
        except (InfeasibleError, BusTimeoutError):
            return np.inf
        action = self._action(agents, explored)
        evaluation = problem.evaluate(action)
        if problem.violates_caps(evaluation):
            return np.inf
        return evaluation.objective

    @staticmethod
    def _action(agents: list[ServerAgent], explored: bool) -> FleetAction:
        levels = np.array(
            [a.explored_level if explored else a.level for a in agents],
            dtype=np.int64,
        )
        loads = np.array(
            [a.load if (a.explored_level if explored else a.level) >= 0 else 0.0 for a in agents]
        )
        return FleetAction(levels=levels, per_server_load=loads)

    def _decide_all(self, bus: MessageBus, agents: list[ServerAgent], accept: bool) -> None:
        """Accept/revert must reach *every* agent or their level state
        diverges from the driver's; an unreachable agent is fatal for this
        solve and escapes as :class:`BusTimeoutError`."""
        for a in agents:
            exchange(bus, "driver", a.name, "decide", {"accept": accept}, retries=self.retries)

    def solve(self, problem: SlotProblem) -> SlotSolution:
        problem.check_feasible()
        fleet = problem.fleet
        bus = self.bus_factory() if self.bus_factory is not None else MessageBus()
        agents = [ServerAgent(f"group-{g}", fleet, g) for g in range(fleet.num_groups)]
        for a in agents:
            bus.register(a)
        coord = DualLoadCoordinator(bus, retries=self.retries)
        coord.configure(problem)
        self.last_bus = bus

        current = self._objective(problem, agents, coord, explored=False)
        best = current
        best_levels = np.array([a.level for a in agents], dtype=np.int64)

        for _ in range(self.iterations):
            g = int(self.rng.integers(0, fleet.num_groups))
            reply = exchange(
                bus, "driver", agents[g].name, "explore", {"rng": self.rng},
                retries=self.retries,
            )
            if reply.payload["level"] == agents[g].level:
                self._decide_all(bus, agents, accept=False)
                continue
            explored_obj = self._objective(problem, agents, coord, explored=True)
            if np.isfinite(explored_obj):
                ge = max(explored_obj, 1e-12)
                gs = max(current, 1e-12)
                exponent = np.clip(self.delta * (1.0 / ge - 1.0 / gs), -700.0, 700.0)
                accept = self.rng.random() < 1.0 / (1.0 + np.exp(-exponent))
            else:
                accept = False
            self._decide_all(bus, agents, accept=bool(accept))
            if accept:
                current = explored_obj
                if explored_obj < best:
                    best = explored_obj
                    best_levels = np.array([a.level for a in agents], dtype=np.int64)

        # Final commit of the best configuration found.  Unlike a failed
        # exploration this must land: propagate BusTimeoutError to the
        # caller's degradation policy if the fabric stays silent.  The
        # pricing protocol spans hundreds of messages, so one lost round is
        # likely over a long lossy solve -- re-running the whole (idempotent)
        # commit a few times keeps a transient loss from dooming the solve,
        # while a persistent outage still escapes.
        for a, lvl in zip(agents, best_levels):
            exchange(
                bus, "driver", a.name, "set_level", {"level": int(lvl)},
                retries=self.retries,
            )
        commit_attempts = 1 if self.retries == 0 else 3
        for attempt in range(commit_attempts):
            try:
                coord.solve(problem, explored=False)
                break
            except BusTimeoutError:
                if attempt == commit_attempts - 1:
                    raise
        action = self._action(agents, explored=False)
        info: dict[str, Any] = {
            "messages": bus.delivered,
            "messages_by_kind": dict(bus.by_kind),
            "retries_used": coord.retries_used,
        }
        fault_stats = getattr(bus, "fault_stats", None)
        if fault_stats is not None:
            info["bus_faults"] = fault_stats()
        return SlotSolution(
            action=action,
            evaluation=problem.evaluate(action),
            info=info,
        )
