"""One-slot optimization problem **P3** (paper Eq. (16)).

Each time slot, COCA chooses a capacity-provisioning vector (per-group speed
levels) and a load distribution to minimize

    V * g(lambda, x)  +  q(t) * [ p(lambda, x) - r(t) ]^+

subject to the load constraints (7)-(8) and the discrete speed sets (9),
where ``g = e + beta * d`` combines electricity cost (Eq. (3)) and delay
cost (Eq. (4)), and ``q(t)`` is the carbon-deficit queue length.  Every
solver in this package consumes a :class:`SlotProblem`; every baseline that
needs "minimize cost with an extra per-MWh penalty ``mu`` on brown energy"
(the offline OPT dual, PerfectHP's capped subproblem, the lookahead
benchmark) reuses the same structure by setting ``q = mu`` and ``V = 1`` --
the carbon-deficit weight and a Lagrange multiplier enter the objective
identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from ..cluster.fleet import Fleet, FleetAction
from ..cluster.power import LinearTariff, PowerModel, Tariff
from ..cluster.queueing import DELAY_UNIT_COST, DelayCostModel, MG1PSDelay
from ..cluster.switching import SwitchingCostModel

__all__ = ["SlotProblem", "SlotEvaluation", "InfeasibleError"]


class InfeasibleError(ValueError):
    """Raised when no action can serve the slot's workload within the
    utilization cap (violates the paper's feasibility assumption)."""


@dataclass(frozen=True)
class SlotEvaluation:
    """Cost breakdown of one action on one slot problem.

    All monetary values in dollars per slot; energies in MWh.
    """

    it_power: float
    facility_power: float
    brown_energy: float
    electricity_cost: float
    delay_sum: float
    delay_cost: float
    switching_energy: float
    switching_cost: float
    cost: float
    objective: float

    @property
    def total_cost(self) -> float:
        """Alias for the per-slot operational cost ``g`` (incl. switching)."""
        return self.cost


@dataclass(frozen=True)
class SlotProblem:
    """All inputs needed to pose and evaluate P3 for one slot.

    Parameters
    ----------
    fleet:
        The data center's server groups.
    arrival_rate:
        Total workload ``lambda(t)`` in req/s (the controller's *believed*
        value; prediction error is modeled upstream).
    onsite:
        Available on-site renewable power ``r(t)`` in MW.
    price:
        Posted electricity price ``w(t)`` in $/MWh.
    q:
        Carbon-deficit queue length (MWh) -- or a Lagrange multiplier in
        $/MWh when a baseline reuses this structure.
    V:
        Cost-carbon control parameter.
    beta:
        Paper's delay weight; the monetary weight per unit of Eq. (4)'s
        delay sum is ``beta * delay_unit_cost``.
    gamma:
        Maximum server utilization in (0, 1) (Eq. (7)).
    delay_model, power_model, tariff:
        Pluggable substrate models.
    delay_unit_cost:
        Dollars per delay-sum unit (see :mod:`repro.cluster.queueing`).
    switching:
        Optional switching-cost model; when provided together with
        ``prev_on_counts``, solvers may charge transitions inside the
        objective (switching-aware control) and the evaluation reports the
        transition energy.
    prev_on_counts:
        Per-group on-server counts from the previous slot.
    peak_power_cap:
        Optional facility-power ceiling in MW (section 3.1: "additional
        constraints, such as peak power ... can also be incorporated").
        Solvers treat configurations exceeding it as infeasible.
    max_delay_cost:
        Optional ceiling on the slot's delay cost in dollars (section 3.1's
        "maximum delay cost" constraint).  Enforced per configuration: a
        speed vector whose *optimal* load distribution still violates the
        cap is rejected.
    pue_override:
        Optional per-slot PUE replacing the power model's constant (the
        paper absorbs cooling into a "(time-varying) PUE factor"; see
        :mod:`repro.cluster.thermal` for a weather-driven source).
    network_delay:
        Mean network delay between users and the data center for this slot,
        in the same per-request units as Eq. (4)'s response time (section
        2.3: it "can be approximately modeled as a certain (time-varying)
        variable and added into (4)").  Adds ``served_load * network_delay``
        to the delay sum; it scales with served load only, so it shifts
        reported costs without changing the optimization.
    slot_hours:
        Length of the slot in hours (default 1.0, the paper's hourly
        slotting).  Powers (MW) and energies (MWh) convert through this
        factor: switching *energy* enters facility *power* divided by the
        slot length, and brown energy is the power shortfall times the slot
        length.  With the historical implicit 1-hour slots the two were
        numerically interchangeable; at any other slot length they are not.
    """

    fleet: Fleet
    arrival_rate: float
    onsite: float
    price: float
    q: float = 0.0
    V: float = 1.0
    beta: float = 10.0
    gamma: float = 0.95
    delay_model: DelayCostModel = field(default_factory=MG1PSDelay)
    power_model: PowerModel = field(default_factory=PowerModel)
    tariff: Tariff = field(default_factory=LinearTariff)
    delay_unit_cost: float = DELAY_UNIT_COST
    switching: SwitchingCostModel | None = None
    prev_on_counts: np.ndarray | None = None
    peak_power_cap: float | None = None
    max_delay_cost: float | None = None
    network_delay: float = 0.0
    pue_override: float | None = None
    slot_hours: float = 1.0

    def __post_init__(self) -> None:
        if self.arrival_rate < 0:
            raise ValueError("arrival rate must be non-negative")
        if self.onsite < 0:
            raise ValueError("on-site renewable supply must be non-negative")
        if self.price < 0:
            raise ValueError("electricity price must be non-negative")
        if self.q < 0:
            raise ValueError("carbon-deficit weight must be non-negative")
        if self.V <= 0:
            raise ValueError("V must be positive")
        if self.beta < 0:
            raise ValueError("beta must be non-negative")
        if not 0.0 < self.gamma < 1.0:
            raise ValueError("gamma must lie in (0, 1)")
        if self.prev_on_counts is not None:
            prev = np.asarray(self.prev_on_counts, dtype=np.float64)
            if prev.shape != (self.fleet.num_groups,):
                raise ValueError("prev_on_counts must have one entry per group")
            object.__setattr__(self, "prev_on_counts", prev)
        if self.peak_power_cap is not None and self.peak_power_cap <= 0:
            raise ValueError("peak power cap must be positive")
        if self.max_delay_cost is not None and self.max_delay_cost < 0:
            raise ValueError("max delay cost must be non-negative")
        if self.network_delay < 0:
            raise ValueError("network delay must be non-negative")
        if self.pue_override is not None and self.pue_override < 1.0:
            raise ValueError("PUE must be >= 1")
        if self.slot_hours <= 0:
            raise ValueError("slot length must be positive")

    # ------------------------------------------------------------------
    # Derived weights
    # ------------------------------------------------------------------
    @property
    def pue(self) -> float:
        """The slot's effective PUE: a per-slot override (time-varying PUE,
        footnote 1 of the paper) or the power model's constant."""
        return self.pue_override if self.pue_override is not None else self.power_model.pue

    @property
    def delay_weight(self) -> float:
        """Dollars per unit of the Eq. (4) delay sum: ``beta * kappa``."""
        return self.beta * self.delay_unit_cost

    @property
    def electricity_weight(self) -> float:
        """Objective weight per MWh of brown energy in the linear regime:
        ``V * w(t) + q(t)`` (the P3 structure the paper highlights)."""
        return self.V * self.price + self.q

    def check_feasible(self) -> None:
        """Raise :class:`InfeasibleError` if the workload exceeds the
        fleet's capped capacity (assumption of section 3.2)."""
        cap = self.fleet.capacity(self.gamma)
        if self.arrival_rate > cap * (1.0 + 1e-12):
            raise InfeasibleError(
                f"arrival rate {self.arrival_rate:.6g} req/s exceeds capped "
                f"capacity {cap:.6g} req/s"
            )

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def brown_energy(self, it_power: float, extra_energy: float = 0.0) -> float:
        """Brown draw in MWh for the slot: the facility-power shortfall
        against the renewable supply, times the slot length.  The optional
        ``extra_energy`` (MWh, e.g. switching) enters the power balance
        divided by the slot length."""
        facility = (
            self.power_model.facility_power(it_power, pue=self.pue)
            + extra_energy / self.slot_hours
        )
        return max(facility - self.onsite, 0.0) * self.slot_hours

    def violates_caps(self, evaluation: "SlotEvaluation") -> bool:
        """Whether an evaluated action breaks the optional operational caps
        (peak facility power / maximum delay cost) of section 3.1."""
        if (
            self.peak_power_cap is not None
            and evaluation.facility_power > self.peak_power_cap * (1 + 1e-12)
        ):
            return True
        if (
            self.max_delay_cost is not None
            and evaluation.delay_cost > self.max_delay_cost * (1 + 1e-12)
        ):
            return True
        return False

    def evaluate(self, action: FleetAction) -> SlotEvaluation:
        """Full cost breakdown of an action, including the P3 objective
        value ``V * g + q * y`` (Eq. (16)) and any switching charges."""
        it_power = action.power(self.fleet)
        delay_sum = self.fleet.action_delay_sum(
            action.levels, action.per_server_load, delay_model=self.delay_model
        )
        if self.network_delay > 0.0:
            delay_sum += self.network_delay * action.served_load(self.fleet)

        switching_energy = 0.0
        if self.switching is not None and self.prev_on_counts is not None:
            switching_energy = self.switching.energy(
                self.prev_on_counts, action.on_counts(self.fleet)
            )

        # Powers are MW, energies MWh: switching energy enters the power
        # balance divided by the slot length, and brown energy is the power
        # shortfall times the slot length (both no-ops at 1-hour slots).
        facility = (
            self.power_model.facility_power(it_power, pue=self.pue)
            + switching_energy / self.slot_hours
        )
        brown = max(facility - self.onsite, 0.0) * self.slot_hours
        e_cost = self.tariff.cost(brown, self.price)
        d_cost = self.delay_weight * delay_sum * self.slot_hours
        sw_cost = 0.0  # switching is charged as energy, already inside e_cost
        g = e_cost + d_cost
        objective = self.V * g + self.q * brown
        return SlotEvaluation(
            it_power=it_power,
            facility_power=facility,
            brown_energy=brown,
            electricity_cost=e_cost,
            delay_sum=delay_sum,
            delay_cost=d_cost,
            switching_energy=switching_energy,
            switching_cost=sw_cost,
            cost=g,
            objective=objective,
        )

    def objective(self, action: FleetAction) -> float:
        """Shortcut for ``evaluate(action).objective``."""
        return self.evaluate(action).objective

    # ------------------------------------------------------------------
    # Variants
    # ------------------------------------------------------------------
    def with_q(self, q: float) -> "SlotProblem":
        """Copy with a different carbon-deficit weight (used by the dual
        baselines and the deficit-queue controller)."""
        return replace(self, q=q)

    def with_arrival_rate(self, arrival_rate: float) -> "SlotProblem":
        """Copy with a different workload (used by overestimation studies)."""
        return replace(self, arrival_rate=arrival_rate)

    def carbon_unaware(self) -> "SlotProblem":
        """Copy with ``q = 0`` -- pure cost minimization (the paper's
        carbon-unaware algorithm, COCA's V -> infinity limit)."""
        return replace(self, q=0.0)
